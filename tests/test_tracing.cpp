/**
 * @file
 * Distributed-tracing coverage: protocol v2 wire format and v1<->v2
 * compatibility in both directions, trace-context propagation across
 * the RPC boundary (with bit-parity against the in-process path),
 * Health-handshake clock sync, and the trace-merge pipeline that
 * assembles per-process dumps into one Chrome trace.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/distributed_store.hpp"
#include "net/frame.hpp"
#include "net/net.hpp"
#include "net/wire.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/broker.hpp"
#include "serve/remote_node.hpp"
#include "serve/rpc.hpp"
#include "serve/shard_server.hpp"
#include "serve/trace_merge.hpp"
#include "util/minijson.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

/** Stop + clear the recorder even when a test fails mid-way. */
struct RecorderCleanup
{
    ~RecorderCleanup()
    {
        obs::TraceRecorder::instance().stop();
        obs::TraceRecorder::instance().clear();
    }
};

const obs::TraceSpan *
findSpan(const std::vector<obs::TraceSpan> &spans, const char *name)
{
    for (const auto &span : spans) {
        if (span.name == name)
            return &span;
    }
    return nullptr;
}

/** Corpus + store shared by the integration tests below. */
struct TracingData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const TracingData &
tracingData()
{
    static TracingData data = [] {
        TracingData out;
        workload::CorpusConfig cc;
        cc.num_docs = 3000;
        cc.dim = 16;
        cc.num_topics = 10;
        cc.seed = 171;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 16;
        qc.seed = 172;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 4;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 16;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

} // namespace

// ---------------------------------------------------------------------------
// Protocol v2 wire format

TEST(RpcV2, SearchRequestTraceContextRoundTrip)
{
    serve::rpc::SearchRequest request;
    request.k = 5;
    request.query = {1.0f, 2.0f};
    request.trace.active = true;
    request.trace.trace_id = 0xdeadbeefcafe0001ull;
    request.trace.parent_span_id = 0x1122334455667788ull;

    auto decoded = serve::rpc::decodeSearchRequest(
        serve::rpc::encodeSearchRequest(request));
    EXPECT_TRUE(decoded.trace.active);
    EXPECT_EQ(decoded.trace.trace_id, request.trace.trace_id);
    EXPECT_EQ(decoded.trace.parent_span_id, request.trace.parent_span_id);

    // An inactive context encodes to the exact v1 payload — no trailing
    // bytes — and decodes back as inactive.
    serve::rpc::SearchRequest untraced = request;
    untraced.trace = {};
    std::string v1_payload = serve::rpc::encodeSearchRequest(untraced);
    EXPECT_EQ(serve::rpc::encodeSearchRequest(request).size(),
              v1_payload.size() + 17); // u8 flag + two u64s
    EXPECT_FALSE(serve::rpc::decodeSearchRequest(v1_payload).trace.active);
}

TEST(RpcV2, SearchBatchSparseTraceRoundTrip)
{
    serve::rpc::SearchBatchRequest request;
    request.k = 3;
    request.dim = 2;
    request.queries = {1, 2, 3, 4, 5, 6}; // 3 queries
    request.traces.resize(3);
    request.traces[1] = {true, 0xaaull, 0xb0ull};
    request.traces[2] = {true, 0xccull, 0xd0ull};

    auto decoded = serve::rpc::decodeSearchBatchRequest(
        serve::rpc::encodeSearchBatchRequest(request));
    ASSERT_EQ(decoded.traces.size(), 3u);
    EXPECT_FALSE(decoded.traces[0].active);
    EXPECT_TRUE(decoded.traces[1].active);
    EXPECT_EQ(decoded.traces[1].trace_id, 0xaaull);
    EXPECT_EQ(decoded.traces[1].parent_span_id, 0xb0ull);
    EXPECT_TRUE(decoded.traces[2].active);
    EXPECT_EQ(decoded.traces[2].trace_id, 0xccull);

    // All-inactive contexts are omitted entirely: the v1 payload.
    serve::rpc::SearchBatchRequest untraced = request;
    untraced.traces.assign(3, {});
    auto v1_roundtrip = serve::rpc::decodeSearchBatchRequest(
        serve::rpc::encodeSearchBatchRequest(untraced));
    EXPECT_TRUE(v1_roundtrip.traces.empty());

    // A trailing slot index beyond the query count is hostile input,
    // not a context to adopt.
    std::string payload = serve::rpc::encodeSearchBatchRequest(untraced);
    net::WireWriter bad;
    bad.u32(1);
    bad.u32(7); // slot 7 of 3
    bad.u64(1);
    bad.u64(2);
    EXPECT_THROW(
        serve::rpc::decodeSearchBatchRequest(payload + bad.buffer()),
        net::WireError);
}

TEST(RpcV2, HealthVersionNegotiationAndClock)
{
    // v2 client announces its version; a v1 client's empty payload
    // decodes as version 1; version 0 is malformed.
    EXPECT_EQ(serve::rpc::decodeHealthRequest(
                  serve::rpc::encodeHealthRequest(2)),
              2u);
    EXPECT_EQ(serve::rpc::decodeHealthRequest(std::string_view()), 1u);
    net::WireWriter zero;
    zero.u32(0);
    EXPECT_THROW(serve::rpc::decodeHealthRequest(zero.buffer()),
                 net::WireError);

    serve::rpc::HealthResponse health;
    health.protocol_version = 2;
    health.node_id = 3;
    health.dim = 16;
    health.shard_vectors = 1000;
    health.trace_now_us = 123456.75;
    health.has_clock = true;
    auto decoded = serve::rpc::decodeHealthResponse(
        serve::rpc::encodeHealthResponse(health));
    EXPECT_TRUE(decoded.has_clock);
    EXPECT_EQ(decoded.trace_now_us, health.trace_now_us);

    // The v1 shape (no trailing clock) still decodes.
    health.has_clock = false;
    decoded = serve::rpc::decodeHealthResponse(
        serve::rpc::encodeHealthResponse(health));
    EXPECT_FALSE(decoded.has_clock);
    EXPECT_EQ(decoded.trace_now_us, 0.0);
}

// ---------------------------------------------------------------------------
// v1 <-> v2 compatibility, both directions

TEST(RpcV2, V2ClientAgainstV1ShardDegradesToUntraced)
{
    // A fake shard that speaks protocol v1: answers Health with
    // version 1 and no clock field, and would reject (flags here:
    // records) any trailing trace bytes on a Search payload.
    net::Listener listener;
    ASSERT_TRUE(listener.open("127.0.0.1", 0));
    std::atomic<bool> stop{false};
    std::atomic<bool> saw_trace{false};
    std::atomic<int> searches{0};
    std::vector<std::thread> handlers;
    std::thread acceptor([&] {
        while (!stop.load()) {
            net::Socket conn = listener.acceptFor(100.0);
            if (!conn.valid())
                continue;
            handlers.emplace_back([&, sock = std::move(conn)]() mutable {
                net::Frame frame;
                while (net::recvFrame(sock, frame,
                                      net::Deadline::after(2000.0)) ==
                       net::IoStatus::Ok) {
                    using serve::rpc::Type;
                    if (frame.type ==
                        static_cast<std::uint32_t>(Type::HealthRequest)) {
                        serve::rpc::HealthResponse health;
                        health.protocol_version = 1;
                        health.dim = 4;
                        health.shard_vectors = 1;
                        health.has_clock = false;
                        net::sendFrame(
                            sock,
                            static_cast<std::uint32_t>(
                                Type::HealthResponse),
                            frame.id,
                            serve::rpc::encodeHealthResponse(health),
                            net::Deadline::after(2000.0));
                    } else if (frame.type ==
                               static_cast<std::uint32_t>(
                                   Type::SearchRequest)) {
                        auto request =
                            serve::rpc::decodeSearchRequest(frame.payload);
                        if (request.trace.active)
                            saw_trace.store(true);
                        ++searches;
                        serve::NodeResponse response;
                        response.hits.push_back({1, 0.5f});
                        net::sendFrame(
                            sock,
                            static_cast<std::uint32_t>(
                                Type::SearchResponse),
                            frame.id,
                            serve::rpc::encodeSearchResponse(response),
                            net::Deadline::after(2000.0));
                    }
                }
            });
        }
    });

    {
        RecorderCleanup cleanup;
        obs::TraceRecorder::instance().start(1);

        serve::RemoteNodeOptions options;
        options.port = listener.port();
        options.connections = 1;
        options.request_deadline_ms = 2000.0;
        serve::RemoteNodeClient client(options);

        serve::rpc::HealthResponse health;
        ASSERT_TRUE(client.health(&health));
        EXPECT_EQ(health.protocol_version, 1u);
        EXPECT_FALSE(health.has_clock);
        EXPECT_EQ(client.peerVersion(), 1u);
        EXPECT_FALSE(client.clockSync().valid);

        // Submit inside an active trace: the context must NOT go on
        // the wire against a v1 peer.
        obs::TraceContext trace(true);
        std::vector<float> query(4, 0.25f);
        auto response =
            client
                .submit(vecstore::VecView(query.data(), query.size()), 1,
                        index::SearchParams{})
                .get();
        ASSERT_EQ(response.hits.size(), 1u);
        EXPECT_EQ(response.hits[0].id, 1);
    }

    EXPECT_GE(searches.load(), 1);
    EXPECT_FALSE(saw_trace.load())
        << "v2 client sent trace context to a v1 shard";
    stop.store(true);
    acceptor.join();
    for (auto &handler : handlers)
        handler.join();
}

TEST(RpcV2, V1ClientAgainstV2ShardSeesExactV1Conversation)
{
    const auto &data = tracingData();
    serve::ShardServerOptions options;
    options.node.node_id = 0;
    serve::ShardServer server(data.store->clusterIndex(0), options);
    ASSERT_TRUE(server.start());

    net::Socket conn = net::connectTo("127.0.0.1", server.port(), 1000.0);
    ASSERT_TRUE(conn.valid());

    // v1 Health: empty payload. The v2 shard must answer version 1 and
    // omit the trailing clock field (the v1 decoder enforces exact
    // payload length, so has_clock=false proves nothing was appended).
    using serve::rpc::Type;
    ASSERT_EQ(net::sendFrame(
                  conn, static_cast<std::uint32_t>(Type::HealthRequest), 7,
                  std::string_view(), net::Deadline::after(2000.0)),
              net::IoStatus::Ok);
    net::Frame reply;
    ASSERT_EQ(net::recvFrame(conn, reply, net::Deadline::after(2000.0)),
              net::IoStatus::Ok);
    ASSERT_EQ(reply.type,
              static_cast<std::uint32_t>(Type::HealthResponse));
    auto health = serve::rpc::decodeHealthResponse(reply.payload);
    EXPECT_EQ(health.protocol_version, 1u);
    EXPECT_FALSE(health.has_clock);

    // v1 Search: no trailing trace block; the answer must match the
    // direct shard search bit for bit.
    serve::rpc::SearchRequest request;
    request.k = 5;
    request.params.nprobe = 4;
    auto query = data.queries.embeddings.row(0);
    request.query.assign(query.data(), query.data() + query.size());
    ASSERT_EQ(net::sendFrame(
                  conn, static_cast<std::uint32_t>(Type::SearchRequest), 8,
                  serve::rpc::encodeSearchRequest(request),
                  net::Deadline::after(2000.0)),
              net::IoStatus::Ok);
    ASSERT_EQ(net::recvFrame(conn, reply, net::Deadline::after(5000.0)),
              net::IoStatus::Ok);
    ASSERT_EQ(reply.type,
              static_cast<std::uint32_t>(Type::SearchResponse));
    auto response = serve::rpc::decodeSearchResponse(reply.payload);
    auto direct = data.store->clusterIndex(0).search(query, 5,
                                                     request.params);
    ASSERT_EQ(response.hits.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
        EXPECT_EQ(response.hits[i].id, direct[i].id);
        EXPECT_EQ(response.hits[i].score, direct[i].score);
    }
    conn.close();
    server.stop();
}

// ---------------------------------------------------------------------------
// Trace propagation across the RPC boundary

TEST(DistributedTracing, RemoteSpansJoinTheBrokerTrace)
{
    const auto &data = tracingData();
    RecorderCleanup cleanup;
    auto &recorder = obs::TraceRecorder::instance();

    std::vector<std::unique_ptr<serve::ShardServer>> servers;
    std::vector<std::unique_ptr<serve::NodeClient>> remotes;
    for (std::size_t c = 0; c < data.store->numClusters(); ++c) {
        serve::ShardServerOptions so;
        so.node.node_id = c;
        servers.push_back(std::make_unique<serve::ShardServer>(
            data.store->clusterIndex(c), so));
        ASSERT_TRUE(servers.back()->start());

        serve::RemoteNodeOptions ro;
        ro.port = servers.back()->port();
        ro.request_deadline_ms = 5000.0;
        remotes.push_back(std::make_unique<serve::RemoteNodeClient>(ro));
    }
    serve::HermesBroker remote(data.config, std::move(remotes), {});
    serve::HermesBroker local(*data.store, {});

    recorder.start(1); // trace every query
    std::vector<vecstore::HitList> traced_hits;
    for (std::size_t q = 0; q < 4; ++q)
        traced_hits.push_back(
            remote.search(data.queries.embeddings.row(q), 10));
    recorder.stop();

    // Bit-parity: tracing on the remote path must not perturb results
    // relative to the (independently traced/untraced) in-process path.
    for (std::size_t q = 0; q < 4; ++q) {
        auto expect = local.search(data.queries.embeddings.row(q), 10);
        ASSERT_EQ(traced_hits[q].size(), expect.size()) << "query " << q;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(traced_hits[q][i].id, expect[i].id) << "query " << q;
            EXPECT_EQ(traced_hits[q][i].score, expect[i].score)
                << "query " << q;
        }
    }

    auto spans = recorder.snapshot();
    const obs::TraceSpan *broker_span = findSpan(spans, "broker.query");
    ASSERT_NE(broker_span, nullptr);
    ASSERT_NE(broker_span->trace_id, 0u);

    // The client-side rpc span, the shard-side adoption span and the
    // node-layer spans must all carry the broker's trace_id (same
    // process here, but they crossed a real TCP connection to get it).
    bool found_rpc = false;
    bool found_shard = false;
    bool found_node = false;
    bool found_queue_wait = false;
    std::vector<std::uint64_t> rpc_span_ids;
    for (const auto &span : spans) {
        if (span.trace_id != broker_span->trace_id)
            continue;
        if (span.name == "rpc.search" || span.name == "rpc.search_batch") {
            found_rpc = true;
            rpc_span_ids.push_back(span.span_id);
        } else if (span.name == "shard.search" ||
                   span.name == "shard.search_batch") {
            found_shard = true;
        } else if (span.name == "node.search" ||
                   span.name == "node.search_batch") {
            found_node = true;
        } else if (span.name == "node.queue_wait") {
            found_queue_wait = true;
        }
    }
    EXPECT_TRUE(found_rpc) << "no rpc.* span joined the broker trace";
    EXPECT_TRUE(found_shard) << "no shard.* span joined the broker trace";
    EXPECT_TRUE(found_node) << "no node.* span joined the broker trace";
    EXPECT_TRUE(found_queue_wait);

    // Shard-side spans chain under a client rpc span, completing the
    // cross-process parent chain broker.query > rpc.* > shard.*.
    bool shard_chained = false;
    for (const auto &span : spans) {
        if (span.trace_id != broker_span->trace_id)
            continue;
        if (span.name != "shard.search" && span.name != "shard.search_batch")
            continue;
        for (std::uint64_t id : rpc_span_ids) {
            if (span.parent_span_id == id)
                shard_chained = true;
        }
    }
    EXPECT_TRUE(shard_chained)
        << "shard spans did not chain under the client rpc span";

    // Satellite: recorder occupancy is mirrored into registry gauges.
    auto &registry = obs::Registry::instance();
    EXPECT_EQ(registry.gauge(obs::names::kTraceBufferSpans).value(),
              static_cast<double>(recorder.spanCount()));
    EXPECT_EQ(registry.gauge(obs::names::kTraceDroppedSpans).value(),
              static_cast<double>(recorder.droppedSpans()));

    for (auto &server : servers)
        server->stop();
}

TEST(DistributedTracing, UntracedRemoteMatchesTracedRemote)
{
    const auto &data = tracingData();
    serve::ShardServerOptions so;
    so.node.node_id = 1;
    serve::ShardServer server(data.store->clusterIndex(1), so);
    ASSERT_TRUE(server.start());

    serve::RemoteNodeOptions ro;
    ro.port = server.port();
    ro.request_deadline_ms = 5000.0;
    serve::RemoteNodeClient client(ro);

    index::SearchParams params;
    params.nprobe = 4;
    auto query = data.queries.embeddings.row(1);

    auto untraced = client.submit(query, 5, params).get();
    {
        RecorderCleanup cleanup;
        obs::TraceRecorder::instance().start(1);
        obs::TraceContext trace(true);
        auto traced = client.submit(query, 5, params).get();
        ASSERT_EQ(traced.hits.size(), untraced.hits.size());
        for (std::size_t i = 0; i < untraced.hits.size(); ++i) {
            EXPECT_EQ(traced.hits[i].id, untraced.hits[i].id);
            EXPECT_EQ(traced.hits[i].score, untraced.hits[i].score);
        }
    }
    server.stop();
}

// ---------------------------------------------------------------------------
// Clock sync + merge

TEST(DistributedTracing, HealthHandshakeMeasuresClockOffset)
{
    const auto &data = tracingData();
    RecorderCleanup cleanup;
    obs::TraceRecorder::instance().start(1);

    serve::ShardServerOptions so;
    so.node.node_id = 2;
    serve::ShardServer server(data.store->clusterIndex(2), so);
    ASSERT_TRUE(server.start());

    serve::RemoteNodeOptions ro;
    ro.port = server.port();
    serve::RemoteNodeClient client(ro);
    ASSERT_TRUE(client.health());
    EXPECT_EQ(client.peerVersion(), serve::rpc::kProtocolVersion);

    auto sync = client.clockSync();
    ASSERT_TRUE(sync.valid);
    EXPECT_EQ(sync.node_id, 2u);
    EXPECT_GE(sync.rtt_us, 0.0);
    // Client and shard share one process (and one recorder epoch), so
    // the true offset is 0; the estimate is bounded by RTT/2 plus a
    // little scheduling slack.
    EXPECT_LE(std::fabs(sync.offset_us), sync.rtt_us / 2.0 + 5000.0);

    // Repeated handshakes keep the lowest-RTT sample (monotone rtt).
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(client.health());
    auto best = client.clockSync();
    ASSERT_TRUE(best.valid);
    EXPECT_LE(best.rtt_us, sync.rtt_us);

    // The handshake drops an rpc.clock_sync instant into the local span
    // stream — that's what the merge tool mines from a broker dump.
    auto spans = obs::TraceRecorder::instance().snapshot();
    const obs::TraceSpan *instant = findSpan(spans, "rpc.clock_sync");
    ASSERT_NE(instant, nullptr);
    EXPECT_TRUE(instant->instant);

    // The per-node gauge mirrors a kept (lowest-RTT) estimate. It is
    // process-wide — other clients to node 2 may have written it — so
    // assert sanity, not identity: in-process, every honest estimate
    // is near zero.
    double gauge = obs::Registry::instance()
                       .gauge(obs::names::rpcNodeMetric(
                           2, obs::names::kRpcClockOffsetUs))
                       .value();
    EXPECT_LE(std::fabs(gauge), 10000.0);
    server.stop();
}

TEST(TraceMerge, AlignsShardClocksAndEmitsWellFormedChromeTrace)
{
    // Synthetic dumps with a known 500us offset for shard cluster 1;
    // the broker also carries a worse (higher-RTT) sync for the same
    // node that must lose to the better sample.
    const std::string broker_json = R"({"traceEvents": [
      {"name": "broker.query", "ph": "X", "pid": 77, "tid": 0,
       "ts": 1000.0, "dur": 900.0,
       "args": {"trace_id": "00000000000000aa"}},
      {"name": "rpc.clock_sync", "ph": "i", "pid": 77, "tid": 0,
       "ts": 10.0, "s": "t",
       "args": {"node_id": 1, "offset_us": 9999.0, "rtt_us": 80.0}},
      {"name": "rpc.clock_sync", "ph": "i", "pid": 77, "tid": 0,
       "ts": 20.0, "s": "t",
       "args": {"node_id": 1, "offset_us": 500.0, "rtt_us": 12.0}}
    ], "metadata": {"process": "broker"}, "displayTimeUnit": "ms"})";

    auto syncs = serve::extractClockSyncs(broker_json);
    ASSERT_EQ(syncs.size(), 1u);
    EXPECT_EQ(syncs[0].node_id, 1u);
    EXPECT_EQ(syncs[0].offset_us, 500.0);
    EXPECT_EQ(syncs[0].rtt_us, 12.0);

    const std::string shard_json = R"({"traceEvents": [
      {"name": "shard.search", "ph": "X", "pid": 5, "tid": 1,
       "ts": 600.0, "dur": 100.0,
       "args": {"trace_id": "00000000000000aa"}},
      {"name": "node.search", "ph": "X", "pid": 5, "tid": 1,
       "ts": 650.0, "dur": 40.0, "args": {}}
    ], "metadata": {"process": "hermes_shard", "cluster": 1}})";

    serve::TraceMergeResult merged = serve::mergeTraces(
        {"broker.json", broker_json}, {{"127.0.0.1:9", shard_json}});
    ASSERT_TRUE(merged.ok) << merged.error;
    EXPECT_TRUE(merged.warnings.empty());
    EXPECT_EQ(merged.processes, 2u);
    EXPECT_EQ(merged.events, 5u);

    auto parsed = util::json::parse(merged.json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    const auto *events = parsed.value.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    double broker_start = 0.0, broker_end = 0.0;
    double shard_start = 0.0, shard_end = 0.0;
    double node_start = 0.0;
    int process_names = 0;
    for (const auto &event : events->items()) {
        const auto *name = event.find("name");
        ASSERT_NE(name, nullptr);
        const auto *pid = event.find("pid");
        ASSERT_NE(pid, nullptr);
        if (name->stringOr("") == "process_name") {
            ++process_names;
            continue;
        }
        double ts = event.find("ts")->numberOr(-1.0);
        double dur =
            event.find("dur") ? event.find("dur")->numberOr(0.0) : 0.0;
        if (name->stringOr("") == "broker.query") {
            EXPECT_EQ(pid->numberOr(0), 1.0); // broker pid rewritten
            broker_start = ts;
            broker_end = ts + dur;
        } else if (name->stringOr("") == "shard.search") {
            EXPECT_EQ(pid->numberOr(0), 2.0); // first shard pid
            shard_start = ts;
            shard_end = ts + dur;
        } else if (name->stringOr("") == "node.search") {
            node_start = ts;
        }
    }
    EXPECT_EQ(process_names, 2);

    // Alignment: shard ts shifted by +500us, so the remote span nests
    // inside the broker span, and relative order within the shard is
    // preserved (the shift is one constant per process — monotone).
    EXPECT_EQ(shard_start, 1100.0);
    EXPECT_GE(shard_start, broker_start);
    EXPECT_LE(shard_end, broker_end);
    EXPECT_EQ(node_start, 1150.0);
    EXPECT_GT(node_start, shard_start);
}

TEST(TraceMerge, RestartDropsStaleEpochSamplesDespiteLowerRtt)
{
    // Before a shard restart the broker measured a very tight sync
    // (rtt 5) whose offset refers to the dead process's clock. The
    // post-restart samples sit seconds away. The merge must anchor on
    // the latest epoch and pick its best RTT, never the stale sample.
    const std::string broker_json = R"({"traceEvents": [
      {"name": "rpc.clock_sync", "ph": "i", "pid": 1, "tid": 0,
       "ts": 10.0, "s": "t",
       "args": {"node_id": 1, "offset_us": 5000000.0, "rtt_us": 5.0}},
      {"name": "rpc.clock_sync", "ph": "i", "pid": 1, "tid": 0,
       "ts": 20.0, "s": "t",
       "args": {"node_id": 1, "offset_us": 730.0, "rtt_us": 60.0}},
      {"name": "rpc.clock_sync", "ph": "i", "pid": 1, "tid": 0,
       "ts": 30.0, "s": "t",
       "args": {"node_id": 1, "offset_us": 700.0, "rtt_us": 90.0}},
      {"name": "rpc.clock_sync", "ph": "i", "pid": 1, "tid": 0,
       "ts": 40.0, "s": "t",
       "args": {"node_id": 2, "offset_us": -300.0, "rtt_us": 25.0}}
    ], "metadata": {"process": "broker"}})";

    auto syncs = serve::extractClockSyncs(broker_json);
    ASSERT_EQ(syncs.size(), 2u);
    const serve::TraceClockSync *node1 = nullptr;
    const serve::TraceClockSync *node2 = nullptr;
    for (const auto &sync : syncs) {
        if (sync.node_id == 1)
            node1 = &sync;
        if (sync.node_id == 2)
            node2 = &sync;
    }
    ASSERT_NE(node1, nullptr);
    ASSERT_NE(node2, nullptr);
    // Node 1: the stale epoch's rtt-5 sample loses; within the final
    // epoch the rtt-60 sample beats the rtt-90 anchor.
    EXPECT_EQ(node1->offset_us, 730.0);
    EXPECT_EQ(node1->rtt_us, 60.0);
    EXPECT_EQ(node2->offset_us, -300.0);
}

TEST(TraceMerge, UnmatchedShardMergesUnshiftedWithWarning)
{
    const std::string broker_json =
        R"({"traceEvents": [], "metadata": {"process": "broker"}})";
    const std::string shard_json = R"({"traceEvents": [
      {"name": "x", "ph": "X", "pid": 3, "tid": 0, "ts": 42.0,
       "dur": 1.0, "args": {}}
    ], "metadata": {"cluster": 9}})";

    auto merged = serve::mergeTraces({"b", broker_json},
                                     {{"s", shard_json}, {"bad", "{oops"}});
    ASSERT_TRUE(merged.ok);
    EXPECT_EQ(merged.processes, 2u); // the unparseable dump is skipped
    ASSERT_EQ(merged.warnings.size(), 2u);

    auto parsed = util::json::parse(merged.json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    bool found = false;
    for (const auto &event : parsed.value.find("traceEvents")->items()) {
        if (event.find("name")->stringOr("") != "x")
            continue;
        found = true;
        EXPECT_EQ(event.find("ts")->numberOr(-1.0), 42.0); // unshifted
    }
    EXPECT_TRUE(found);

    // An unparseable broker dump is the one fatal input.
    auto failed = serve::mergeTraces({"b", "not json"}, {});
    EXPECT_FALSE(failed.ok);
    EXPECT_FALSE(failed.error.empty());
}
