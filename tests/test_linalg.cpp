/**
 * @file
 * Tests for the small dense linear algebra used by OPQ training.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/linalg.hpp"
#include "util/rng.hpp"

namespace {

using namespace hermes::quant::linalg;
using hermes::util::Rng;

std::vector<float>
randomMatrix(std::size_t d, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> m(d * d);
    for (auto &x : m)
        x = static_cast<float>(rng.gaussian());
    return m;
}

TEST(Linalg, MatmulIdentity)
{
    const std::size_t d = 8;
    auto a = randomMatrix(d, 1);
    std::vector<float> eye(d * d, 0.f);
    for (std::size_t i = 0; i < d; ++i)
        eye[i * d + i] = 1.f;
    std::vector<float> c(d * d);
    matmul(a.data(), eye.data(), c.data(), d);
    for (std::size_t i = 0; i < d * d; ++i)
        EXPECT_FLOAT_EQ(c[i], a[i]);
}

TEST(Linalg, MatmulMatchesNaive)
{
    const std::size_t d = 6;
    auto a = randomMatrix(d, 2);
    auto b = randomMatrix(d, 3);
    std::vector<float> c(d * d);
    matmul(a.data(), b.data(), c.data(), d);
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) {
            float expected = 0.f;
            for (std::size_t k = 0; k < d; ++k)
                expected += a[i * d + k] * b[k * d + j];
            EXPECT_NEAR(c[i * d + j], expected, 1e-4f);
        }
    }
}

TEST(Linalg, MatmulTnIsTransposeTimesB)
{
    const std::size_t d = 5;
    auto a = randomMatrix(d, 4);
    auto b = randomMatrix(d, 5);
    std::vector<float> expected(d * d), got(d * d);
    auto at = transpose(a.data(), d);
    matmul(at.data(), b.data(), expected.data(), d);
    matmulTn(a.data(), b.data(), got.data(), d);
    for (std::size_t i = 0; i < d * d; ++i)
        EXPECT_NEAR(got[i], expected[i], 1e-4f);
}

TEST(Linalg, TransposeIsInvolution)
{
    const std::size_t d = 7;
    auto a = randomMatrix(d, 6);
    auto att = transpose(transpose(a.data(), d).data(), d);
    EXPECT_EQ(att, a);
}

TEST(Linalg, VecmatMatchesNaive)
{
    const std::size_t d = 9;
    auto a = randomMatrix(d, 7);
    Rng rng(8);
    std::vector<float> x(d), y(d);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    vecmat(x.data(), a.data(), y.data(), d);
    for (std::size_t j = 0; j < d; ++j) {
        float expected = 0.f;
        for (std::size_t i = 0; i < d; ++i)
            expected += x[i] * a[i * d + j];
        EXPECT_NEAR(y[j], expected, 1e-4f);
    }
}

TEST(Linalg, RandomRotationIsOrthogonal)
{
    for (std::size_t d : {2u, 4u, 16u, 48u}) {
        auto r = randomRotation(d, 123 + d);
        EXPECT_LT(orthogonalityError(r.data(), d), 1e-4f) << "d=" << d;
    }
}

TEST(Linalg, RandomRotationPreservesNorm)
{
    const std::size_t d = 24;
    auto r = randomRotation(d, 9);
    Rng rng(10);
    std::vector<float> x(d), y(d);
    for (auto &v : x)
        v = static_cast<float>(rng.gaussian());
    vecmat(x.data(), r.data(), y.data(), d);
    float nx = 0.f, ny = 0.f;
    for (std::size_t i = 0; i < d; ++i) {
        nx += x[i] * x[i];
        ny += y[i] * y[i];
    }
    EXPECT_NEAR(nx, ny, 1e-3f * nx);
}

TEST(Linalg, JacobiRecoversDiagonalEigenvalues)
{
    const std::size_t d = 5;
    std::vector<float> a(d * d, 0.f);
    std::vector<float> diag{5.f, 4.f, 3.f, 2.f, 1.f};
    for (std::size_t i = 0; i < d; ++i)
        a[i * d + i] = diag[i];
    std::vector<float> eigenvalues, v;
    jacobiEigenSymmetric(a, eigenvalues, v, d);
    std::sort(eigenvalues.begin(), eigenvalues.end(),
              std::greater<float>());
    for (std::size_t i = 0; i < d; ++i)
        EXPECT_NEAR(eigenvalues[i], diag[i], 1e-4f);
}

TEST(Linalg, JacobiReconstructsMatrix)
{
    const std::size_t d = 8;
    // Symmetric A = B + B^T.
    auto b = randomMatrix(d, 11);
    std::vector<float> a(d * d);
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = 0; j < d; ++j)
            a[i * d + j] = b[i * d + j] + b[j * d + i];
    auto original = a;

    std::vector<float> eigenvalues, v;
    jacobiEigenSymmetric(a, eigenvalues, v, d);

    // Reconstruct V diag(lambda) V^T.
    std::vector<float> scaled(d * d);
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = 0; j < d; ++j)
            scaled[i * d + j] = v[i * d + j] * eigenvalues[j];
    auto vt = transpose(v.data(), d);
    std::vector<float> recon(d * d);
    matmul(scaled.data(), vt.data(), recon.data(), d);
    for (std::size_t i = 0; i < d * d; ++i)
        EXPECT_NEAR(recon[i], original[i], 1e-3f);
}

TEST(Linalg, ProcrustesRecoversRotation)
{
    // If M itself is orthogonal, the closest orthogonal matrix is M.
    const std::size_t d = 12;
    auto r = randomRotation(d, 13);
    auto solved = procrustes(r, d);
    for (std::size_t i = 0; i < d * d; ++i)
        EXPECT_NEAR(solved[i], r[i], 5e-3f);
}

TEST(Linalg, ProcrustesOutputIsOrthogonal)
{
    const std::size_t d = 10;
    auto m = randomMatrix(d, 14); // arbitrary, well-conditioned w.h.p.
    auto r = procrustes(m, d);
    EXPECT_LT(orthogonalityError(r.data(), d), 1e-3f);
}

TEST(Linalg, ProcrustesOfScaledRotationRecoversRotation)
{
    const std::size_t d = 8;
    auto r = randomRotation(d, 15);
    auto scaled = r;
    for (auto &x : scaled)
        x *= 3.7f; // positive scale does not change the polar factor
    auto solved = procrustes(scaled, d);
    for (std::size_t i = 0; i < d * d; ++i)
        EXPECT_NEAR(solved[i], r[i], 5e-3f);
}

} // namespace
