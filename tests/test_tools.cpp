/**
 * @file
 * Tests for the tooling layer: argument parsing, deployment manifests,
 * and store assembly from serialized indices (the save -> reload ->
 * search round trip the tools/ binaries rely on).
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "../tools/tool_common.hpp"

#include "core/search_strategy.hpp"
#include "util/argparse.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

TEST(ArgParser, DefaultsAndOverrides)
{
    util::ArgParser args("test", "test tool");
    args.addFlag("alpha", "7", "an int");
    args.addFlag("beta", "hello", "a string");
    args.addFlag("gamma", "0.5", "a double");
    args.addFlag("delta", "false", "a bool");

    const char *argv[] = {"test", "--alpha", "42", "--delta=true"};
    args.parse(4, const_cast<char **>(argv));

    EXPECT_EQ(args.getInt("alpha"), 42);
    EXPECT_TRUE(args.given("alpha"));
    EXPECT_EQ(args.get("beta"), "hello");
    EXPECT_FALSE(args.given("beta"));
    EXPECT_DOUBLE_EQ(args.getDouble("gamma"), 0.5);
    EXPECT_TRUE(args.getBool("delta"));
}

TEST(ArgParser, EqualsFormParsed)
{
    util::ArgParser args("test", "test tool");
    args.addFlag("name", "", "value");
    const char *argv[] = {"test", "--name=with=equals"};
    args.parse(2, const_cast<char **>(argv));
    EXPECT_EQ(args.get("name"), "with=equals");
}

TEST(ArgParser, UnknownFlagDies)
{
    util::ArgParser args("test", "test tool");
    args.addFlag("known", "1", "known flag");
    const char *argv[] = {"test", "--bogus", "1"};
    EXPECT_EXIT(args.parse(3, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "unknown flag");
}

TEST(ArgParser, BadIntegerDies)
{
    util::ArgParser args("test", "test tool");
    args.addFlag("n", "1", "an int");
    const char *argv[] = {"test", "--n", "nope"};
    args.parse(3, const_cast<char **>(argv));
    EXPECT_EXIT((void)args.getInt("n"), ::testing::ExitedWithCode(1),
                "expects an integer");
}

TEST(Manifest, SaveLoadRoundTrip)
{
    auto dir = std::filesystem::temp_directory_path() / "hermes_manifest";
    std::filesystem::create_directories(dir);

    tools::Manifest manifest;
    manifest.type = "clustered";
    manifest.num_clusters = 3;
    manifest.dim = 16;
    manifest.codec = "SQ4";
    manifest.cluster_files = {"a.hivf", "b.hivf", "c.hivf"};
    manifest.save(dir);

    auto loaded = tools::Manifest::load(dir);
    EXPECT_EQ(loaded.type, "clustered");
    EXPECT_EQ(loaded.num_clusters, 3u);
    EXPECT_EQ(loaded.dim, 16u);
    EXPECT_EQ(loaded.codec, "SQ4");
    EXPECT_EQ(loaded.cluster_files, manifest.cluster_files);
    std::filesystem::remove_all(dir);
}

TEST(StoreAssembly, ReloadedStoreSearchesIdentically)
{
    workload::CorpusConfig cc;
    cc.num_docs = 3000;
    cc.dim = 16;
    cc.num_topics = 9;
    cc.seed = 61;
    auto corpus = workload::generateCorpus(cc);

    core::HermesConfig config;
    config.num_clusters = 4;
    config.clusters_to_search = 2;
    config.sample_nprobe = 2;
    config.deep_nprobe = 16;
    config.partition.seeds_to_try = 2;
    auto store = core::DistributedStore::build(corpus.embeddings, config);

    // Serialize everything like hermes_build_index does.
    auto dir =
        std::filesystem::temp_directory_path() / "hermes_assembly";
    std::filesystem::create_directories(dir);
    tools::Manifest manifest;
    manifest.num_clusters = store.numClusters();
    manifest.dim = corpus.embeddings.dim();
    corpus.embeddings.save((dir / manifest.corpus_file).string());
    store.centroids().save((dir / manifest.centroids_file).string());
    for (std::size_t c = 0; c < store.numClusters(); ++c) {
        std::string file = "cluster_" + std::to_string(c) + ".hivf";
        store.clusterIndex(c).save((dir / file).string());
        manifest.cluster_files.push_back(file);
    }
    manifest.save(dir);

    auto reloaded = tools::loadStore(dir, tools::Manifest::load(dir),
                                     config);
    EXPECT_EQ(reloaded.numClusters(), store.numClusters());
    EXPECT_EQ(reloaded.totalVectors(), store.totalVectors());

    core::HermesSearch original(store);
    core::HermesSearch restored(reloaded);
    workload::QueryConfig qc;
    qc.num_queries = 16;
    auto queries = workload::generateQueries(corpus, qc);
    for (std::size_t q = 0; q < queries.embeddings.rows(); ++q) {
        auto a = original.search(queries.embeddings.row(q), 5);
        auto b = restored.search(queries.embeddings.row(q), 5);
        ASSERT_EQ(a.hits.size(), b.hits.size());
        for (std::size_t i = 0; i < a.hits.size(); ++i) {
            EXPECT_EQ(a.hits[i].id, b.hits[i].id);
            EXPECT_FLOAT_EQ(a.hits[i].score, b.hits[i].score);
        }
        EXPECT_EQ(a.deep_clusters, b.deep_clusters);
    }
    std::filesystem::remove_all(dir);
}

TEST(StoreAssembly, MismatchedCountsDie)
{
    core::HermesConfig config;
    config.num_clusters = 2;
    config.clusters_to_search = 1;
    std::vector<std::unique_ptr<index::IvfIndex>> none;
    vecstore::Matrix centroids(2, 4);
    EXPECT_DEATH(core::DistributedStore::assemble(config, std::move(none),
                                                  std::move(centroids)),
                 "expected");
}

} // namespace
