/**
 * @file
 * Tests for the Hermes core: distributed store, search strategies,
 * hierarchical routing quality (Fig 11 behaviour), reranking.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/distributed_store.hpp"
#include "core/rerank.hpp"
#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;
using namespace hermes::core;
using hermes::vecstore::Matrix;

/** Shared fixture data: corpus + queries + ground truth + stores. */
struct CoreData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    std::vector<vecstore::HitList> truth;
    HermesConfig config;
    std::unique_ptr<DistributedStore> store;
};

const CoreData &
coreData()
{
    static CoreData data = [] {
        CoreData out;
        workload::CorpusConfig cc;
        cc.num_docs = 6000;
        cc.dim = 24;
        cc.num_topics = 20;
        cc.seed = 17;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 48;
        qc.seed = 18;
        out.queries = workload::generateQueries(out.corpus, qc);
        out.truth = eval::exactGroundTruth(out.corpus.embeddings,
                                           out.queries.embeddings, 5,
                                           vecstore::Metric::L2);

        out.config.num_clusters = 8;
        out.config.clusters_to_search = 3;
        out.config.sample_nprobe = 4;
        out.config.deep_nprobe = 32;
        out.config.docs_to_retrieve = 5;
        out.config.partition.seeds_to_try = 3;
        out.store = std::make_unique<DistributedStore>(
            DistributedStore::build(out.corpus.embeddings, out.config));
        return out;
    }();
    return data;
}

double
strategyNdcg(const SearchStrategy &strategy)
{
    const auto &data = coreData();
    std::vector<vecstore::HitList> results;
    for (std::size_t q = 0; q < data.queries.embeddings.rows(); ++q)
        results.push_back(
            strategy.search(data.queries.embeddings.row(q), 5).hits);
    return eval::meanNdcgAtK(results, data.truth, 5);
}

TEST(DistributedStore, CoversEveryVectorExactlyOnce)
{
    const auto &data = coreData();
    std::set<vecstore::VecId> seen;
    std::size_t total = 0;
    for (std::size_t c = 0; c < data.store->numClusters(); ++c) {
        total += data.store->clusterSize(c);
        for (std::size_t row : data.store->partitioning().members[c]) {
            EXPECT_TRUE(seen.insert(
                static_cast<vecstore::VecId>(row)).second);
        }
    }
    EXPECT_EQ(total, data.corpus.embeddings.rows());
    EXPECT_EQ(data.store->totalVectors(), data.corpus.embeddings.rows());
}

TEST(DistributedStore, CentroidsMatchClusterCount)
{
    const auto &data = coreData();
    EXPECT_EQ(data.store->centroids().rows(), data.store->numClusters());
    EXPECT_EQ(data.store->dim(), data.corpus.embeddings.dim());
    EXPECT_GT(data.store->memoryBytes(), 0u);
}

TEST(HermesConfigValidate, RejectsBadConfigs)
{
    HermesConfig bad;
    bad.clusters_to_search = 20;
    bad.num_clusters = 10;
    EXPECT_DEATH(bad.validate(), "clusters_to_search");

    HermesConfig zero_docs;
    zero_docs.docs_to_retrieve = 0;
    EXPECT_DEATH(zero_docs.validate(), "docs_to_retrieve");
}

TEST(NaiveSplit, MatchesMonolithicQuality)
{
    const auto &data = coreData();
    NaiveSplitSearch split(*data.store);
    MonolithicSearch mono(data.corpus.embeddings, data.config.codec,
                          data.config.deep_nprobe);
    double split_ndcg = strategyNdcg(split);
    double mono_ndcg = strategyNdcg(mono);
    // Searching all shards with the same effort cannot be much worse than
    // the monolithic index (different nlist geometry allows small noise).
    EXPECT_GT(split_ndcg, mono_ndcg - 0.05);
}

TEST(Hermes, ReachesNaiveSplitQualityWithFewClusters)
{
    // The Fig 11 headline: hierarchical search over 3 of 8 clusters is
    // iso-accuracy with searching everything.
    const auto &data = coreData();
    NaiveSplitSearch split(*data.store);
    HermesSearch hermes(*data.store);
    EXPECT_GT(strategyNdcg(hermes), strategyNdcg(split) - 0.03);
}

TEST(Hermes, DeepSearchesExactlyConfiguredClusters)
{
    const auto &data = coreData();
    HermesSearch hermes(*data.store);
    auto result = hermes.search(data.queries.embeddings.row(0), 5);
    EXPECT_EQ(result.deep_clusters.size(), data.config.clusters_to_search);
    // Deep clusters are distinct.
    std::set<std::uint32_t> unique(result.deep_clusters.begin(),
                                   result.deep_clusters.end());
    EXPECT_EQ(unique.size(), result.deep_clusters.size());
}

TEST(Hermes, SampleStatsTouchEveryCluster)
{
    const auto &data = coreData();
    HermesSearch hermes(*data.store);
    auto result = hermes.search(data.queries.embeddings.row(1), 5);
    ASSERT_EQ(result.sample_stats.size(), data.store->numClusters());
    for (const auto &stats : result.sample_stats)
        EXPECT_GT(stats.vectors_scanned, 0u);
    // Deep stats only on the selected clusters.
    std::size_t touched = 0;
    for (const auto &stats : result.deep_stats)
        touched += stats.vectors_scanned > 0;
    EXPECT_EQ(touched, data.config.clusters_to_search);
}

TEST(Hermes, ScansFarFewerVectorsThanNaiveSplit)
{
    const auto &data = coreData();
    HermesSearch hermes(*data.store);
    NaiveSplitSearch split(*data.store);
    auto hermes_result = hermes.search(data.queries.embeddings.row(2), 5);
    auto split_result = split.search(data.queries.embeddings.row(2), 5);
    // The throughput/energy win of Fig 18 comes from this work reduction.
    EXPECT_LT(hermes_result.total.vectors_scanned,
              split_result.total.vectors_scanned);
}

TEST(Hermes, BeatsCentroidRoutingOnRoutingAccuracy)
{
    // Fig 11: document sampling routes better than centroid-only routing
    // at equal clusters searched. Evaluate routing itself: fraction of
    // queries where the chosen clusters contain the true best document.
    const auto &data = coreData();
    HermesSearch hermes(*data.store);
    CentroidRouting centroid(*data.store);

    // Map row -> cluster.
    std::vector<std::uint32_t> cluster_of_row(
        data.corpus.embeddings.rows());
    for (std::size_t c = 0; c < data.store->numClusters(); ++c)
        for (auto row : data.store->partitioning().members[c])
            cluster_of_row[row] = static_cast<std::uint32_t>(c);

    auto routing_hits = [&](const SearchStrategy &strategy) {
        std::size_t hits = 0;
        for (std::size_t q = 0; q < data.queries.embeddings.rows(); ++q) {
            auto result =
                strategy.search(data.queries.embeddings.row(q), 5);
            auto best = static_cast<std::size_t>(data.truth[q][0].id);
            for (auto c : result.deep_clusters)
                hits += c == cluster_of_row[best];
        }
        return hits;
    };
    EXPECT_GE(routing_hits(hermes), routing_hits(centroid));
}

TEST(CentroidRouting, SearchesConfiguredClusterCount)
{
    const auto &data = coreData();
    CentroidRouting centroid(*data.store);
    auto result = centroid.search(data.queries.embeddings.row(3), 5);
    EXPECT_EQ(result.deep_clusters.size(), data.config.clusters_to_search);
}

TEST(Monolithic, SingleClusterTrace)
{
    const auto &data = coreData();
    MonolithicSearch mono(data.corpus.embeddings, "SQ8", 16);
    auto result = mono.search(data.queries.embeddings.row(0), 5);
    EXPECT_EQ(result.deep_clusters, std::vector<std::uint32_t>{0});
    EXPECT_EQ(mono.numClusters(), 1u);
    EXPECT_GT(result.total.vectors_scanned, 0u);
}

TEST(TraceBatch, RecordsMatchQueries)
{
    const auto &data = coreData();
    HermesSearch hermes(*data.store);
    std::vector<vecstore::HitList> results;
    auto trace = hermes.traceBatch(data.queries.embeddings, 5, &results);
    EXPECT_EQ(trace.num_clusters, data.store->numClusters());
    ASSERT_EQ(trace.records.size(), data.queries.embeddings.rows());
    ASSERT_EQ(results.size(), data.queries.embeddings.rows());
    for (std::size_t q = 0; q < trace.records.size(); ++q) {
        EXPECT_EQ(trace.records[q].query, q);
        EXPECT_EQ(trace.records[q].clusters.size(),
                  data.config.clusters_to_search);
    }
}

TEST(TraceBatch, PopularTopicsSkewAccessFrequency)
{
    // Fig 13: Zipf query popularity produces uneven cluster access.
    const auto &data = coreData();
    HermesSearch hermes(*data.store);
    auto trace = hermes.traceBatch(data.queries.embeddings, 5);
    auto counts = trace.accessCounts();
    auto mx = *std::max_element(counts.begin(), counts.end());
    auto mn = *std::min_element(counts.begin(), counts.end());
    EXPECT_GT(mx, mn);
}

TEST(Rerank, OrdersByInnerProduct)
{
    Matrix data(3, 2);
    data.row(0)[0] = 0.1f;
    data.row(1)[0] = 0.9f;
    data.row(2)[0] = 0.5f;
    std::vector<float> query{1.f, 0.f};
    vecstore::HitList hits{{0, 0.f}, {1, 0.f}, {2, 0.f}};
    auto reranked = rerankByInnerProduct(
        data, vecstore::VecView(query.data(), 2), hits);
    ASSERT_EQ(reranked.size(), 3u);
    EXPECT_EQ(reranked[0].id, 1);
    EXPECT_EQ(reranked[1].id, 2);
    EXPECT_EQ(reranked[2].id, 0);
}

TEST(Rerank, EmptyInputIsEmpty)
{
    Matrix data(1, 2);
    std::vector<float> query{1.f, 0.f};
    EXPECT_TRUE(rerankByInnerProduct(
        data, vecstore::VecView(query.data(), 2), {}).empty());
}

} // namespace
