/**
 * @file
 * Tests for K-means, imbalance metrics, and datastore partitioning (§4.1).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "cluster/imbalance.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/partitioner.hpp"
#include "util/rng.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;
using namespace hermes::cluster;
using hermes::util::Rng;
using hermes::vecstore::Matrix;

/** Well-separated blobs: k-means must recover them. */
Matrix
blobs(std::size_t per_blob, std::size_t num_blobs, std::size_t d,
      std::uint64_t seed, std::vector<std::uint32_t> *labels = nullptr)
{
    Rng rng(seed);
    Matrix centers(num_blobs, d);
    for (std::size_t b = 0; b < num_blobs; ++b) {
        auto row = centers.row(b);
        for (std::size_t j = 0; j < d; ++j)
            row[j] = static_cast<float>(rng.gaussian() * 10.0);
    }
    Matrix data(per_blob * num_blobs, d);
    for (std::size_t b = 0; b < num_blobs; ++b) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            auto row = data.row(b * per_blob + i);
            auto c = centers.row(b);
            for (std::size_t j = 0; j < d; ++j)
                row[j] = c[j] + static_cast<float>(rng.gaussian(0.0, 0.3));
            if (labels)
                labels->push_back(static_cast<std::uint32_t>(b));
        }
    }
    return data;
}

TEST(KMeans, ProducesKCentroidsAndValidAssignments)
{
    auto data = blobs(50, 4, 8, 1);
    KMeansConfig config;
    config.k = 4;
    auto result = kmeans(data, config);
    EXPECT_EQ(result.centroids.rows(), 4u);
    EXPECT_EQ(result.assignments.size(), data.rows());
    for (auto a : result.assignments)
        EXPECT_LT(a, 4u);
    std::size_t total = std::accumulate(result.sizes.begin(),
                                        result.sizes.end(), std::size_t{0});
    EXPECT_EQ(total, data.rows());
}

TEST(KMeans, RecoversWellSeparatedBlobs)
{
    std::vector<std::uint32_t> labels;
    auto data = blobs(60, 5, 8, 2, &labels);
    KMeansConfig config;
    config.k = 5;
    auto result = kmeans(data, config);

    // Every k-means cluster should be label-pure for blobs this separated.
    for (std::size_t c = 0; c < 5; ++c) {
        std::set<std::uint32_t> seen;
        for (std::size_t i = 0; i < data.rows(); ++i)
            if (result.assignments[i] == c)
                seen.insert(labels[i]);
        EXPECT_LE(seen.size(), 1u) << "cluster " << c << " is impure";
    }
}

TEST(KMeans, ObjectiveImprovesOverSingleIteration)
{
    auto data = blobs(80, 6, 12, 3);
    KMeansConfig one, many;
    one.k = many.k = 6;
    one.max_iterations = 1;
    many.max_iterations = 20;
    one.seed = many.seed = 7;
    one.use_kmeanspp = many.use_kmeanspp = false;
    EXPECT_LE(kmeans(data, many).objective, kmeans(data, one).objective);
}

TEST(KMeans, DeterministicForFixedSeed)
{
    auto data = blobs(40, 3, 6, 4);
    KMeansConfig config;
    config.k = 3;
    config.seed = 99;
    auto a = kmeans(data, config);
    auto b = kmeans(data, config);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

TEST(KMeans, SubsampledTrainingStillCovers)
{
    auto data = blobs(100, 4, 8, 5);
    KMeansConfig config;
    config.k = 4;
    config.max_training_points = 80; // 20% subsample
    auto result = kmeans(data, config);
    EXPECT_EQ(result.centroids.rows(), 4u);
    // Full-data assignment must still put points in every cluster.
    auto assignments = assignToCentroids(data, result.centroids);
    std::vector<std::size_t> sizes(4, 0);
    for (auto a : assignments)
        sizes[a]++;
    for (auto s : sizes)
        EXPECT_GT(s, 0u);
}

TEST(KMeans, KEqualsNAssignsOnePointEach)
{
    auto data = blobs(1, 6, 4, 6);
    KMeansConfig config;
    config.k = 6;
    auto result = kmeans(data, config);
    for (auto s : result.sizes)
        EXPECT_EQ(s, 1u);
}

TEST(KMeans, NearestCentroidsReturnsSortedPrefix)
{
    auto data = blobs(30, 5, 8, 7);
    KMeansConfig config;
    config.k = 5;
    auto result = kmeans(data, config);
    auto top3 = nearestCentroids(data.row(0), result.centroids, 3);
    ASSERT_EQ(top3.size(), 3u);
    EXPECT_EQ(top3[0], nearestCentroid(data.row(0), result.centroids));
    // Asking for more than k clamps.
    auto top9 = nearestCentroids(data.row(0), result.centroids, 9);
    EXPECT_EQ(top9.size(), 5u);
}

TEST(Imbalance, PerfectBalance)
{
    auto stats = imbalance({10, 10, 10, 10});
    EXPECT_DOUBLE_EQ(stats.max_min_ratio, 1.0);
    EXPECT_DOUBLE_EQ(stats.variance, 0.0);
    EXPECT_NEAR(stats.normalized_entropy, 1.0, 1e-12);
}

TEST(Imbalance, KnownRatio)
{
    auto stats = imbalance({20, 10});
    EXPECT_DOUBLE_EQ(stats.max_min_ratio, 2.0);
    EXPECT_DOUBLE_EQ(stats.variance, 25.0);
    EXPECT_LT(stats.normalized_entropy, 1.0);
}

TEST(Imbalance, EmptyClusterIsInfiniteRatio)
{
    auto stats = imbalance({5, 0, 5});
    EXPECT_TRUE(std::isinf(stats.max_min_ratio));
}

TEST(Imbalance, SeedSearchPicksBestCandidate)
{
    hermes::workload::CorpusConfig cc;
    cc.num_docs = 3000;
    cc.dim = 16;
    cc.num_topics = 12;
    cc.seed = 31;
    auto corpus = hermes::workload::generateCorpus(cc);

    auto result = findBalancedSeed(corpus.embeddings, 6, 6, 100, 0.25);
    ASSERT_EQ(result.all_ratios.size(), 6u);
    double best = *std::min_element(result.all_ratios.begin(),
                                    result.all_ratios.end());
    EXPECT_DOUBLE_EQ(result.best_ratio, best);
    EXPECT_GE(result.best_seed, 100u);
    EXPECT_LT(result.best_seed, 106u);
}

/** Every partition scheme covers each row exactly once. */
class PartitionSchemes : public ::testing::TestWithParam<PartitionScheme>
{
};

TEST_P(PartitionSchemes, ExactCoverage)
{
    auto data = blobs(40, 5, 8, 8);
    PartitionConfig config;
    config.num_partitions = 5;
    config.scheme = GetParam();
    config.seeds_to_try = 2;
    auto partitioning = partition(data, config);

    ASSERT_EQ(partitioning.members.size(), 5u);
    std::vector<int> seen(data.rows(), 0);
    for (const auto &members : partitioning.members)
        for (auto idx : members)
            seen[idx]++;
    for (int s : seen)
        EXPECT_EQ(s, 1);
    EXPECT_EQ(partitioning.centroids.rows(), 5u);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionSchemes,
                         ::testing::Values(PartitionScheme::Similarity,
                                           PartitionScheme::RoundRobin,
                                           PartitionScheme::Contiguous));

TEST(Partitioner, SimilarityGroupsTopicMates)
{
    std::vector<std::uint32_t> labels;
    auto data = blobs(60, 6, 10, 9, &labels);
    PartitionConfig config;
    config.num_partitions = 6;
    config.scheme = PartitionScheme::Similarity;
    config.seeds_to_try = 3;
    auto partitioning = partition(data, config);

    // Blob purity: each partition should be dominated by one label.
    double pure = 0, total = 0;
    for (const auto &members : partitioning.members) {
        std::vector<std::size_t> counts(6, 0);
        for (auto idx : members)
            counts[labels[idx]]++;
        pure += static_cast<double>(
            *std::max_element(counts.begin(), counts.end()));
        total += static_cast<double>(members.size());
    }
    EXPECT_GT(pure / total, 0.95);
}

TEST(Partitioner, RoundRobinIsNearlyPerfectlyBalanced)
{
    auto data = blobs(41, 5, 6, 10); // 205 rows over 5 partitions
    PartitionConfig config;
    config.num_partitions = 5;
    config.scheme = PartitionScheme::RoundRobin;
    auto partitioning = partition(data, config);
    EXPECT_LE(partitioning.imbalance.max_min_ratio, 1.03);
}

TEST(Partitioner, SimilarityImbalanceReflectsTopicSkew)
{
    // Zipf-skewed topics make similarity clusters uneven (Fig 13),
    // round-robin stays balanced on the same data.
    hermes::workload::CorpusConfig cc;
    cc.num_docs = 4000;
    cc.dim = 16;
    cc.num_topics = 10;
    cc.topic_zipf = 1.0;
    cc.seed = 77;
    auto corpus = hermes::workload::generateCorpus(cc);

    PartitionConfig sim_config;
    sim_config.num_partitions = 10;
    sim_config.scheme = PartitionScheme::Similarity;
    sim_config.seeds_to_try = 3;
    auto sim_parts = partition(corpus.embeddings, sim_config);

    PartitionConfig rr_config = sim_config;
    rr_config.scheme = PartitionScheme::RoundRobin;
    auto rr_parts = partition(corpus.embeddings, rr_config);

    EXPECT_GT(sim_parts.imbalance.max_min_ratio,
              rr_parts.imbalance.max_min_ratio);
}

} // namespace
