/**
 * @file
 * Tests for the net:: transport (deadline I/O, framing, wire codec),
 * the shard RPC protocol, the out-of-process serving path (ShardServer
 * + RemoteNodeClient, including broker-level bit-parity with the
 * in-process path), and regression coverage for the HTTP exporter's
 * socket-layer fixes.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "core/distributed_store.hpp"
#include "net/frame.hpp"
#include "net/net.hpp"
#include "net/wire.hpp"
#include "obs/exporter.hpp"
#include "serve/broker.hpp"
#include "serve/remote_node.hpp"
#include "serve/replica_map.hpp"
#include "serve/rpc.hpp"
#include "serve/shard_server.hpp"
#include "util/minijson.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

/** Listener + connected client/server socket pair on loopback. */
struct Loopback
{
    net::Listener listener;
    net::Socket client;
    net::Socket server;

    Loopback()
    {
        std::string error;
        EXPECT_TRUE(listener.open("127.0.0.1", 0, 16, &error)) << error;
        client = net::connectTo("127.0.0.1", listener.port(), 1000.0,
                                &error);
        EXPECT_TRUE(client.valid()) << error;
        server = listener.acceptFor(1000.0);
        EXPECT_TRUE(server.valid());
    }
};

/** Shared corpus/store for the serving-over-the-wire tests. */
struct NetServeData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const NetServeData &
netServeData()
{
    static NetServeData data = [] {
        NetServeData out;
        workload::CorpusConfig cc;
        cc.num_docs = 4000;
        cc.dim = 16;
        cc.num_topics = 12;
        cc.seed = 77;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 32;
        qc.seed = 78;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 6;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 16;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

} // namespace

// ---------------------------------------------------------------------------
// Wire codec

TEST(Wire, RoundTrip)
{
    net::WireWriter writer;
    writer.u8(7);
    writer.u32(0xdeadbeefu);
    writer.u64(0x0123456789abcdefull);
    writer.i64(-42);
    writer.f32(1.5f);
    writer.f64(-2.25);
    writer.str("hello");
    std::vector<float> floats = {0.0f, -1.0f, 3.25f};
    writer.floats(floats.data(), floats.size());
    std::string payload = writer.take();

    net::WireReader reader(payload);
    EXPECT_EQ(reader.u8(), 7u);
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(reader.i64(), -42);
    EXPECT_EQ(reader.f32(), 1.5f);
    EXPECT_EQ(reader.f64(), -2.25);
    EXPECT_EQ(reader.str(), "hello");
    EXPECT_EQ(reader.floats(), floats);
    EXPECT_TRUE(reader.atEnd());
    EXPECT_NO_THROW(reader.expectEnd());
}

TEST(Wire, TruncationAndTrailingGarbageThrow)
{
    net::WireWriter writer;
    writer.u64(1);
    writer.str("payload");
    std::string payload = writer.take();

    // Every proper prefix must throw, never decode short.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
        net::WireReader reader(
            std::string_view(payload.data(), cut));
        EXPECT_THROW(
            {
                reader.u64();
                reader.str();
            },
            net::WireError)
            << "prefix length " << cut;
    }

    std::string padded = payload + '\0';
    net::WireReader reader(padded);
    reader.u64();
    reader.str();
    EXPECT_THROW(reader.expectEnd(), net::WireError);
}

TEST(Wire, FloatCountOverflowThrowsInsteadOfAllocating)
{
    // A count chosen so n * sizeof(float) wraps mod 2^64 to 4: the old
    // need(n * 4) check passed, then std::vector<float>(n) threw
    // length_error — which escaped WireError-only catches and
    // std::terminate'd the connection thread. It must be a WireError
    // raised before any allocation is sized from n.
    net::WireWriter writer;
    writer.u64((1ull << 62) + 1);
    writer.f32(0.0f); // the 4 "available" bytes the wrapped check saw
    net::WireReader reader(writer.buffer());
    EXPECT_THROW(reader.floats(), net::WireError);

    // A huge non-wrapping count must also be rejected pre-allocation.
    net::WireWriter big;
    big.u64(0xffffffffffffffffull);
    net::WireReader big_reader(big.buffer());
    EXPECT_THROW(big_reader.floats(), net::WireError);
}

// ---------------------------------------------------------------------------
// Framing

TEST(Frame, RoundTripOverLoopback)
{
    Loopback pair;
    std::string payload = "framed payload";
    ASSERT_EQ(net::sendFrame(pair.client, 3, 99, payload,
                             net::Deadline::after(1000.0)),
              net::IoStatus::Ok);

    net::Frame frame;
    ASSERT_EQ(net::recvFrame(pair.server, frame,
                             net::Deadline::after(1000.0)),
              net::IoStatus::Ok);
    EXPECT_EQ(frame.type, 3u);
    EXPECT_EQ(frame.id, 99u);
    EXPECT_EQ(frame.payload, payload);
}

TEST(Frame, LargePayloadSurvivesShortWrites)
{
    Loopback pair;
    // Well past any socket buffer, so writeAll must take many partial
    // sends and poll for writability in between.
    std::string payload(8u << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 2654435761u >> 16);

    std::thread sender([&] {
        EXPECT_EQ(net::sendFrame(pair.client, 1, 7, payload,
                                 net::Deadline::after(10000.0)),
                  net::IoStatus::Ok);
    });
    net::Frame frame;
    ASSERT_EQ(net::recvFrame(pair.server, frame,
                             net::Deadline::after(10000.0)),
              net::IoStatus::Ok);
    sender.join();
    ASSERT_EQ(frame.payload.size(), payload.size());
    EXPECT_EQ(frame.payload, payload);
}

TEST(Frame, TornFrameIsClosedNotShortOk)
{
    Loopback pair;
    // A valid header promising 100 bytes, then only 10 and a close.
    std::string torn;
    auto putU32 = [&](std::uint32_t v) {
        char buf[4];
        std::memcpy(buf, &v, 4);
        torn.append(buf, 4);
    };
    auto putU64 = [&](std::uint64_t v) {
        char buf[8];
        std::memcpy(buf, &v, 8);
        torn.append(buf, 8);
    };
    putU32(net::kFrameMagic);
    putU32(1);
    putU64(5);
    putU64(100);
    torn.append(10, 'x');
    ASSERT_TRUE(net::writeAll(pair.client, torn.data(), torn.size(),
                              net::Deadline::after(1000.0))
                    .ok());
    pair.client.close();

    net::Frame frame;
    EXPECT_EQ(net::recvFrame(pair.server, frame,
                             net::Deadline::after(1000.0)),
              net::IoStatus::Closed);
}

TEST(Frame, BadMagicAndOversizedLengthAreErrors)
{
    {
        Loopback pair;
        std::string garbage(net::kFrameHeaderBytes, '\x5a');
        ASSERT_TRUE(net::writeAll(pair.client, garbage.data(),
                                  garbage.size(),
                                  net::Deadline::after(1000.0))
                        .ok());
        net::Frame frame;
        EXPECT_EQ(net::recvFrame(pair.server, frame,
                                 net::Deadline::after(1000.0)),
                  net::IoStatus::Error);
    }
    {
        Loopback pair;
        std::string header;
        auto putU32 = [&](std::uint32_t v) {
            char buf[4];
            std::memcpy(buf, &v, 4);
            header.append(buf, 4);
        };
        auto putU64 = [&](std::uint64_t v) {
            char buf[8];
            std::memcpy(buf, &v, 8);
            header.append(buf, 8);
        };
        putU32(net::kFrameMagic);
        putU32(1);
        putU64(1);
        putU64(1u << 20); // over the 64 KiB cap below
        ASSERT_TRUE(net::writeAll(pair.client, header.data(),
                                  header.size(),
                                  net::Deadline::after(1000.0))
                        .ok());
        net::Frame frame;
        EXPECT_EQ(net::recvFrame(pair.server, frame,
                                 net::Deadline::after(1000.0),
                                 /*max_payload=*/64u << 10),
                  net::IoStatus::Error);
    }
}

TEST(Frame, DeadlineExpiryIsTimeout)
{
    Loopback pair;
    auto start = std::chrono::steady_clock::now();
    net::Frame frame;
    EXPECT_EQ(net::recvFrame(pair.server, frame,
                             net::Deadline::after(50.0)),
              net::IoStatus::Timeout);
    double waited_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_GE(waited_ms, 40.0);
    EXPECT_LE(waited_ms, 2000.0);
}

// ---------------------------------------------------------------------------
// EINTR robustness

namespace {
void
noopHandler(int)
{
}
} // namespace

TEST(Net, TransferSurvivesSignalStorm)
{
    // Install a SIGUSR1 handler WITHOUT SA_RESTART, so every signal
    // makes blocking syscalls fail with EINTR — the regression the old
    // exporter write loop had.
    struct sigaction action{};
    struct sigaction previous{};
    action.sa_handler = noopHandler;
    action.sa_flags = 0;
    sigemptyset(&action.sa_mask);
    ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

    Loopback pair;
    std::string payload(4u << 20, '\0');
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<char>(i * 40503u >> 8);

    std::atomic<bool> sender_done{false};
    std::atomic<bool> receiver_done{false};
    std::string received;
    std::thread sender([&] {
        EXPECT_EQ(net::sendFrame(pair.client, 1, 1, payload,
                                 net::Deadline::after(15000.0)),
                  net::IoStatus::Ok);
        sender_done.store(true);
    });
    std::thread receiver([&] {
        net::Frame frame;
        EXPECT_EQ(net::recvFrame(pair.server, frame,
                                 net::Deadline::after(15000.0)),
                  net::IoStatus::Ok);
        received = std::move(frame.payload);
        receiver_done.store(true);
    });
    // Handles taken on this thread, before the storm starts — no
    // cross-thread handoff to race on. Signaling stops before the
    // joins below, so the handles are live (or zombie, which
    // pthread_kill tolerates) for every kill.
    pthread_t sender_thread = sender.native_handle();
    pthread_t receiver_thread = receiver.native_handle();

    std::thread storm([&] {
        // Hammer both I/O threads with signals for the whole transfer.
        while (!sender_done.load() || !receiver_done.load()) {
            if (!sender_done.load())
                pthread_kill(sender_thread, SIGUSR1);
            if (!receiver_done.load())
                pthread_kill(receiver_thread, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });

    storm.join();
    sender.join();
    receiver.join();
    sigaction(SIGUSR1, &previous, nullptr);

    EXPECT_EQ(received, payload);
}

TEST(Net, AcceptForNonPositiveTimeoutPollsWithoutBlocking)
{
    net::Listener listener;
    std::string error;
    ASSERT_TRUE(listener.open("127.0.0.1", 0, 16, &error)) << error;

    // Contract: acceptFor(<= 0) is a non-blocking poll. It used to
    // feed 0 into Deadline::after(), which reads <= 0 as infinite and
    // blocked in poll() forever.
    auto start = std::chrono::steady_clock::now();
    net::Socket none = listener.acceptFor(0.0);
    double elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    EXPECT_FALSE(none.valid());
    EXPECT_LT(elapsed_ms, 1000.0);

    // With a connection pending, the zero-timeout poll must accept it.
    net::Socket client =
        net::connectTo("127.0.0.1", listener.port(), 1000.0, &error);
    ASSERT_TRUE(client.valid()) << error;
    net::Socket accepted;
    for (int i = 0; i < 200 && !accepted.valid(); ++i) {
        accepted = listener.acceptFor(0.0);
        if (!accepted.valid())
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(accepted.valid());
}

// ---------------------------------------------------------------------------
// RPC codec

TEST(Rpc, SearchRequestRoundTrip)
{
    serve::rpc::SearchRequest request;
    request.k = 7;
    request.params.nprobe = 9;
    request.params.ef_search = 33;
    request.params.prune_ratio = 0.75;
    request.params.batch_min_scan_floats = 4096;
    request.deadline_ms = 1234.5;
    request.query = {1.0f, -2.0f, 0.25f};

    auto decoded = serve::rpc::decodeSearchRequest(
        serve::rpc::encodeSearchRequest(request));
    EXPECT_EQ(decoded.k, request.k);
    EXPECT_EQ(decoded.params.nprobe, request.params.nprobe);
    EXPECT_EQ(decoded.params.ef_search, request.params.ef_search);
    EXPECT_EQ(decoded.params.prune_ratio, request.params.prune_ratio);
    EXPECT_EQ(decoded.params.batch_min_scan_floats,
              request.params.batch_min_scan_floats);
    EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
    EXPECT_EQ(decoded.query, request.query);
}

TEST(Rpc, ResponsesAndErrorsRoundTrip)
{
    serve::NodeResponse response;
    response.hits.push_back({42, 0.125f});
    response.hits.push_back({7, -3.5f});
    response.stats.vectors_scanned = 100;
    response.stats.lists_probed = 4;

    auto decoded = serve::rpc::decodeSearchResponse(
        serve::rpc::encodeSearchResponse(response));
    ASSERT_EQ(decoded.hits.size(), 2u);
    EXPECT_EQ(decoded.hits[0].id, 42);
    EXPECT_EQ(decoded.hits[0].score, 0.125f);
    EXPECT_EQ(decoded.hits[1].id, 7);
    EXPECT_EQ(decoded.hits[1].score, -3.5f);
    EXPECT_EQ(decoded.stats.vectors_scanned, 100u);
    EXPECT_EQ(decoded.stats.lists_probed, 4u);

    auto batch = serve::rpc::decodeSearchBatchResponse(
        serve::rpc::encodeSearchBatchResponse({response, response}));
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[1].hits.size(), 2u);

    auto error = serve::rpc::decodeError(serve::rpc::encodeError(
        serve::rpc::ErrorCode::Timeout, "deadline blown"));
    EXPECT_EQ(error.code, serve::rpc::ErrorCode::Timeout);
    EXPECT_EQ(error.message, "deadline blown");
}

TEST(Rpc, DecodeRejectsTruncatedAndTrailingBytes)
{
    serve::rpc::SearchRequest request;
    request.k = 3;
    request.query = {1.0f, 2.0f};
    std::string payload = serve::rpc::encodeSearchRequest(request);

    EXPECT_THROW(serve::rpc::decodeSearchRequest(
                     std::string_view(payload.data(), payload.size() - 1)),
                 net::WireError);
    EXPECT_THROW(serve::rpc::decodeSearchRequest(payload + 'x'),
                 net::WireError);
}

TEST(Rpc, DecodeBoundsClaimedCountsByPayloadSize)
{
    // Hit/response counts are untrusted u32s off the wire; a claim of
    // ~4e9 elements over a tiny payload must throw WireError before
    // reserve() attempts a multi-GB allocation (bad_alloc previously
    // escaped the WireError-only catches on broker worker threads).
    net::WireWriter hits;
    hits.u32(0xfffffffeu);
    hits.i64(3);
    hits.f32(1.0f);
    EXPECT_THROW(serve::rpc::decodeSearchResponse(hits.buffer()),
                 net::WireError);

    net::WireWriter batch;
    batch.u32(0xfffffffeu);
    EXPECT_THROW(serve::rpc::decodeSearchBatchResponse(batch.buffer()),
                 net::WireError);
}

// ---------------------------------------------------------------------------
// Shard server + remote client

TEST(ShardRpc, RemoteSearchMatchesDirectShard)
{
    const auto &data = netServeData();
    const auto &shard = data.store->clusterIndex(0);
    serve::ShardServer server(shard, {});
    ASSERT_TRUE(server.start());

    serve::RemoteNodeOptions options;
    options.port = server.port();
    serve::RemoteNodeClient client(options);

    serve::rpc::HealthResponse health;
    ASSERT_TRUE(client.health(&health));
    EXPECT_EQ(health.protocol_version, serve::rpc::kProtocolVersion);
    EXPECT_EQ(health.dim, 16u);
    EXPECT_EQ(health.shard_vectors, shard.size());
    EXPECT_EQ(client.shardSize(), shard.size());

    index::SearchParams params;
    params.nprobe = 8;
    for (std::size_t q = 0; q < 8; ++q) {
        auto remote =
            client.submit(data.queries.embeddings.row(q), 5, params)
                .get();
        auto direct =
            shard.search(data.queries.embeddings.row(q), 5, params);
        ASSERT_EQ(remote.hits.size(), direct.size());
        for (std::size_t i = 0; i < direct.size(); ++i) {
            EXPECT_EQ(remote.hits[i].id, direct[i].id);
            EXPECT_EQ(remote.hits[i].score, direct[i].score);
        }
    }

    auto stats = client.stats();
    EXPECT_EQ(stats.requests, 8u);
    server.stop();
}

TEST(ShardRpc, ConcurrentSubmitsCoalesceIntoBatchRpcs)
{
    const auto &data = netServeData();
    const auto &shard = data.store->clusterIndex(1);
    serve::ShardServer server(shard, {});
    ASSERT_TRUE(server.start());

    serve::RemoteNodeOptions options;
    options.port = server.port();
    options.connections = 1; // one wire => queue backs up => coalescing
    serve::RemoteNodeClient client(options);

    index::SearchParams params;
    params.nprobe = 4;
    std::vector<std::future<serve::NodeResponse>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(client.submit(
            data.queries.embeddings.row(i % 32), 3, params));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        auto remote = futures[i].get();
        auto direct = shard.search(
            data.queries.embeddings.row(i % 32), 3, params);
        ASSERT_EQ(remote.hits.size(), direct.size());
        for (std::size_t j = 0; j < direct.size(); ++j) {
            EXPECT_EQ(remote.hits[j].id, direct[j].id);
            EXPECT_EQ(remote.hits[j].score, direct[j].score);
        }
    }

    auto cs = client.clientStats();
    EXPECT_GT(cs.batched_rpcs, 0u) << "no SearchBatch RPC ever formed";
    EXPECT_GT(cs.batched_requests, cs.batched_rpcs);
    EXPECT_EQ(cs.transport_failures, 0u);
    EXPECT_EQ(cs.remote_errors, 0u);
    server.stop();
}

TEST(ShardRpc, PeerDisconnectMidResponseFailsTheFuture)
{
    // A fake shard that accepts, reads the request frame, then hangs up
    // without answering — the client must fail the future (broker
    // semantics: counted failure, retried), not hang or crash.
    net::Listener listener;
    ASSERT_TRUE(listener.open("127.0.0.1", 0));
    std::thread fake([&] {
        for (int i = 0; i < 2; ++i) {
            net::Socket conn = listener.acceptFor(5000.0);
            if (!conn.valid())
                continue;
            net::Frame frame;
            net::recvFrame(conn, frame, net::Deadline::after(2000.0));
            conn.close(); // mid-RPC hangup
        }
    });

    serve::RemoteNodeOptions options;
    options.port = listener.port();
    options.connections = 1;
    options.request_deadline_ms = 1000.0;
    serve::RemoteNodeClient client(options);

    std::vector<float> query(16, 0.5f);
    index::SearchParams params;
    auto future = client.submit(
        vecstore::VecView(query.data(), query.size()), 3, params);
    EXPECT_THROW(future.get(), std::exception);
    fake.join();
}

TEST(ShardRpc, ClientReconnectsAfterShardRestart)
{
    const auto &data = netServeData();
    const auto &shard = data.store->clusterIndex(2);

    auto server = std::make_unique<serve::ShardServer>(
        shard, serve::ShardServerOptions{});
    ASSERT_TRUE(server->start());
    std::uint16_t port = server->port();

    serve::RemoteNodeOptions options;
    options.port = port;
    options.connections = 1;
    options.request_deadline_ms = 1000.0;
    serve::RemoteNodeClient client(options);

    index::SearchParams params;
    params.nprobe = 4;
    auto query = data.queries.embeddings.row(0);
    auto before = client.submit(query, 3, params).get();

    // Kill the shard: in-flight/new requests fail (the broker would
    // count failures and degrade) ...
    server->stop();
    server.reset();
    EXPECT_THROW(client.submit(query, 3, params).get(), std::exception);

    // ... and a restart on the same port is picked up by the client's
    // dial-on-demand without any explicit reset.
    serve::ShardServerOptions reopts;
    reopts.port = port;
    server = std::make_unique<serve::ShardServer>(shard, reopts);
    ASSERT_TRUE(server->start());

    serve::NodeResponse after;
    bool recovered = false;
    for (int attempt = 0; attempt < 5 && !recovered; ++attempt) {
        try {
            after = client.submit(query, 3, params).get();
            recovered = true;
        } catch (const std::exception &) {
        }
    }
    ASSERT_TRUE(recovered);
    ASSERT_EQ(after.hits.size(), before.hits.size());
    for (std::size_t i = 0; i < after.hits.size(); ++i) {
        EXPECT_EQ(after.hits[i].id, before.hits[i].id);
        EXPECT_EQ(after.hits[i].score, before.hits[i].score);
    }
    EXPECT_GT(client.clientStats().reconnects, 0u);
    server->stop();
}

TEST(ShardRpc, OverflowingLengthPrefixAnsweredAsBadRequest)
{
    // Regression for the wire-codec overflow: a crafted SearchRequest
    // whose float-count prefix wraps n * sizeof(float) mod 2^64 used
    // to throw std::length_error past the WireError-only catch in
    // dispatch(), escaping the connection thread and std::terminate'ing
    // the shard process. It must answer BadRequest and keep serving.
    const auto &data = netServeData();
    const auto &shard = data.store->clusterIndex(0);
    serve::ShardServer server(shard, {});
    ASSERT_TRUE(server.start());

    std::string error;
    net::Socket client =
        net::connectTo("127.0.0.1", server.port(), 1000.0, &error);
    ASSERT_TRUE(client.valid()) << error;

    net::WireWriter evil;
    evil.u64(1);                // k
    evil.u64(1);                // nprobe
    evil.u64(0);                // ef_search
    evil.f64(0.0);              // prune_ratio
    evil.u64(0);                // batch_min_scan_floats
    evil.f64(0.0);              // deadline_ms
    evil.u64((1ull << 62) + 1); // query float count: * 4 wraps to 4
    evil.f32(0.0f);
    ASSERT_EQ(net::sendFrame(
                  client,
                  static_cast<std::uint32_t>(
                      serve::rpc::Type::SearchRequest),
                  7, evil.buffer(), net::Deadline::after(1000.0)),
              net::IoStatus::Ok);

    net::Frame reply;
    ASSERT_EQ(net::recvFrame(client, reply, net::Deadline::after(5000.0)),
              net::IoStatus::Ok);
    ASSERT_EQ(static_cast<serve::rpc::Type>(reply.type),
              serve::rpc::Type::ErrorResponse);
    EXPECT_EQ(serve::rpc::decodeError(reply.payload).code,
              serve::rpc::ErrorCode::BadRequest);

    // Same connection, well-formed request: the shard must still serve.
    serve::rpc::SearchRequest request;
    request.k = 3;
    request.params.nprobe = 1;
    request.query.assign(shard.dim(), 0.0f);
    ASSERT_EQ(net::sendFrame(
                  client,
                  static_cast<std::uint32_t>(
                      serve::rpc::Type::SearchRequest),
                  8, serve::rpc::encodeSearchRequest(request),
                  net::Deadline::after(1000.0)),
              net::IoStatus::Ok);
    ASSERT_EQ(net::recvFrame(client, reply, net::Deadline::after(5000.0)),
              net::IoStatus::Ok);
    EXPECT_EQ(static_cast<serve::rpc::Type>(reply.type),
              serve::rpc::Type::SearchResponse);
    EXPECT_EQ(reply.id, 8u);
    server.stop();
}

TEST(ShardRpc, FinishedConnectionHandlersAreReaped)
{
    // A long-lived shard serving many short connections must join
    // handler threads as they finish, not hoard them until stop().
    const auto &data = netServeData();
    const auto &shard = data.store->clusterIndex(0);
    serve::ShardServer server(shard, {});
    ASSERT_TRUE(server.start());

    constexpr int kConnections = 4;
    for (int i = 0; i < kConnections; ++i) {
        std::string error;
        net::Socket client =
            net::connectTo("127.0.0.1", server.port(), 1000.0, &error);
        ASSERT_TRUE(client.valid()) << error;
        client.close();
    }

    // Handlers notice the close within an idle tick (~100 ms) and the
    // accept loop reaps on its next tick.
    bool reaped = false;
    for (int i = 0; i < 100 && !reaped; ++i) {
        reaped = server.stats().connections_reaped >= kConnections;
        if (!reaped)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    EXPECT_TRUE(reaped) << "reaped " << server.stats().connections_reaped
                        << " of " << kConnections;
    server.stop();
}

TEST(ShardRpc, BrokerBitParityInProcessVsRemote)
{
    const auto &data = netServeData();

    // One ShardServer per cluster, a RemoteNodeClient each, and a
    // broker on top — against the reference broker over in-process
    // nodes on the same store. Hit lists must match bit for bit.
    std::vector<std::unique_ptr<serve::ShardServer>> servers;
    std::vector<std::unique_ptr<serve::NodeClient>> remotes;
    for (std::size_t c = 0; c < data.store->numClusters(); ++c) {
        serve::ShardServerOptions options;
        options.node.node_id = c;
        servers.push_back(std::make_unique<serve::ShardServer>(
            data.store->clusterIndex(c), options));
        ASSERT_TRUE(servers.back()->start());

        serve::RemoteNodeOptions ro;
        ro.port = servers.back()->port();
        ro.request_deadline_ms = 2000.0;
        remotes.push_back(
            std::make_unique<serve::RemoteNodeClient>(ro));
    }

    serve::HermesBroker local(*data.store, {});
    serve::HermesBroker remote(data.config, std::move(remotes), {});

    for (std::size_t q = 0; q < 16; ++q) {
        auto query = data.queries.embeddings.row(q);
        auto expect = local.search(query, 10);
        auto got = remote.search(query, 10);
        ASSERT_EQ(got.size(), expect.size()) << "query " << q;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i].id, expect[i].id) << "query " << q;
            EXPECT_EQ(got[i].score, expect[i].score) << "query " << q;
        }
    }

    auto stats = remote.stats();
    EXPECT_EQ(stats.queries, 16u);
    EXPECT_EQ(stats.failures, 0u);
    EXPECT_EQ(stats.timeouts, 0u);
    for (auto &server : servers)
        server->stop();
}

TEST(ShardRpc, ReplicatedRemoteBrokerParityAndFailover)
{
    const auto &data = netServeData();

    // Fleet: one ShardServer per cluster plus a second, bit-identical
    // copy of cluster 1 (same immutable shard, node index 6). The
    // broker's replica map routes cluster 1 over both copies via p2c.
    std::vector<std::unique_ptr<serve::ShardServer>> servers;
    std::vector<std::unique_ptr<serve::NodeClient>> remotes;
    auto addServer = [&](std::size_t cluster) {
        serve::ShardServerOptions options;
        options.node.node_id = cluster;
        servers.push_back(std::make_unique<serve::ShardServer>(
            data.store->clusterIndex(cluster), options));
        ASSERT_TRUE(servers.back()->start());
        serve::RemoteNodeOptions ro;
        ro.port = servers.back()->port();
        ro.request_deadline_ms = 1000.0;
        remotes.push_back(std::make_unique<serve::RemoteNodeClient>(ro));
    };
    for (std::size_t c = 0; c < data.store->numClusters(); ++c)
        addServer(c);
    addServer(1); // replica of cluster 1

    serve::BrokerConfig bc;
    bc.replica_map = serve::ReplicaMap::identity(data.store->numClusters());
    bc.replica_map.assign(1, 6);
    bc.node_deadline_ms = 1500.0;
    bc.max_retries = 1;
    bc.hedge.min_samples = 4;
    serve::HermesBroker local(*data.store, {});
    serve::HermesBroker remote(data.config, std::move(remotes), bc);

    auto expectParity = [&](std::size_t q) {
        auto query = data.queries.embeddings.row(q);
        auto expect = local.search(query, 10);
        auto got = remote.search(query, 10);
        ASSERT_EQ(got.size(), expect.size()) << "query " << q;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(got[i].id, expect[i].id) << "query " << q;
            EXPECT_EQ(got[i].score, expect[i].score) << "query " << q;
        }
    };

    for (std::size_t q = 0; q < 12; ++q)
        expectParity(q);

    // Kill the replica mid-run (SIGKILL equivalent: server torn down,
    // connections die). Every later query must still return the full,
    // bit-identical top-k off the surviving copy — routed-to-dead
    // probes fail fast or time out and fail over.
    servers.back()->stop();
    for (std::size_t q = 12; q < 24; ++q)
        expectParity(q);

    // Queries that hit the dead copy count failures/timeouts (and are
    // flagged degraded — that flag means "saw a fault", not "lost
    // hits"), but every one of them recovered to the full top-k above.
    auto stats = remote.stats();
    EXPECT_EQ(stats.queries, 24u);
    EXPECT_GT(stats.failures + stats.timeouts, 0u);
    ASSERT_EQ(stats.node_clusters.size(), 7u);
    EXPECT_EQ(stats.node_clusters[6], 1u);
    for (auto &server : servers)
        server->stop();
}

// ---------------------------------------------------------------------------
// HTTP exporter regressions

namespace {

/** Raw one-shot HTTP exchange against the exporter. */
std::string
rawHttpExchange(std::uint16_t port, const std::string &request)
{
    net::Socket socket = net::connectTo("127.0.0.1", port, 1000.0);
    EXPECT_TRUE(socket.valid());
    EXPECT_TRUE(net::writeAll(socket, request.data(), request.size(),
                              net::Deadline::after(1000.0))
                    .ok());
    std::string response;
    char buf[4096];
    for (;;) {
        auto got = net::readSome(socket, buf, sizeof(buf),
                                 net::Deadline::after(3000.0));
        if (!got.ok())
            break;
        response.append(buf, got.bytes);
    }
    return response;
}

} // namespace

TEST(HttpExporter, BareLfRequestHeadIsServed)
{
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());
    std::string response = rawHttpExchange(
        exporter.port(), "GET /healthz HTTP/1.0\nHost: x\n\n");
    EXPECT_NE(response.find(" 200 "), std::string::npos) << response;
    EXPECT_NE(response.find("ok"), std::string::npos);
    exporter.stop();
}

TEST(HttpExporter, OversizedHeadGets400)
{
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());
    std::string request = "GET /healthz HTTP/1.0\r\nX-Pad: " +
        std::string(10000, 'a') + "\r\n\r\n";
    std::string response = rawHttpExchange(exporter.port(), request);
    EXPECT_NE(response.find(" 400 "), std::string::npos) << response;
    exporter.stop();
}

TEST(HttpExporter, GarbageHeadGets400)
{
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());
    std::string response = rawHttpExchange(
        exporter.port(), std::string("\x01\x02\x03 binary\r\n\r\n"));
    EXPECT_NE(response.find(" 400 "), std::string::npos) << response;
    exporter.stop();
}

TEST(HttpExporter, NotFoundHeadIsPlainTextWithJsonBody)
{
    // The 404 contract: a text/plain head (curl prints it as-is) whose
    // body is still machine-parseable JSON naming the bad path.
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());
    std::string response = rawHttpExchange(
        exporter.port(), "GET /no-such-route HTTP/1.0\r\nHost: x\r\n\r\n");
    EXPECT_NE(response.find(" 404 "), std::string::npos) << response;
    EXPECT_NE(response.find("Content-Type: text/plain"),
              std::string::npos)
        << response;
    std::size_t body_at = response.find("\r\n\r\n");
    ASSERT_NE(body_at, std::string::npos);
    auto parsed = util::json::parse(response.substr(body_at + 4));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.value.find("error")->stringOr(""), "unknown path");
    EXPECT_EQ(parsed.value.find("path")->stringOr(""), "/no-such-route");
    exporter.stop();
}

TEST(HttpExporter, HttpGetRoundTripAgainstExporter)
{
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());
    std::string body;
    std::string status;
    ASSERT_TRUE(obs::httpGet("127.0.0.1", exporter.port(), "/healthz",
                             &body, &status));
    EXPECT_EQ(body, "ok\n"); // exact: Content-Length honored
    EXPECT_NE(status.find("200"), std::string::npos);
    exporter.stop();
}

TEST(HttpExporter, HttpGetRejectsTruncatedBody)
{
    // A server that advertises 100 bytes, sends 10, and hangs up.
    net::Listener listener;
    ASSERT_TRUE(listener.open("127.0.0.1", 0));
    std::thread fake([&] {
        net::Socket conn = listener.acceptFor(5000.0);
        ASSERT_TRUE(conn.valid());
        char buf[1024];
        net::readSome(conn, buf, sizeof(buf),
                      net::Deadline::after(2000.0));
        std::string response = "HTTP/1.0 200 OK\r\n"
                               "Content-Length: 100\r\n"
                               "Connection: close\r\n\r\n"
                               "only ten b";
        net::writeAll(conn, response.data(), response.size(),
                      net::Deadline::after(2000.0));
        conn.close();
    });

    std::string body;
    std::string status;
    EXPECT_FALSE(obs::httpGet("127.0.0.1", listener.port(), "/x", &body,
                              &status));
    EXPECT_TRUE(body.empty());
    fake.join();
}
