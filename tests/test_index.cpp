/**
 * @file
 * Tests for the ANN indices: Flat (exact oracle), IVF, HNSW, factory.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "index/flat_index.hpp"
#include "index/hnsw_index.hpp"
#include "index/ivf_index.hpp"
#include "serve/node.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "vecstore/simd_dispatch.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;
using namespace hermes::index;
using hermes::vecstore::Matrix;
using hermes::vecstore::Metric;

struct TestData
{
    Matrix base{0};
    Matrix queries{0};
    std::vector<vecstore::HitList> truth;
};

const TestData &
sharedData()
{
    static TestData data = [] {
        workload::CorpusConfig cc;
        cc.num_docs = 4000;
        cc.dim = 24;
        cc.num_topics = 16;
        cc.seed = 5;
        auto corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 40;
        qc.seed = 6;
        auto queries = workload::generateQueries(corpus, qc);

        TestData out;
        out.base = std::move(corpus.embeddings);
        out.queries = std::move(queries.embeddings);
        out.truth = eval::exactGroundTruth(out.base, out.queries, 10,
                                           Metric::L2);
        return out;
    }();
    return data;
}

TEST(FlatIndex, MatchesGroundTruthExactly)
{
    const auto &data = sharedData();
    FlatIndex flat(data.base.dim(), Metric::L2);
    flat.addSequential(data.base);
    auto results = flat.searchBatch(data.queries, 10);
    EXPECT_NEAR(eval::meanRecallAtK(results, data.truth, 10), 1.0, 1e-12);
}

TEST(FlatIndex, StatsCountEveryVector)
{
    const auto &data = sharedData();
    FlatIndex flat(data.base.dim(), Metric::L2);
    flat.addSequential(data.base);
    SearchStats stats;
    flat.search(data.queries.row(0), 5, {}, &stats);
    EXPECT_EQ(stats.vectors_scanned, data.base.rows());
    EXPECT_EQ(stats.bytes_scanned,
              data.base.rows() * data.base.dim() * sizeof(float));
}

TEST(FlatIndex, ExternalIdsReturned)
{
    Matrix m(2, 4);
    m.row(0)[0] = 1.f;
    m.row(1)[0] = -1.f;
    FlatIndex flat(4, Metric::L2);
    flat.add(m, {100, 200});
    std::vector<float> q{1.f, 0.f, 0.f, 0.f};
    auto hits = flat.search(vecstore::VecView(q.data(), 4), 1);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].id, 100);
}

TEST(FlatIndex, KLargerThanIndexReturnsAll)
{
    Matrix m(3, 4);
    FlatIndex flat(4, Metric::L2);
    flat.addSequential(m);
    std::vector<float> q(4, 0.f);
    auto hits = flat.search(vecstore::VecView(q.data(), 4), 10);
    EXPECT_EQ(hits.size(), 3u);
}

/** IVF recall grows monotonically (within noise) with nProbe. */
class IvfNprobeSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(IvfNprobeSweep, RecallAtLeastBaseline)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 32;
    config.codec = "SQ8";
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    SearchParams lo, hi;
    lo.nprobe = 1;
    hi.nprobe = GetParam();
    auto lo_results = ivf.searchBatch(data.queries, 10, lo);
    auto hi_results = ivf.searchBatch(data.queries, 10, hi);
    double lo_recall = eval::meanRecallAtK(lo_results, data.truth, 10);
    double hi_recall = eval::meanRecallAtK(hi_results, data.truth, 10);
    EXPECT_GE(hi_recall + 1e-9, lo_recall);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IvfNprobeSweep,
                         ::testing::Values(2, 4, 8, 16, 32));

TEST(IvfIndex, FullProbeWithFlatCodecIsExact)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 16;
    config.codec = "Flat";
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    SearchParams params;
    params.nprobe = 16;
    auto results = ivf.searchBatch(data.queries, 10, params);
    EXPECT_NEAR(eval::meanRecallAtK(results, data.truth, 10), 1.0, 1e-12);
}

TEST(IvfIndex, Sq8HighNprobeRecallNearFlat)
{
    // Table 1: SQ8 recall ~0.94 of exact at matched search effort.
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 32;
    config.codec = "SQ8";
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    SearchParams params;
    params.nprobe = 32;
    auto results = ivf.searchBatch(data.queries, 10, params);
    EXPECT_GT(eval::meanRecallAtK(results, data.truth, 10), 0.9);
}

TEST(IvfIndex, StatsScaleWithNprobe)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 32;
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    SearchStats lo_stats, hi_stats;
    SearchParams lo, hi;
    lo.nprobe = 2;
    hi.nprobe = 16;
    ivf.search(data.queries.row(0), 5, lo, &lo_stats);
    ivf.search(data.queries.row(0), 5, hi, &hi_stats);
    EXPECT_EQ(lo_stats.lists_probed, 2u);
    EXPECT_EQ(hi_stats.lists_probed, 16u);
    EXPECT_GT(hi_stats.vectors_scanned, lo_stats.vectors_scanned);
    EXPECT_GT(hi_stats.bytes_scanned, lo_stats.bytes_scanned);
}

TEST(IvfIndex, ListSizesSumToTotal)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 16;
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);
    std::size_t total = 0;
    for (std::size_t l = 0; l < ivf.nlist(); ++l)
        total += ivf.listSize(l);
    EXPECT_EQ(total, data.base.rows());
    EXPECT_EQ(ivf.size(), data.base.rows());
}

TEST(IvfIndex, SaveLoadSearchesIdentically)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 16;
    config.codec = "SQ8";
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    auto path = std::filesystem::temp_directory_path() / "hermes_ivf.bin";
    ivf.save(path.string());
    auto loaded = IvfIndex::load(path.string());

    SearchParams params;
    params.nprobe = 8;
    for (std::size_t q = 0; q < 10; ++q) {
        auto a = ivf.search(data.queries.row(q), 5, params);
        auto b = loaded->search(data.queries.row(q), 5, params);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].id, b[i].id);
            EXPECT_FLOAT_EQ(a[i].score, b[i].score);
        }
    }
    std::filesystem::remove(path);
}

TEST(IvfIndex, MemorySmallerThanFlatWithSq8)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 16;
    config.codec = "SQ8";
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    FlatIndex flat(data.base.dim(), Metric::L2);
    flat.addSequential(data.base);
    // SQ8 codes are 4x smaller than fp32; ids/centroids add overhead but
    // the total must still be well under the flat index.
    EXPECT_LT(ivf.memoryBytes(), flat.memoryBytes());
}

TEST(IvfIndex, SuggestedNlistIsSqrt)
{
    EXPECT_EQ(IvfIndex::suggestedNlist(10000), 100u);
    EXPECT_EQ(IvfIndex::suggestedNlist(1), 1u);
    EXPECT_EQ(IvfIndex::suggestedNlist(0), 1u);
}

TEST(IvfIndex, HnswCoarseMatchesLinearCoarseQuality)
{
    // The graph coarse step targets the large-nlist regime where the
    // O(nlist) centroid scan starts to dominate (FAISS's IVF_HNSW use
    // case); use a deliberately oversized nlist.
    const auto &data = sharedData();
    IvfConfig linear_config;
    linear_config.nlist = 512;
    linear_config.codec = "SQ8";
    IvfConfig graph_config = linear_config;
    graph_config.hnsw_coarse = true;

    IvfIndex linear(data.base.dim(), Metric::L2, linear_config);
    linear.train(data.base);
    linear.addSequential(data.base);
    IvfIndex graph(data.base.dim(), Metric::L2, graph_config);
    graph.train(data.base);
    graph.addSequential(data.base);

    SearchParams params;
    params.nprobe = 16;
    double linear_recall = eval::meanRecallAtK(
        linear.searchBatch(data.queries, 10, params), data.truth, 10);
    double graph_recall = eval::meanRecallAtK(
        graph.searchBatch(data.queries, 10, params), data.truth, 10);
    // The graph coarse step is approximate; allow a small gap.
    EXPECT_GT(graph_recall, linear_recall - 0.05);

    // And it must do *fewer* coarse distance evaluations than a full
    // centroid scan once the list scans are subtracted out.
    SearchStats linear_stats, graph_stats;
    linear.search(data.queries.row(0), 5, params, &linear_stats);
    graph.search(data.queries.row(0), 5, params, &graph_stats);
    std::uint64_t linear_coarse = linear_stats.distance_computations -
                                  linear_stats.vectors_scanned;
    std::uint64_t graph_coarse = graph_stats.distance_computations -
                                 graph_stats.vectors_scanned;
    EXPECT_LT(graph_coarse, linear_coarse);
}

TEST(IvfIndex, HnswCoarseSurvivesSaveLoad)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 32;
    config.hnsw_coarse = true;
    IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    auto path = std::filesystem::temp_directory_path() / "ivf_hnsw.bin";
    ivf.save(path.string());
    auto loaded = IvfIndex::load(path.string());
    SearchParams params;
    params.nprobe = 8;
    auto a = ivf.search(data.queries.row(0), 5, params);
    auto b = loaded->search(data.queries.row(0), 5, params);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].id, b[i].id);
    std::filesystem::remove(path);
}

TEST(HnswIndex, HighRecallAtModestEf)
{
    const auto &data = sharedData();
    HnswConfig config;
    config.m = 16;
    config.ef_construction = 80;
    HnswIndex hnsw(data.base.dim(), Metric::L2, config);
    hnsw.addSequential(data.base);

    SearchParams params;
    params.ef_search = 64;
    auto results = hnsw.searchBatch(data.queries, 10, params);
    EXPECT_GT(eval::meanRecallAtK(results, data.truth, 10), 0.9);
}

TEST(HnswIndex, RecallImprovesWithEf)
{
    const auto &data = sharedData();
    HnswConfig config;
    config.m = 8;
    config.ef_construction = 40;
    HnswIndex hnsw(data.base.dim(), Metric::L2, config);
    hnsw.addSequential(data.base);

    SearchParams lo, hi;
    lo.ef_search = 10;
    hi.ef_search = 128;
    double lo_recall = eval::meanRecallAtK(
        hnsw.searchBatch(data.queries, 10, lo), data.truth, 10);
    double hi_recall = eval::meanRecallAtK(
        hnsw.searchBatch(data.queries, 10, hi), data.truth, 10);
    EXPECT_GE(hi_recall + 1e-9, lo_recall);
}

TEST(HnswIndex, MemoryExceedsIvfSq8)
{
    // Fig 4: HNSW costs ~2.3x the memory of IVF-SQ8 — links plus fp32.
    const auto &data = sharedData();
    HnswConfig hc;
    hc.m = 16;
    HnswIndex hnsw(data.base.dim(), Metric::L2, hc);
    hnsw.addSequential(data.base);

    IvfConfig ic;
    ic.nlist = 16;
    ic.codec = "SQ8";
    IvfIndex ivf(data.base.dim(), Metric::L2, ic);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    EXPECT_GT(hnsw.memoryBytes(), 2 * ivf.memoryBytes());
}

TEST(HnswIndex, StatsPopulated)
{
    const auto &data = sharedData();
    HnswConfig config;
    HnswIndex hnsw(data.base.dim(), Metric::L2, config);
    hnsw.addSequential(data.base);
    SearchStats stats;
    hnsw.search(data.queries.row(0), 5, {}, &stats);
    EXPECT_GT(stats.distance_computations, 0u);
    // Far fewer evaluations than brute force — that is the point.
    EXPECT_LT(stats.distance_computations, data.base.rows() / 2);
}

TEST(HnswIndex, Level0GraphIsFullyReachable)
{
    // Every stored vector must be reachable from any other via level-0
    // links, or recall silently collapses for unlucky entry points. Walk
    // the graph through search results: repeatedly query each stored
    // vector and confirm it finds itself (distance ~0) — a self-miss
    // would indicate a disconnected component.
    const auto &data = sharedData();
    HnswConfig config;
    config.m = 8;
    config.ef_construction = 60;
    HnswIndex hnsw(data.base.dim(), Metric::L2, config);

    // Use a subset to keep the self-query sweep fast.
    Matrix subset = data.base.gather([] {
        std::vector<std::size_t> idx(800);
        for (std::size_t i = 0; i < idx.size(); ++i)
            idx[i] = i * 5;
        return idx;
    }());
    hnsw.addSequential(subset);

    SearchParams params;
    params.ef_search = 32;
    std::size_t self_found = 0;
    for (std::size_t i = 0; i < subset.rows(); ++i) {
        auto hits = hnsw.search(subset.row(i), 1, params);
        ASSERT_FALSE(hits.empty());
        self_found += hits[0].score < 1e-6f;
    }
    // A well-connected graph self-resolves essentially always.
    EXPECT_GT(static_cast<double>(self_found) /
              static_cast<double>(subset.rows()), 0.98);
}

TEST(HnswIndex, LevelDistributionDecaysGeometrically)
{
    const auto &data = sharedData();
    HnswConfig config;
    config.m = 16;
    HnswIndex hnsw(data.base.dim(), Metric::L2, config);
    hnsw.addSequential(data.base);
    // With mL = 1/ln(M), the fraction of nodes above level 0 is ~1/M.
    EXPECT_GE(hnsw.maxLevel(), 1);
    EXPECT_LE(hnsw.maxLevel(), 8);
}

TEST(HnswIndex, EmptyIndexReturnsNothing)
{
    HnswIndex hnsw(8, Metric::L2, {});
    std::vector<float> q(8, 0.f);
    EXPECT_TRUE(hnsw.search(vecstore::VecView(q.data(), 8), 5).empty());
}

TEST(IndexFactory, ParsesSpecs)
{
    EXPECT_EQ(makeIndex("Flat", 16, Metric::L2)->name(), "Flat");
    EXPECT_EQ(makeIndex("IVF64,SQ8", 16, Metric::L2)->name(), "IVF64,SQ8");
    EXPECT_EQ(makeIndex("IVF32", 16, Metric::L2)->name(), "IVF32,Flat");
    EXPECT_EQ(makeIndex("HNSW8", 16, Metric::L2)->name(), "HNSW8");
}

TEST(IndexFactory, FactoryIndicesSearchable)
{
    const auto &data = sharedData();
    for (const char *spec : {"Flat", "IVF16,SQ8", "HNSW8"}) {
        auto idx = makeIndex(spec, data.base.dim(), Metric::L2);
        idx->train(data.base);
        idx->addSequential(data.base);
        SearchParams params;
        params.nprobe = 8;
        auto hits = idx->search(data.queries.row(0), 5, params);
        EXPECT_EQ(hits.size(), 5u) << spec;
    }
}

vecstore::Matrix
randomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed)
{
    util::Rng rng(seed);
    Matrix m(rows, dim);
    for (std::size_t i = 0; i < rows; ++i) {
        auto row = m.row(i);
        for (std::size_t j = 0; j < dim; ++j)
            row[j] = static_cast<float>(rng.gaussian());
    }
    return m;
}

/** Restores the startup dispatch arm when a test returns. */
class IsaGuard
{
  public:
    IsaGuard() : name_(vecstore::simd::activeIsa()) {}
    ~IsaGuard() { vecstore::simd::forceIsaForTesting(name_.c_str()); }

  private:
    std::string name_;
};

/**
 * The list-major searchBatch contract: hit lists AND per-query stats are
 * bit-identical to the seed per-query loop. Exercised across every
 * codec, both metrics, pruning on/off and both dispatch arms.
 */
void
expectBatchMatchesPerQuery(const IvfIndex &ivf, const Matrix &queries,
                           std::size_t k, const SearchParams &params,
                           const std::string &what)
{
    std::vector<SearchStats> batch_stats;
    auto batch = ivf.searchBatch(queries, k, params, &batch_stats);
    ASSERT_EQ(batch.size(), queries.rows()) << what;
    ASSERT_EQ(batch_stats.size(), queries.rows()) << what;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        SearchStats ref_stats;
        auto ref = ivf.search(queries.row(q), k, params, &ref_stats);
        ASSERT_EQ(batch[q].size(), ref.size()) << what << " q=" << q;
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(batch[q][i].id, ref[i].id)
                << what << " q=" << q << " rank=" << i;
            EXPECT_EQ(batch[q][i].score, ref[i].score)
                << what << " q=" << q << " rank=" << i;
        }
        EXPECT_EQ(batch_stats[q].lists_probed, ref_stats.lists_probed)
            << what << " q=" << q;
        EXPECT_EQ(batch_stats[q].vectors_scanned, ref_stats.vectors_scanned)
            << what << " q=" << q;
        EXPECT_EQ(batch_stats[q].distance_computations,
                  ref_stats.distance_computations)
            << what << " q=" << q;
        EXPECT_EQ(batch_stats[q].bytes_scanned, ref_stats.bytes_scanned)
            << what << " q=" << q;
    }
}

TEST(IvfBatchParity, ListMajorMatchesPerQueryAllCodecs)
{
    const std::size_t d = 24;
    auto base = randomMatrix(1200, d, 71);
    auto queries = randomMatrix(10, d, 72);
    IsaGuard guard;
    for (const char *spec : {"Flat", "SQ8", "SQ4", "PQ8", "OPQ8"}) {
        for (Metric metric : {Metric::L2, Metric::InnerProduct}) {
            IvfConfig config;
            config.nlist = 16;
            config.codec = spec;
            IvfIndex ivf(d, metric, config);
            ivf.train(base);
            ivf.addSequential(base);
            for (const char *arm : {"scalar", "avx2"}) {
                if (!vecstore::simd::forceIsaForTesting(arm))
                    continue;
                for (double prune : {0.0, 1.2}) {
                    SearchParams params;
                    params.nprobe = 5;
                    params.prune_ratio = prune;
                    // Pin the list-major arm: the test corpus is far
                    // below the cost cutover's default floor.
                    params.batch_min_scan_floats = 0;
                    expectBatchMatchesPerQuery(
                        ivf, queries, 10, params,
                        std::string(spec) + "/" +
                            vecstore::metricName(metric) + "/" + arm +
                            "/prune=" + std::to_string(prune));
                }
            }
        }
    }
}

TEST(IvfBatchParity, OddDimAndEdgeShapes)
{
    // Codecs without divisibility constraints (SQ4 needs an even dim) at
    // an odd dim, plus the degenerate shapes: k > list contents,
    // nprobe > nlist, Q = 1 (delegates to the single-query path).
    const std::size_t d = 25;
    auto base = randomMatrix(400, d, 73);
    auto queries = randomMatrix(6, d, 74);
    for (const char *spec : {"Flat", "SQ8"}) {
        IvfConfig config;
        config.nlist = 8;
        config.codec = spec;
        IvfIndex ivf(d, Metric::L2, config);
        ivf.train(base);
        ivf.addSequential(base);
        SearchParams params;
        params.nprobe = 32; // clamped to nlist
        params.batch_min_scan_floats = 0;
        expectBatchMatchesPerQuery(ivf, queries, 500, params,
                                   std::string(spec) + " odd-dim");
        Matrix one(1, d);
        std::copy(queries.row(0).data(), queries.row(0).data() + d,
                  one.row(0).data());
        expectBatchMatchesPerQuery(ivf, one, 5, params,
                                   std::string(spec) + " single-query");
    }
}

TEST(IvfBatchParity, CostCutoverPreservesResults)
{
    // A corpus far below the default batch_min_scan_floats floor takes
    // the per-query fallback inside searchBatch; forcing the floor to 0
    // pins the list-major arm. Both must agree bit for bit.
    const std::size_t d = 24;
    auto base = randomMatrix(900, d, 77);
    auto queries = randomMatrix(7, d, 78);
    IvfConfig config;
    config.nlist = 12;
    config.codec = "SQ8";
    IvfIndex ivf(d, Metric::L2, config);
    ivf.train(base);
    ivf.addSequential(base);

    SearchParams fallback; // default floor >> 900 * d
    fallback.nprobe = 4;
    SearchParams forced = fallback;
    forced.batch_min_scan_floats = 0;

    std::vector<SearchStats> sa, sb;
    auto a = ivf.searchBatch(queries, 10, fallback, &sa);
    auto b = ivf.searchBatch(queries, 10, forced, &sb);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t q = 0; q < a.size(); ++q) {
        ASSERT_EQ(a[q].size(), b[q].size()) << "q=" << q;
        for (std::size_t i = 0; i < a[q].size(); ++i) {
            EXPECT_EQ(a[q][i].id, b[q][i].id) << "q=" << q;
            EXPECT_EQ(a[q][i].score, b[q][i].score) << "q=" << q;
        }
    }
}

TEST(IvfBatchParity, HnswCoarseBatchMatchesPerQuery)
{
    const std::size_t d = 24;
    auto base = randomMatrix(1500, d, 75);
    auto queries = randomMatrix(8, d, 76);
    IvfConfig config;
    config.nlist = 64;
    config.codec = "SQ8";
    config.hnsw_coarse = true;
    IvfIndex ivf(d, Metric::L2, config);
    ivf.train(base);
    ivf.addSequential(base);
    for (double prune : {0.0, 1.5}) {
        SearchParams params;
        params.nprobe = 6;
        params.prune_ratio = prune;
        params.batch_min_scan_floats = 0;
        expectBatchMatchesPerQuery(ivf, queries, 10, params,
                                   "hnsw_coarse prune=" +
                                       std::to_string(prune));
    }
}

/**
 * Wraps an exact index and injects a fault (serve::FaultInjector odds)
 * on queries whose first component carries the poison marker — a
 * deterministic stand-in for a query that faults mid-batch.
 */
class FaultyIndex : public AnnIndex
{
  public:
    FaultyIndex(const FlatIndex &inner, const serve::FaultInjector &faults)
        : inner_(inner), faults_(faults), rng_(faults.seed)
    {
    }

    std::size_t dim() const override { return inner_.dim(); }
    std::size_t size() const override { return inner_.size(); }
    vecstore::Metric metric() const override { return inner_.metric(); }
    bool isTrained() const override { return true; }
    void train(const Matrix &) override {}
    void
    add(const Matrix &, const std::vector<vecstore::VecId> &) override
    {
        throw std::logic_error("read-only wrapper");
    }
    std::size_t memoryBytes() const override { return 0; }
    std::string name() const override { return "Faulty"; }

    vecstore::HitList
    search(vecstore::VecView query, std::size_t k,
           const SearchParams &params,
           SearchStats *stats) const override
    {
        if (query.data()[0] > 1e29f &&
            rng_.uniform() < faults_.fail_probability)
            throw std::runtime_error("injected query fault");
        return inner_.search(query, k, params, stats);
    }

  private:
    const FlatIndex &inner_;
    serve::FaultInjector faults_;
    mutable util::Rng rng_;
};

TEST(AnnIndex, SearchBatchParallelKeepsStatsWhenQueryThrows)
{
    // Regression: searchBatchParallel used to drop the whole batch's
    // merged stats when any query threw mid-parallelFor; completed
    // queries' counters must survive the rethrow.
    const std::size_t d = 16;
    const std::size_t n = 300;
    auto base = randomMatrix(n, d, 81);
    FlatIndex flat(d, Metric::L2);
    flat.addSequential(base);

    serve::FaultInjector faults;
    faults.fail_probability = 1.0;
    FaultyIndex faulty(flat, faults);

    auto queries = randomMatrix(8, d, 82);
    queries.row(queries.rows() - 1)[0] = 1e30f; // poison last row

    // One worker drains the greedy counter in order, so every query
    // before the poisoned one completes before the throw.
    util::ThreadPool pool(1);
    SearchStats stats;
    EXPECT_THROW(faulty.searchBatchParallel(queries, 5, pool, {}, &stats),
                 std::runtime_error);
    EXPECT_EQ(stats.vectors_scanned, (queries.rows() - 1) * n);
    EXPECT_EQ(stats.bytes_scanned,
              (queries.rows() - 1) * n * d * sizeof(float));

    // Fault disabled: identical results to the serial batch, no throw.
    serve::FaultInjector off;
    FaultyIndex clean(flat, off);
    SearchStats par_stats, seq_stats;
    auto par = clean.searchBatchParallel(queries, 5, pool, {}, &par_stats);
    auto seq = flat.searchBatch(queries, 5, {}, &seq_stats);
    EXPECT_EQ(par, seq);
    EXPECT_EQ(par_stats.vectors_scanned, seq_stats.vectors_scanned);
}

TEST(AnnIndex, InnerProductMetricRanksByDotProduct)
{
    Matrix m(3, 4);
    m.row(0)[0] = 0.1f;
    m.row(1)[0] = 0.9f;
    m.row(2)[0] = 0.5f;
    FlatIndex flat(4, Metric::InnerProduct);
    flat.addSequential(m);
    std::vector<float> q{1.f, 0.f, 0.f, 0.f};
    auto hits = flat.search(vecstore::VecView(q.data(), 4), 3);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0].id, 1);
    EXPECT_EQ(hits[1].id, 2);
    EXPECT_EQ(hits[2].id, 0);
}

} // namespace
