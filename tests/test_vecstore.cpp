/**
 * @file
 * Unit tests for vecstore: distance kernels, matrix storage, top-k.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/topk.hpp"

namespace {

using namespace hermes::vecstore;
using hermes::util::Rng;

float
naiveL2Sq(const std::vector<float> &a, const std::vector<float> &b)
{
    float acc = 0.f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += (a[i] - b[i]) * (a[i] - b[i]);
    return acc;
}

float
naiveDot(const std::vector<float> &a, const std::vector<float> &b)
{
    float acc = 0.f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

std::vector<float>
randomVec(Rng &rng, std::size_t d)
{
    std::vector<float> v(d);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

/** Kernels agree with naive implementations across dimensions. */
class DistanceKernels : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(DistanceKernels, L2MatchesNaive)
{
    Rng rng(1);
    std::size_t d = GetParam();
    auto a = randomVec(rng, d);
    auto b = randomVec(rng, d);
    EXPECT_NEAR(l2Sq(a.data(), b.data(), d), naiveL2Sq(a, b),
                1e-4 * (1.0 + naiveL2Sq(a, b)));
}

TEST_P(DistanceKernels, DotMatchesNaive)
{
    Rng rng(2);
    std::size_t d = GetParam();
    auto a = randomVec(rng, d);
    auto b = randomVec(rng, d);
    EXPECT_NEAR(dot(a.data(), b.data(), d), naiveDot(a, b),
                1e-3 * (1.0 + std::fabs(naiveDot(a, b))));
}

TEST_P(DistanceKernels, L2IsSymmetricAndZeroOnSelf)
{
    Rng rng(3);
    std::size_t d = GetParam();
    auto a = randomVec(rng, d);
    auto b = randomVec(rng, d);
    EXPECT_FLOAT_EQ(l2Sq(a.data(), b.data(), d), l2Sq(b.data(), a.data(), d));
    EXPECT_FLOAT_EQ(l2Sq(a.data(), a.data(), d), 0.f);
}

INSTANTIATE_TEST_SUITE_P(Dims, DistanceKernels,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33, 64,
                                           127, 128));

TEST(Distance, MetricDispatchSmallerIsCloser)
{
    // b is closer to q than c under both metrics.
    std::vector<float> q{1.f, 0.f};
    std::vector<float> b{0.9f, 0.1f};
    std::vector<float> c{-1.f, 0.f};
    for (Metric m : {Metric::L2, Metric::InnerProduct}) {
        EXPECT_LT(distance(m, q.data(), b.data(), 2),
                  distance(m, q.data(), c.data(), 2));
    }
}

TEST(Distance, NormalizeProducesUnitNorm)
{
    Rng rng(4);
    auto v = randomVec(rng, 33);
    normalize(v.data(), v.size());
    EXPECT_NEAR(normSq(v.data(), v.size()), 1.f, 1e-5);
}

TEST(Distance, NormalizeZeroVectorIsNoop)
{
    std::vector<float> v(8, 0.f);
    normalize(v.data(), v.size());
    for (float x : v)
        EXPECT_EQ(x, 0.f);
}

TEST(Distance, CosineBounds)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        auto a = randomVec(rng, 16);
        auto b = randomVec(rng, 16);
        float c = cosine(a.data(), b.data(), 16);
        EXPECT_GE(c, -1.0001f);
        EXPECT_LE(c, 1.0001f);
    }
}

TEST(Distance, BatchMatchesScalar)
{
    Rng rng(6);
    const std::size_t n = 50, d = 24;
    auto q = randomVec(rng, d);
    std::vector<float> base(n * d);
    for (auto &x : base)
        x = static_cast<float>(rng.gaussian());
    std::vector<float> out(n);
    distanceBatch(Metric::L2, q.data(), base.data(), n, d, out.data());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_FLOAT_EQ(out[i], l2Sq(q.data(), base.data() + i * d, d));
}

TEST(Matrix, AppendAndRowAccess)
{
    Matrix m(3);
    m.append(std::vector<float>{1.f, 2.f, 3.f});
    m.append(std::vector<float>{4.f, 5.f, 6.f});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.dim(), 3u);
    EXPECT_FLOAT_EQ(m.row(1)[2], 6.f);
    EXPECT_EQ(m.memoryBytes(), 6 * sizeof(float));
}

TEST(Matrix, GatherSelectsRows)
{
    Matrix m(2);
    for (int i = 0; i < 5; ++i)
        m.append(std::vector<float>{float(i), float(10 * i)});
    auto g = m.gather({4, 0, 2});
    ASSERT_EQ(g.rows(), 3u);
    EXPECT_FLOAT_EQ(g.row(0)[0], 4.f);
    EXPECT_FLOAT_EQ(g.row(1)[0], 0.f);
    EXPECT_FLOAT_EQ(g.row(2)[1], 20.f);
}

TEST(Matrix, SaveLoadRoundTrip)
{
    Rng rng(7);
    Matrix m(5);
    for (int i = 0; i < 20; ++i) {
        auto v = randomVec(rng, 5);
        m.append(VecView(v.data(), v.size()));
    }
    auto path = std::filesystem::temp_directory_path() / "hermes_mat.bin";
    m.save(path.string());
    auto loaded = Matrix::load(path.string());
    ASSERT_EQ(loaded.rows(), m.rows());
    ASSERT_EQ(loaded.dim(), m.dim());
    for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.dim(); ++j)
            EXPECT_FLOAT_EQ(loaded.row(i)[j], m.row(i)[j]);
    std::filesystem::remove(path);
}

TEST(Matrix, ResizeZeroFills)
{
    Matrix m(2);
    m.resizeRows(3);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_FLOAT_EQ(m.row(2)[1], 0.f);
}

/** TopK returns exactly the k best, sorted, across k and n combinations. */
class TopKSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>>
{
};

TEST_P(TopKSweep, MatchesFullSort)
{
    auto [k, n] = GetParam();
    Rng rng(8 + k * 131 + n);
    std::vector<float> scores(n);
    for (auto &s : scores)
        s = static_cast<float>(rng.uniform(-100.0, 100.0));

    TopK selector(k);
    for (std::size_t i = 0; i < n; ++i)
        selector.push(static_cast<VecId>(i), scores[i]);
    auto hits = selector.take();

    std::vector<float> sorted = scores;
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(hits.size(), std::min(k, n));
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_FLOAT_EQ(hits[i].score, sorted[i]);
        if (i) {
            EXPECT_LE(hits[i - 1].score, hits[i].score);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 10, 64),
                       ::testing::Values<std::size_t>(1, 5, 64, 1000)));

TEST(TopK, WorstIsInfUntilFull)
{
    TopK selector(3);
    selector.push(0, 1.f);
    EXPECT_EQ(selector.worst(), std::numeric_limits<float>::max());
    selector.push(1, 2.f);
    selector.push(2, 3.f);
    EXPECT_FLOAT_EQ(selector.worst(), 3.f);
    selector.push(3, 0.5f);
    EXPECT_FLOAT_EQ(selector.worst(), 2.f);
}

TEST(MergeHitLists, DeduplicatesKeepingBestScore)
{
    HitList a{{1, 0.5f}, {2, 1.0f}};
    HitList b{{2, 0.3f}, {3, 0.9f}};
    auto merged = mergeHitLists({a, b}, 10);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0].id, 2);
    EXPECT_FLOAT_EQ(merged[0].score, 0.3f);
    EXPECT_EQ(merged[1].id, 1);
    EXPECT_EQ(merged[2].id, 3);
}

TEST(MergeHitLists, TruncatesToK)
{
    HitList a{{1, 1.f}, {2, 2.f}, {3, 3.f}};
    auto merged = mergeHitLists({a}, 2);
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].id, 1);
    EXPECT_EQ(merged[1].id, 2);
}

TEST(MergeHitLists, EmptyInput)
{
    auto merged = mergeHitLists({}, 5);
    EXPECT_TRUE(merged.empty());
}

} // namespace
