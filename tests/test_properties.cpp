/**
 * @file
 * Cross-stack property tests: parameterized invariant sweeps that tie the
 * layers together — metric axioms, codec/recall orderings, cost-model
 * monotonicities, pipeline monotonicities, and serialization round trips
 * at the workload level.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "cluster/kmeans.hpp"
#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "index/ivf_index.hpp"
#include "sim/cost_model.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "workload/corpus.hpp"
#include "workload/trace.hpp"

namespace {

using namespace hermes;
using hermes::util::Rng;

// ---------------------------------------------------------------------------
// Metric axioms
// ---------------------------------------------------------------------------

class MetricAxioms : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MetricAxioms, L2TriangleInequality)
{
    Rng rng(GetParam());
    const std::size_t d = 20;
    std::vector<float> a(d), b(d), c(d);
    for (std::size_t i = 0; i < d; ++i) {
        a[i] = static_cast<float>(rng.gaussian());
        b[i] = static_cast<float>(rng.gaussian());
        c[i] = static_cast<float>(rng.gaussian());
    }
    double ab = std::sqrt(vecstore::l2Sq(a.data(), b.data(), d));
    double bc = std::sqrt(vecstore::l2Sq(b.data(), c.data(), d));
    double ac = std::sqrt(vecstore::l2Sq(a.data(), c.data(), d));
    EXPECT_LE(ac, ab + bc + 1e-4);
}

TEST_P(MetricAxioms, CauchySchwarz)
{
    Rng rng(GetParam() + 1000);
    const std::size_t d = 20;
    std::vector<float> a(d), b(d);
    for (std::size_t i = 0; i < d; ++i) {
        a[i] = static_cast<float>(rng.gaussian());
        b[i] = static_cast<float>(rng.gaussian());
    }
    double dot = vecstore::dot(a.data(), b.data(), d);
    double na = vecstore::normSq(a.data(), d);
    double nb = vecstore::normSq(b.data(), d);
    EXPECT_LE(dot * dot, na * nb * (1.0 + 1e-5));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAxioms,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Codec / recall ordering on a shared workload
// ---------------------------------------------------------------------------

struct PropertyData
{
    vecstore::Matrix base{0};
    vecstore::Matrix queries{0};
    std::vector<vecstore::HitList> truth;
};

const PropertyData &
propertyData()
{
    static PropertyData data = [] {
        workload::CorpusConfig cc;
        cc.num_docs = 4000;
        cc.dim = 24;
        cc.num_topics = 16;
        cc.seed = 31;
        auto corpus = workload::generateCorpus(cc);
        workload::QueryConfig qc;
        qc.num_queries = 32;
        qc.seed = 32;
        auto queries = workload::generateQueries(corpus, qc);
        PropertyData out;
        out.base = std::move(corpus.embeddings);
        out.queries = std::move(queries.embeddings);
        out.truth = eval::exactGroundTruth(out.base, out.queries, 10,
                                           vecstore::Metric::L2);
        return out;
    }();
    return data;
}

double
recallWithCodec(const std::string &codec)
{
    const auto &data = propertyData();
    index::IvfConfig config;
    config.nlist = 32;
    config.codec = codec;
    index::IvfIndex ivf(data.base.dim(), vecstore::Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);
    index::SearchParams params;
    params.nprobe = 16;
    return eval::meanRecallAtK(
        ivf.searchBatch(data.queries, 10, params), data.truth, 10);
}

TEST(CodecOrdering, HigherPrecisionNeverMuchWorse)
{
    double flat = recallWithCodec("Flat");
    double sq8 = recallWithCodec("SQ8");
    double sq4 = recallWithCodec("SQ4");
    // Table 1 ordering: Flat >= SQ8 >= SQ4 (small tolerance for ties).
    EXPECT_GE(flat + 0.01, sq8);
    EXPECT_GE(sq8 + 0.01, sq4);
    EXPECT_GT(flat, 0.9);
}

// ---------------------------------------------------------------------------
// Cost-model monotonicities
// ---------------------------------------------------------------------------

TEST(CostMonotonicity, LatencyMonotoneInEverything)
{
    sim::RetrievalCostModel model(
        sim::cpuProfile(sim::CpuModel::XeonGold6448Y));
    sim::DatastoreGeometry geo;
    geo.tokens = 10e9;

    double prev = 0.0;
    for (std::size_t nprobe : {1u, 4u, 16u, 64u, 256u}) {
        double latency = model.batchLatency(geo, nprobe, 32);
        EXPECT_GT(latency, prev);
        prev = latency;
    }
    prev = 0.0;
    for (double tokens : {1e8, 1e9, 1e10, 1e11}) {
        sim::DatastoreGeometry g;
        g.tokens = tokens;
        double latency = model.batchLatency(g, 128, 32);
        EXPECT_GT(latency, prev);
        prev = latency;
    }
    prev = 0.0;
    for (std::size_t batch : {1u, 32u, 33u, 64u, 65u, 128u}) {
        double latency = model.batchLatency(geo, 128, batch);
        EXPECT_GE(latency, prev);
        prev = latency;
    }
}

TEST(CostMonotonicity, IntraQueryParallelismOnlyHelpsUnderload)
{
    sim::RetrievalCostModel model(
        sim::cpuProfile(sim::CpuModel::XeonGold6448Y));
    sim::DatastoreGeometry geo;
    geo.tokens = 1e9;
    // Underloaded: speedup.
    EXPECT_LT(model.batchLatency(geo, 128, 4, 1.0, true),
              model.batchLatency(geo, 128, 4, 1.0, false));
    // Saturated: identical.
    EXPECT_DOUBLE_EQ(model.batchLatency(geo, 128, 64, 1.0, true),
                     model.batchLatency(geo, 128, 64, 1.0, false));
}

TEST(CostMonotonicity, IndexBytesMonotoneInTokensAndCodeSize)
{
    sim::DatastoreGeometry small, big, fat;
    small.tokens = 1e9;
    big.tokens = 1e10;
    fat.tokens = 1e9;
    fat.code_bytes = 3072;
    EXPECT_LT(small.indexBytes(), big.indexBytes());
    EXPECT_LT(small.indexBytes(), fat.indexBytes());
}

// ---------------------------------------------------------------------------
// Pipeline monotonicities
// ---------------------------------------------------------------------------

class PipelineMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(PipelineMonotone, E2EGrowsWithDatastore)
{
    sim::PipelineConfig a, b;
    a.datastore.tokens = GetParam();
    b.datastore.tokens = GetParam() * 10.0;
    a.batch = b.batch = 32;
    EXPECT_LT(sim::RagPipelineSim(a).run().e2e,
              sim::RagPipelineSim(b).run().e2e);
}

TEST_P(PipelineMonotone, ShorterStrideCostsMore)
{
    sim::PipelineConfig coarse, fine;
    coarse.datastore.tokens = fine.datastore.tokens = GetParam();
    coarse.stride = 64;
    fine.stride = 8;
    EXPECT_GT(sim::RagPipelineSim(fine).run().e2e,
              sim::RagPipelineSim(coarse).run().e2e);
}

TEST_P(PipelineMonotone, OptimizationsNeverHurt)
{
    sim::PipelineConfig base;
    base.datastore.tokens = GetParam();
    double e2e_base = sim::RagPipelineSim(base).run().e2e;
    for (bool pipelining : {false, true}) {
        for (bool caching : {false, true}) {
            sim::PipelineConfig config = base;
            config.pipelining = pipelining;
            config.prefix_caching = caching;
            EXPECT_LE(sim::RagPipelineSim(config).run().e2e,
                      e2e_base + 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Scales, PipelineMonotone,
                         ::testing::Values(1e8, 1e9, 1e10, 1e11, 1e12));

// ---------------------------------------------------------------------------
// Hermes quality monotone in search effort (measured)
// ---------------------------------------------------------------------------

TEST(HermesEffort, NdcgMonotoneInDeepNprobe)
{
    const auto &data = propertyData();
    core::HermesConfig config;
    config.num_clusters = 6;
    config.clusters_to_search = 3;
    config.sample_nprobe = 2;
    config.deep_nprobe = 32;
    config.partition.seeds_to_try = 2;
    auto store = core::DistributedStore::build(data.base, config);

    double prev = 0.0;
    for (std::size_t deep_nprobe : {1u, 4u, 16u, 32u}) {
        core::HermesSearch hermes(store, 0, 0, deep_nprobe);
        std::vector<vecstore::HitList> results;
        for (std::size_t q = 0; q < data.queries.rows(); ++q)
            results.push_back(
                hermes.search(data.queries.row(q), 5).hits);
        double ndcg = eval::meanNdcgAtK(results, data.truth, 5);
        EXPECT_GE(ndcg + 0.02, prev) << "deep_nprobe " << deep_nprobe;
        prev = std::max(prev, ndcg);
    }
    EXPECT_GT(prev, 0.8);
}

// ---------------------------------------------------------------------------
// Trace CSV round trip
// ---------------------------------------------------------------------------

TEST(TraceCsv, RoundTripPreservesRecords)
{
    workload::ClusterTrace trace;
    trace.num_clusters = 5;
    Rng rng(77);
    for (std::uint32_t q = 0; q < 50; ++q) {
        workload::TraceRecord record;
        record.query = q;
        std::size_t n = 1 + rng.uniformInt(4);
        for (std::size_t i = 0; i < n; ++i)
            record.clusters.push_back(
                static_cast<std::uint32_t>(rng.uniformInt(5)));
        trace.records.push_back(std::move(record));
    }

    auto path = std::filesystem::temp_directory_path() / "trace_rt.csv";
    trace.saveCsv(path.string());
    auto loaded = workload::ClusterTrace::loadCsv(path.string(), 5);

    ASSERT_EQ(loaded.records.size(), trace.records.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
        EXPECT_EQ(loaded.records[i].query, trace.records[i].query);
        EXPECT_EQ(loaded.records[i].clusters, trace.records[i].clusters);
    }
    EXPECT_EQ(loaded.accessCounts(), trace.accessCounts());
    std::filesystem::remove(path);
}

TEST(TraceCsv, RejectsForeignFiles)
{
    auto path = std::filesystem::temp_directory_path() / "not_trace.csv";
    {
        std::ofstream out(path);
        out << "wrong,header\n1,2\n";
    }
    EXPECT_DEATH(workload::ClusterTrace::loadCsv(path.string(), 4),
                 "bad header");
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Workload statistical properties
// ---------------------------------------------------------------------------

TEST(WorkloadProperties, SpreadControlsTopicPurity)
{
    auto purity = [](double spread) {
        workload::CorpusConfig cc;
        cc.num_docs = 1000;
        cc.dim = 24;
        cc.num_topics = 8;
        cc.topic_spread = spread;
        cc.seed = 51;
        auto corpus = workload::generateCorpus(cc);
        std::size_t correct = 0;
        for (std::size_t i = 0; i < corpus.embeddings.rows(); ++i) {
            correct += cluster::nearestCentroid(corpus.embeddings.row(i),
                                                corpus.topic_centers) ==
                       corpus.topic_of_doc[i];
        }
        return static_cast<double>(correct) /
               static_cast<double>(cc.num_docs);
    };
    EXPECT_GT(purity(0.1), purity(0.6));
    EXPECT_GT(purity(0.1), 0.95);
}

} // namespace
