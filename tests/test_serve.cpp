/**
 * @file
 * Tests for the online serving layer: retrieval nodes and the Hermes
 * broker — correctness against the in-process search strategy, queue
 * behaviour, concurrency, and statistics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "index/flat_index.hpp"
#include "serve/broker.hpp"
#include "serve/load_report.hpp"
#include "serve/node.hpp"
#include "serve/node_client.hpp"
#include "serve/replica_map.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

struct ServeData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const ServeData &
serveData()
{
    static ServeData data = [] {
        ServeData out;
        workload::CorpusConfig cc;
        cc.num_docs = 4000;
        cc.dim = 16;
        cc.num_topics = 12;
        cc.seed = 55;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 32;
        qc.seed = 56;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 6;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 16;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

TEST(RetrievalNode, ServesSubmittedRequests)
{
    const auto &data = serveData();
    serve::RetrievalNode node(data.store->clusterIndex(0), {});

    index::SearchParams params;
    params.nprobe = 4;
    auto future = node.submit(data.queries.embeddings.row(0), 3, params);
    auto response = future.get();
    EXPECT_LE(response.hits.size(), 3u);
    EXPECT_GT(response.stats.vectors_scanned, 0u);

    auto stats = node.stats();
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_EQ(stats.vectors_scanned, response.stats.vectors_scanned);
}

TEST(RetrievalNode, MatchesDirectIndexSearch)
{
    const auto &data = serveData();
    const auto &shard = data.store->clusterIndex(1);
    serve::RetrievalNode node(shard, {});

    index::SearchParams params;
    params.nprobe = 8;
    for (std::size_t q = 0; q < 8; ++q) {
        auto via_node =
            node.submit(data.queries.embeddings.row(q), 5, params).get();
        auto direct = shard.search(data.queries.embeddings.row(q), 5,
                                   params);
        ASSERT_EQ(via_node.hits.size(), direct.size());
        for (std::size_t i = 0; i < direct.size(); ++i) {
            EXPECT_EQ(via_node.hits[i].id, direct[i].id);
            EXPECT_FLOAT_EQ(via_node.hits[i].score, direct[i].score);
        }
    }
}

TEST(RetrievalNode, BatchesQueuedRequests)
{
    const auto &data = serveData();
    serve::NodeConfig config;
    config.max_batch = 16;
    serve::RetrievalNode node(data.store->clusterIndex(0), config);

    index::SearchParams params;
    params.nprobe = 2;
    std::vector<std::future<serve::NodeResponse>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(
            node.submit(data.queries.embeddings.row(i % 32), 2, params));
    for (auto &future : futures)
        future.get();

    auto stats = node.stats();
    EXPECT_EQ(stats.requests, 64u);
    // Worker drains multiple requests per round once the queue backs up.
    EXPECT_LE(stats.batches, 64u);
}

TEST(HermesBroker, MatchesInProcessHermesSearch)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);

    for (std::size_t q = 0; q < data.queries.embeddings.rows(); ++q) {
        std::vector<std::uint32_t> deep;
        auto via_broker =
            broker.search(data.queries.embeddings.row(q), 5, deep);
        auto expected =
            reference.search(data.queries.embeddings.row(q), 5);

        ASSERT_EQ(via_broker.size(), expected.hits.size()) << "query " << q;
        for (std::size_t i = 0; i < expected.hits.size(); ++i) {
            EXPECT_EQ(via_broker[i].id, expected.hits[i].id);
            EXPECT_FLOAT_EQ(via_broker[i].score, expected.hits[i].score);
        }
        // Same clusters chosen (order may match as both sort by score).
        EXPECT_EQ(deep, expected.deep_clusters);
    }
}

TEST(HermesBroker, StatsAccumulate)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    for (std::size_t q = 0; q < 10; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 10u);
    EXPECT_EQ(stats.deep_requests,
              10u * data.config.clusters_to_search);
    ASSERT_EQ(stats.nodes.size(), data.store->numClusters());
    // Every node sampled every query (plus its share of deep requests).
    for (const auto &node : stats.nodes)
        EXPECT_GE(node.requests, 10u);
}

TEST(HermesBroker, ConcurrentClientsGetConsistentResults)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);

    // Precompute expected results.
    std::vector<vecstore::HitList> expected;
    for (std::size_t q = 0; q < 16; ++q)
        expected.push_back(
            reference.search(data.queries.embeddings.row(q), 5).hits);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (std::size_t q = t; q < 16; q += 4) {
                auto hits =
                    broker.search(data.queries.embeddings.row(q), 5);
                if (hits.size() != expected[q].size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t i = 0; i < hits.size(); ++i) {
                    if (hits[i].id != expected[q][i].id)
                        ++mismatches;
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(broker.stats().queries, 16u);
}

TEST(RetrievalNode, MicroBatchCoalescesAndMatchesDirectSearch)
{
    const auto &data = serveData();
    const auto &shard = data.store->clusterIndex(0);
    serve::NodeConfig config;
    config.max_batch = 32;
    config.batch_window_us = 20000.0; // 20 ms: plenty to co-batch
    serve::RetrievalNode node(shard, config);

    index::SearchParams params;
    params.nprobe = 4;
    // Mixed k values in the same drain: the node groups compatible
    // requests and must still answer each with its own k.
    std::vector<std::size_t> ks;
    std::vector<std::future<serve::NodeResponse>> futures;
    for (std::size_t q = 0; q < 24; ++q) {
        std::size_t k = q % 3 == 0 ? 3 : 5;
        ks.push_back(k);
        futures.push_back(
            node.submit(data.queries.embeddings.row(q), k, params));
    }
    for (std::size_t q = 0; q < futures.size(); ++q) {
        auto response = futures[q].get();
        auto direct =
            shard.search(data.queries.embeddings.row(q), ks[q], params);
        ASSERT_EQ(response.hits.size(), direct.size()) << "query " << q;
        for (std::size_t i = 0; i < direct.size(); ++i) {
            EXPECT_EQ(response.hits[i].id, direct[i].id)
                << "query " << q << " rank " << i;
            EXPECT_EQ(response.hits[i].score, direct[i].score)
                << "query " << q << " rank " << i;
        }
    }
    auto stats = node.stats();
    EXPECT_EQ(stats.requests, 24u);
    // The window must have coalesced the burst into far fewer drains.
    EXPECT_LE(stats.batches, 12u);
}

TEST(HermesBroker, MicroBatchingMatchesWindowZeroResults)
{
    // Opt-in micro-batching is a scheduling change only: under
    // concurrent clients the batched broker must return bit-identical
    // results to the in-process reference (same contract the window=0
    // broker is held to above).
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node.batch_window_us = 500.0;
    config.node.max_batch = 16;
    serve::HermesBroker broker(*data.store, config);
    core::HermesSearch reference(*data.store);

    std::vector<vecstore::HitList> expected;
    for (std::size_t q = 0; q < 16; ++q)
        expected.push_back(
            reference.search(data.queries.embeddings.row(q), 5).hits);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (std::size_t q = t; q < 16; q += 4) {
                auto hits =
                    broker.search(data.queries.embeddings.row(q), 5);
                if (hits.size() != expected[q].size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t i = 0; i < hits.size(); ++i) {
                    if (hits[i].id != expected[q][i].id ||
                        hits[i].score != expected[q][i].score)
                        ++mismatches;
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 16u);
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_EQ(stats.degraded_queries, 0u);
}

TEST(HermesBroker, PathologicalWindowStillHonorsDeadlines)
{
    // A window longer than the node deadline must not hang or throw:
    // the deadline clock starts at submit and covers queue time, so the
    // query times out, retries, and degrades exactly as a dead node
    // would under PR 1 semantics.
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node.batch_window_us = 400000.0; // 0.4 s hold
    config.node_deadline_ms = 60.0;
    config.max_retries = 0;
    serve::HermesBroker broker(*data.store, config);

    auto hits = broker.search(data.queries.embeddings.row(0), 5);
    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_EQ(stats.degraded_queries, 1u);
    // Nothing arrived in time, so the degraded answer may be empty —
    // but the call returned within deadlines instead of blocking on the
    // window.
    EXPECT_LE(hits.size(), 5u);
}

TEST(HermesBroker, LoadReportExposesBatchOccupancy)
{
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node.batch_window_us = 500.0;
    serve::HermesBroker broker(*data.store, config);
    for (std::size_t q = 0; q < 8; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto load = broker.loadReport();
    ASSERT_EQ(load.clusters.size(), data.store->numClusters());
    for (const auto &cluster : load.clusters)
        EXPECT_GE(cluster.batch_occupancy, 1.0);
    EXPECT_NE(load.toJson().find("\"batch_occupancy\""),
              std::string::npos);
}

TEST(ReplicaMap, IdentityAssignAndComplete)
{
    auto map = serve::ReplicaMap::identity(4);
    EXPECT_EQ(map.numClusters(), 4u);
    EXPECT_EQ(map.numNodes(), 4u);
    EXPECT_TRUE(map.complete());
    for (std::size_t c = 0; c < 4; ++c) {
        ASSERT_EQ(map.replicaCount(c), 1u);
        EXPECT_EQ(map.replicas(c)[0], static_cast<std::uint32_t>(c));
    }

    // Cluster 1 gains a replica on node 4: still complete (nodes are a
    // permutation of 0..4), replica order preserved.
    map.assign(1, 4);
    EXPECT_EQ(map.numNodes(), 5u);
    EXPECT_TRUE(map.complete());
    ASSERT_EQ(map.replicaCount(1), 2u);
    EXPECT_EQ(map.replicas(1)[1], 4u);
    EXPECT_THROW(map.assign(1, 4), std::invalid_argument);

    // A gap (node 6 without node 5) breaks completeness.
    serve::ReplicaMap sparse;
    sparse.assign(0, 0);
    sparse.assign(1, 6);
    EXPECT_FALSE(sparse.complete());
}

TEST(ReplicaMap, ParseSpec)
{
    std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
    ASSERT_TRUE(serve::ReplicaMap::parseSpec("0:2,3:3", out));
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (std::pair<std::uint32_t, std::uint32_t>{0, 2}));
    EXPECT_EQ(out[1], (std::pair<std::uint32_t, std::uint32_t>{3, 3}));
    ASSERT_TRUE(serve::ReplicaMap::parseSpec("5:1", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("1", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("1:", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec(":2", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("1:2,", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("a:2", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("1:b", out));
    EXPECT_FALSE(serve::ReplicaMap::parseSpec("-1:2", out));
}

TEST(ReplicaMap, PlanFromLoadPicksHotClusters)
{
    serve::LoadReport report;
    report.zipf_exponent = 1.0;
    for (std::uint32_t c = 0; c < 4; ++c) {
        serve::ClusterLoad load;
        load.cluster = c;
        load.deep_requests = c == 0 ? 100 : 10;
        report.clusters.push_back(load);
    }
    serve::ReplicationPolicy policy;
    policy.min_deep_requests = 1;
    auto plan = serve::ReplicaMap::planFromLoad(report, policy);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].cluster, 0u);
    EXPECT_EQ(plan[0].extras, 1u); // cap 2 replicas: 1 extra

    // A flat fleet (no Zipf skew) never replicates.
    report.zipf_exponent = 0.0;
    EXPECT_TRUE(serve::ReplicaMap::planFromLoad(report, policy).empty());

    // An already-replicated hot cluster is not replicated past the cap.
    report.zipf_exponent = 1.0;
    report.clusters[0].replicas = 2;
    EXPECT_TRUE(serve::ReplicaMap::planFromLoad(report, policy).empty());
}

TEST(HermesBroker, ReplicatedMatchesReference)
{
    // Replication + p2c routing + (windowed) hedging are scheduling
    // changes only: replicas serve the same immutable shard, so results
    // under concurrent load stay bit-identical to the reference.
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.replicate = {{0, 2}, {1, 2}};
    serve::HermesBroker broker(*data.store, config);
    EXPECT_EQ(broker.numNodes(), data.store->numClusters() + 2);
    EXPECT_EQ(broker.numClusters(), data.store->numClusters());
    EXPECT_EQ(broker.replicaCount(0), 2u);
    EXPECT_EQ(broker.replicaCount(2), 1u);
    core::HermesSearch reference(*data.store);

    std::vector<vecstore::HitList> expected;
    for (std::size_t q = 0; q < 32; ++q)
        expected.push_back(
            reference.search(data.queries.embeddings.row(q), 5).hits);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (std::size_t q = t; q < 32; q += 4) {
                auto hits =
                    broker.search(data.queries.embeddings.row(q), 5);
                if (hits.size() != expected[q].size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t i = 0; i < hits.size(); ++i) {
                    if (hits[i].id != expected[q][i].id ||
                        hits[i].score != expected[q][i].score)
                        ++mismatches;
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);

    // p2c actually spreads the replicated clusters' probes: both copies
    // of cluster 0 saw traffic (the replica is node 6, appended after
    // the six primaries). 32 queries route 32 sample probes over two
    // idle replicas chosen uniformly — a starved copy is a router bug.
    auto stats = broker.stats();
    ASSERT_EQ(stats.nodes.size(), 8u);
    ASSERT_EQ(stats.node_clusters.size(), 8u);
    EXPECT_EQ(stats.node_clusters[6], 0u);
    EXPECT_EQ(stats.node_clusters[7], 1u);
    EXPECT_GT(stats.nodes[0].requests, 0u);
    EXPECT_GT(stats.nodes[6].requests, 0u);
    EXPECT_GT(stats.nodes[7].requests, 0u);
}

TEST(HermesBroker, HedgeFiresAndMatchesUnhedged)
{
    // Cluster 0's primary is slow (every request +30 ms); its replica is
    // clean. Probes routed to the slow copy outlive the trigger, hedge
    // to the clean copy, and the hedge wins — while every answer stays
    // bit-identical to the unhedged reference (first-response-wins over
    // bit-identical replicas cannot change results).
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node_faults.resize(1);
    config.node_faults[0].delay_probability = 1.0;
    config.node_faults[0].delay_ms = 30.0;
    config.hedge.min_samples = 4;
    config.hedge.quantile = 50.0;
    config.hedge.min_trigger_us = 1000.0;
    serve::HermesBroker broker(*data.store, config);
    // The replica must not inherit the delay: attach a clean node.
    serve::NodeConfig clean;
    clean.node_id = broker.numNodes();
    broker.addReplica(0, std::make_unique<serve::LocalNodeClient>(
                             data.store->clusterIndex(0), clean));
    ASSERT_EQ(broker.replicaCount(0), 2u);
    core::HermesSearch reference(*data.store);

    for (std::size_t q = 0; q < 40; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q % 32), 5);
        auto expected =
            reference.search(data.queries.embeddings.row(q % 32), 5);
        ASSERT_EQ(hits.size(), expected.hits.size()) << "query " << q;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].id, expected.hits[i].id) << "query " << q;
            EXPECT_EQ(hits[i].score, expected.hits[i].score)
                << "query " << q;
        }
    }

    // ~half the probes to cluster 0 land on the slow primary and must
    // have hedged to (and been won by) the clean replica.
    auto stats = broker.stats();
    EXPECT_GT(stats.hedges_issued, 0u);
    EXPECT_GT(stats.hedges_won, 0u);
    EXPECT_GE(stats.hedges_issued, stats.hedges_won + stats.hedges_wasted);
    EXPECT_EQ(stats.failures, 0u);
}

TEST(HermesBroker, DeadReplicaFailsOverToSurvivor)
{
    // Cluster 0's primary drops every request (a dead process): sample
    // probes hedge over to the surviving replica, deep requests time out
    // and rotate their retry to it — queries keep returning the full,
    // bit-identical top-k with no degradation in the answer.
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node_faults.resize(1);
    config.node_faults[0].drop_probability = 1.0;
    config.node_deadline_ms = 150.0;
    config.max_retries = 1;
    config.hedge.min_samples = 4;
    config.hedge.min_trigger_us = 500.0;
    serve::HermesBroker broker(*data.store, config);
    serve::NodeConfig clean;
    clean.node_id = broker.numNodes();
    broker.addReplica(0, std::make_unique<serve::LocalNodeClient>(
                             data.store->clusterIndex(0), clean));
    core::HermesSearch reference(*data.store);

    for (std::size_t q = 0; q < 12; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q), 5);
        auto expected =
            reference.search(data.queries.embeddings.row(q), 5);
        ASSERT_EQ(hits.size(), expected.hits.size()) << "query " << q;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].id, expected.hits[i].id) << "query " << q;
            EXPECT_EQ(hits[i].score, expected.hits[i].score)
                << "query " << q;
        }
    }
    // The dead primary cost timeouts or hedges, never answers.
    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 12u);
    EXPECT_GT(stats.hedges_issued + stats.timeouts, 0u);
}

TEST(HermesBroker, LoadReportExposesReplicasAndHedges)
{
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.replicate = {{0, 2}};
    serve::HermesBroker broker(*data.store, config);
    for (std::size_t q = 0; q < 8; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto load = broker.loadReport();
    ASSERT_EQ(load.clusters.size(), data.store->numClusters());
    EXPECT_EQ(load.clusters[0].replicas, 2u);
    ASSERT_EQ(load.clusters[0].replica_routes.size(), 2u);
    EXPECT_EQ(load.clusters[1].replicas, 1u);
    // Both copies of cluster 0 were routed probes (8 queries, uniform
    // p2c over idle queues).
    EXPECT_GT(load.clusters[0].replica_routes[0] +
                  load.clusters[0].replica_routes[1],
              0u);
    auto json = load.toJson();
    EXPECT_NE(json.find("\"replicas\""), std::string::npos);
    EXPECT_NE(json.find("\"replica_routes\""), std::string::npos);
    EXPECT_NE(json.find("\"hedges_issued\""), std::string::npos);
    EXPECT_NE(json.find("\"hedges_won\""), std::string::npos);
    EXPECT_NE(json.find("\"hedges_wasted\""), std::string::npos);
}

TEST(HermesBroker, AutoReplicateAddsReplicasForHotCluster)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);
    for (std::size_t q = 0; q < 32; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    // Permissive policy: any above-average cluster counts as hot, no
    // traffic or skew floor — 64 deep requests over 6 clusters cannot
    // be exactly flat, so the plan adds at least one replica.
    serve::ReplicationPolicy policy;
    policy.hot_share_ratio = 1.0;
    policy.min_deep_requests = 1;
    policy.min_zipf_exponent = 0.0;
    std::size_t added = broker.autoReplicate(policy);
    EXPECT_GE(added, 1u);
    EXPECT_GT(broker.numNodes(), data.store->numClusters());

    // The grown fleet still answers bit-identically.
    for (std::size_t q = 0; q < 32; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q), 5);
        auto expected =
            reference.search(data.queries.embeddings.row(q), 5);
        ASSERT_EQ(hits.size(), expected.hits.size()) << "query " << q;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].id, expected.hits[i].id) << "query " << q;
            EXPECT_EQ(hits[i].score, expected.hits[i].score)
                << "query " << q;
        }
    }
}

TEST(HermesBroker, AdaptiveConfigPrunesDeepRequests)
{
    const auto &data = serveData();
    core::HermesConfig config = data.config;
    config.adaptive_epsilon = 0.05;
    auto store = core::DistributedStore::build(data.corpus.embeddings,
                                               config);
    serve::HermesBroker broker(store);

    for (std::size_t q = 0; q < 16; ++q)
        broker.search(data.queries.embeddings.row(q), 5);
    auto stats = broker.stats();
    EXPECT_LE(stats.deep_requests, 16u * config.clusters_to_search);
    EXPECT_GE(stats.deep_requests, 16u);
}

} // namespace
