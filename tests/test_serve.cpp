/**
 * @file
 * Tests for the online serving layer: retrieval nodes and the Hermes
 * broker — correctness against the in-process search strategy, queue
 * behaviour, concurrency, and statistics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "index/flat_index.hpp"
#include "serve/broker.hpp"
#include "serve/node.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

struct ServeData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const ServeData &
serveData()
{
    static ServeData data = [] {
        ServeData out;
        workload::CorpusConfig cc;
        cc.num_docs = 4000;
        cc.dim = 16;
        cc.num_topics = 12;
        cc.seed = 55;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 32;
        qc.seed = 56;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 6;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 16;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

TEST(RetrievalNode, ServesSubmittedRequests)
{
    const auto &data = serveData();
    serve::RetrievalNode node(data.store->clusterIndex(0), {});

    index::SearchParams params;
    params.nprobe = 4;
    auto future = node.submit(data.queries.embeddings.row(0), 3, params);
    auto response = future.get();
    EXPECT_LE(response.hits.size(), 3u);
    EXPECT_GT(response.stats.vectors_scanned, 0u);

    auto stats = node.stats();
    EXPECT_EQ(stats.requests, 1u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_EQ(stats.vectors_scanned, response.stats.vectors_scanned);
}

TEST(RetrievalNode, MatchesDirectIndexSearch)
{
    const auto &data = serveData();
    const auto &shard = data.store->clusterIndex(1);
    serve::RetrievalNode node(shard, {});

    index::SearchParams params;
    params.nprobe = 8;
    for (std::size_t q = 0; q < 8; ++q) {
        auto via_node =
            node.submit(data.queries.embeddings.row(q), 5, params).get();
        auto direct = shard.search(data.queries.embeddings.row(q), 5,
                                   params);
        ASSERT_EQ(via_node.hits.size(), direct.size());
        for (std::size_t i = 0; i < direct.size(); ++i) {
            EXPECT_EQ(via_node.hits[i].id, direct[i].id);
            EXPECT_FLOAT_EQ(via_node.hits[i].score, direct[i].score);
        }
    }
}

TEST(RetrievalNode, BatchesQueuedRequests)
{
    const auto &data = serveData();
    serve::NodeConfig config;
    config.max_batch = 16;
    serve::RetrievalNode node(data.store->clusterIndex(0), config);

    index::SearchParams params;
    params.nprobe = 2;
    std::vector<std::future<serve::NodeResponse>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(
            node.submit(data.queries.embeddings.row(i % 32), 2, params));
    for (auto &future : futures)
        future.get();

    auto stats = node.stats();
    EXPECT_EQ(stats.requests, 64u);
    // Worker drains multiple requests per round once the queue backs up.
    EXPECT_LE(stats.batches, 64u);
}

TEST(HermesBroker, MatchesInProcessHermesSearch)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);

    for (std::size_t q = 0; q < data.queries.embeddings.rows(); ++q) {
        std::vector<std::uint32_t> deep;
        auto via_broker =
            broker.search(data.queries.embeddings.row(q), 5, deep);
        auto expected =
            reference.search(data.queries.embeddings.row(q), 5);

        ASSERT_EQ(via_broker.size(), expected.hits.size()) << "query " << q;
        for (std::size_t i = 0; i < expected.hits.size(); ++i) {
            EXPECT_EQ(via_broker[i].id, expected.hits[i].id);
            EXPECT_FLOAT_EQ(via_broker[i].score, expected.hits[i].score);
        }
        // Same clusters chosen (order may match as both sort by score).
        EXPECT_EQ(deep, expected.deep_clusters);
    }
}

TEST(HermesBroker, StatsAccumulate)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    for (std::size_t q = 0; q < 10; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 10u);
    EXPECT_EQ(stats.deep_requests,
              10u * data.config.clusters_to_search);
    ASSERT_EQ(stats.nodes.size(), data.store->numClusters());
    // Every node sampled every query (plus its share of deep requests).
    for (const auto &node : stats.nodes)
        EXPECT_GE(node.requests, 10u);
}

TEST(HermesBroker, ConcurrentClientsGetConsistentResults)
{
    const auto &data = serveData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);

    // Precompute expected results.
    std::vector<vecstore::HitList> expected;
    for (std::size_t q = 0; q < 16; ++q)
        expected.push_back(
            reference.search(data.queries.embeddings.row(q), 5).hits);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (std::size_t q = t; q < 16; q += 4) {
                auto hits =
                    broker.search(data.queries.embeddings.row(q), 5);
                if (hits.size() != expected[q].size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t i = 0; i < hits.size(); ++i) {
                    if (hits[i].id != expected[q][i].id)
                        ++mismatches;
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(broker.stats().queries, 16u);
}

TEST(RetrievalNode, MicroBatchCoalescesAndMatchesDirectSearch)
{
    const auto &data = serveData();
    const auto &shard = data.store->clusterIndex(0);
    serve::NodeConfig config;
    config.max_batch = 32;
    config.batch_window_us = 20000.0; // 20 ms: plenty to co-batch
    serve::RetrievalNode node(shard, config);

    index::SearchParams params;
    params.nprobe = 4;
    // Mixed k values in the same drain: the node groups compatible
    // requests and must still answer each with its own k.
    std::vector<std::size_t> ks;
    std::vector<std::future<serve::NodeResponse>> futures;
    for (std::size_t q = 0; q < 24; ++q) {
        std::size_t k = q % 3 == 0 ? 3 : 5;
        ks.push_back(k);
        futures.push_back(
            node.submit(data.queries.embeddings.row(q), k, params));
    }
    for (std::size_t q = 0; q < futures.size(); ++q) {
        auto response = futures[q].get();
        auto direct =
            shard.search(data.queries.embeddings.row(q), ks[q], params);
        ASSERT_EQ(response.hits.size(), direct.size()) << "query " << q;
        for (std::size_t i = 0; i < direct.size(); ++i) {
            EXPECT_EQ(response.hits[i].id, direct[i].id)
                << "query " << q << " rank " << i;
            EXPECT_EQ(response.hits[i].score, direct[i].score)
                << "query " << q << " rank " << i;
        }
    }
    auto stats = node.stats();
    EXPECT_EQ(stats.requests, 24u);
    // The window must have coalesced the burst into far fewer drains.
    EXPECT_LE(stats.batches, 12u);
}

TEST(HermesBroker, MicroBatchingMatchesWindowZeroResults)
{
    // Opt-in micro-batching is a scheduling change only: under
    // concurrent clients the batched broker must return bit-identical
    // results to the in-process reference (same contract the window=0
    // broker is held to above).
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node.batch_window_us = 500.0;
    config.node.max_batch = 16;
    serve::HermesBroker broker(*data.store, config);
    core::HermesSearch reference(*data.store);

    std::vector<vecstore::HitList> expected;
    for (std::size_t q = 0; q < 16; ++q)
        expected.push_back(
            reference.search(data.queries.embeddings.row(q), 5).hits);

    std::atomic<int> mismatches{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            for (std::size_t q = t; q < 16; q += 4) {
                auto hits =
                    broker.search(data.queries.embeddings.row(q), 5);
                if (hits.size() != expected[q].size()) {
                    ++mismatches;
                    continue;
                }
                for (std::size_t i = 0; i < hits.size(); ++i) {
                    if (hits[i].id != expected[q][i].id ||
                        hits[i].score != expected[q][i].score)
                        ++mismatches;
                }
            }
        });
    }
    for (auto &client : clients)
        client.join();
    EXPECT_EQ(mismatches.load(), 0);
    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 16u);
    EXPECT_EQ(stats.timeouts, 0u);
    EXPECT_EQ(stats.degraded_queries, 0u);
}

TEST(HermesBroker, PathologicalWindowStillHonorsDeadlines)
{
    // A window longer than the node deadline must not hang or throw:
    // the deadline clock starts at submit and covers queue time, so the
    // query times out, retries, and degrades exactly as a dead node
    // would under PR 1 semantics.
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node.batch_window_us = 400000.0; // 0.4 s hold
    config.node_deadline_ms = 60.0;
    config.max_retries = 0;
    serve::HermesBroker broker(*data.store, config);

    auto hits = broker.search(data.queries.embeddings.row(0), 5);
    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_EQ(stats.degraded_queries, 1u);
    // Nothing arrived in time, so the degraded answer may be empty —
    // but the call returned within deadlines instead of blocking on the
    // window.
    EXPECT_LE(hits.size(), 5u);
}

TEST(HermesBroker, LoadReportExposesBatchOccupancy)
{
    const auto &data = serveData();
    serve::BrokerConfig config;
    config.node.batch_window_us = 500.0;
    serve::HermesBroker broker(*data.store, config);
    for (std::size_t q = 0; q < 8; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto load = broker.loadReport();
    ASSERT_EQ(load.clusters.size(), data.store->numClusters());
    for (const auto &cluster : load.clusters)
        EXPECT_GE(cluster.batch_occupancy, 1.0);
    EXPECT_NE(load.toJson().find("\"batch_occupancy\""),
              std::string::npos);
}

TEST(HermesBroker, AdaptiveConfigPrunesDeepRequests)
{
    const auto &data = serveData();
    core::HermesConfig config = data.config;
    config.adaptive_epsilon = 0.05;
    auto store = core::DistributedStore::build(data.corpus.embeddings,
                                               config);
    serve::HermesBroker broker(store);

    for (std::size_t q = 0; q < 16; ++q)
        broker.search(data.queries.embeddings.row(q), 5);
    auto stats = broker.stats();
    EXPECT_LE(stats.deep_requests, 16u * config.clusters_to_search);
    EXPECT_GE(stats.deep_requests, 16u);
}

} // namespace
