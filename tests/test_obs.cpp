/**
 * @file
 * Tests for the observability subsystem: metrics registry (counters,
 * gauges, log-spaced histograms, JSON/Prometheus export), rolling
 * windowed metrics, the embedded HTTP exporter, process self-stats,
 * per-query trace spans (structural nesting across broker/node/index
 * layers), the broker's fleet LoadReport, and the bit-parity guarantee
 * that instrumentation never changes results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <unistd.h>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "obs/exporter.hpp"
#include "obs/metric_names.hpp"
#include "obs/obs.hpp"
#include "obs/perf.hpp"
#include "obs/process_stats.hpp"
#include "serve/broker.hpp"
#include "util/minijson.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

// ---------------------------------------------------------------------------
// Histogram buckets and percentiles
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundsAreMonotonic)
{
    double prev = 0.0;
    for (std::size_t i = 0; i < obs::Histogram::kNumBounds; ++i) {
        double bound = obs::Histogram::bucketUpperBound(i);
        EXPECT_GT(bound, prev) << "bucket " << i;
        prev = bound;
    }
    EXPECT_GT(obs::Histogram::bucketUpperBound(
                  obs::Histogram::kNumBounds),
              1e300); // overflow bucket is unbounded
}

TEST(ObsHistogram, BucketIndexMatchesBounds)
{
    for (std::size_t i = 0; i < obs::Histogram::kNumBounds; ++i) {
        double bound = obs::Histogram::bucketUpperBound(i);
        // Buckets are upper-exclusive: a value just below the bound lands
        // in bucket i, just above lands strictly later. (A bucket spans
        // a 10^0.25 ~ 1.78x range, so 1% offsets stay within one bucket
        // of the bound despite log/pow rounding.)
        EXPECT_LE(obs::Histogram::bucketIndex(bound * 0.99), i);
        EXPECT_GT(obs::Histogram::bucketIndex(bound * 1.01), i);
    }
    // Tiny and negative values clamp into the first bucket.
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(-5.0), 0u);
    // Huge values land in the overflow bucket.
    EXPECT_EQ(obs::Histogram::bucketIndex(1e12),
              obs::Histogram::kNumBuckets - 1);
}

TEST(ObsHistogram, EmptySnapshotIsZero)
{
    obs::Histogram h;
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.percentile(50), 0.0);
    EXPECT_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogram, SingleSamplePercentilesAreExact)
{
    obs::Histogram h;
    h.observe(123.0);
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.min, 123.0);
    EXPECT_DOUBLE_EQ(snap.max, 123.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0), 123.0);
    EXPECT_DOUBLE_EQ(snap.percentile(50), 123.0);
    EXPECT_DOUBLE_EQ(snap.percentile(100), 123.0);
}

TEST(ObsHistogram, PercentilesBoundedAndOrdered)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i)); // 1..1000 us
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 1000.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(snap.percentile(100), 1000.0);

    double p50 = snap.percentile(50);
    double p95 = snap.percentile(95);
    double p99 = snap.percentile(99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, snap.min);
    EXPECT_LE(p99, snap.max);
    // Log-bucket interpolation error is bounded by one bucket width
    // (~78% relative at 4 buckets/decade); sanity-check the ballpark.
    EXPECT_GT(p50, 250.0);
    EXPECT_LT(p50, 1000.0);
}

TEST(ObsHistogram, ResetZeroesInPlace)
{
    obs::Histogram h;
    h.observe(5.0);
    h.observe(50.0);
    h.reset();
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0.0);
    for (auto b : snap.buckets)
        EXPECT_EQ(b, 0u);
}

TEST(ObsLatencySummary, FromSnapshot)
{
    obs::Histogram h;
    for (int i = 0; i < 100; ++i)
        h.observe(10.0);
    auto summary = obs::LatencySummary::from(h.snapshot());
    EXPECT_EQ(summary.count, 100u);
    EXPECT_DOUBLE_EQ(summary.mean_us, 10.0);
    EXPECT_DOUBLE_EQ(summary.max_us, 10.0);
    EXPECT_DOUBLE_EQ(summary.p50_us, 10.0);
    EXPECT_DOUBLE_EQ(summary.p99_us, 10.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ReferencesAreStableAcrossLookupsAndReset)
{
    auto &reg = obs::Registry::instance();
    auto &c1 = reg.counter("test.stable_counter");
    auto &c2 = reg.counter("test.stable_counter");
    EXPECT_EQ(&c1, &c2);

    c1.add(7);
    EXPECT_EQ(c2.value(), 7u);
    reg.reset();
    EXPECT_EQ(c1.value(), 0u);
    EXPECT_EQ(&reg.counter("test.stable_counter"), &c1);
}

TEST(ObsRegistry, HasHistogram)
{
    auto &reg = obs::Registry::instance();
    EXPECT_FALSE(reg.hasHistogram("test.never_created"));
    reg.histogram("test.created_us");
    EXPECT_TRUE(reg.hasHistogram("test.created_us"));
}

TEST(ObsRegistry, ConcurrentUpdatesAreExact)
{
    auto &reg = obs::Registry::instance();
    auto &counter = reg.counter("test.concurrent_counter");
    auto &hist = reg.histogram("test.concurrent_us");
    counter.reset();
    hist.reset();

    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kPerThread; ++i) {
                counter.add(1);
                hist.observe(static_cast<double>(t * kPerThread + i % 997) +
                             1.0);
            }
        });
    }
    go.store(true, std::memory_order_release);

    // Take snapshots while writers are running: must never crash, and
    // every snapshot must be internally plausible.
    for (int i = 0; i < 50; ++i) {
        auto snap = hist.snapshot();
        EXPECT_LE(snap.count,
                  static_cast<std::uint64_t>(kThreads * kPerThread));
        if (snap.count > 0) {
            EXPECT_GE(snap.max, snap.min);
            double p50 = snap.percentile(50);
            EXPECT_GE(p50, snap.min);
            EXPECT_LE(p50, snap.max);
        }
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    auto snap = hist.snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
    std::uint64_t bucket_total = 0;
    for (auto b : snap.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsRegistry, JsonAndPrometheusExport)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.export_counter").add(3);
    reg.gauge("test.export_gauge").set(1.5);
    auto &h = reg.histogram("test.export_us");
    h.reset();
    h.observe(42.0);

    auto json = reg.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("test.export_counter"), std::string::npos);
    EXPECT_NE(json.find("test.export_us"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    auto prom = reg.toPrometheus();
    EXPECT_NE(prom.find("hermes_test_export_counter"), std::string::npos);
    EXPECT_NE(prom.find("hermes_test_export_us_bucket"), std::string::npos);
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(prom.find("hermes_test_export_us_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Windowed metrics (deterministic via injected epochs)
// ---------------------------------------------------------------------------

TEST(ObsWindow, WindowedCounterTracksRecentSeconds)
{
    obs::Counter total;
    obs::WindowedCounter wc(total);
    wc.add(5, 100);
    wc.add(3, 101);
    wc.add(2, 105);

    EXPECT_EQ(wc.value(), 10u); // cumulative sees every add
    EXPECT_EQ(wc.deltaInWindow(10, 105), 10u);
    EXPECT_EQ(wc.deltaInWindow(3, 105), 2u); // only epochs 103..105
    EXPECT_EQ(wc.deltaInWindow(10, 200), 0u); // window moved past all
    EXPECT_DOUBLE_EQ(wc.ratePerSecond(10, 105), 1.0);

    wc.resetWindow();
    EXPECT_EQ(wc.deltaInWindow(10, 105), 0u);
    EXPECT_EQ(wc.value(), 10u); // cumulative untouched by window reset
}

TEST(ObsWindow, WindowedCounterSlotRelabelsAfterFullRevolution)
{
    obs::Counter total;
    obs::WindowedCounter wc(total);
    wc.add(7, 5);
    // One full ring revolution later the same slot is re-labelled; the
    // old second's events must not leak into the new window.
    const auto next =
        static_cast<std::int64_t>(5 + obs::WindowedCounter::kSlots);
    wc.add(9, next);
    EXPECT_EQ(wc.deltaInWindow(obs::WindowedCounter::kSlots, next), 9u);
    EXPECT_EQ(wc.value(), 16u);
}

TEST(ObsWindow, WindowedHistogramPercentilesOverWindow)
{
    obs::Histogram cumulative;
    obs::WindowedHistogram wh(cumulative);
    for (int i = 0; i < 100; ++i)
        wh.observe(10.0, 50);
    for (int i = 0; i < 100; ++i)
        wh.observe(1000.0, 55);

    EXPECT_EQ(cumulative.count(), 200u);

    // A 3 s window at t=56 sees only the 1000 us batch.
    auto recent = wh.windowSnapshot(3, 56);
    EXPECT_EQ(recent.count, 100u);
    EXPECT_GT(recent.percentile(50), 500.0);
    EXPECT_GE(recent.min, 10.0);
    EXPECT_LE(recent.max, cumulative.snapshot().max);

    // A wide window sees both; an expired window sees nothing.
    EXPECT_EQ(wh.windowSnapshot(60, 56).count, 200u);
    EXPECT_EQ(wh.windowSnapshot(10, 300).count, 0u);

    wh.resetWindow();
    EXPECT_EQ(wh.windowSnapshot(60, 56).count, 0u);
    EXPECT_EQ(cumulative.count(), 200u);
}

TEST(ObsWindow, RegistryWindowedMetricsWrapSameCumulative)
{
    auto &reg = obs::Registry::instance();
    auto &wc = reg.windowedCounter("test.windowed_wrap");
    auto &wc2 = reg.windowedCounter("test.windowed_wrap");
    EXPECT_EQ(&wc, &wc2); // stable reference, like plain metrics

    wc.add(4);
    // The plain counter of the same name IS the cumulative side, so
    // existing lookups and exports keep working unchanged.
    EXPECT_EQ(reg.counter("test.windowed_wrap").value(), 4u);

    auto &wh = reg.windowedHistogram("test.windowed_wrap_us");
    wh.observe(5.0);
    EXPECT_TRUE(reg.hasHistogram("test.windowed_wrap_us"));
    EXPECT_EQ(reg.histogram("test.windowed_wrap_us").count(), 1u);
    EXPECT_EQ(&wh.cumulative(), &reg.histogram("test.windowed_wrap_us"));
}

TEST(ObsWindow, ConcurrentWritersWindowedMatchesCumulative)
{
    obs::Counter total;
    obs::WindowedCounter wc(total);
    obs::Histogram cumulative;
    obs::WindowedHistogram wh(cumulative);

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    constexpr std::int64_t kEpoch = 42; // fixed: no rotation races
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kPerThread; ++i) {
                wc.add(1, kEpoch);
                wh.observe(static_cast<double>(i % 997) + 1.0, kEpoch);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto &thread : threads)
        thread.join();

    const auto expected =
        static_cast<std::uint64_t>(kThreads * kPerThread);
    EXPECT_EQ(wc.value(), expected);
    EXPECT_EQ(wc.deltaInWindow(10, kEpoch), expected);
    EXPECT_EQ(cumulative.count(), expected);
    auto window = wh.windowSnapshot(10, kEpoch);
    EXPECT_EQ(window.count, expected);
    EXPECT_DOUBLE_EQ(window.sum, cumulative.snapshot().sum);
}

TEST(ObsWindow, ExportsCarryWindowedSeries)
{
    auto &reg = obs::Registry::instance();
    reg.windowedCounter("test.win_export").add(2);
    reg.windowedHistogram("test.win_export_us").observe(10.0);

    auto json = reg.toJson();
    EXPECT_NE(json.find("\"windows\""), std::string::npos);
    EXPECT_NE(json.find("rate_per_s"), std::string::npos);
    auto parsed = util::json::parse(json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_NE(parsed.value.at({"windows", "test.win_export"}), nullptr);
    ASSERT_NE(parsed.value.at({"windows", "test.win_export_us"}), nullptr);
    // The cumulative sections still carry the same names.
    ASSERT_NE(parsed.value.at({"counters", "test.win_export"}), nullptr);
    ASSERT_NE(parsed.value.at({"histograms", "test.win_export_us"}),
              nullptr);

    auto prom = reg.toPrometheus();
    EXPECT_NE(prom.find("hermes_test_win_export_rate_10s"),
              std::string::npos);
    EXPECT_NE(prom.find("hermes_test_win_export_us_p50_10s"),
              std::string::npos);
    EXPECT_NE(prom.find("hermes_test_win_export_us_count_10s"),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus exposition correctness
// ---------------------------------------------------------------------------

TEST(ObsPrometheus, BucketSeriesIsCumulativeAndEndsAtCount)
{
    auto &reg = obs::Registry::instance();
    auto &h = reg.histogram("test.prom_buckets_us");
    h.reset();
    for (double v : {0.5, 3.0, 3.0, 120.0, 8000.0, 1e12})
        h.observe(v); // spread across buckets incl. the overflow

    auto prom = reg.toPrometheus();
    const std::string bucket_prefix = "hermes_test_prom_buckets_us_bucket";
    std::istringstream lines(prom);
    std::string line;
    std::vector<std::uint64_t> cumulative;
    bool saw_inf = false;
    while (std::getline(lines, line)) {
        if (line.rfind(bucket_prefix, 0) != 0)
            continue;
        if (line.find("le=\"+Inf\"") != std::string::npos)
            saw_inf = true;
        std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos);
        cumulative.push_back(std::stoull(line.substr(space + 1)));
    }
    ASSERT_EQ(cumulative.size(), obs::Histogram::kNumBuckets);
    EXPECT_TRUE(saw_inf);
    for (std::size_t i = 1; i < cumulative.size(); ++i)
        EXPECT_GE(cumulative[i], cumulative[i - 1]) << "bucket " << i;
    // The +Inf bucket equals _count — the Prometheus histogram contract.
    EXPECT_EQ(cumulative.back(), 6u);
    EXPECT_NE(prom.find("hermes_test_prom_buckets_us_count 6"),
              std::string::npos);
}

TEST(ObsPrometheus, MetricNamesAreSanitized)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.weird-name:1 space").add(1);
    auto prom = reg.toPrometheus();
    EXPECT_NE(prom.find("hermes_test_weird_name_1_space 1"),
              std::string::npos);
    // No raw separator characters survive in any series name.
    std::istringstream lines(prom);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("hermes_", 0) != 0)
            continue;
        std::string name = line.substr(0, line.find_first_of(" {"));
        EXPECT_EQ(name.find_first_of(".:- "), std::string::npos)
            << "unsanitized name: " << name;
    }
}

// ---------------------------------------------------------------------------
// Process self-stats and atomic file export
// ---------------------------------------------------------------------------

TEST(ObsProcessStats, SelfStatsArePlausible)
{
    auto stats = obs::readProcessStats();
    ASSERT_TRUE(stats.valid);
    EXPECT_GT(stats.rss_bytes, 0u);
    EXPECT_GE(stats.cpu_user_seconds + stats.cpu_system_seconds, 0.0);
    EXPECT_GE(stats.threads, 1u);
    EXPECT_GT(stats.uptime_seconds, 0.0);

    obs::updateProcessGauges();
    auto &reg = obs::Registry::instance();
    EXPECT_GT(reg.gauge(obs::names::kProcessRssBytes).value(), 0.0);
    EXPECT_GE(reg.gauge(obs::names::kProcessThreads).value(), 1.0);
}

TEST(ObsRegistry, FileWritesAreAtomicAndParse)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.atomic_write").add(1);

    auto dir = std::filesystem::temp_directory_path();
    auto json_path = (dir / "hermes_test_metrics.json").string();
    auto prom_path = (dir / "hermes_test_metrics.prom").string();
    ASSERT_TRUE(reg.writeJson(json_path));
    ASSERT_TRUE(reg.writePrometheus(prom_path));

    // Temp-and-rename: the final files exist, the temps do not.
    EXPECT_TRUE(std::filesystem::exists(json_path));
    EXPECT_TRUE(std::filesystem::exists(prom_path));
    EXPECT_FALSE(std::filesystem::exists(json_path + ".tmp"));
    EXPECT_FALSE(std::filesystem::exists(prom_path + ".tmp"));

    std::ifstream in(json_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto parsed = util::json::parse(buffer.str());
    EXPECT_TRUE(parsed.ok) << parsed.error;
    EXPECT_NE(parsed.value.at({"counters", "test.atomic_write"}), nullptr);

    std::filesystem::remove(json_path);
    std::filesystem::remove(prom_path);
}

TEST(ObsRegistry, WriteToBadPathFailsCleanly)
{
    auto &reg = obs::Registry::instance();
    EXPECT_FALSE(reg.writeJson("/nonexistent-dir/metrics.json"));
}

// ---------------------------------------------------------------------------
// Embedded HTTP exporter
// ---------------------------------------------------------------------------

TEST(ObsExporter, ServesMetricsLoadAndHealth)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.exporter_counter").add(11);

    obs::Exporter exporter; // port 0: ephemeral
    exporter.setHandler("/load", [] {
        return std::string("{\"fleet\": \"ok\"}\n");
    });
    ASSERT_TRUE(exporter.start());
    ASSERT_NE(exporter.port(), 0);

    std::string body;
    std::string status;
    ASSERT_TRUE(obs::httpGet("127.0.0.1", exporter.port(), "/healthz",
                             &body, &status));
    EXPECT_EQ(body, "ok\n");

    ASSERT_TRUE(obs::httpGet("127.0.0.1", exporter.port(),
                             "/metrics.json", &body));
    auto parsed = util::json::parse(body);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    ASSERT_NE(parsed.value.at({"counters", "test.exporter_counter"}),
              nullptr);
    EXPECT_DOUBLE_EQ(
        parsed.value.at({"counters", "test.exporter_counter"})
            ->numberOr(0.0), 11.0);
    // Every scrape refreshes the process self-stats first.
    const auto *rss = parsed.value.at({"gauges", "process.rss_bytes"});
    ASSERT_NE(rss, nullptr);
    EXPECT_GT(rss->numberOr(0.0), 0.0);

    ASSERT_TRUE(obs::httpGet("127.0.0.1", exporter.port(), "/metrics",
                             &body));
    EXPECT_NE(body.find("hermes_test_exporter_counter"),
              std::string::npos);

    ASSERT_TRUE(obs::httpGet("127.0.0.1", exporter.port(), "/load",
                             &body));
    EXPECT_EQ(body, "{\"fleet\": \"ok\"}\n");

    // Unknown paths 404 (httpGet reports non-200 as failure).
    EXPECT_FALSE(obs::httpGet("127.0.0.1", exporter.port(), "/nope",
                              &body, &status));
    EXPECT_NE(status.find("404"), std::string::npos);

    exporter.stop();
    exporter.stop(); // idempotent
    EXPECT_FALSE(obs::httpGet("127.0.0.1", exporter.port(), "/healthz",
                              &body));
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledRecorderRecordsNothing)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.stop();
    rec.clear();
    EXPECT_FALSE(rec.sampleQuery());
    {
        obs::TraceContext ctx(rec.sampleQuery());
        obs::ScopedSpan span("test.noop");
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(rec.spanCount(), 0u);
}

TEST(ObsTrace, SamplingTracesOneInN)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(4);
    int sampled = 0;
    for (int i = 0; i < 16; ++i) {
        if (rec.sampleQuery())
            ++sampled;
    }
    EXPECT_EQ(sampled, 4);
    rec.stop();
}

TEST(ObsTrace, NestedSamplingDoesNotConsumeCounter)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(2); // trace every other query
    ASSERT_TRUE(rec.sampleQuery());
    {
        obs::TraceContext outer(true);
        // Nested entry points on a traced thread stay traced without
        // advancing the 1-in-N counter.
        EXPECT_TRUE(rec.sampleQuery());
        EXPECT_TRUE(rec.sampleQuery());
    }
    EXPECT_FALSE(rec.sampleQuery()); // next query: counter moved once
    rec.stop();
}

TEST(ObsTrace, ScopedSpanRecordsNameArgsAndDuration)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(1);
    {
        obs::TraceContext ctx(rec.sampleQuery());
        obs::ScopedSpan span("test.span");
        span.arg("k", std::uint64_t{5});
        span.arg("mode", std::string("unit"));
        obs::instantEvent("test.instant");
    }
    rec.stop();

    auto spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Instant is recorded first (inside the span's lifetime).
    EXPECT_EQ(spans[0].name, "test.instant");
    EXPECT_TRUE(spans[0].instant);
    EXPECT_EQ(spans[1].name, "test.span");
    EXPECT_FALSE(spans[1].instant);
    EXPECT_GE(spans[1].dur_us, 0.0);
    ASSERT_EQ(spans[1].args.size(), 2u);
    EXPECT_EQ(spans[1].args[0].key, "k");
    EXPECT_EQ(spans[1].args[0].value, "5");
    EXPECT_TRUE(spans[1].args[0].numeric);
    EXPECT_EQ(spans[1].args[1].key, "mode");
    EXPECT_FALSE(spans[1].args[1].numeric);
}

TEST(ObsTrace, ChromeTraceJsonShape)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(1);
    {
        obs::TraceContext ctx(rec.sampleQuery());
        obs::ScopedSpan span("test.json_span");
    }
    rec.stop();

    auto json = rec.toJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("test.json_span"), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

    auto path = std::filesystem::temp_directory_path() /
                "hermes_test_trace.json";
    ASSERT_TRUE(rec.writeChromeTrace(path.string()));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), json);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// End-to-end: traced broker query
// ---------------------------------------------------------------------------

struct ObsServeData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const ObsServeData &
obsServeData()
{
    static ObsServeData data = [] {
        ObsServeData out;
        workload::CorpusConfig cc;
        cc.num_docs = 3000;
        cc.dim = 16;
        cc.num_topics = 10;
        cc.seed = 77;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 16;
        qc.seed = 78;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 4;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 8;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

std::vector<obs::TraceSpan>
spansNamed(const std::vector<obs::TraceSpan> &spans, const std::string &name)
{
    std::vector<obs::TraceSpan> out;
    for (const auto &span : spans)
        if (span.name == name)
            out.push_back(span);
    return out;
}

TEST(ObsEndToEnd, TracedBrokerQueryProducesNestedSpans)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);

    auto &rec = obs::TraceRecorder::instance();
    rec.start(1); // trace every query
    broker.search(data.queries.embeddings.row(0), 5);
    rec.stop();

    auto spans = rec.snapshot();
    auto roots = spansNamed(spans, "broker.query");
    ASSERT_EQ(roots.size(), 1u);
    const auto &root = roots.front();

    auto samples = spansNamed(spans, "broker.sample");
    auto deeps = spansNamed(spans, "broker.deep");
    auto merges = spansNamed(spans, "broker.merge");
    ASSERT_EQ(samples.size(), 1u);
    ASSERT_EQ(deeps.size(), 1u);
    ASSERT_EQ(merges.size(), 1u);

    // Sampling broadcasts to every node; deep search hits
    // clusters_to_search of them.
    auto node_searches = spansNamed(spans, "node.search");
    EXPECT_EQ(node_searches.size(),
              data.store->numClusters() + data.config.clusters_to_search);
    auto ivf_searches = spansNamed(spans, "ivf.search");
    EXPECT_EQ(ivf_searches.size(), node_searches.size());
    EXPECT_FALSE(spansNamed(spans, "node.queue_wait").empty());

    // Phase spans nest inside the root query span on the same thread...
    const double slack_us = 1.0; // clock-read ordering slack
    for (const auto *phase : {&samples.front(), &deeps.front(),
                              &merges.front()}) {
        EXPECT_EQ(phase->tid, root.tid);
        EXPECT_GE(phase->ts_us, root.ts_us - slack_us);
        EXPECT_LE(phase->end_us(), root.end_us() + slack_us);
    }
    // ...and node/index work on the worker threads falls within the
    // query's time range.
    for (const auto &span : node_searches) {
        EXPECT_GE(span.ts_us, root.ts_us - slack_us);
        EXPECT_LE(span.end_us(), root.end_us() + slack_us);
    }
    for (const auto &span : ivf_searches) {
        EXPECT_GE(span.ts_us, root.ts_us - slack_us);
        EXPECT_LE(span.end_us(), root.end_us() + slack_us);
    }
}

TEST(ObsEndToEnd, QueryLatencyHistogramHasNonZeroPercentiles)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);
    for (std::size_t q = 0; q < 16; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto &reg = obs::Registry::instance();
    ASSERT_TRUE(reg.hasHistogram("broker.query_latency_us"));
    auto snap = reg.histogram("broker.query_latency_us").snapshot();
    EXPECT_GE(snap.count, 16u);
    EXPECT_GT(snap.percentile(50), 0.0);
    EXPECT_GT(snap.percentile(95), 0.0);
    EXPECT_GT(snap.percentile(99), 0.0);

    auto stats = broker.stats();
    EXPECT_EQ(stats.query_latency.count, snap.count);
    EXPECT_GT(stats.query_latency.p50_us, 0.0);
    EXPECT_GT(stats.sample_phase.p50_us, 0.0);
    EXPECT_GT(stats.deep_phase.p50_us, 0.0);

    // The registry JSON carries the same digests.
    auto json = reg.toJson();
    EXPECT_NE(json.find("broker.query_latency_us"), std::string::npos);
}

TEST(ObsEndToEnd, BrokerMatchesHermesSearchWithAndWithoutTracing)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);

    auto &rec = obs::TraceRecorder::instance();
    for (bool traced : {false, true}) {
        if (traced)
            rec.start(1);
        else
            rec.stop();
        for (std::size_t q = 0; q < 8; ++q) {
            auto via_broker =
                broker.search(data.queries.embeddings.row(q), 5);
            auto direct =
                reference.search(data.queries.embeddings.row(q), 5).hits;
            ASSERT_EQ(via_broker.size(), direct.size())
                << "traced=" << traced << " q=" << q;
            for (std::size_t i = 0; i < direct.size(); ++i) {
                EXPECT_EQ(via_broker[i].id, direct[i].id);
                EXPECT_FLOAT_EQ(via_broker[i].score, direct[i].score);
            }
        }
    }
    rec.stop();
}

// ---------------------------------------------------------------------------
// Fleet load report
// ---------------------------------------------------------------------------

TEST(ServeLoadReport, FitZipfExponentRecoversSlope)
{
    std::vector<double> zipfian;
    for (int r = 1; r <= 30; ++r)
        zipfian.push_back(1000.0 * std::pow(r, -1.2));
    EXPECT_NEAR(serve::fitZipfExponent(zipfian), 1.2, 0.01);

    std::vector<double> flat(10, 50.0);
    EXPECT_NEAR(serve::fitZipfExponent(flat), 0.0, 1e-9);

    // Degenerate inputs: fewer than two usable points.
    EXPECT_EQ(serve::fitZipfExponent({}), 0.0);
    EXPECT_EQ(serve::fitZipfExponent({5.0}), 0.0);
    EXPECT_EQ(serve::fitZipfExponent({5.0, 0.0, -1.0}), 0.0);
}

TEST(ServeLoadReport, BrokerLoadReportAccountsTraffic)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);

    // Repeat one query: its deep clusters take all the skewed load.
    constexpr std::size_t kQueries = 12;
    for (std::size_t i = 0; i < kQueries; ++i)
        broker.search(data.queries.embeddings.row(0), 5);

    auto report = broker.loadReport();
    EXPECT_EQ(report.queries, kQueries);
    EXPECT_GT(report.uptime_seconds, 0.0);
    ASSERT_EQ(report.clusters.size(), data.store->numClusters());

    // Per-cluster counters are process-wide (other tests also serve
    // this 4-cluster store), so assert floors, not exact counts.
    std::uint64_t sample_total = 0;
    std::uint64_t deep_total = 0;
    for (const auto &cluster : report.clusters) {
        sample_total += cluster.sample_requests;
        deep_total += cluster.deep_requests;
        EXPECT_GT(cluster.shard_vectors, 0u);
        EXPECT_GT(cluster.energy_joules, 0.0);
        EXPECT_GE(cluster.utilization, 0.0);
    }
    EXPECT_GE(sample_total, kQueries * data.store->numClusters());
    EXPECT_GE(deep_total, kQueries * data.config.clusters_to_search);
    EXPECT_GT(report.total_energy_joules, 0.0);

    // One repeated query concentrates deep load: max/mean must exceed
    // flat, and the imbalance stats must agree.
    EXPECT_GE(report.max_mean_ratio, 1.0);
    EXPECT_GE(report.zipf_exponent, 0.0);
    EXPECT_GE(report.deep_imbalance.variance, 0.0);

    // Windowed figures see the queries just issued.
    EXPECT_GT(report.window_qps, 0.0);
    EXPECT_GT(report.window_p99_us, 0.0);
    EXPECT_GT(report.cumulative_p99_us, 0.0);

    // The /load payload is valid JSON with the stable field names.
    auto parsed = util::json::parse(report.toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_DOUBLE_EQ(parsed.value.find("queries")->numberOr(0.0),
                     static_cast<double>(kQueries));
    const auto *clusters = parsed.value.find("clusters");
    ASSERT_NE(clusters, nullptr);
    ASSERT_EQ(clusters->size(), data.store->numClusters());
    ASSERT_NE(clusters->index(0)->find("deep_requests"), nullptr);
    ASSERT_NE(parsed.value.at({"deep_imbalance", "max_min_ratio"}),
              nullptr);
}

TEST(ServeLoadReport, CumulativeCountersAreMonotoneAcrossReports)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);

    broker.search(data.queries.embeddings.row(1), 5);
    auto first = broker.loadReport();
    broker.search(data.queries.embeddings.row(2), 5);
    broker.search(data.queries.embeddings.row(3), 5);
    auto second = broker.loadReport();

    EXPECT_EQ(first.queries, 1u);
    EXPECT_EQ(second.queries, 3u);
    EXPECT_GE(second.uptime_seconds, first.uptime_seconds);
    for (std::size_t c = 0; c < first.clusters.size(); ++c) {
        EXPECT_GE(second.clusters[c].sample_requests,
                  first.clusters[c].sample_requests);
        EXPECT_GE(second.clusters[c].deep_requests,
                  first.clusters[c].deep_requests);
        EXPECT_GE(second.clusters[c].energy_joules, 0.0);
    }
}

// ---------------------------------------------------------------------------
// Metric-name catalog drift
// ---------------------------------------------------------------------------

bool
isUint(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

std::vector<std::string>
splitDots(const std::string &name)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= name.size()) {
        std::size_t dot = name.find('.', start);
        if (dot == std::string::npos)
            dot = name.size();
        out.push_back(name.substr(start, dot - start));
        start = dot + 1;
    }
    return out;
}

/**
 * True when @p name resolves through obs/metric_names.hpp: either one
 * of the flat constants, or an instance of a parameterized family.
 * Built from the catalog constants themselves so adding a name there is
 * all it takes to admit a new instrumentation site.
 */
bool
catalogMatches(const std::string &name)
{
    namespace n = obs::names;
    static const std::set<std::string> exact = {
        n::kBrokerQueries, n::kBrokerDeepRequests, n::kBrokerTimeouts,
        n::kBrokerFailures, n::kBrokerDegradedQueries,
        n::kBrokerQueryLatencyUs, n::kBrokerSamplePhaseUs,
        n::kBrokerDeepPhaseUs, n::kBrokerMergePhaseUs,
        n::kBrokerSampleProbeUs, n::kBrokerHedgesIssued,
        n::kBrokerHedgesWon, n::kBrokerHedgesWasted, n::kNodeQueueWaitUs,
        n::kNodeBatchExecUs, n::kRpcRpcs, n::kRpcRequestBytes,
        n::kRpcResponseBytes, n::kRpcRoundTripUs, n::kRpcBatchSize,
        n::kRpcRedials, n::kRpcTransportFailures, n::kRpcRemoteErrors,
        n::kTraceBufferSpans, n::kTraceDroppedSpans, n::kIvfCoarseUs,
        n::kIvfScanUs, n::kPoolParallelForUs, n::kPoolParallelForItems,
        n::kCoreQueryLatencyUs, n::kCoreSamplePhaseUs, n::kCoreDeepPhaseUs,
        n::kRagStrideTotalUs, n::kRagStrideRetrievalUs, n::kRagStrides,
        n::kEnergyPackageJoulesMeasured, n::kEnergyDramJoulesMeasured,
        n::kEnergyModelErrorRatio, n::kProcessRssBytes, n::kProcessVmBytes,
        n::kProcessCpuUserSeconds, n::kProcessCpuSystemSeconds,
        n::kProcessThreads, n::kProcessUptimeSeconds,
        n::kProcessMinorFaults, n::kProcessMajorFaults,
        n::kMmapMappedBytes, n::kMmapResidentBytes,
    };
    if (exact.count(name))
        return true;

    const auto parts = splitDots(name);
    // broker.route.<cluster>.<slot>
    if (parts.size() == 4 && parts[0] == "broker" && parts[1] == "route")
        return isUint(parts[2]) && isUint(parts[3]);
    // node.<cluster>.<suffix>
    if (parts.size() == 3 && parts[0] == "node" && isUint(parts[1])) {
        for (const char *suffix :
             {n::kNodeSampleRequests, n::kNodeDeepRequests,
              n::kNodeHitsReturned, n::kNodeQueueDepth, n::kNodeBusySeconds,
              n::kNodeEnergyJoules, n::kNodeBatchOccupancy}) {
            if (name == n::nodeMetric(std::stoul(parts[1]), suffix))
                return true;
        }
        return false;
    }
    // rpc.error.<code>
    if (parts.size() == 3 && parts[0] == "rpc" && parts[1] == "error")
        return !parts[2].empty();
    // rpc.node.<cluster>.<suffix>
    if (parts.size() == 4 && parts[0] == "rpc" && parts[1] == "node" &&
        isUint(parts[2]))
        return parts[3] == n::kRpcClockOffsetUs;
    // perf.<phase>.<suffix>
    if (parts.size() == 3 && parts[0] == "perf") {
        bool phase_ok = false;
        for (auto phase : {obs::PerfPhase::Sample, obs::PerfPhase::Deep,
                           obs::PerfPhase::Merge, obs::PerfPhase::Scan})
            phase_ok = phase_ok || parts[1] == obs::perfPhaseName(phase);
        if (!phase_ok)
            return false;
        for (const char *suffix :
             {n::kPerfCycles, n::kPerfInstructions, n::kPerfCacheMisses,
              n::kPerfLlcLoadMisses, n::kPerfBranchMisses,
              n::kPerfTaskClockUs, n::kPerfIpc, n::kPerfCacheMpki,
              n::kPerfLlcMpki, n::kPerfBranchMpki}) {
            if (parts[2] == suffix)
                return true;
        }
        return false;
    }
    return false;
}

TEST(ObsCatalog, RuntimeMetricNamesResolveThroughCatalog)
{
    // Emit real serving metrics, then walk every name the registry
    // exports. A new instrumentation site whose name is not in
    // obs/metric_names.hpp (exact or family) fails here — the catalog
    // and the runtime cannot drift apart silently.
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);
    for (std::size_t q = 0; q < 8; ++q)
        broker.search(data.queries.embeddings.row(q), 5);
    obs::updateProcessGauges(obs::Registry::instance());

    auto parsed = util::json::parse(obs::Registry::instance().toJson());
    ASSERT_TRUE(parsed.ok) << parsed.error;
    std::size_t checked = 0;
    for (const char *section :
         {"counters", "gauges", "histograms", "windows"}) {
        const auto *obj = parsed.value.find(section);
        ASSERT_NE(obj, nullptr) << section;
        for (const auto &name : obj->keys()) {
            if (name.rfind("test.", 0) == 0)
                continue; // this suite's own fixtures
            EXPECT_TRUE(catalogMatches(name))
                << "metric \"" << name << "\" (in " << section
                << ") is not in obs/metric_names.hpp";
            ++checked;
        }
    }
    EXPECT_GT(checked, 10u); // the walk saw real serving metrics
}

// ---------------------------------------------------------------------------
// RAPL sampler over a synthetic powercap sysfs tree
// ---------------------------------------------------------------------------

class RaplFixture
{
  public:
    RaplFixture()
    {
        root_ = std::filesystem::temp_directory_path() /
            ("hermes_rapl_test_" +
             std::to_string(
                 reinterpret_cast<std::uintptr_t>(this) ^
                 static_cast<std::uintptr_t>(::getpid())));
        std::filesystem::create_directories(root_);
    }

    ~RaplFixture()
    {
        std::error_code ec;
        std::filesystem::remove_all(root_, ec);
    }

    const std::string root() const { return root_.string(); }

    /** Create `<root>/<dir>` with a `name` file and an energy counter;
     *  max_range 0 writes no max_energy_range_uj file. */
    void addDomain(const std::string &dir, const std::string &label,
                   std::uint64_t energy_uj, std::uint64_t max_range_uj = 0)
    {
        auto path = root_ / dir;
        std::filesystem::create_directories(path);
        write(path / "name", label + "\n");
        write(path / "energy_uj", std::to_string(energy_uj) + "\n");
        if (max_range_uj > 0)
            write(path / "max_energy_range_uj",
                  std::to_string(max_range_uj) + "\n");
    }

    void setEnergy(const std::string &dir, std::uint64_t energy_uj)
    {
        write(root_ / dir / "energy_uj", std::to_string(energy_uj) + "\n");
    }

  private:
    static void write(const std::filesystem::path &path,
                      const std::string &contents)
    {
        std::ofstream out(path, std::ios::trunc);
        out << contents;
    }

    std::filesystem::path root_;
};

TEST(ObsRapl, DiscoversPackageAndDramAcrossSockets)
{
    RaplFixture fx;
    fx.addDomain("intel-rapl:0", "package-0", 1'000'000, 1'000'000'000);
    fx.addDomain("intel-rapl:0:0", "dram", 500'000, 1'000'000'000);
    fx.addDomain("intel-rapl:1", "package-1", 2'000'000, 1'000'000'000);
    fx.addDomain("intel-rapl:1:0", "core", 100'000); // out of scope
    std::filesystem::create_directories(
        std::filesystem::path(fx.root()) / "intel-rapl"); // control node

    obs::RaplReader reader(fx.root());
    ASSERT_TRUE(reader.available());
    ASSERT_EQ(reader.domains().size(), 3u);
    EXPECT_TRUE(reader.domains()[0].is_package);  // intel-rapl:0
    EXPECT_TRUE(reader.domains()[1].is_dram);     // intel-rapl:0:0
    EXPECT_TRUE(reader.domains()[2].is_package);  // intel-rapl:1

    // +0.3 J on socket 0, +0.1 J dram, +0.2 J on socket 1.
    fx.setEnergy("intel-rapl:0", 1'300'000);
    fx.setEnergy("intel-rapl:0:0", 600'000);
    fx.setEnergy("intel-rapl:1", 2'200'000);
    auto s = reader.sample();
    ASSERT_TRUE(s.valid);
    EXPECT_NEAR(s.package_joules, 0.5, 1e-9); // sums across sockets
    EXPECT_NEAR(s.dram_joules, 0.1, 1e-9);
    EXPECT_GE(s.elapsed_seconds, 0.0);
}

TEST(ObsRapl, WraparoundCorrectedWithKnownRange)
{
    RaplFixture fx;
    fx.addDomain("intel-rapl:0", "package-0", 900'000, 1'000'000);

    obs::RaplReader reader(fx.root());
    ASSERT_TRUE(reader.available());
    fx.setEnergy("intel-rapl:0", 100'000); // counter wrapped at 1 J
    auto s = reader.sample();
    ASSERT_TRUE(s.valid);
    // (range - last) + cur = 100'000 + 100'000 uj = 0.2 J.
    EXPECT_NEAR(s.package_joules, 0.2, 1e-9);
}

TEST(ObsRapl, WrapWithoutRangeDropsDeltaAndReanchors)
{
    RaplFixture fx;
    fx.addDomain("intel-rapl:0", "package-0", 900'000); // no range file

    obs::RaplReader reader(fx.root());
    ASSERT_TRUE(reader.available());
    EXPECT_EQ(reader.domains()[0].max_range_uj, 0u);

    fx.setEnergy("intel-rapl:0", 100'000); // apparent negative delta
    auto s = reader.sample();
    ASSERT_TRUE(s.valid); // the read worked; the delta is just unusable
    EXPECT_NEAR(s.package_joules, 0.0, 1e-9);

    // Re-anchored at 100'000: the next delta counts normally again.
    fx.setEnergy("intel-rapl:0", 150'000);
    s = reader.sample();
    ASSERT_TRUE(s.valid);
    EXPECT_NEAR(s.package_joules, 0.05, 1e-9);
}

TEST(ObsRapl, MissingRootReportsUnavailable)
{
    obs::RaplReader reader("/nonexistent/hermes-powercap");
    EXPECT_FALSE(reader.available());
    EXPECT_FALSE(reader.sample().valid);
}

TEST(ObsRapl, UnreadableEnergyCounterSkipsDomain)
{
    // energy_uj exists but cannot be read as a number (a directory —
    // the root-proof stand-in for EACCES): discovery must skip the
    // domain, leaving the reader unavailable rather than half-broken.
    RaplFixture fx;
    auto dir = std::filesystem::path(fx.root()) / "intel-rapl:0";
    std::filesystem::create_directories(dir);
    {
        std::ofstream out(dir / "name");
        out << "package-0\n";
    }
    std::filesystem::create_directories(dir / "energy_uj");

    obs::RaplReader reader(fx.root());
    EXPECT_FALSE(reader.available());
    EXPECT_FALSE(reader.sample().valid);
}

TEST(ObsRapl, EnvRootIsHonored)
{
    RaplFixture fx;
    fx.addDomain("intel-rapl:0", "package-0", 42'000'000, 1'000'000'000);
    ::setenv("HERMES_RAPL_ROOT", fx.root().c_str(), 1);
    obs::RaplReader reader(""); // "" = env root when set
    ::unsetenv("HERMES_RAPL_ROOT");
    ASSERT_TRUE(reader.available());
    EXPECT_EQ(reader.domains()[0].label, "package-0");
}

// ---------------------------------------------------------------------------
// /perf endpoint, 404 error body, and the unavailable-parity guarantee
// ---------------------------------------------------------------------------

TEST(ObsPerf, PerfRouteServesStatusJson)
{
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());

    std::string body;
    ASSERT_TRUE(obs::httpGet("127.0.0.1", exporter.port(), "/perf", &body));
    auto parsed = util::json::parse(body);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    for (const char *key : {"enabled", "unavailable", "counters_available",
                            "rapl_available"}) {
        const auto *v = parsed.value.find(key);
        ASSERT_NE(v, nullptr) << key;
        EXPECT_TRUE(v->isBool()) << key;
    }
    ASSERT_NE(parsed.value.find("package_joules"), nullptr);
    ASSERT_NE(parsed.value.find("phases"), nullptr);
    exporter.stop();
}

TEST(ObsExporter, UnknownPathServesJsonErrorBody)
{
    obs::Exporter exporter;
    ASSERT_TRUE(exporter.start());

    std::string body;
    std::string status;
    EXPECT_FALSE(obs::httpGet("127.0.0.1", exporter.port(),
                              "/definitely-missing", &body, &status));
    EXPECT_NE(status.find("404"), std::string::npos);
    auto parsed = util::json::parse(body);
    ASSERT_TRUE(parsed.ok) << "404 body is not JSON: " << body;
    EXPECT_EQ(parsed.value.find("error")->stringOr(""), "unknown path");
    EXPECT_EQ(parsed.value.find("path")->stringOr(""),
              "/definitely-missing");
    exporter.stop();
}

TEST(ObsPerf, ForcedUnavailableRunIsBitIdenticalToDisabled)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);

    // Baseline: perf off entirely.
    obs::setPerfEnabled(false);
    obs::setPerfForceUnavailable(false);
    std::vector<vecstore::HitList> baseline;
    for (std::size_t q = 0; q < 8; ++q)
        baseline.push_back(broker.search(data.queries.embeddings.row(q), 5));

    // Enabled but every probe denied — the CI unavailable leg's shape.
    obs::setPerfEnabled(true);
    obs::setPerfForceUnavailable(true);
    for (std::size_t q = 0; q < 8; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q), 5);
        ASSERT_EQ(hits.size(), baseline[q].size()) << q;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].id, baseline[q][i].id);
            EXPECT_FLOAT_EQ(hits[i].score, baseline[q][i].score);
        }
    }
    EXPECT_FALSE(obs::perfCountersAvailable());
    EXPECT_FALSE(obs::raplSample().valid);

    // The probe denial must not have minted a single perf metric: the
    // registry surface is what makes the runs bit-identical.
    EXPECT_EQ(obs::Registry::instance().toJson().find("\"perf."),
              std::string::npos);

    obs::setPerfEnabled(false);
    obs::setPerfForceUnavailable(false);
}

} // namespace
