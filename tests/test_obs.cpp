/**
 * @file
 * Tests for the observability subsystem: metrics registry (counters,
 * gauges, log-spaced histograms, JSON/Prometheus export), per-query
 * trace spans (structural nesting across broker/node/index layers), and
 * the bit-parity guarantee that instrumentation never changes results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "obs/obs.hpp"
#include "serve/broker.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

// ---------------------------------------------------------------------------
// Histogram buckets and percentiles
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketBoundsAreMonotonic)
{
    double prev = 0.0;
    for (std::size_t i = 0; i < obs::Histogram::kNumBounds; ++i) {
        double bound = obs::Histogram::bucketUpperBound(i);
        EXPECT_GT(bound, prev) << "bucket " << i;
        prev = bound;
    }
    EXPECT_GT(obs::Histogram::bucketUpperBound(
                  obs::Histogram::kNumBounds),
              1e300); // overflow bucket is unbounded
}

TEST(ObsHistogram, BucketIndexMatchesBounds)
{
    for (std::size_t i = 0; i < obs::Histogram::kNumBounds; ++i) {
        double bound = obs::Histogram::bucketUpperBound(i);
        // Buckets are upper-exclusive: a value just below the bound lands
        // in bucket i, just above lands strictly later. (A bucket spans
        // a 10^0.25 ~ 1.78x range, so 1% offsets stay within one bucket
        // of the bound despite log/pow rounding.)
        EXPECT_LE(obs::Histogram::bucketIndex(bound * 0.99), i);
        EXPECT_GT(obs::Histogram::bucketIndex(bound * 1.01), i);
    }
    // Tiny and negative values clamp into the first bucket.
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(-5.0), 0u);
    // Huge values land in the overflow bucket.
    EXPECT_EQ(obs::Histogram::bucketIndex(1e12),
              obs::Histogram::kNumBuckets - 1);
}

TEST(ObsHistogram, EmptySnapshotIsZero)
{
    obs::Histogram h;
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.percentile(50), 0.0);
    EXPECT_EQ(snap.mean(), 0.0);
}

TEST(ObsHistogram, SingleSamplePercentilesAreExact)
{
    obs::Histogram h;
    h.observe(123.0);
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 1u);
    EXPECT_DOUBLE_EQ(snap.min, 123.0);
    EXPECT_DOUBLE_EQ(snap.max, 123.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0), 123.0);
    EXPECT_DOUBLE_EQ(snap.percentile(50), 123.0);
    EXPECT_DOUBLE_EQ(snap.percentile(100), 123.0);
}

TEST(ObsHistogram, PercentilesBoundedAndOrdered)
{
    obs::Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.observe(static_cast<double>(i)); // 1..1000 us
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 1000u);
    EXPECT_DOUBLE_EQ(snap.min, 1.0);
    EXPECT_DOUBLE_EQ(snap.max, 1000.0);
    EXPECT_DOUBLE_EQ(snap.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(snap.percentile(100), 1000.0);

    double p50 = snap.percentile(50);
    double p95 = snap.percentile(95);
    double p99 = snap.percentile(99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, snap.min);
    EXPECT_LE(p99, snap.max);
    // Log-bucket interpolation error is bounded by one bucket width
    // (~78% relative at 4 buckets/decade); sanity-check the ballpark.
    EXPECT_GT(p50, 250.0);
    EXPECT_LT(p50, 1000.0);
}

TEST(ObsHistogram, ResetZeroesInPlace)
{
    obs::Histogram h;
    h.observe(5.0);
    h.observe(50.0);
    h.reset();
    auto snap = h.snapshot();
    EXPECT_EQ(snap.count, 0u);
    EXPECT_EQ(snap.sum, 0.0);
    for (auto b : snap.buckets)
        EXPECT_EQ(b, 0u);
}

TEST(ObsLatencySummary, FromSnapshot)
{
    obs::Histogram h;
    for (int i = 0; i < 100; ++i)
        h.observe(10.0);
    auto summary = obs::LatencySummary::from(h.snapshot());
    EXPECT_EQ(summary.count, 100u);
    EXPECT_DOUBLE_EQ(summary.mean_us, 10.0);
    EXPECT_DOUBLE_EQ(summary.max_us, 10.0);
    EXPECT_DOUBLE_EQ(summary.p50_us, 10.0);
    EXPECT_DOUBLE_EQ(summary.p99_us, 10.0);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ReferencesAreStableAcrossLookupsAndReset)
{
    auto &reg = obs::Registry::instance();
    auto &c1 = reg.counter("test.stable_counter");
    auto &c2 = reg.counter("test.stable_counter");
    EXPECT_EQ(&c1, &c2);

    c1.add(7);
    EXPECT_EQ(c2.value(), 7u);
    reg.reset();
    EXPECT_EQ(c1.value(), 0u);
    EXPECT_EQ(&reg.counter("test.stable_counter"), &c1);
}

TEST(ObsRegistry, HasHistogram)
{
    auto &reg = obs::Registry::instance();
    EXPECT_FALSE(reg.hasHistogram("test.never_created"));
    reg.histogram("test.created_us");
    EXPECT_TRUE(reg.hasHistogram("test.created_us"));
}

TEST(ObsRegistry, ConcurrentUpdatesAreExact)
{
    auto &reg = obs::Registry::instance();
    auto &counter = reg.counter("test.concurrent_counter");
    auto &hist = reg.histogram("test.concurrent_us");
    counter.reset();
    hist.reset();

    constexpr int kThreads = 8;
    constexpr int kPerThread = 10000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kPerThread; ++i) {
                counter.add(1);
                hist.observe(static_cast<double>(t * kPerThread + i % 997) +
                             1.0);
            }
        });
    }
    go.store(true, std::memory_order_release);

    // Take snapshots while writers are running: must never crash, and
    // every snapshot must be internally plausible.
    for (int i = 0; i < 50; ++i) {
        auto snap = hist.snapshot();
        EXPECT_LE(snap.count,
                  static_cast<std::uint64_t>(kThreads * kPerThread));
        if (snap.count > 0) {
            EXPECT_GE(snap.max, snap.min);
            double p50 = snap.percentile(50);
            EXPECT_GE(p50, snap.min);
            EXPECT_LE(p50, snap.max);
        }
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    auto snap = hist.snapshot();
    EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads * kPerThread));
    std::uint64_t bucket_total = 0;
    for (auto b : snap.buckets)
        bucket_total += b;
    EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsRegistry, JsonAndPrometheusExport)
{
    auto &reg = obs::Registry::instance();
    reg.counter("test.export_counter").add(3);
    reg.gauge("test.export_gauge").set(1.5);
    auto &h = reg.histogram("test.export_us");
    h.reset();
    h.observe(42.0);

    auto json = reg.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("test.export_counter"), std::string::npos);
    EXPECT_NE(json.find("test.export_us"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    auto prom = reg.toPrometheus();
    EXPECT_NE(prom.find("hermes_test_export_counter"), std::string::npos);
    EXPECT_NE(prom.find("hermes_test_export_us_bucket"), std::string::npos);
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
    EXPECT_NE(prom.find("hermes_test_export_us_count 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledRecorderRecordsNothing)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.stop();
    rec.clear();
    EXPECT_FALSE(rec.sampleQuery());
    {
        obs::TraceContext ctx(rec.sampleQuery());
        obs::ScopedSpan span("test.noop");
        EXPECT_FALSE(span.active());
    }
    EXPECT_EQ(rec.spanCount(), 0u);
}

TEST(ObsTrace, SamplingTracesOneInN)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(4);
    int sampled = 0;
    for (int i = 0; i < 16; ++i) {
        if (rec.sampleQuery())
            ++sampled;
    }
    EXPECT_EQ(sampled, 4);
    rec.stop();
}

TEST(ObsTrace, NestedSamplingDoesNotConsumeCounter)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(2); // trace every other query
    ASSERT_TRUE(rec.sampleQuery());
    {
        obs::TraceContext outer(true);
        // Nested entry points on a traced thread stay traced without
        // advancing the 1-in-N counter.
        EXPECT_TRUE(rec.sampleQuery());
        EXPECT_TRUE(rec.sampleQuery());
    }
    EXPECT_FALSE(rec.sampleQuery()); // next query: counter moved once
    rec.stop();
}

TEST(ObsTrace, ScopedSpanRecordsNameArgsAndDuration)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(1);
    {
        obs::TraceContext ctx(rec.sampleQuery());
        obs::ScopedSpan span("test.span");
        span.arg("k", std::uint64_t{5});
        span.arg("mode", std::string("unit"));
        obs::instantEvent("test.instant");
    }
    rec.stop();

    auto spans = rec.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    // Instant is recorded first (inside the span's lifetime).
    EXPECT_EQ(spans[0].name, "test.instant");
    EXPECT_TRUE(spans[0].instant);
    EXPECT_EQ(spans[1].name, "test.span");
    EXPECT_FALSE(spans[1].instant);
    EXPECT_GE(spans[1].dur_us, 0.0);
    ASSERT_EQ(spans[1].args.size(), 2u);
    EXPECT_EQ(spans[1].args[0].key, "k");
    EXPECT_EQ(spans[1].args[0].value, "5");
    EXPECT_TRUE(spans[1].args[0].numeric);
    EXPECT_EQ(spans[1].args[1].key, "mode");
    EXPECT_FALSE(spans[1].args[1].numeric);
}

TEST(ObsTrace, ChromeTraceJsonShape)
{
    auto &rec = obs::TraceRecorder::instance();
    rec.start(1);
    {
        obs::TraceContext ctx(rec.sampleQuery());
        obs::ScopedSpan span("test.json_span");
    }
    rec.stop();

    auto json = rec.toJson();
    EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("test.json_span"), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);

    auto path = std::filesystem::temp_directory_path() /
                "hermes_test_trace.json";
    ASSERT_TRUE(rec.writeChromeTrace(path.string()));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), json);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// End-to-end: traced broker query
// ---------------------------------------------------------------------------

struct ObsServeData
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const ObsServeData &
obsServeData()
{
    static ObsServeData data = [] {
        ObsServeData out;
        workload::CorpusConfig cc;
        cc.num_docs = 3000;
        cc.dim = 16;
        cc.num_topics = 10;
        cc.seed = 77;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 16;
        qc.seed = 78;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 4;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 8;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

std::vector<obs::TraceSpan>
spansNamed(const std::vector<obs::TraceSpan> &spans, const std::string &name)
{
    std::vector<obs::TraceSpan> out;
    for (const auto &span : spans)
        if (span.name == name)
            out.push_back(span);
    return out;
}

TEST(ObsEndToEnd, TracedBrokerQueryProducesNestedSpans)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);

    auto &rec = obs::TraceRecorder::instance();
    rec.start(1); // trace every query
    broker.search(data.queries.embeddings.row(0), 5);
    rec.stop();

    auto spans = rec.snapshot();
    auto roots = spansNamed(spans, "broker.search");
    ASSERT_EQ(roots.size(), 1u);
    const auto &root = roots.front();

    auto samples = spansNamed(spans, "broker.sample");
    auto deeps = spansNamed(spans, "broker.deep");
    auto merges = spansNamed(spans, "broker.merge");
    ASSERT_EQ(samples.size(), 1u);
    ASSERT_EQ(deeps.size(), 1u);
    ASSERT_EQ(merges.size(), 1u);

    // Sampling broadcasts to every node; deep search hits
    // clusters_to_search of them.
    auto node_searches = spansNamed(spans, "node.search");
    EXPECT_EQ(node_searches.size(),
              data.store->numClusters() + data.config.clusters_to_search);
    auto ivf_searches = spansNamed(spans, "ivf.search");
    EXPECT_EQ(ivf_searches.size(), node_searches.size());
    EXPECT_FALSE(spansNamed(spans, "node.queue_wait").empty());

    // Phase spans nest inside the root query span on the same thread...
    const double slack_us = 1.0; // clock-read ordering slack
    for (const auto *phase : {&samples.front(), &deeps.front(),
                              &merges.front()}) {
        EXPECT_EQ(phase->tid, root.tid);
        EXPECT_GE(phase->ts_us, root.ts_us - slack_us);
        EXPECT_LE(phase->end_us(), root.end_us() + slack_us);
    }
    // ...and node/index work on the worker threads falls within the
    // query's time range.
    for (const auto &span : node_searches) {
        EXPECT_GE(span.ts_us, root.ts_us - slack_us);
        EXPECT_LE(span.end_us(), root.end_us() + slack_us);
    }
    for (const auto &span : ivf_searches) {
        EXPECT_GE(span.ts_us, root.ts_us - slack_us);
        EXPECT_LE(span.end_us(), root.end_us() + slack_us);
    }
}

TEST(ObsEndToEnd, QueryLatencyHistogramHasNonZeroPercentiles)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);
    for (std::size_t q = 0; q < 16; ++q)
        broker.search(data.queries.embeddings.row(q), 5);

    auto &reg = obs::Registry::instance();
    ASSERT_TRUE(reg.hasHistogram("broker.query_latency_us"));
    auto snap = reg.histogram("broker.query_latency_us").snapshot();
    EXPECT_GE(snap.count, 16u);
    EXPECT_GT(snap.percentile(50), 0.0);
    EXPECT_GT(snap.percentile(95), 0.0);
    EXPECT_GT(snap.percentile(99), 0.0);

    auto stats = broker.stats();
    EXPECT_EQ(stats.query_latency.count, snap.count);
    EXPECT_GT(stats.query_latency.p50_us, 0.0);
    EXPECT_GT(stats.sample_phase.p50_us, 0.0);
    EXPECT_GT(stats.deep_phase.p50_us, 0.0);

    // The registry JSON carries the same digests.
    auto json = reg.toJson();
    EXPECT_NE(json.find("broker.query_latency_us"), std::string::npos);
}

TEST(ObsEndToEnd, BrokerMatchesHermesSearchWithAndWithoutTracing)
{
    const auto &data = obsServeData();
    serve::HermesBroker broker(*data.store);
    core::HermesSearch reference(*data.store);

    auto &rec = obs::TraceRecorder::instance();
    for (bool traced : {false, true}) {
        if (traced)
            rec.start(1);
        else
            rec.stop();
        for (std::size_t q = 0; q < 8; ++q) {
            auto via_broker =
                broker.search(data.queries.embeddings.row(q), 5);
            auto direct =
                reference.search(data.queries.embeddings.row(q), 5).hits;
            ASSERT_EQ(via_broker.size(), direct.size())
                << "traced=" << traced << " q=" << q;
            for (std::size_t i = 0; i < direct.size(); ++i) {
                EXPECT_EQ(via_broker[i].id, direct[i].id);
                EXPECT_FLOAT_EQ(via_broker[i].score, direct[i].score);
            }
        }
    }
    rec.stop();
}

} // namespace
