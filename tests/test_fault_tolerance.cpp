/**
 * @file
 * Fault-tolerance suite for the concurrent serving path: exception-safe
 * thread pool (per-call task groups, nested/concurrent parallelFor),
 * exception-safe retrieval nodes with injected faults, broker deadlines
 * and graceful degradation, the InnerProduct adaptive-pruning regression,
 * and corrupt-archive rejection.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "eval/metrics.hpp"
#include "index/ivf_index.hpp"
#include "serve/broker.hpp"
#include "serve/node.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

// ---------------------------------------------------------------------------
// ThreadPool: exception capture, per-call groups, nesting
// ---------------------------------------------------------------------------

TEST(ThreadPoolFaults, ParallelForRethrowsTaskException)
{
    util::ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100, [](std::size_t i) {
        if (i == 37)
            throw std::runtime_error("iteration 37 exploded");
    }), std::runtime_error);
}

TEST(ThreadPoolFaults, PoolSurvivesAndServesAfterException)
{
    util::ThreadPool pool(4);
    try {
        pool.parallelFor(64, [](std::size_t i) {
            if (i % 2 == 0)
                throw std::runtime_error("boom");
        });
        FAIL() << "expected the task exception to propagate";
    } catch (const std::runtime_error &) {
    }

    std::vector<std::atomic<int>> touched(128);
    pool.parallelFor(128, [&](std::size_t i) { touched[i]++; });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolFaults, SubmitWaitRethrowsFirstException)
{
    util::ThreadPool pool(2);
    std::atomic<int> completed{0};
    pool.submit([] { throw std::runtime_error("submitted task failed"); });
    for (int i = 0; i < 10; ++i)
        pool.submit([&] { completed++; });
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The error was consumed; subsequent waits are clean.
    pool.submit([&] { completed++; });
    pool.wait();
    EXPECT_EQ(completed.load(), 11);
}

TEST(ThreadPoolFaults, NestedParallelForRunsInlineWithoutDeadlock)
{
    util::ThreadPool pool(2);
    std::vector<std::atomic<int>> touched(4 * 8);
    pool.parallelFor(4, [&](std::size_t outer) {
        // Pre-fix this deadlocked: the nested call queued tasks no free
        // worker could ever run while blocking a worker on them.
        pool.parallelFor(8, [&](std::size_t inner) {
            touched[outer * 8 + inner]++;
        });
    });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPoolFaults, ConcurrentParallelForCallersAreIndependent)
{
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> a(300), b(300);
    std::thread t1([&] {
        pool.parallelFor(300, [&](std::size_t i) { a[i]++; });
    });
    std::thread t2([&] {
        pool.parallelFor(300, [&](std::size_t i) { b[i]++; });
    });
    t1.join();
    t2.join();
    for (std::size_t i = 0; i < 300; ++i) {
        EXPECT_EQ(a[i].load(), 1);
        EXPECT_EQ(b[i].load(), 1);
    }
}

TEST(ThreadPoolFaults, TaskGroupWaitDoesNotWaitOnOtherGroups)
{
    util::ThreadPool pool(2);
    std::atomic<bool> slow_done{false};
    pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        slow_done = true;
    });

    util::ThreadPool::TaskGroup group(pool);
    std::atomic<int> fast{0};
    group.run([&] { fast++; });
    group.wait();
    EXPECT_EQ(fast.load(), 1);
    // The group wait returned without waiting for the default group's
    // slow task.
    EXPECT_FALSE(slow_done.load());
    pool.wait();
    EXPECT_TRUE(slow_done.load());
}

// ---------------------------------------------------------------------------
// RetrievalNode: throwing shards and injected faults
// ---------------------------------------------------------------------------

/** AnnIndex whose search always throws — a catastrophically bad shard. */
class ThrowingIndex : public index::AnnIndex
{
  public:
    explicit ThrowingIndex(std::size_t dim) : dim_(dim) {}

    std::size_t dim() const override { return dim_; }
    std::size_t size() const override { return 1; }
    vecstore::Metric metric() const override { return vecstore::Metric::L2; }
    bool isTrained() const override { return true; }
    void train(const vecstore::Matrix &) override {}
    void add(const vecstore::Matrix &,
             const std::vector<vecstore::VecId> &) override {}
    vecstore::HitList
    search(vecstore::VecView, std::size_t, const index::SearchParams &,
           index::SearchStats *) const override
    {
        throw std::runtime_error("shard exploded");
    }
    std::size_t memoryBytes() const override { return 0; }
    std::string name() const override { return "throwing"; }

  private:
    std::size_t dim_;
};

TEST(RetrievalNodeFaults, ThrowingShardDeliversExceptionNotHang)
{
    ThrowingIndex shard(8);
    serve::RetrievalNode node(shard, {});
    std::vector<float> query(8, 0.f);

    auto future = node.submit(vecstore::VecView(query.data(), 8), 3, {});
    EXPECT_THROW(
        {
            try {
                future.get();
            } catch (const std::runtime_error &e) {
                EXPECT_STREQ(e.what(), "shard exploded");
                throw;
            }
        },
        std::runtime_error);

    // The worker survived: a second request gets its own exception too.
    auto again = node.submit(vecstore::VecView(query.data(), 8), 3, {});
    EXPECT_THROW(again.get(), std::runtime_error);
    EXPECT_EQ(node.stats().failures, 2u);
    EXPECT_EQ(node.stats().requests, 2u);
}

TEST(RetrievalNodeFaults, InjectedFailureIsDeterministicAndCounted)
{
    workload::CorpusConfig cc;
    cc.num_docs = 256;
    cc.dim = 8;
    cc.seed = 11;
    auto corpus = workload::generateCorpus(cc);

    index::IvfConfig ivf;
    ivf.nlist = 4;
    ivf.codec = "Flat";
    index::IvfIndex shard(8, vecstore::Metric::L2, ivf);
    shard.train(corpus.embeddings);
    shard.addSequential(corpus.embeddings);

    serve::NodeConfig config;
    config.faults.fail_probability = 1.0;
    serve::RetrievalNode node(shard, config);

    auto future =
        node.submit(corpus.embeddings.row(0), 3, index::SearchParams{});
    EXPECT_THROW(future.get(), std::runtime_error);
    EXPECT_EQ(node.stats().failures, 1u);
}

TEST(RetrievalNodeFaults, DroppedRequestNeverBecomesReady)
{
    workload::CorpusConfig cc;
    cc.num_docs = 256;
    cc.dim = 8;
    cc.seed = 12;
    auto corpus = workload::generateCorpus(cc);

    index::IvfConfig ivf;
    ivf.nlist = 4;
    ivf.codec = "Flat";
    index::IvfIndex shard(8, vecstore::Metric::L2, ivf);
    shard.train(corpus.embeddings);
    shard.addSequential(corpus.embeddings);

    serve::NodeConfig config;
    config.faults.drop_probability = 1.0;
    auto node = std::make_unique<serve::RetrievalNode>(shard, config);

    auto future =
        node->submit(corpus.embeddings.row(0), 3, index::SearchParams{});
    // A dead node: only a deadline can observe it.
    EXPECT_EQ(future.wait_for(std::chrono::milliseconds(100)),
              std::future_status::timeout);
    EXPECT_EQ(node->stats().dropped, 1u);

    // Shutdown releases the parked promise: broken promise, not a hang.
    node.reset();
    EXPECT_THROW(future.get(), std::future_error);
}

// ---------------------------------------------------------------------------
// HermesBroker: deadlines, retries, graceful degradation
// ---------------------------------------------------------------------------

struct BrokerFixture
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const BrokerFixture &
brokerFixture()
{
    static BrokerFixture data = [] {
        BrokerFixture out;
        workload::CorpusConfig cc;
        cc.num_docs = 3000;
        cc.dim = 16;
        cc.num_topics = 12;
        cc.seed = 77;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 16;
        qc.seed = 78;
        out.queries = workload::generateQueries(out.corpus, qc);

        out.config.num_clusters = 6;
        out.config.clusters_to_search = 2;
        out.config.sample_nprobe = 2;
        out.config.deep_nprobe = 16;
        out.config.partition.seeds_to_try = 2;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return data;
}

TEST(HermesBrokerFaults, SingleFailedNodeDegradesGracefully)
{
    const auto &data = brokerFixture();
    const std::size_t k = 5;

    // Fault-free reference answers.
    serve::HermesBroker healthy(*data.store);
    std::vector<vecstore::HitList> reference;
    for (std::size_t q = 0; q < 16; ++q)
        reference.push_back(
            healthy.search(data.queries.embeddings.row(q), k));

    // Same store, but cluster 0's node fails every request (1 of 6).
    serve::BrokerConfig config;
    config.node_faults.resize(1);
    config.node_faults[0].fail_probability = 1.0;
    serve::HermesBroker broker(*data.store, config);

    double ndcg_sum = 0.0;
    for (std::size_t q = 0; q < 16; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q), k);
        EXPECT_EQ(hits.size(), k) << "query " << q;
        ndcg_sum += eval::ndcgAtK(hits, reference[q], k);
    }

    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 16u);
    EXPECT_GT(stats.failures, 0u);
    EXPECT_EQ(stats.degraded_queries, 16u);
    EXPECT_EQ(stats.timeouts, 0u);
    // Quality: most queries never needed cluster 0; the rest still get
    // answers from the surviving 5 clusters.
    EXPECT_GE(ndcg_sum / 16.0, 0.5);
}

TEST(HermesBrokerFaults, DeadNodeTimesOutInsteadOfHanging)
{
    const auto &data = brokerFixture();

    serve::BrokerConfig config;
    config.node_deadline_ms = 50.0;
    config.max_retries = 1;
    config.node_faults.resize(3);
    config.node_faults[2].drop_probability = 1.0; // node 2 is dead

    serve::HermesBroker broker(*data.store, config);
    for (std::size_t q = 0; q < 4; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q), 5);
        EXPECT_EQ(hits.size(), 5u) << "query " << q;
    }

    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 4u);
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_EQ(stats.degraded_queries, 4u);
}

TEST(HermesBrokerFaults, AllNodesFailingReturnsEmptyNotCrash)
{
    const auto &data = brokerFixture();

    serve::BrokerConfig config;
    config.node.faults.fail_probability = 1.0;
    serve::HermesBroker broker(*data.store, config);

    auto hits = broker.search(data.queries.embeddings.row(0), 5);
    EXPECT_TRUE(hits.empty());
    auto stats = broker.stats();
    EXPECT_EQ(stats.queries, 1u);
    EXPECT_EQ(stats.degraded_queries, 1u);
    EXPECT_GT(stats.failures, 0u);
}

TEST(HermesBrokerFaults, RandomFaultsEverywhereStillServeTopK)
{
    const auto &data = brokerFixture();

    serve::BrokerConfig config;
    config.node.faults.fail_probability = 0.1;
    config.node.faults.delay_probability = 0.2;
    config.node.faults.delay_ms = 1.0;
    serve::HermesBroker broker(*data.store, config);

    for (std::size_t q = 0; q < 16; ++q) {
        auto hits = broker.search(data.queries.embeddings.row(q), 5);
        EXPECT_EQ(hits.size(), 5u) << "query " << q;
    }
    EXPECT_EQ(broker.stats().queries, 16u);
}

// ---------------------------------------------------------------------------
// Adaptive-epsilon pruning on the InnerProduct score scale
// ---------------------------------------------------------------------------

/**
 * Build an InnerProduct distributed store of @p num_clusters clusters
 * whose best document dot products are close together (within ~8% of
 * each other), so an epsilon = 0.2 margin must keep several clusters.
 */
core::DistributedStore
ipStore(core::HermesConfig &config)
{
    const std::size_t dim = 4;
    const std::size_t num_clusters = 4;
    // Best dot product per cluster; scores are the negations.
    const float best_dot[num_clusters] = {10.0f, 9.6f, 9.2f, 1.0f};

    config.num_clusters = num_clusters;
    config.clusters_to_search = 3;
    config.sample_nprobe = 1;
    config.deep_nprobe = 1;
    config.sample_k = 1;
    config.codec = "Flat";
    config.adaptive_epsilon = 0.2;

    std::vector<std::unique_ptr<index::IvfIndex>> indices;
    vecstore::Matrix centroids(num_clusters, dim);
    for (std::size_t c = 0; c < num_clusters; ++c) {
        vecstore::Matrix docs(8, dim);
        std::vector<vecstore::VecId> ids;
        for (std::size_t i = 0; i < 8; ++i) {
            for (std::size_t j = 0; j < dim; ++j)
                docs.row(i)[j] = 0.f;
            // Doc i of cluster c projects best_dot[c] - 0.05 * i onto
            // the query direction e0.
            docs.row(i)[0] = best_dot[c] - 0.05f * static_cast<float>(i);
            ids.push_back(static_cast<vecstore::VecId>(c * 100 + i));
        }
        for (std::size_t j = 0; j < dim; ++j)
            centroids.row(c)[j] = j == 0 ? best_dot[c] : 0.f;

        index::IvfConfig ivf;
        ivf.nlist = 1;
        ivf.codec = "Flat";
        auto idx = std::make_unique<index::IvfIndex>(
            dim, vecstore::Metric::InnerProduct, ivf);
        idx->train(docs);
        idx->add(docs, ids);
        indices.push_back(std::move(idx));
    }
    return core::DistributedStore::assemble(config, std::move(indices),
                                            std::move(centroids));
}

TEST(AdaptiveEpsilonIp, NegativeScoresKeepClustersWithinMargin)
{
    core::HermesConfig config;
    auto store = ipStore(config);
    core::HermesSearch strategy(store);

    std::vector<float> query = {1.f, 0.f, 0.f, 0.f};
    auto result = strategy.search(vecstore::VecView(query.data(), 4), 2);

    // Sampled best scores are {-10, -9.6, -9.2, -1}; the 0.2 margin
    // bound is -10 + 0.2 * 10 = -8, so three clusters qualify. The old
    // multiplicative bound (-12) pruned to a single cluster regardless
    // of epsilon.
    EXPECT_EQ(result.deep_clusters.size(), 3u);
    ASSERT_GE(result.hits.size(), 2u);
    EXPECT_EQ(result.hits[0].id, 0u);   // dot 10.0
    EXPECT_EQ(result.hits[1].id, 1u);   // dot 9.95
}

TEST(AdaptiveEpsilonIp, BrokerMatchesCoreStrategyOnIpStore)
{
    core::HermesConfig config;
    auto store = ipStore(config);
    core::HermesSearch strategy(store);
    serve::HermesBroker broker(store);

    std::vector<float> query = {1.f, 0.f, 0.f, 0.f};
    auto expected = strategy.search(vecstore::VecView(query.data(), 4), 3);

    std::vector<std::uint32_t> deep;
    auto hits = broker.search(vecstore::VecView(query.data(), 4), 3, deep);

    EXPECT_EQ(deep, expected.deep_clusters);
    ASSERT_EQ(hits.size(), expected.hits.size());
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].id, expected.hits[i].id);
        EXPECT_FLOAT_EQ(hits[i].score, expected.hits[i].score);
    }
}

// ---------------------------------------------------------------------------
// Corrupt archive rejection
// ---------------------------------------------------------------------------

TEST(CorruptArchive, HostileVectorLengthPrefixIsFatalNotBadAlloc)
{
    auto path =
        std::filesystem::temp_directory_path() / "hostile_prefix.bin";
    {
        util::BinaryWriter w(path.string(), "HTST", 1);
        // A corrupt/hostile length prefix claiming ~10^18 floats.
        w.write<std::uint64_t>(1ull << 60);
        ASSERT_TRUE(w.good());
    }
    util::BinaryReader r(path.string(), "HTST", 1);
    EXPECT_EXIT((void)r.readVector<float>(),
                ::testing::ExitedWithCode(1), "corrupt archive");
    std::filesystem::remove(path);
}

TEST(CorruptArchive, HostileStringLengthPrefixIsFatal)
{
    auto path =
        std::filesystem::temp_directory_path() / "hostile_string.bin";
    {
        util::BinaryWriter w(path.string(), "HTST", 1);
        w.write<std::uint64_t>(1ull << 40);
        ASSERT_TRUE(w.good());
    }
    util::BinaryReader r(path.string(), "HTST", 1);
    EXPECT_EXIT((void)r.readString(),
                ::testing::ExitedWithCode(1), "corrupt archive");
    std::filesystem::remove(path);
}

TEST(CorruptArchive, TruncatedIndexFileIsRejectedOnLoad)
{
    workload::CorpusConfig cc;
    cc.num_docs = 256;
    cc.dim = 8;
    cc.seed = 13;
    auto corpus = workload::generateCorpus(cc);

    index::IvfConfig ivf;
    ivf.nlist = 8;
    index::IvfIndex idx(8, vecstore::Metric::L2, ivf);
    idx.train(corpus.embeddings);
    idx.addSequential(corpus.embeddings);

    auto path =
        std::filesystem::temp_directory_path() / "truncated_index.bin";
    idx.save(path.string());
    auto full = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, full / 2);

    // Typed rejection (v3 format): a serving process refuses the bad
    // file and keeps running — no huge allocation, no garbage index,
    // no process death.
    EXPECT_THROW((void)index::IvfIndex::load(path.string()),
                 util::FormatError);
    EXPECT_THROW((void)index::IvfIndex::openMapped(path.string()),
                 util::FormatError);
    std::filesystem::remove(path);
}

} // namespace
