/**
 * @file
 * Unit and property tests for the vector codecs (Table 1 machinery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "quant/codec.hpp"
#include "quant/flat_codec.hpp"
#include "quant/linalg.hpp"
#include "quant/opq_codec.hpp"
#include "quant/pq_codec.hpp"
#include "quant/scalar_codec.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/matrix.hpp"

namespace {

using namespace hermes;
using namespace hermes::quant;
using hermes::util::Rng;
using hermes::vecstore::Matrix;
using hermes::vecstore::Metric;

constexpr std::size_t kDim = 32;

Matrix
trainingData(std::size_t n, std::size_t d, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(n, d);
    for (std::size_t i = 0; i < n; ++i) {
        auto row = m.row(i);
        for (std::size_t j = 0; j < d; ++j)
            row[j] = static_cast<float>(rng.gaussian());
        vecstore::normalize(row.data(), d);
    }
    return m;
}

double
meanReconstructionError(Codec &codec, const Matrix &data)
{
    std::vector<std::uint8_t> code(codec.codeSize());
    std::vector<float> recon(codec.dim());
    double total = 0.0;
    for (std::size_t i = 0; i < data.rows(); ++i) {
        codec.encode(data.row(i), code.data());
        codec.decode(code.data(),
                     vecstore::MutVecView(recon.data(), recon.size()));
        total += vecstore::l2Sq(data.row(i).data(), recon.data(),
                                codec.dim());
    }
    return total / static_cast<double>(data.rows());
}

/** All codec specs behave per the Codec contract. */
class CodecContract : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        data_ = trainingData(600, kDim, 11);
        codec_ = makeCodec(GetParam(), kDim);
        codec_->train(data_);
    }

    Matrix data_{kDim};
    std::unique_ptr<Codec> codec_;
};

TEST_P(CodecContract, TrainedAfterTrain)
{
    EXPECT_TRUE(codec_->isTrained());
    EXPECT_EQ(codec_->dim(), kDim);
    EXPECT_GT(codec_->codeSize(), 0u);
}

TEST_P(CodecContract, EncodeDecodeIsDeterministic)
{
    std::vector<std::uint8_t> c1(codec_->codeSize()), c2(codec_->codeSize());
    codec_->encode(data_.row(0), c1.data());
    codec_->encode(data_.row(0), c2.data());
    EXPECT_EQ(c1, c2);
}

TEST_P(CodecContract, ReconstructionErrorBounded)
{
    // Unit vectors: any sane codec reconstructs with mean squared error
    // well below the vector norm of 1.
    double mse = meanReconstructionError(*codec_, data_);
    EXPECT_LT(mse, 0.5) << "codec " << codec_->name();
    EXPECT_GE(mse, 0.0);
}

TEST_P(CodecContract, DistanceComputerMatchesDecodedDistanceL2)
{
    Rng rng(12);
    std::vector<float> query(kDim);
    for (auto &x : query)
        x = static_cast<float>(rng.gaussian());

    auto computer = codec_->distanceComputer(
        Metric::L2, vecstore::VecView(query.data(), kDim));
    std::vector<std::uint8_t> code(codec_->codeSize());
    std::vector<float> recon(kDim);
    for (std::size_t i = 0; i < 20; ++i) {
        codec_->encode(data_.row(i), code.data());
        codec_->decode(code.data(), vecstore::MutVecView(recon.data(),
                                                         kDim));
        float via_decode = vecstore::l2Sq(query.data(), recon.data(), kDim);
        float via_computer = (*computer)(code.data());
        EXPECT_NEAR(via_computer, via_decode,
                    1e-3f * (1.f + via_decode))
            << "codec " << codec_->name();
    }
}

TEST_P(CodecContract, DistanceComputerMatchesDecodedDistanceIP)
{
    Rng rng(13);
    std::vector<float> query(kDim);
    for (auto &x : query)
        x = static_cast<float>(rng.gaussian());

    auto computer = codec_->distanceComputer(
        Metric::InnerProduct, vecstore::VecView(query.data(), kDim));
    std::vector<std::uint8_t> code(codec_->codeSize());
    std::vector<float> recon(kDim);
    for (std::size_t i = 0; i < 20; ++i) {
        codec_->encode(data_.row(i), code.data());
        codec_->decode(code.data(), vecstore::MutVecView(recon.data(),
                                                         kDim));
        float via_decode = -vecstore::dot(query.data(), recon.data(), kDim);
        float via_computer = (*computer)(code.data());
        EXPECT_NEAR(via_computer, via_decode,
                    1e-3f * (1.f + std::fabs(via_decode)))
            << "codec " << codec_->name();
    }
}

TEST_P(CodecContract, SaveLoadPreservesCodes)
{
    auto path = std::filesystem::temp_directory_path() /
                ("hermes_codec_" + GetParam() + ".bin");
    {
        hermes::util::BinaryWriter w(path.string(), "HCDC", 1);
        codec_->save(w);
    }
    auto fresh = makeCodec(GetParam(), kDim);
    {
        hermes::util::BinaryReader r(path.string(), "HCDC", 1);
        fresh->load(r);
    }
    std::vector<std::uint8_t> a(codec_->codeSize()), b(fresh->codeSize());
    for (std::size_t i = 0; i < 10; ++i) {
        codec_->encode(data_.row(i), a.data());
        fresh->encode(data_.row(i), b.data());
        EXPECT_EQ(a, b) << "codec " << GetParam();
    }
    std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecContract,
                         ::testing::Values("Flat", "SQ8", "SQ4", "PQ8",
                                           "PQ16", "OPQ8"));

TEST(FlatCodec, RoundTripIsExact)
{
    auto data = trainingData(10, kDim, 21);
    FlatCodec codec(kDim);
    std::vector<std::uint8_t> code(codec.codeSize());
    std::vector<float> recon(kDim);
    codec.encode(data.row(3), code.data());
    codec.decode(code.data(), vecstore::MutVecView(recon.data(), kDim));
    for (std::size_t j = 0; j < kDim; ++j)
        EXPECT_FLOAT_EQ(recon[j], data.row(3)[j]);
}

TEST(ScalarCodec, Sq8BeatsSq4)
{
    auto data = trainingData(500, kDim, 22);
    ScalarCodec sq8(kDim, 8), sq4(kDim, 4);
    sq8.train(data);
    sq4.train(data);
    EXPECT_LT(meanReconstructionError(sq8, data),
              meanReconstructionError(sq4, data));
}

TEST(ScalarCodec, CodeSizes)
{
    EXPECT_EQ(ScalarCodec(kDim, 8).codeSize(), kDim);
    EXPECT_EQ(ScalarCodec(kDim, 4).codeSize(), kDim / 2);
}

TEST(ScalarCodec, Sq8ErrorIsTiny)
{
    // Table 1: SQ8 keeps recall within ~2% of Flat. That requires per-
    // element quantization error around 1/255 of the range.
    auto data = trainingData(500, kDim, 23);
    ScalarCodec sq8(kDim, 8);
    sq8.train(data);
    EXPECT_LT(meanReconstructionError(sq8, data), 1e-3);
}

TEST(ScalarCodec, HandlesConstantDimension)
{
    Matrix data(50, 4);
    for (std::size_t i = 0; i < 50; ++i) {
        auto row = data.row(i);
        row[0] = 1.f; // constant
        row[1] = static_cast<float>(i);
        row[2] = -1.f; // constant
        row[3] = static_cast<float>(i % 7);
    }
    ScalarCodec sq8(4, 8);
    sq8.train(data);
    std::vector<std::uint8_t> code(sq8.codeSize());
    std::vector<float> recon(4);
    sq8.encode(data.row(10), code.data());
    sq8.decode(code.data(), vecstore::MutVecView(recon.data(), 4));
    EXPECT_NEAR(recon[0], 1.f, 1e-5);
    EXPECT_NEAR(recon[2], -1.f, 1e-5);
}

TEST(PqCodec, MoreSubquantizersReduceError)
{
    auto data = trainingData(800, kDim, 24);
    PqCodec pq4(kDim, 4), pq16(kDim, 16);
    pq4.train(data);
    pq16.train(data);
    EXPECT_LT(meanReconstructionError(pq16, data),
              meanReconstructionError(pq4, data));
}

TEST(PqCodec, CodeSizeEqualsM)
{
    EXPECT_EQ(PqCodec(kDim, 8).codeSize(), 8u);
    EXPECT_EQ(PqCodec(kDim, 16).codeSize(), 16u);
}

TEST(PqCodec, AdcTableMatchesSubCentroidDistances)
{
    auto data = trainingData(400, kDim, 25);
    PqCodec pq(kDim, 4);
    pq.train(data);

    Rng rng(26);
    std::vector<float> query(kDim);
    for (auto &x : query)
        x = static_cast<float>(rng.gaussian());

    std::vector<float> table(4 * PqCodec::kSubCodebookSize);
    pq.computeAdcTable(Metric::L2, vecstore::VecView(query.data(), kDim),
                       table.data());
    std::size_t dsub = pq.subDim();
    for (std::size_t m = 0; m < 4; ++m) {
        for (std::size_t c = 0; c < 16; ++c) { // spot-check 16 entries
            float expected = vecstore::l2Sq(query.data() + m * dsub,
                                            pq.subCentroid(m, c), dsub);
            EXPECT_FLOAT_EQ(table[m * PqCodec::kSubCodebookSize + c],
                            expected);
        }
    }
}

TEST(OpqCodec, RotationIsOrthogonal)
{
    auto data = trainingData(500, kDim, 27);
    OpqCodec opq(kDim, 4, 3);
    opq.train(data);
    EXPECT_LT(linalg::orthogonalityError(opq.rotation().data(), kDim),
              1e-3f);
}

TEST(OpqCodec, NotWorseThanPqOnAnisotropicData)
{
    // Data with wildly uneven per-dimension variance: classic case where
    // a rotation redistributes energy across PQ subspaces.
    Rng rng(28);
    Matrix data(600, kDim);
    for (std::size_t i = 0; i < 600; ++i) {
        auto row = data.row(i);
        for (std::size_t j = 0; j < kDim; ++j) {
            double scale = (j < kDim / 4) ? 4.0 : 0.25;
            row[j] = static_cast<float>(rng.gaussian(0.0, scale));
        }
    }
    PqCodec pq(kDim, 4);
    OpqCodec opq(kDim, 4, 4);
    pq.train(data);
    opq.train(data);
    double pq_err = meanReconstructionError(pq, data);
    double opq_err = meanReconstructionError(opq, data);
    EXPECT_LT(opq_err, pq_err * 1.10); // allow noise, expect no regression
}

TEST(CodecFactory, ParsesSpecs)
{
    EXPECT_EQ(makeCodec("Flat", kDim)->name(), "Flat");
    EXPECT_EQ(makeCodec("SQ8", kDim)->name(), "SQ8");
    EXPECT_EQ(makeCodec("SQ4", kDim)->name(), "SQ4");
    EXPECT_EQ(makeCodec("PQ8", kDim)->name(), "PQ8");
    EXPECT_EQ(makeCodec("OPQ4", kDim)->name(), "OPQ4");
}

TEST(CodecFactory, TableOneCodeSizes)
{
    // Table 1 geometry at d=768: Flat 3072 B, SQ8 768 B, SQ4 384 B,
    // PQ256 256 B, PQ384 384 B.
    const std::size_t d = 768;
    EXPECT_EQ(makeCodec("Flat", d)->codeSize(), 3072u);
    EXPECT_EQ(makeCodec("SQ8", d)->codeSize(), 768u);
    EXPECT_EQ(makeCodec("SQ4", d)->codeSize(), 384u);
    EXPECT_EQ(makeCodec("PQ256", d)->codeSize(), 256u);
    EXPECT_EQ(makeCodec("PQ384", d)->codeSize(), 384u);
    EXPECT_EQ(makeCodec("OPQ256", d)->codeSize(), 256u);
}

} // namespace
