/**
 * @file
 * Unit tests for the util substrate: RNG, statistics, CSV, serialization,
 * thread pool, JSON reader.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/minijson.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/stats.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace hermes::util;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(9);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 1000; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversSupport)
{
    Rng rng(11);
    std::vector<int> counts(8, 0);
    for (int i = 0; i < 8000; ++i)
        counts[rng.uniformInt(8)]++;
    for (int c : counts)
        EXPECT_GT(c, 800); // expected 1000, generous bound
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.03);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(17);
    for (std::size_t k : {1u, 5u, 50u, 99u}) {
        auto sample = rng.sampleWithoutReplacement(100, k);
        ASSERT_EQ(sample.size(), k);
        std::sort(sample.begin(), sample.end());
        EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
        for (auto v : sample)
            EXPECT_LT(v, 100u);
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(21);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Zipf, ExponentZeroIsUniform)
{
    ZipfSampler sampler(10, 0.0);
    for (std::size_t i = 0; i < 10; ++i)
        EXPECT_NEAR(sampler.pmf(i), 0.1, 1e-12);
}

TEST(Zipf, PmfDecreasesWithRank)
{
    ZipfSampler sampler(50, 1.0);
    for (std::size_t i = 1; i < 50; ++i)
        EXPECT_GT(sampler.pmf(i - 1), sampler.pmf(i));
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler sampler(100, 0.8);
    double total = 0.0;
    for (std::size_t i = 0; i < 100; ++i)
        total += sampler.pmf(i);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, SamplesFollowPmf)
{
    ZipfSampler sampler(10, 1.2);
    Rng rng(31);
    std::vector<int> counts(10, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        counts[sampler(rng)]++;
    for (std::size_t i = 0; i < 10; ++i) {
        double expected = sampler.pmf(i) * n;
        EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected) + 10.0);
    }
}

TEST(RunningStats, BasicMoments)
{
    RunningStats stats;
    for (double x : {1.0, 2.0, 3.0, 4.0})
        stats.add(x);
    EXPECT_EQ(stats.count(), 4u);
    EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 4.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 1.25);
    EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
}

TEST(RunningStats, MergeMatchesCombinedStream)
{
    Rng rng(37);
    RunningStats all, left, right;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i % 2 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySidePreservesEverything)
{
    RunningStats filled;
    filled.add(2.0);
    filled.add(8.0);
    RunningStats empty;

    // empty <- filled: adopts the filled accumulator wholesale.
    RunningStats into_empty = empty;
    into_empty.merge(filled);
    EXPECT_EQ(into_empty.count(), 2u);
    EXPECT_DOUBLE_EQ(into_empty.mean(), 5.0);
    EXPECT_DOUBLE_EQ(into_empty.min(), 2.0);
    EXPECT_DOUBLE_EQ(into_empty.max(), 8.0);

    // filled <- empty: a no-op that must not disturb min/max/moments.
    RunningStats into_filled = filled;
    into_filled.merge(empty);
    EXPECT_EQ(into_filled.count(), 2u);
    EXPECT_DOUBLE_EQ(into_filled.mean(), 5.0);
    EXPECT_DOUBLE_EQ(into_filled.variance(), filled.variance());
    EXPECT_DOUBLE_EQ(into_filled.min(), 2.0);
    EXPECT_DOUBLE_EQ(into_filled.max(), 8.0);

    // empty <- empty stays empty.
    RunningStats both;
    both.merge(empty);
    EXPECT_EQ(both.count(), 0u);
    EXPECT_DOUBLE_EQ(both.mean(), 0.0);
}

TEST(RunningStats, MergeSingleSampleAccumulators)
{
    RunningStats a, b;
    a.add(-3.0);
    b.add(7.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), -3.0);
    EXPECT_DOUBLE_EQ(a.max(), 7.0);
    EXPECT_DOUBLE_EQ(a.variance(), 25.0);
}

TEST(RunningStats, EmptyAccumulatorIsZero)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(Distribution, ExactPercentiles)
{
    Distribution dist;
    for (int i = 1; i <= 100; ++i)
        dist.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(dist.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(dist.percentile(100), 100.0);
    EXPECT_NEAR(dist.median(), 50.5, 1e-9);
    EXPECT_NEAR(dist.percentile(25), 25.75, 1e-9);
}

TEST(Distribution, SingleSample)
{
    Distribution dist;
    dist.add(42.0);
    EXPECT_DOUBLE_EQ(dist.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(dist.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(dist.percentile(100), 42.0);
}

TEST(Stats, GeometricMean)
{
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Logging, RuntimeLevelRoundTrip)
{
    auto prev = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    // In a debug-enabled build this prints to stdout; in Release (with
    // HERMES_ENABLE_DEBUG_LOG unset) it compiles away entirely. Either
    // way it must not crash or change the level.
    HERMES_DEBUG("debug smoke message");
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(prev);
}

TEST(Csv, WritesEscapedRows)
{
    auto path = std::filesystem::temp_directory_path() / "hermes_csv_test.csv";
    {
        CsvWriter csv(path.string());
        csv.header({"a", "b"});
        csv.cell(1).cell("plain").endRow();
        csv.cell(2.5).cell("has,comma").endRow();
        EXPECT_EQ(csv.rowsWritten(), 2u);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,plain");
    std::getline(in, line);
    EXPECT_EQ(line, "2.5,\"has,comma\"");
    std::filesystem::remove(path);
}

TEST(Serialize, RoundTripsValuesVectorsStrings)
{
    auto path =
        std::filesystem::temp_directory_path() / "hermes_ser_test.bin";
    std::vector<float> payload{1.5f, -2.0f, 3.25f};
    {
        BinaryWriter w(path.string(), "HTST", 3);
        w.write<std::uint32_t>(0xdeadbeef);
        w.writeVector(payload);
        w.writeString("hello world");
        ASSERT_TRUE(w.good());
    }
    {
        BinaryReader r(path.string(), "HTST", 3);
        EXPECT_EQ(r.read<std::uint32_t>(), 0xdeadbeefu);
        EXPECT_EQ(r.readVector<float>(), payload);
        EXPECT_EQ(r.readString(), "hello world");
    }
    std::filesystem::remove(path);
}

TEST(ThreadPool, ParallelForCoversAllIndices)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> touched(257);
    pool.parallelFor(257, [&](std::size_t i) { touched[i]++; });
    for (const auto &t : touched)
        EXPECT_EQ(t.load(), 1);
}

TEST(ThreadPool, SubmitAndWait)
{
    ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { counter++; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, SingleWorkerRunsInline)
{
    ThreadPool pool(1);
    std::vector<int> order;
    pool.parallelFor(5, [&](std::size_t i) {
        order.push_back(static_cast<int>(i));
    });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

/** Percentile interpolation stays within sample range for any p. */
class PercentileSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PercentileSweep, WithinRange)
{
    Distribution dist;
    Rng rng(41);
    for (int i = 0; i < 500; ++i)
        dist.add(rng.uniform(-5.0, 5.0));
    double p = GetParam();
    double v = dist.percentile(p);
    EXPECT_GE(v, dist.min());
    EXPECT_LE(v, dist.max());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileSweep,
                         ::testing::Values(0.0, 1.0, 10.0, 25.0, 50.0, 75.0,
                                           90.0, 99.0, 100.0));

// ---------------------------------------------------------------------------
// minijson
// ---------------------------------------------------------------------------

TEST(Minijson, ParsesScalars)
{
    auto r = json::parse("  42.5 ");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_DOUBLE_EQ(r.value.numberOr(0.0), 42.5);

    EXPECT_TRUE(json::parse("true").value.boolOr(false));
    EXPECT_TRUE(json::parse("null").value.isNull());
    EXPECT_EQ(json::parse("\"hi\\n\\t\\\"there\\\"\"").value.stringOr(""),
              "hi\n\t\"there\"");
    EXPECT_DOUBLE_EQ(json::parse("-1.5e3").value.numberOr(0.0), -1500.0);
}

TEST(Minijson, ParsesNestedStructure)
{
    auto r = json::parse(
        "{\"a\": {\"b\": [1, 2, {\"c\": \"deep\"}]}, \"empty\": {},"
        " \"list\": []}");
    ASSERT_TRUE(r.ok) << r.error;
    const auto &root = r.value;
    ASSERT_TRUE(root.isObject());
    EXPECT_EQ(root.size(), 3u);

    const auto *b = root.at({"a", "b"});
    ASSERT_NE(b, nullptr);
    ASSERT_TRUE(b->isArray());
    ASSERT_EQ(b->size(), 3u);
    EXPECT_DOUBLE_EQ(b->index(0)->numberOr(0.0), 1.0);
    const auto *c = b->index(2)->find("c");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->stringOr(""), "deep");
    EXPECT_EQ(b->index(3), nullptr);
    EXPECT_EQ(root.at({"a", "missing"}), nullptr);
    EXPECT_TRUE(root.find("empty")->isObject());
    EXPECT_EQ(root.find("list")->size(), 0u);
}

TEST(Minijson, PreservesKeyOrder)
{
    auto r = json::parse("{\"z\": 1, \"a\": 2, \"m\": 3}");
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.value.keys().size(), 3u);
    EXPECT_EQ(r.value.keys()[0], "z");
    EXPECT_EQ(r.value.keys()[1], "a");
    EXPECT_EQ(r.value.keys()[2], "m");
}

TEST(Minijson, UnicodeEscapes)
{
    auto r = json::parse("\"\\u0041\\u00e9\"");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.value.stringOr(""), "A\xc3\xa9"); // "Aé" in UTF-8
}

TEST(Minijson, RejectsMalformedInput)
{
    const char *bad[] = {
        "",                    // empty
        "{",                   // unterminated object
        "[1, 2",               // unterminated array
        "{\"a\" 1}",           // missing colon
        "{\"a\": 1,}",         // trailing comma then '}'
        "\"unterminated",      // unterminated string
        "truth",               // bad literal
        "1 2",                 // trailing garbage
        "\"bad \\x escape\"",  // unknown escape
    };
    for (const char *text : bad) {
        auto r = json::parse(text);
        EXPECT_FALSE(r.ok) << "should reject: " << text;
        EXPECT_FALSE(r.error.empty());
    }
}

TEST(Minijson, RoundTripsRepoNumbers)
{
    // The exporters emit plain decimal/exponent forms; spot-check that
    // large counters survive the double round-trip exactly.
    auto r = json::parse("{\"n\": 1125899906842624}"); // 2^50
    ASSERT_TRUE(r.ok);
    EXPECT_DOUBLE_EQ(r.value.find("n")->numberOr(0.0), 1125899906842624.0);
}

} // namespace
