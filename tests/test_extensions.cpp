/**
 * @file
 * Tests for the extension features beyond the paper's core design:
 * dynamic IVF updates, SPANN-style list pruning, thread-pool batch
 * search, adaptive cluster pruning, non-ideal cache hit rates, the
 * serving-queue simulator, and generation-trace analysis.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "index/ivf_index.hpp"
#include "rag/analysis.hpp"
#include "sim/pipeline.hpp"
#include "sim/queue_sim.hpp"
#include "util/threadpool.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;
using vecstore::Matrix;
using vecstore::Metric;

struct IvfFixtureData
{
    Matrix base{0};
    Matrix queries{0};
    std::vector<vecstore::HitList> truth;
    std::unique_ptr<index::IvfIndex> ivf;
};

const IvfFixtureData &
ivfData()
{
    static IvfFixtureData data = [] {
        workload::CorpusConfig cc;
        cc.num_docs = 5000;
        cc.dim = 24;
        cc.num_topics = 16;
        cc.seed = 91;
        auto corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 32;
        qc.seed = 92;
        auto queries = workload::generateQueries(corpus, qc);

        IvfFixtureData out;
        out.base = std::move(corpus.embeddings);
        out.queries = std::move(queries.embeddings);
        out.truth = eval::exactGroundTruth(out.base, out.queries, 10,
                                           Metric::L2);
        index::IvfConfig config;
        config.nlist = 32;
        config.codec = "SQ8";
        out.ivf = std::make_unique<index::IvfIndex>(out.base.dim(),
                                                    Metric::L2, config);
        out.ivf->train(out.base);
        out.ivf->addSequential(out.base);
        return out;
    }();
    return data;
}

TEST(IvfRemove, RemovedIdsNeverReturned)
{
    const auto &data = ivfData();
    index::IvfConfig config;
    config.nlist = 16;
    index::IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    // Remove the true top-3 of query 0; they must disappear from results.
    std::vector<vecstore::VecId> doomed{data.truth[0][0].id,
                                        data.truth[0][1].id,
                                        data.truth[0][2].id};
    std::size_t removed = ivf.removeIds(doomed);
    EXPECT_EQ(removed, 3u);
    EXPECT_EQ(ivf.size(), data.base.rows() - 3);

    index::SearchParams params;
    params.nprobe = 16;
    auto hits = ivf.search(data.queries.row(0), 10, params);
    for (const auto &hit : hits) {
        for (auto id : doomed)
            EXPECT_NE(hit.id, id);
    }
}

TEST(IvfRemove, UnknownIdsAreIgnored)
{
    const auto &data = ivfData();
    index::IvfConfig config;
    config.nlist = 8;
    index::IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);
    EXPECT_EQ(ivf.removeIds({static_cast<vecstore::VecId>(1u << 30)}), 0u);
    EXPECT_EQ(ivf.size(), data.base.rows());
}

TEST(IvfRemove, RemainingVectorsStillSearchable)
{
    const auto &data = ivfData();
    index::IvfConfig config;
    config.nlist = 16;
    index::IvfIndex ivf(data.base.dim(), Metric::L2, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);

    std::vector<vecstore::VecId> doomed;
    for (vecstore::VecId id = 0; id < 1000; ++id)
        doomed.push_back(id);
    ivf.removeIds(doomed);

    index::SearchParams params;
    params.nprobe = 16;
    auto hits = ivf.search(data.queries.row(1), 10, params);
    EXPECT_EQ(hits.size(), 10u);
    for (const auto &hit : hits)
        EXPECT_GE(hit.id, 1000);
}

/** Pruning reduces work and keeps recall reasonable at generous ratios. */
class PruneRatioSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PruneRatioSweep, ReducesWorkKeepsQuality)
{
    const auto &data = ivfData();
    double ratio = GetParam();

    index::SearchParams plain;
    plain.nprobe = 16;
    index::SearchParams pruned = plain;
    pruned.prune_ratio = ratio;

    index::SearchStats plain_stats, pruned_stats;
    auto plain_results =
        data.ivf->searchBatch(data.queries, 10, plain, &plain_stats);
    auto pruned_results =
        data.ivf->searchBatch(data.queries, 10, pruned, &pruned_stats);

    EXPECT_LE(pruned_stats.lists_probed, plain_stats.lists_probed);
    EXPECT_LE(pruned_stats.vectors_scanned, plain_stats.vectors_scanned);

    double plain_recall = eval::meanRecallAtK(plain_results, data.truth,
                                              10);
    double pruned_recall = eval::meanRecallAtK(pruned_results, data.truth,
                                               10);
    // Generous ratios must stay close to unpruned quality.
    if (ratio >= 3.0)
        EXPECT_GT(pruned_recall, plain_recall - 0.08);
    // Every query still probes at least its best list.
    EXPECT_GE(pruned_stats.lists_probed, data.queries.rows());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PruneRatioSweep,
                         ::testing::Values(1.2, 2.0, 3.0, 5.0));

TEST(PruneRatio, ZeroDisablesPruning)
{
    const auto &data = ivfData();
    index::SearchParams params;
    params.nprobe = 8;
    params.prune_ratio = 0.0;
    index::SearchStats stats;
    data.ivf->search(data.queries.row(0), 5, params, &stats);
    EXPECT_EQ(stats.lists_probed, 8u);
}

TEST(ParallelBatch, MatchesSequentialResultsAndStats)
{
    const auto &data = ivfData();
    util::ThreadPool pool(4);

    index::SearchParams params;
    params.nprobe = 8;
    index::SearchStats seq_stats, par_stats;
    auto seq = data.ivf->searchBatch(data.queries, 5, params, &seq_stats);
    auto par = data.ivf->searchBatchParallel(data.queries, 5, pool, params,
                                             &par_stats);

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t q = 0; q < seq.size(); ++q) {
        ASSERT_EQ(seq[q].size(), par[q].size());
        for (std::size_t i = 0; i < seq[q].size(); ++i) {
            EXPECT_EQ(seq[q][i].id, par[q][i].id);
            EXPECT_FLOAT_EQ(seq[q][i].score, par[q][i].score);
        }
    }
    EXPECT_EQ(seq_stats.vectors_scanned, par_stats.vectors_scanned);
    EXPECT_EQ(seq_stats.lists_probed, par_stats.lists_probed);
}

TEST(AdaptiveHermes, SearchesFewerClustersOnAverage)
{
    workload::CorpusConfig cc;
    cc.num_docs = 5000;
    cc.dim = 24;
    cc.num_topics = 16;
    cc.seed = 93;
    auto corpus = workload::generateCorpus(cc);
    workload::QueryConfig qc;
    qc.num_queries = 48;
    qc.noise = 0.15; // easy queries: relevant docs concentrate
    qc.seed = 94;
    auto queries = workload::generateQueries(corpus, qc);

    core::HermesConfig fixed;
    fixed.num_clusters = 8;
    fixed.clusters_to_search = 4;
    fixed.sample_nprobe = 4;
    fixed.deep_nprobe = 32;
    fixed.partition.seeds_to_try = 2;
    auto store = core::DistributedStore::build(corpus.embeddings, fixed);

    core::HermesConfig adaptive = fixed;
    adaptive.adaptive_epsilon = 0.10;
    auto adaptive_store =
        core::DistributedStore::build(corpus.embeddings, adaptive);

    core::HermesSearch fixed_search(store);
    core::HermesSearch adaptive_search(adaptive_store);

    std::size_t fixed_total = 0, adaptive_total = 0;
    for (std::size_t q = 0; q < queries.embeddings.rows(); ++q) {
        auto f = fixed_search.search(queries.embeddings.row(q), 5);
        auto a = adaptive_search.search(queries.embeddings.row(q), 5);
        fixed_total += f.deep_clusters.size();
        adaptive_total += a.deep_clusters.size();
        EXPECT_GE(a.deep_clusters.size(), 1u);
        EXPECT_LE(a.deep_clusters.size(), adaptive.clusters_to_search);
    }
    EXPECT_LT(adaptive_total, fixed_total);
}

TEST(AdaptiveHermes, HugeEpsilonMatchesFixedBehaviour)
{
    workload::CorpusConfig cc;
    cc.num_docs = 2000;
    cc.dim = 16;
    cc.num_topics = 8;
    auto corpus = workload::generateCorpus(cc);

    core::HermesConfig config;
    config.num_clusters = 4;
    config.clusters_to_search = 3;
    config.adaptive_epsilon = 1e9;
    config.partition.seeds_to_try = 1;
    auto store = core::DistributedStore::build(corpus.embeddings, config);
    core::HermesSearch search(store);
    auto result = search.search(corpus.embeddings.row(0), 5);
    EXPECT_EQ(result.deep_clusters.size(), 3u);
}

TEST(CacheHitRate, InterpolatesBetweenIdealAndNoCache)
{
    sim::PipelineConfig base;
    base.datastore.tokens = 1e9;
    base.batch = 32;

    sim::PipelineConfig no_cache = base;
    no_cache.prefix_caching = false;

    auto e2e_at = [&](double hit_rate) {
        sim::PipelineConfig config = base;
        config.prefix_caching = true;
        config.cache_hit_rate = hit_rate;
        return sim::RagPipelineSim(config).run().e2e;
    };

    double e2e_none = sim::RagPipelineSim(no_cache).run().e2e;
    EXPECT_NEAR(e2e_at(0.0), e2e_none, 1e-9);
    EXPECT_LT(e2e_at(1.0), e2e_at(0.5));
    EXPECT_LT(e2e_at(0.5), e2e_at(0.0));
}

TEST(QueueSim, LightLoadLatencyNearServiceTime)
{
    sim::QueueConfig config;
    config.arrival_qps = 1.0; // far below capacity
    config.max_batch = 8;
    config.max_wait = 0.0;
    config.num_queries = 2000;
    auto service = [](std::size_t batch) {
        return 0.01 + 0.001 * static_cast<double>(batch);
    };
    auto result = sim::simulateQueue(config, service);
    EXPECT_EQ(result.latency.count(), config.num_queries);
    // Nearly every query served alone, immediately.
    EXPECT_LT(result.latency.median(), 0.02);
    EXPECT_LT(result.utilization, 0.1);
}

TEST(QueueSim, HeavyLoadInflatesTailLatency)
{
    auto service = [](std::size_t batch) {
        return 0.05 + 0.002 * static_cast<double>(batch);
    };
    sim::QueueConfig light, heavy;
    light.arrival_qps = 50.0;
    heavy.arrival_qps = 400.0;
    light.max_batch = heavy.max_batch = 64;
    light.max_wait = heavy.max_wait = 0.01;
    light.num_queries = heavy.num_queries = 5000;

    auto light_result = sim::simulateQueue(light, service);
    auto heavy_result = sim::simulateQueue(heavy, service);
    EXPECT_GT(heavy_result.latency.percentile(99),
              light_result.latency.percentile(99));
    EXPECT_GT(heavy_result.batch_sizes.mean(),
              light_result.batch_sizes.mean());
    EXPECT_GT(heavy_result.utilization, light_result.utilization);
}

TEST(QueueSim, ThroughputTracksArrivalWhenStable)
{
    sim::QueueConfig config;
    config.arrival_qps = 100.0;
    config.max_batch = 32;
    config.max_wait = 0.02;
    config.num_queries = 10000;
    auto service = [](std::size_t batch) {
        return 0.02 + 0.001 * static_cast<double>(batch);
    };
    auto result = sim::simulateQueue(config, service);
    EXPECT_NEAR(result.throughput_qps, 100.0, 10.0);
    EXPECT_LE(result.batch_sizes.max(), 32.0);
    EXPECT_LE(result.utilization, 1.0 + 1e-9);
}

TEST(StrideOverlap, HandcraftedOverlapMeasured)
{
    rag::GenerationResult result;
    rag::StrideEvent a, b;
    a.index = 0;
    a.retrieved = {{1, 0.f}, {2, 0.f}, {3, 0.f}, {4, 0.f}};
    a.best_chunk = 1;
    a.deep_clusters = {0, 1};
    b.index = 1;
    b.retrieved = {{3, 0.f}, {4, 0.f}, {5, 0.f}, {6, 0.f}};
    b.best_chunk = 1;
    b.deep_clusters = {1, 0};
    result.strides = {a, b};

    auto stats = rag::strideOverlap(result);
    EXPECT_EQ(stats.transitions, 1u);
    EXPECT_DOUBLE_EQ(stats.mean_hit_rate, 0.5);   // 2 of 4 reused
    EXPECT_DOUBLE_EQ(stats.mean_jaccard, 2.0 / 6.0);
    EXPECT_DOUBLE_EQ(stats.best_chunk_repeat_rate, 1.0);
    // Same cluster set (order-insensitive) => fully stable routing.
    EXPECT_DOUBLE_EQ(rag::routingStability(result), 1.0);
}

TEST(StrideOverlap, SingleStrideHasNoTransitions)
{
    rag::GenerationResult result;
    result.strides.resize(1);
    EXPECT_EQ(rag::strideOverlap(result).transitions, 0u);
    EXPECT_DOUBLE_EQ(rag::routingStability(result), 1.0);
}

} // namespace
