/**
 * @file
 * Cross-module integration tests: the full measured retrieval path
 * (corpus → partition → distributed IVF → hierarchical search → metrics)
 * feeding the multi-node simulator, mirroring the paper's methodology of
 * pairing real cluster-access traces with modeled hardware.
 */

#include <gtest/gtest.h>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "sim/node_sim.hpp"
#include "sim/pipeline.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;

struct Deployment
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    std::vector<vecstore::HitList> truth;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;
};

const Deployment &
deployment()
{
    static Deployment dep = [] {
        Deployment out;
        workload::CorpusConfig cc;
        cc.num_docs = 8000;
        cc.dim = 24;
        cc.num_topics = 24;
        cc.topic_zipf = 0.8;
        cc.seed = 71;
        out.corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 96;
        qc.topic_zipf = 1.0;
        qc.seed = 72;
        out.queries = workload::generateQueries(out.corpus, qc);
        out.truth = eval::exactGroundTruth(out.corpus.embeddings,
                                           out.queries.embeddings, 5,
                                           vecstore::Metric::L2);

        out.config.num_clusters = 10;
        out.config.clusters_to_search = 3;
        out.config.sample_nprobe = 4;
        out.config.deep_nprobe = 32;
        out.config.partition.seeds_to_try = 3;
        out.store = std::make_unique<core::DistributedStore>(
            core::DistributedStore::build(out.corpus.embeddings,
                                          out.config));
        return out;
    }();
    return dep;
}

TEST(Integration, MeasuredTraceDrivesSimulator)
{
    const auto &dep = deployment();
    core::HermesSearch hermes(*dep.store);
    auto trace = hermes.traceBatch(dep.queries.embeddings, 5);

    sim::MultiNodeConfig mn;
    mn.total.tokens = static_cast<double>(dep.corpus.totalTokens());
    mn.num_clusters = dep.config.num_clusters;
    mn.sample_nprobe = dep.config.sample_nprobe;
    mn.deep_nprobe = dep.config.deep_nprobe;
    mn.batch = 32;
    // Feed the *measured* partition sizes into the model.
    for (auto size : dep.store->partitioning().sizes())
        mn.cluster_shares.push_back(static_cast<double>(size));

    auto result = sim::MultiNodeSimulator(mn).replayTrace(trace);
    EXPECT_GT(result.latency, 0.0);
    EXPECT_GT(result.energy, 0.0);
    // The skewed trace must load nodes unevenly.
    auto mx = *std::max_element(result.node_queries.begin(),
                                result.node_queries.end());
    auto mn_q = *std::min_element(result.node_queries.begin(),
                                  result.node_queries.end());
    EXPECT_GT(mx, mn_q);
}

TEST(Integration, QualityOrderingAcrossStrategies)
{
    // Fig 11 ordering at few clusters searched: Hermes >= centroid
    // routing, and naive split (all clusters) is the distributed ceiling.
    const auto &dep = deployment();
    core::HermesSearch hermes(*dep.store);
    core::CentroidRouting centroid(*dep.store);
    core::NaiveSplitSearch split(*dep.store);

    auto ndcg_of = [&](const core::SearchStrategy &strategy) {
        std::vector<vecstore::HitList> results;
        for (std::size_t q = 0; q < dep.queries.embeddings.rows(); ++q)
            results.push_back(
                strategy.search(dep.queries.embeddings.row(q), 5).hits);
        return eval::meanNdcgAtK(results, dep.truth, 5);
    };

    double hermes_ndcg = ndcg_of(hermes);
    double centroid_ndcg = ndcg_of(centroid);
    double split_ndcg = ndcg_of(split);

    EXPECT_GE(hermes_ndcg, centroid_ndcg - 0.02);
    EXPECT_GE(split_ndcg, hermes_ndcg - 0.02);
    EXPECT_GT(hermes_ndcg, 0.75);
}

TEST(Integration, MoreDeepClustersMonotonicallyImproveNdcg)
{
    const auto &dep = deployment();
    double prev = 0.0;
    for (std::size_t deep : {1u, 3u, 6u, 10u}) {
        core::HermesConfig config = dep.config;
        config.clusters_to_search = deep;
        // Rebuilding the store is expensive; reuse via a fresh strategy
        // bound to a store built with the same partitioning.
        core::DistributedStore store = core::DistributedStore::build(
            dep.corpus.embeddings, config);
        core::HermesSearch hermes(store);
        std::vector<vecstore::HitList> results;
        for (std::size_t q = 0; q < dep.queries.embeddings.rows(); ++q)
            results.push_back(
                hermes.search(dep.queries.embeddings.row(q), 5).hits);
        double ndcg = eval::meanNdcgAtK(results, dep.truth, 5);
        EXPECT_GE(ndcg, prev - 0.02) << "deep=" << deep;
        prev = std::max(prev, ndcg);
    }
    EXPECT_GT(prev, 0.85);
}

TEST(Integration, EndToEndPipelineRanksConfigurations)
{
    // At-scale sanity: for a 100B datastore the full stack must rank
    // Hermes+pipelining+caching < Hermes < baseline on E2E latency.
    sim::PipelineConfig base;
    base.datastore.tokens = 100e9;
    base.batch = 32;

    sim::PipelineConfig hermes = base;
    hermes.retrieval = sim::RetrievalMode::Hermes;

    sim::PipelineConfig combined = hermes;
    combined.pipelining = true;
    combined.prefix_caching = true;

    double e2e_base = sim::RagPipelineSim(base).run().e2e;
    double e2e_hermes = sim::RagPipelineSim(hermes).run().e2e;
    double e2e_combined = sim::RagPipelineSim(combined).run().e2e;
    EXPECT_LT(e2e_combined, e2e_hermes);
    EXPECT_LT(e2e_hermes, e2e_base);
}

} // namespace
