/**
 * @file
 * Tests for the systems models: hardware profiles, retrieval/LLM cost
 * models (calibration checks against the paper's reported numbers),
 * multi-node aggregation, DVFS policies, and the pipeline simulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"
#include "sim/node_sim.hpp"
#include "sim/pipeline.hpp"

namespace {

using namespace hermes::sim;

DatastoreGeometry
geometryTokens(double tokens)
{
    DatastoreGeometry geo;
    geo.tokens = tokens;
    return geo;
}

TEST(Hardware, ProfilesHaveSaneValues)
{
    for (auto model : allCpuModels()) {
        const auto &cpu = cpuProfile(model);
        EXPECT_GT(cpu.cores, 0u);
        EXPECT_GT(cpu.scan_gbps_per_core, 0.0);
        EXPECT_GT(cpu.tdp_watts, cpu.idle_watts);
        EXPECT_GT(cpu.max_freq_ghz, cpu.min_freq_ghz);
    }
    for (auto model : allGpuModels()) {
        const auto &gpu = gpuProfile(model);
        EXPECT_GT(gpu.peak_tflops, 0.0);
        EXPECT_GT(gpu.tdp_watts, gpu.idle_watts);
    }
}

TEST(Hardware, TensorParallelRequirements)
{
    // Fig 17: OPT-30B needs two A6000 Adas; Gemma2-9B needs two L4s.
    EXPECT_EQ(llmProfile(LlmModel::Opt30B).minGpus(
                  gpuProfile(GpuModel::A6000Ada)), 2u);
    EXPECT_EQ(llmProfile(LlmModel::Gemma2_9B).minGpus(
                  gpuProfile(GpuModel::A6000Ada)), 1u);
    EXPECT_EQ(llmProfile(LlmModel::Gemma2_9B).minGpus(
                  gpuProfile(GpuModel::L4)), 2u);
    EXPECT_EQ(llmProfile(LlmModel::Phi15).minGpus(
                  gpuProfile(GpuModel::L4)), 1u);
}

TEST(Hardware, KvCacheBoundsServingBatch)
{
    const auto &gemma = llmProfile(LlmModel::Gemma2_9B);
    const auto &opt = llmProfile(LlmModel::Opt30B);
    const auto &a6000 = gpuProfile(GpuModel::A6000Ada);

    // Longer contexts shrink the feasible batch.
    std::size_t short_ctx = gemma.maxBatch(a6000, 1, 512);
    std::size_t long_ctx = gemma.maxBatch(a6000, 1, 4096);
    EXPECT_GT(short_ctx, long_ctx);
    EXPECT_GT(long_ctx, 0u);

    // The paper's batch-128 / 768-token serving point fits on one A6000.
    EXPECT_GE(gemma.maxBatch(a6000, 1, 768), 128u);

    // OPT-30B does not even hold its weights on one A6000.
    EXPECT_EQ(opt.maxBatch(a6000, 1, 512), 0u);
    EXPECT_GT(opt.maxBatch(a6000, 2, 512), 0u);

    // More GPUs always help.
    EXPECT_GE(gemma.maxBatch(a6000, 2, 4096), long_ctx);
}

TEST(Hardware, EncoderHasUnboundedKvBatch)
{
    const auto &bge = llmProfile(LlmModel::BgeLarge);
    EXPECT_EQ(bge.maxBatch(gpuProfile(GpuModel::L4), 1, 512),
              std::numeric_limits<std::size_t>::max());
}

TEST(Geometry, MemoryFootprintMatchesPaperScale)
{
    // Paper: 10B-token IVF-SQ8 index = 71 GB; 1T tokens ~ 10 TB.
    double gb_10b = geometryTokens(10e9).indexBytes() / 1e9;
    EXPECT_GT(gb_10b, 60.0);
    EXPECT_LT(gb_10b, 90.0);
    double tb_1t = geometryTokens(1e12).indexBytes() / 1e12;
    EXPECT_GT(tb_1t, 6.0);
    EXPECT_LT(tb_1t, 11.0);
}

TEST(Geometry, SplitPreservesTotalTokens)
{
    auto geo = geometryTokens(100e9);
    auto part = geo.split(10);
    EXPECT_DOUBLE_EQ(part.tokens * 10, geo.tokens);
}

TEST(RetrievalModel, CalibratedTo10BTokenLatency)
{
    // Calibration anchor: batch-32 retrieval on the 32-core Xeon Gold at
    // nProbe=128 takes ~0.56 s at 10B tokens (DESIGN.md §4).
    RetrievalCostModel model(cpuProfile(CpuModel::XeonGold6448Y));
    double latency = model.batchLatency(geometryTokens(10e9), 128, 32);
    EXPECT_GT(latency, 0.4);
    EXPECT_LT(latency, 0.8);
}

TEST(RetrievalModel, LatencyScalesLinearlyWithTokens)
{
    // Fig 6/7: 10x tokens => ~10x latency (within the centroid-scan
    // offset) in the capped-nlist regime.
    RetrievalCostModel model(cpuProfile(CpuModel::XeonGold6448Y));
    double t_100b = model.batchLatency(geometryTokens(100e9), 128, 32);
    double t_1t = model.batchLatency(geometryTokens(1e12), 128, 32);
    EXPECT_NEAR(t_1t / t_100b, 10.0, 0.5);
}

TEST(RetrievalModel, ThroughputMatchesPaper100B)
{
    // Fig 7: ~5.7 QPS at 100B tokens (batch 128, 32 cores).
    RetrievalCostModel model(cpuProfile(CpuModel::XeonGold6448Y));
    double qps = model.throughputQps(geometryTokens(100e9), 128, 128);
    EXPECT_GT(qps, 4.0);
    EXPECT_LT(qps, 8.0);
}

TEST(RetrievalModel, FrequencyScalingSlowsLinearly)
{
    RetrievalCostModel model(cpuProfile(CpuModel::XeonGold6448Y));
    double full = model.queryLatency(1e9, 1.0);
    double half = model.queryLatency(1e9, 0.5);
    EXPECT_NEAR(half, 2.0 * full, 1e-9);
}

TEST(RetrievalModel, PowerModelMonotonic)
{
    RetrievalCostModel model(cpuProfile(CpuModel::XeonGold6448Y));
    EXPECT_DOUBLE_EQ(model.power(0.0, 1.0),
                     cpuProfile(CpuModel::XeonGold6448Y).idle_watts);
    EXPECT_DOUBLE_EQ(model.power(1.0, 1.0),
                     cpuProfile(CpuModel::XeonGold6448Y).tdp_watts);
    // Cubic frequency scaling: half frequency costs 1/8 the dynamic power.
    double p_half = model.power(1.0, 0.5);
    double dynamic_full = model.power(1.0, 1.0) - model.power(0.0, 1.0);
    EXPECT_NEAR(p_half - model.power(0.0, 1.0), dynamic_full / 8.0, 1e-9);
}

TEST(LlmModel, DecodeCalibratedToGemmaA6000)
{
    // Paper: Gemma2-9B decode at batch 32 delivers ~67 QPS per 16-token
    // stride, i.e. ~0.48 s per stride.
    LlmCostModel llm(LlmModel::Gemma2_9B, GpuModel::A6000Ada);
    double stride = llm.decodeLatency(32, 16);
    EXPECT_GT(stride, 0.35);
    EXPECT_LT(stride, 0.65);
}

TEST(LlmModel, PrefillLinearInTokensAndBatch)
{
    LlmCostModel llm(LlmModel::Gemma2_9B, GpuModel::A6000Ada);
    double base = llm.prefillLatency(32, 512);
    EXPECT_NEAR(llm.prefillLatency(64, 512), 2.0 * base, 1e-9);
    EXPECT_NEAR(llm.prefillLatency(32, 1024), 2.0 * base, 1e-9);
}

TEST(LlmModel, BiggerModelsAreSlower)
{
    LlmCostModel phi(LlmModel::Phi15, GpuModel::A6000Ada);
    LlmCostModel gemma(LlmModel::Gemma2_9B, GpuModel::A6000Ada);
    LlmCostModel opt(LlmModel::Opt30B, GpuModel::A6000Ada);
    EXPECT_LT(phi.prefillLatency(32, 512), gemma.prefillLatency(32, 512));
    EXPECT_LT(gemma.prefillLatency(32, 512), opt.prefillLatency(32, 512));
    EXPECT_LT(phi.decodeLatency(32, 16), gemma.decodeLatency(32, 16));
}

TEST(LlmModel, L4SlowerThanA6000)
{
    LlmCostModel a6000(LlmModel::Phi15, GpuModel::A6000Ada);
    LlmCostModel l4(LlmModel::Phi15, GpuModel::L4);
    EXPECT_GT(l4.prefillLatency(32, 512), a6000.prefillLatency(32, 512));
    EXPECT_GT(l4.decodeLatency(32, 16), a6000.decodeLatency(32, 16));
}

TEST(LlmModel, TensorParallelismHelpsButSublinearly)
{
    LlmCostModel one(LlmModel::Gemma2_9B, GpuModel::A6000Ada, 1);
    LlmCostModel two(LlmModel::Gemma2_9B, GpuModel::A6000Ada, 2);
    double speedup = one.prefillLatency(32, 512) /
                     two.prefillLatency(32, 512);
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 2.0); // communication overhead (Fig 17 discussion)
    // But energy grows with GPU count.
    EXPECT_GT(two.busyEnergy(1.0), one.busyEnergy(1.0));
}

TEST(MultiNode, HermesBeatsNaiveSplitThroughput)
{
    // Fig 18 behaviour: 3-of-10 deep search vs searching all 10.
    MultiNodeConfig config;
    config.total = geometryTokens(10e9);
    config.num_clusters = 10;
    config.batch = 128;

    MultiNodeConfig naive = config;
    naive.sample_nprobe = 0;
    auto naive_result =
        MultiNodeSimulator(naive).simulateUniformBatch(10);
    auto hermes_result =
        MultiNodeSimulator(config).simulateUniformBatch(3);

    double speedup = hermes_result.throughput_qps /
                     naive_result.throughput_qps;
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 3.0);
    EXPECT_LT(hermes_result.energy, naive_result.energy);
}

TEST(MultiNode, EnergyGrowsWithClustersSearched)
{
    MultiNodeConfig config;
    config.total = geometryTokens(10e9);
    config.num_clusters = 10;
    config.batch = 128;
    MultiNodeSimulator sim(config);
    double prev = 0.0;
    for (std::size_t k = 1; k <= 10; ++k) {
        auto result = sim.simulateUniformBatch(k);
        EXPECT_GT(result.energy, prev);
        prev = result.energy;
    }
}

TEST(MultiNode, ClusterSharesSkewLoad)
{
    MultiNodeConfig config;
    config.total = geometryTokens(10e9);
    config.num_clusters = 4;
    config.cluster_shares = {2.0, 1.0, 1.0, 1.0};
    config.batch = 64;
    MultiNodeSimulator sim(config);
    EXPECT_NEAR(sim.clusterGeometry(0).tokens, 4e9, 1e6);
    EXPECT_NEAR(sim.clusterGeometry(1).tokens, 2e9, 1e6);
}

TEST(MultiNode, BaselineDvfsSavesEnergyWithoutLatencyCost)
{
    // Fig 21: slowing under-loaded nodes to the slowest cluster's pace
    // saves ~10-15% energy at zero latency cost.
    MultiNodeConfig config;
    config.total = geometryTokens(10e9);
    config.num_clusters = 10;
    // Uneven shares create the idle slack DVFS exploits.
    config.cluster_shares = {2.0, 1.8, 1.5, 1.2, 1.0,
                             1.0, 0.9, 0.8, 0.7, 0.6};
    config.batch = 128;

    auto none = MultiNodeSimulator(config).simulateUniformBatch(3);
    config.dvfs = DvfsPolicy::SlowestCluster;
    auto dvfs = MultiNodeSimulator(config).simulateUniformBatch(3);

    EXPECT_LT(dvfs.energy, none.energy);
    EXPECT_NEAR(dvfs.latency, none.latency, none.latency * 0.01);
}

TEST(MultiNode, EnhancedDvfsSavesMoreThanBaseline)
{
    // Same deployment (same pipelined inference window) under the two
    // policies of Fig 21: matching the inference latency allows a deeper
    // slowdown than matching only the slowest cluster.
    MultiNodeConfig config;
    config.total = geometryTokens(10e9);
    config.num_clusters = 10;
    config.cluster_shares = {2.0, 1.8, 1.5, 1.2, 1.0,
                             1.0, 0.9, 0.8, 0.7, 0.6};
    config.batch = 128;
    config.dvfs = DvfsPolicy::SlowestCluster;
    auto probe = MultiNodeSimulator(config).simulateUniformBatch(3);
    config.inference_latency = probe.deep_latency * 2.0;
    auto baseline = MultiNodeSimulator(config).simulateUniformBatch(3);

    config.dvfs = DvfsPolicy::MatchInference;
    auto enhanced = MultiNodeSimulator(config).simulateUniformBatch(3);

    EXPECT_LT(enhanced.energy, baseline.energy);

    // And no-DVFS costs the most of the three.
    config.dvfs = DvfsPolicy::None;
    auto none = MultiNodeSimulator(config).simulateUniformBatch(3);
    EXPECT_LT(baseline.energy, none.energy);
}

TEST(MultiNode, ReplayTraceAggregates)
{
    hermes::workload::ClusterTrace trace;
    trace.num_clusters = 4;
    for (std::uint32_t q = 0; q < 64; ++q)
        trace.records.push_back({q, {q % 4, (q + 1) % 4}});

    MultiNodeConfig config;
    config.total = geometryTokens(1e9);
    config.num_clusters = 4;
    config.batch = 32;
    auto result = MultiNodeSimulator(config).replayTrace(trace);
    EXPECT_GT(result.latency, 0.0);
    EXPECT_GT(result.energy, 0.0);
    EXPECT_GT(result.throughput_qps, 0.0);
}

TEST(Pipeline, E2ECalibratedAtSmallDatastore)
{
    // Fig 6: ~12 s end-to-end at 100M tokens (batch 32, stride 16,
    // 512 in / 256 out, Gemma2-9B on A6000 Ada).
    PipelineConfig config;
    config.datastore = geometryTokens(100e6);
    config.batch = 32;
    auto result = RagPipelineSim(config).run();
    EXPECT_GT(result.e2e, 8.0);
    EXPECT_LT(result.e2e, 18.0);
    EXPECT_EQ(result.num_strides, 16u);
}

TEST(Pipeline, E2EMatchesPaperAtScale)
{
    // Fig 6: ~101.8 s at 100B and ~909 s at 1T.
    PipelineConfig config;
    config.batch = 32;
    config.datastore = geometryTokens(100e9);
    double e2e_100b = RagPipelineSim(config).run().e2e;
    EXPECT_GT(e2e_100b, 70.0);
    EXPECT_LT(e2e_100b, 140.0);

    config.datastore = geometryTokens(1e12);
    double e2e_1t = RagPipelineSim(config).run().e2e;
    EXPECT_GT(e2e_1t, 650.0);
    EXPECT_LT(e2e_1t, 1200.0);
}

TEST(Pipeline, RetrievalDominatesTtftAtScale)
{
    // Fig 6: retrieval ~61% of TTFT at 10B, ~94% at 100B.
    PipelineConfig config;
    config.batch = 32;
    config.datastore = geometryTokens(10e9);
    auto sim_10b = RagPipelineSim(config);
    double frac_10b = sim_10b.retrievalLatency() / sim_10b.run().ttft;
    EXPECT_GT(frac_10b, 0.4);
    EXPECT_LT(frac_10b, 0.8);

    config.datastore = geometryTokens(100e9);
    auto sim_100b = RagPipelineSim(config);
    double frac_100b = sim_100b.retrievalLatency() / sim_100b.run().ttft;
    EXPECT_GT(frac_100b, 0.88);
}

TEST(Pipeline, HermesSpeedupGrowsWithDatastore)
{
    // Fig 14 center: the Hermes win is modest at 1B and ~9x at 1T.
    auto speedup_at = [](double tokens) {
        PipelineConfig base;
        base.datastore = geometryTokens(tokens);
        PipelineConfig hermes = base;
        hermes.retrieval = RetrievalMode::Hermes;
        return RagPipelineSim(base).run().e2e /
               RagPipelineSim(hermes).run().e2e;
    };
    double s_1b = speedup_at(1e9);
    double s_100b = speedup_at(100e9);
    double s_1t = speedup_at(1e12);
    EXPECT_LT(s_1b, s_100b);
    EXPECT_LE(s_100b, s_1t * 1.05);
    // Paper reports 9.33x at 1T (batch 128); our calibrated model lands
    // in the same regime, slightly higher due to idealized wave
    // scheduling (see EXPERIMENTS.md).
    EXPECT_GT(s_1t, 5.0);
    EXPECT_LT(s_1t, 18.0);
}

TEST(Pipeline, HermesTtftSpeedupAtTrillionScale)
{
    // Fig 16: ~9.1x TTFT improvement at 1T tokens.
    PipelineConfig base;
    base.datastore = geometryTokens(1e12);
    PipelineConfig hermes = base;
    hermes.retrieval = RetrievalMode::Hermes;
    double speedup = RagPipelineSim(base).run().ttft /
                     RagPipelineSim(hermes).run().ttft;
    EXPECT_GT(speedup, 6.0);
    EXPECT_LT(speedup, 18.0);
}

TEST(Pipeline, HermesSavesEnergyAtScale)
{
    // Headline: ~2.1x energy at 1T.
    PipelineConfig base;
    base.datastore = geometryTokens(1e12);
    PipelineConfig hermes = base;
    hermes.retrieval = RetrievalMode::Hermes;
    double ratio = RagPipelineSim(base).run().totalEnergy() /
                   RagPipelineSim(hermes).run().totalEnergy();
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 3.5);
}

TEST(Pipeline, PrefixCachingHelpsMostAtSmallScale)
{
    // Fig 8 right: RAGCache's benefit decays as retrieval dominates.
    auto speedup_at = [](double tokens) {
        PipelineConfig base;
        base.datastore = geometryTokens(tokens);
        PipelineConfig cached = base;
        cached.prefix_caching = true;
        return RagPipelineSim(base).run().e2e /
               RagPipelineSim(cached).run().e2e;
    };
    double s_small = speedup_at(100e6);
    double s_large = speedup_at(100e9);
    EXPECT_GT(s_small, 1.1);
    EXPECT_GT(s_small, s_large);
    EXPECT_LT(s_large, 1.1);
}

TEST(Pipeline, PipeliningBoundedByRetrieval)
{
    // Fig 8: pipelining overlaps well when retrieval ~ inference, poorly
    // when retrieval dwarfs inference.
    auto speedup_at = [](double tokens) {
        PipelineConfig base;
        base.datastore = geometryTokens(tokens);
        PipelineConfig piped = base;
        piped.pipelining = true;
        return RagPipelineSim(base).run().e2e /
               RagPipelineSim(piped).run().e2e;
    };
    EXPECT_GT(speedup_at(1e9), 1.1);
    // At 1T retrieval is ~56 s vs ~1 s of inference: pipelining cannot
    // save more than the inference share.
    EXPECT_LT(speedup_at(1e12), 1.2);
}

TEST(Pipeline, CombinedOptimizationsStack)
{
    PipelineConfig base;
    base.datastore = geometryTokens(1e12);

    PipelineConfig hermes = base;
    hermes.retrieval = RetrievalMode::Hermes;

    PipelineConfig combined = hermes;
    combined.pipelining = true;
    combined.prefix_caching = true;

    double e2e_base = RagPipelineSim(base).run().e2e;
    double e2e_hermes = RagPipelineSim(hermes).run().e2e;
    double e2e_combined = RagPipelineSim(combined).run().e2e;
    EXPECT_LT(e2e_hermes, e2e_base);
    EXPECT_LT(e2e_combined, e2e_hermes);
}

TEST(Pipeline, TtftUnaffectedByPipeliningAndCaching)
{
    // Fig 16: prior optimizations cannot reduce TTFT; only Hermes can.
    PipelineConfig base;
    base.datastore = geometryTokens(100e9);
    PipelineConfig optimized = base;
    optimized.pipelining = true;
    optimized.prefix_caching = true;
    EXPECT_NEAR(RagPipelineSim(base).run().ttft,
                RagPipelineSim(optimized).run().ttft, 1e-9);
}

TEST(Pipeline, StrideSweepAmplifiesHermesWin)
{
    // Fig 14 right: shorter strides => more retrievals => bigger win.
    auto speedup_at_stride = [](std::size_t stride) {
        PipelineConfig base;
        base.datastore = geometryTokens(100e9);
        base.stride = stride;
        PipelineConfig hermes = base;
        hermes.retrieval = RetrievalMode::Hermes;
        return RagPipelineSim(base).run().e2e /
               RagPipelineSim(hermes).run().e2e;
    };
    EXPECT_GT(speedup_at_stride(4), speedup_at_stride(64));
}

TEST(Pipeline, OptimalClusterTokensGrowsWithContext)
{
    // Fig 19: longer input contexts allow bigger clusters.
    PipelineConfig config;
    config.batch = 128;
    config.input_tokens = 32;
    config.output_tokens = 32;
    double small = RagPipelineSim::optimalClusterTokens(config);
    config.input_tokens = 2048;
    double large = RagPipelineSim::optimalClusterTokens(config);
    EXPECT_GT(small, 0.0);
    // The prefill contribution grows with nothing here (stride window),
    // but decode window is identical — cluster size must not shrink.
    EXPECT_GE(large, small);
}

TEST(Pipeline, ThroughputInverseOfLatency)
{
    PipelineConfig config;
    config.datastore = geometryTokens(10e9);
    auto result = RagPipelineSim(config).run();
    EXPECT_NEAR(result.throughput_qps,
                static_cast<double>(config.batch) / result.e2e, 1e-9);
}

} // namespace
