/**
 * @file
 * Negative-path robustness suite: misuse of every public API must fail
 * loudly (panic/fatal) rather than corrupt state — the gem5 error
 * discipline (panic = internal bug, fatal = user error).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cluster/kmeans.hpp"
#include "cluster/partitioner.hpp"
#include "index/flat_index.hpp"
#include "index/ivf_index.hpp"
#include "quant/codec.hpp"
#include "sim/node_sim.hpp"
#include "sim/queue_sim.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/topk.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;
using vecstore::Matrix;
using vecstore::Metric;

Matrix
smallData(std::size_t rows = 64, std::size_t dim = 8)
{
    util::Rng rng(3);
    Matrix m(rows, dim);
    for (std::size_t i = 0; i < rows; ++i)
        for (std::size_t j = 0; j < dim; ++j)
            m.row(i)[j] = static_cast<float>(rng.gaussian());
    return m;
}

TEST(Robustness, ArchiveBadMagicIsFatal)
{
    auto path = std::filesystem::temp_directory_path() / "bad_magic.bin";
    {
        std::ofstream out(path, std::ios::binary);
        out << "XXXXGARBAGE";
    }
    EXPECT_EXIT((void)util::BinaryReader(path.string(), "HIVF", 1),
                ::testing::ExitedWithCode(1), "bad archive magic");
    std::filesystem::remove(path);
}

TEST(Robustness, ArchiveVersionMismatchIsFatal)
{
    auto path = std::filesystem::temp_directory_path() / "bad_ver.bin";
    {
        util::BinaryWriter w(path.string(), "HTST", 7);
        w.write<int>(1);
    }
    EXPECT_EXIT((void)util::BinaryReader(path.string(), "HTST", 8),
                ::testing::ExitedWithCode(1), "version mismatch");
    std::filesystem::remove(path);
}

TEST(Robustness, TruncatedArchivePanics)
{
    auto path = std::filesystem::temp_directory_path() / "truncated.bin";
    {
        util::BinaryWriter w(path.string(), "HTST", 1);
        w.write<std::uint8_t>(1);
    }
    util::BinaryReader r(path.string(), "HTST", 1);
    (void)r.read<std::uint8_t>();
    EXPECT_DEATH((void)r.read<std::uint64_t>(), "truncated");
    std::filesystem::remove(path);
}

TEST(Robustness, MatrixRowOutOfRangePanics)
{
    Matrix m(2, 4);
    EXPECT_DEATH((void)m.row(2), "out of range");
}

TEST(Robustness, MatrixAppendDimMismatchPanics)
{
    Matrix m(2, 4);
    std::vector<float> wrong(3, 0.f);
    EXPECT_DEATH(m.append(vecstore::VecView(wrong.data(), 3)),
                 "does not match");
}

TEST(Robustness, TopKZeroCapacityPanics)
{
    EXPECT_DEATH(vecstore::TopK(0), "k >= 1");
}

TEST(Robustness, KmeansMorePointsThanCentroidsRequired)
{
    auto data = smallData(4, 8);
    cluster::KMeansConfig config;
    config.k = 10;
    EXPECT_DEATH((void)cluster::kmeans(data, config), "fewer points");
}

TEST(Robustness, PartitionMoreThanRowsPanics)
{
    auto data = smallData(4, 8);
    cluster::PartitionConfig config;
    config.num_partitions = 10;
    EXPECT_DEATH((void)cluster::partition(data, config), "fewer rows");
}

TEST(Robustness, IvfSearchBeforeTrainPanics)
{
    index::IvfConfig config;
    config.nlist = 4;
    index::IvfIndex ivf(8, Metric::L2, config);
    std::vector<float> q(8, 0.f);
    EXPECT_DEATH((void)ivf.search(vecstore::VecView(q.data(), 8), 1),
                 "before train");
}

TEST(Robustness, IvfAddBeforeTrainPanics)
{
    index::IvfConfig config;
    config.nlist = 4;
    index::IvfIndex ivf(8, Metric::L2, config);
    auto data = smallData(4, 8);
    EXPECT_DEATH(ivf.add(data, {0, 1, 2, 3}), "before train");
}

TEST(Robustness, IvfQueryDimMismatchPanics)
{
    auto data = smallData(64, 8);
    index::IvfConfig config;
    config.nlist = 4;
    index::IvfIndex ivf(8, Metric::L2, config);
    ivf.train(data);
    ivf.addSequential(data);
    std::vector<float> q(16, 0.f);
    EXPECT_DEATH((void)ivf.search(vecstore::VecView(q.data(), 16), 1),
                 "dim mismatch");
}

TEST(Robustness, UnknownCodecSpecIsFatal)
{
    EXPECT_EXIT((void)quant::makeCodec("ZSTD", 8),
                ::testing::ExitedWithCode(1), "unknown codec");
    EXPECT_EXIT((void)quant::makeCodec("PQ", 8),
                ::testing::ExitedWithCode(1), "suffix");
}

TEST(Robustness, PqMustDivideDim)
{
    EXPECT_DEATH((void)quant::makeCodec("PQ3", 8), "divide");
}

TEST(Robustness, UnknownIndexSpecIsFatal)
{
    EXPECT_EXIT((void)index::makeIndex("LSH64", 8, Metric::L2),
                ::testing::ExitedWithCode(1), "unknown index spec");
}

TEST(Robustness, MultiNodeBadSharesPanics)
{
    sim::MultiNodeConfig config;
    config.num_clusters = 4;
    config.cluster_shares = {1.0, 2.0}; // wrong length
    EXPECT_DEATH((void)sim::MultiNodeSimulator(config), "shares");
}

TEST(Robustness, TraceReferencingUnknownClusterPanics)
{
    sim::MultiNodeConfig config;
    config.num_clusters = 2;
    sim::MultiNodeSimulator sim(config);
    std::vector<std::vector<std::uint32_t>> accesses = {{5}};
    EXPECT_DEATH((void)sim.simulateBatch(accesses), "cluster");
}

TEST(Robustness, QueueRejectsNonsense)
{
    sim::QueueConfig config;
    config.arrival_qps = 0.0;
    auto service = [](std::size_t) { return 0.01; };
    EXPECT_DEATH((void)sim::simulateQueue(config, service),
                 "arrival rate");
}

TEST(Robustness, QueueRejectsNonPositiveServiceTime)
{
    sim::QueueConfig config;
    config.num_queries = 4;
    auto service = [](std::size_t) { return 0.0; };
    EXPECT_DEATH((void)sim::simulateQueue(config, service),
                 "service time");
}

TEST(Robustness, CorpusRequiresDocuments)
{
    workload::CorpusConfig cc;
    cc.num_docs = 0;
    EXPECT_DEATH((void)workload::generateCorpus(cc), "documents");
}

TEST(Robustness, FlatIndexIdCountMismatchPanics)
{
    index::FlatIndex flat(8, Metric::L2);
    auto data = smallData(4, 8);
    EXPECT_DEATH(flat.add(data, {1, 2}), "mismatch");
}

} // namespace
