/**
 * @file
 * Tests for the pluggable rerankers.
 */

#include <gtest/gtest.h>

#include "rag/encoder.hpp"
#include "rag/reranker.hpp"

namespace {

using namespace hermes;
using namespace hermes::rag;

struct RerankerFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        // Three chunks: 0 lexically matches the question, 1 is the dense
        // nearest neighbor, 2 is both worse.
        datastore.addDocument("solar panels convert light into power");
        datastore.addDocument("batteries store electrical energy cheaply");
        datastore.addDocument("the referee blew the whistle at halftime");

        HashingEncoder encoder(64);
        embeddings = encoder.encodeBatch(datastore.texts());

        question = "how do solar panels convert light";
        query = encoder.encode(question);

        request.question = question;
        request.query = vecstore::VecView(query.data(), query.size());
        request.candidates = {{0, 0.f}, {1, 0.f}, {2, 0.f}};
    }

    ChunkDatastore datastore;
    vecstore::Matrix embeddings{0};
    std::string question;
    std::vector<float> query;
    RerankRequest request;
};

TEST_F(RerankerFixture, InnerProductRanksDenseNearest)
{
    InnerProductReranker reranker;
    auto ranked = reranker.rerank(request, embeddings, datastore);
    ASSERT_EQ(ranked.size(), 3u);
    // The lexically-matching chunk is also the dense nearest; the order
    // of the two unrelated chunks is hashing noise, so only the top is
    // asserted.
    EXPECT_EQ(ranked[0].id, 0);
}

TEST_F(RerankerFixture, TermOverlapRanksLexicalMatch)
{
    TermOverlapReranker reranker;
    auto ranked = reranker.rerank(request, embeddings, datastore);
    ASSERT_EQ(ranked.size(), 3u);
    EXPECT_EQ(ranked[0].id, 0);
    // Chunk 2 shares only stop-word-ish terms ("the").
    EXPECT_EQ(ranked.back().id, 2);
}

TEST_F(RerankerFixture, OverlapScoreMath)
{
    EXPECT_DOUBLE_EQ(
        TermOverlapReranker::overlapScore("alpha beta", "alpha gamma"),
        0.5);
    EXPECT_DOUBLE_EQ(
        TermOverlapReranker::overlapScore("alpha beta", "delta gamma"),
        0.0);
    EXPECT_DOUBLE_EQ(
        TermOverlapReranker::overlapScore("alpha", "alpha alpha alpha"),
        1.0);
    EXPECT_DOUBLE_EQ(TermOverlapReranker::overlapScore("", "anything"),
                     0.0);
}

TEST_F(RerankerFixture, HybridAlphaOneMatchesInnerProductOrder)
{
    HybridReranker hybrid(1.0);
    InnerProductReranker dense;
    auto a = hybrid.rerank(request, embeddings, datastore);
    auto b = dense.rerank(request, embeddings, datastore);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].id, b[i].id);
}

TEST_F(RerankerFixture, HybridAlphaZeroMatchesTermOverlapOrder)
{
    HybridReranker hybrid(0.0);
    TermOverlapReranker sparse;
    auto a = hybrid.rerank(request, embeddings, datastore);
    auto b = sparse.rerank(request, embeddings, datastore);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].id, b[i].id);
}

TEST_F(RerankerFixture, EmptyCandidatesStayEmpty)
{
    request.candidates.clear();
    for (const char *spec : {"inner-product", "term-overlap", "hybrid"}) {
        auto reranker = makeReranker(spec);
        EXPECT_TRUE(
            reranker->rerank(request, embeddings, datastore).empty());
    }
}

TEST(RerankerFactory, ParsesSpecs)
{
    EXPECT_EQ(makeReranker("inner-product")->name(), "inner-product");
    EXPECT_EQ(makeReranker("term-overlap")->name(), "term-overlap");
    EXPECT_EQ(makeReranker("hybrid")->name(), "hybrid");
    EXPECT_EQ(makeReranker("hybrid:0.3")->name(), "hybrid");
}

TEST(RerankerFactory, RejectsUnknownSpec)
{
    EXPECT_EXIT((void)makeReranker("neural-xxl"),
                ::testing::ExitedWithCode(1), "unknown reranker");
}

} // namespace
