/**
 * @file
 * Tests for the RAG serving layer: encoder, chunk datastore, perplexity
 * model, synthetic text corpus, and the RagSystem facade.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "rag/datastore.hpp"
#include "rag/encoder.hpp"
#include "rag/perplexity.hpp"
#include "rag/rag_system.hpp"
#include "rag/synth_text.hpp"
#include "vecstore/distance.hpp"

namespace {

using namespace hermes;
using namespace hermes::rag;

TEST(Encoder, DeterministicAndUnitNorm)
{
    HashingEncoder encoder(64);
    auto a = encoder.encode("the quick brown fox");
    auto b = encoder.encode("the quick brown fox");
    EXPECT_EQ(a, b);
    EXPECT_NEAR(vecstore::normSq(a.data(), a.size()), 1.f, 1e-4);
}

TEST(Encoder, TokenizeLowercasesAndSplits)
{
    auto tokens = HashingEncoder::tokenize("Hello, World! 42-cats");
    ASSERT_EQ(tokens.size(), 4u);
    EXPECT_EQ(tokens[0], "hello");
    EXPECT_EQ(tokens[1], "world");
    EXPECT_EQ(tokens[2], "42");
    EXPECT_EQ(tokens[3], "cats");
}

TEST(Encoder, SimilarTextsCloserThanDissimilar)
{
    HashingEncoder encoder(128);
    auto a = encoder.encode("solar panels convert sunlight into power");
    auto b = encoder.encode("solar panels turn sunlight into electricity");
    auto c = encoder.encode("the referee blew the whistle at halftime");
    float sim_ab = vecstore::dot(a.data(), b.data(), a.size());
    float sim_ac = vecstore::dot(a.data(), c.data(), a.size());
    EXPECT_GT(sim_ab, sim_ac);
}

TEST(Encoder, EmptyTextIsZeroVector)
{
    HashingEncoder encoder(32);
    auto v = encoder.encode("");
    for (float x : v)
        EXPECT_EQ(x, 0.f);
}

TEST(Encoder, BatchMatchesSingle)
{
    HashingEncoder encoder(32);
    auto batch = encoder.encodeBatch({"alpha beta", "gamma delta"});
    auto single = encoder.encode("gamma delta");
    ASSERT_EQ(batch.rows(), 2u);
    for (std::size_t j = 0; j < 32; ++j)
        EXPECT_FLOAT_EQ(batch.row(1)[j], single[j]);
}

TEST(Datastore, ChunksRespectTokenBudget)
{
    ChunkDatastore store;
    std::string doc;
    for (int i = 0; i < 250; ++i)
        doc += "w" + std::to_string(i) + " ";
    ChunkConfig config;
    config.tokens_per_chunk = 100;
    auto ids = store.addDocument(doc, config);
    ASSERT_EQ(ids.size(), 3u);
    EXPECT_EQ(store.chunk(ids[0]).tokens, 100u);
    EXPECT_EQ(store.chunk(ids[1]).tokens, 100u);
    EXPECT_EQ(store.chunk(ids[2]).tokens, 50u);
    EXPECT_EQ(store.totalTokens(), 250u);
    EXPECT_EQ(store.numDocuments(), 1u);
}

TEST(Datastore, OverlapRepeatsTokens)
{
    ChunkDatastore store;
    ChunkConfig config;
    config.tokens_per_chunk = 4;
    config.overlap = 2;
    auto ids = store.addDocument("a b c d e f", config);
    ASSERT_GE(ids.size(), 2u);
    EXPECT_EQ(store.chunk(ids[0]).text, "a b c d");
    EXPECT_EQ(store.chunk(ids[1]).text, "c d e f");
}

TEST(Datastore, IdsAreDenseAndStable)
{
    ChunkDatastore store;
    store.addDocument("one two three");
    store.addDocument("four five six");
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.chunk(0).doc, 0u);
    EXPECT_EQ(store.chunk(1).doc, 1u);
    EXPECT_EQ(store.texts().size(), 2u);
}

TEST(Datastore, EmptyDocumentAddsNothing)
{
    ChunkDatastore store;
    auto ids = store.addDocument("   ");
    EXPECT_TRUE(ids.empty());
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.numDocuments(), 1u);
}

TEST(Perplexity, DenseModelsAreStrideIndependent)
{
    for (auto model : {sim::LlmModel::Gpt2_762M, sim::LlmModel::Gpt2_1_5B}) {
        double p4 = modelPerplexity(model, 4);
        double p64 = modelPerplexity(model, 64);
        EXPECT_DOUBLE_EQ(p4, p64);
    }
}

TEST(Perplexity, RetroDegradesMonotonicallyWithStride)
{
    double prev = 0.0;
    for (std::size_t stride : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        double p = modelPerplexity(sim::LlmModel::Retro578M, stride);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(Perplexity, SmallRetroMatchesLargerDenseModelAtShortStride)
{
    // Fig 5: RETRO-578M at stride 4 ~ GPT-2 1.5B; at stride 64 it loses
    // even to GPT-2 762M.
    double retro_4 = modelPerplexity(sim::LlmModel::Retro578M, 4);
    double gpt_15 = modelPerplexity(sim::LlmModel::Gpt2_1_5B, 4);
    EXPECT_LT(retro_4, gpt_15 + 0.5);

    double retro_64 = modelPerplexity(sim::LlmModel::Retro578M, 64);
    double gpt_762 = modelPerplexity(sim::LlmModel::Gpt2_762M, 64);
    EXPECT_GT(retro_64, gpt_762);
}

TEST(Perplexity, CrossoverStrideIsReasonable)
{
    auto stride = crossoverStride(sim::LlmModel::Retro578M,
                                  sim::LlmModel::Gpt2_1_5B);
    EXPECT_GE(stride, 2u);
    EXPECT_LE(stride, 16u);
}

TEST(SynthText, TopicsGetDistinctVocabularies)
{
    SynthTextConfig config;
    config.num_docs = 50;
    config.num_topics = 4;
    auto corpus = generateSynthCorpus(config);
    ASSERT_EQ(corpus.documents.size(), 50u);
    ASSERT_EQ(corpus.topic_words.size(), 4u);
    std::set<std::string> a(corpus.topic_words[0].begin(),
                            corpus.topic_words[0].end());
    std::size_t overlap = 0;
    for (const auto &w : corpus.topic_words[1])
        overlap += a.count(w);
    EXPECT_LT(overlap, corpus.topic_words[1].size() / 4);
}

TEST(SynthText, QuestionUsesTopicVocabulary)
{
    SynthTextConfig config;
    config.num_topics = 3;
    auto corpus = generateSynthCorpus(config);
    auto q = corpus.questionAbout(1);
    EXPECT_NE(q.find("what is the relation between"), std::string::npos);
}

class RagSystemTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        SynthTextConfig tc;
        tc.num_docs = 300;
        tc.num_topics = 6;
        tc.words_per_doc = 150;
        corpus_ = new SynthCorpus(generateSynthCorpus(tc));

        RagSystemConfig rc;
        rc.embedding_dim = 96;
        rc.chunking.tokens_per_chunk = 50;
        rc.hermes.num_clusters = 6;
        rc.hermes.clusters_to_search = 2;
        rc.hermes.sample_nprobe = 2;
        rc.hermes.deep_nprobe = 16;
        rc.hermes.docs_to_retrieve = 5;
        rc.hermes.partition.seeds_to_try = 2;
        system_ = new RagSystem(rc);
        for (const auto &doc : corpus_->documents)
            system_->addDocument(doc);
        system_->finalize();
    }

    static void
    TearDownTestSuite()
    {
        delete system_;
        delete corpus_;
        system_ = nullptr;
        corpus_ = nullptr;
    }

    static SynthCorpus *corpus_;
    static RagSystem *system_;
};

SynthCorpus *RagSystemTest::corpus_ = nullptr;
RagSystem *RagSystemTest::system_ = nullptr;

TEST_F(RagSystemTest, ReadyAfterFinalize)
{
    EXPECT_TRUE(system_->ready());
    EXPECT_EQ(system_->store().numClusters(), 6u);
    EXPECT_EQ(system_->datastore().size(), system_->store().totalVectors());
}

TEST_F(RagSystemTest, RetrievesChunksOfTheQuestionTopic)
{
    std::size_t on_topic = 0, total = 0;
    for (std::uint32_t topic = 0; topic < 6; ++topic) {
        auto hits = system_->retrieve(corpus_->questionAbout(topic), 5);
        for (const auto &hit : hits) {
            const auto &chunk = system_->datastore().chunk(hit.id);
            on_topic += corpus_->topic_of_doc[chunk.doc] == topic;
            ++total;
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(on_topic) / static_cast<double>(total),
              0.7);
}

TEST_F(RagSystemTest, GenerateProducesStridedOutput)
{
    GenerationConfig gen;
    gen.output_tokens = 32;
    gen.stride = 8;
    auto result = system_->generate(corpus_->questionAbout(2), gen);
    EXPECT_EQ(result.strides.size(), 4u);
    EXPECT_FALSE(result.output_text.empty());
    for (const auto &event : result.strides) {
        EXPECT_EQ(event.deep_clusters.size(), 2u);
        EXPECT_NE(event.best_chunk, vecstore::kInvalidId);
    }
    EXPECT_GT(result.retrieval_wall_seconds, 0.0);
}

TEST_F(RagSystemTest, GenerationIsDeterministic)
{
    GenerationConfig gen;
    gen.output_tokens = 16;
    gen.stride = 8;
    gen.seed = 42;
    auto a = system_->generate(corpus_->questionAbout(0), gen);
    auto b = system_->generate(corpus_->questionAbout(0), gen);
    EXPECT_EQ(a.output_text, b.output_text);
}

TEST(RagSystem, AddAfterFinalizeDies)
{
    SynthTextConfig tc;
    tc.num_docs = 40;
    tc.num_topics = 2;
    auto corpus = generateSynthCorpus(tc);
    RagSystemConfig rc;
    rc.hermes.num_clusters = 2;
    rc.hermes.clusters_to_search = 1;
    rc.hermes.partition.seeds_to_try = 1;
    rc.chunking.tokens_per_chunk = 40;
    RagSystem system(rc);
    for (const auto &doc : corpus.documents)
        system.addDocument(doc);
    system.finalize();
    EXPECT_DEATH(system.addDocument("more text"), "finalize");
}

} // namespace
