/**
 * @file
 * Parity suite for the runtime-dispatched SIMD kernel layer.
 *
 * The AVX2 arm must agree with the scalar arm to reduction-order ulps
 * (<= 1e-4 relative) across odd dimensionalities and unaligned row
 * offsets; every codec's batched scan() must agree with its per-code
 * operator(); and an IVF search must return the same results on both
 * dispatch arms. Tests that need the AVX2 arm skip themselves on
 * machines (or builds) without it, so the suite is green on both CI
 * dispatch legs.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "index/flat_index.hpp"
#include "index/ivf_index.hpp"
#include "quant/codec.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/simd_dispatch.hpp"
#include "vecstore/topk.hpp"

namespace {

using namespace hermes;
using vecstore::Metric;
using vecstore::simd::KernelTable;

constexpr float kRelTol = 1e-4f;

/** The dimensions the parity contract covers: odd, prime, and d=768. */
const std::size_t kDims[] = {1, 7, 31, 97, 768};

void
expectClose(float expected, float actual, const std::string &what)
{
    float scale = std::max({std::fabs(expected), std::fabs(actual), 1.f});
    EXPECT_LE(std::fabs(expected - actual), kRelTol * scale)
        << what << ": expected " << expected << " got " << actual;
}

std::vector<float>
randomVec(util::Rng &rng, std::size_t n)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.gaussian());
    return v;
}

vecstore::Matrix
randomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed)
{
    util::Rng rng(seed);
    vecstore::Matrix m(rows, dim);
    for (std::size_t i = 0; i < rows; ++i) {
        auto row = m.row(i);
        for (std::size_t j = 0; j < dim; ++j)
            row[j] = static_cast<float>(rng.gaussian());
    }
    return m;
}

/** Restores the startup dispatch arm when a test returns. */
class IsaGuard
{
  public:
    IsaGuard() : name_(vecstore::simd::activeIsa()) {}
    ~IsaGuard() { vecstore::simd::forceIsaForTesting(name_.c_str()); }

  private:
    std::string name_;
};

TEST(SimdDispatch, ScalarArmAlwaysAvailable)
{
    const KernelTable &scalar = vecstore::simd::scalarKernels();
    EXPECT_STREQ(scalar.name, "scalar");
    const char *isa = vecstore::simd::activeIsa();
    EXPECT_TRUE(std::strcmp(isa, "scalar") == 0 ||
                std::strcmp(isa, "avx2") == 0);
}

TEST(SimdDispatch, Avx2MatchesScalarSingleVector)
{
    const KernelTable *avx2 = vecstore::simd::avx2Kernels();
    if (avx2 == nullptr)
        GTEST_SKIP() << "AVX2 arm unavailable";
    const KernelTable &scalar = vecstore::simd::scalarKernels();
    util::Rng rng(11);
    for (std::size_t d : kDims) {
        auto a = randomVec(rng, d);
        auto b = randomVec(rng, d);
        expectClose(scalar.l2_sq(a.data(), b.data(), d),
                    avx2->l2_sq(a.data(), b.data(), d),
                    "l2Sq d=" + std::to_string(d));
        expectClose(scalar.dot(a.data(), b.data(), d),
                    avx2->dot(a.data(), b.data(), d),
                    "dot d=" + std::to_string(d));
    }
}

TEST(SimdDispatch, Avx2MatchesScalarUnalignedRows)
{
    const KernelTable *avx2 = vecstore::simd::avx2Kernels();
    if (avx2 == nullptr)
        GTEST_SKIP() << "AVX2 arm unavailable";
    const KernelTable &scalar = vecstore::simd::scalarKernels();
    util::Rng rng(12);
    for (std::size_t d : kDims) {
        // Offset both operands by one float so neither is 32-byte
        // aligned: AVX2 kernels must use unaligned loads throughout.
        auto abuf = randomVec(rng, d + 1);
        auto bbuf = randomVec(rng, d + 1);
        const float *a = abuf.data() + 1;
        const float *b = bbuf.data() + 1;
        expectClose(scalar.l2_sq(a, b, d), avx2->l2_sq(a, b, d),
                    "unaligned l2Sq d=" + std::to_string(d));
        expectClose(scalar.dot(a, b, d), avx2->dot(a, b, d),
                    "unaligned dot d=" + std::to_string(d));
    }
}

TEST(SimdDispatch, BatchKernelsMatchSingleKernels)
{
    // Both arms: the blocked kernel must agree with n single-row calls,
    // including an unaligned base pointer and a non-multiple-of-4 n.
    std::vector<const KernelTable *> arms = {
        &vecstore::simd::scalarKernels()};
    if (vecstore::simd::avx2Kernels() != nullptr)
        arms.push_back(vecstore::simd::avx2Kernels());
    util::Rng rng(13);
    const std::size_t n = 37;
    for (const KernelTable *kt : arms) {
        for (std::size_t d : kDims) {
            auto q = randomVec(rng, d);
            auto buf = randomVec(rng, n * d + 1);
            const float *base = buf.data() + 1;
            std::vector<float> l2(n);
            std::vector<float> ip(n);
            kt->l2_sq_batch(q.data(), base, n, d, l2.data());
            kt->dot_batch(q.data(), base, n, d, ip.data());
            for (std::size_t i = 0; i < n; ++i) {
                expectClose(kt->l2_sq(q.data(), base + i * d, d), l2[i],
                            std::string(kt->name) + " l2SqBatch");
                expectClose(kt->dot(q.data(), base + i * d, d), ip[i],
                            std::string(kt->name) + " dotBatch");
            }
        }
    }
}

TEST(SimdDispatch, Sq8ScanKernelsMatchAcrossArms)
{
    const KernelTable *avx2 = vecstore::simd::avx2Kernels();
    if (avx2 == nullptr)
        GTEST_SKIP() << "AVX2 arm unavailable";
    const KernelTable &scalar = vecstore::simd::scalarKernels();
    util::Rng rng(14);
    const std::size_t n = 33;
    for (std::size_t d : kDims) {
        // Realistic operand scale: codec precomputation multiplies the
        // per-dimension operands by vdiff/255, so code values of 0..255
        // contribute O(1) terms (raw gaussians would make the comparison
        // cancellation-dominated instead of kernel-dominated).
        auto a = randomVec(rng, d);
        auto b = randomVec(rng, d);
        for (std::size_t j = 0; j < d; ++j) {
            a[j] /= 255.f;
            b[j] /= 255.f;
        }
        std::vector<std::uint8_t> codes(n * d);
        for (auto &c : codes)
            c = static_cast<std::uint8_t>(rng.uniformInt(256));
        std::vector<float> ref(n);
        std::vector<float> got(n);
        scalar.sq8_scan_l2(a.data(), b.data(), codes.data(), n, d,
                           ref.data());
        avx2->sq8_scan_l2(a.data(), b.data(), codes.data(), n, d,
                          got.data());
        for (std::size_t i = 0; i < n; ++i)
            expectClose(ref[i], got[i],
                        "sq8_scan_l2 d=" + std::to_string(d));
        scalar.sq8_scan_ip(a.data(), 0.5f, codes.data(), n, d, ref.data());
        avx2->sq8_scan_ip(a.data(), 0.5f, codes.data(), n, d, got.data());
        for (std::size_t i = 0; i < n; ++i)
            expectClose(ref[i], got[i],
                        "sq8_scan_ip d=" + std::to_string(d));
    }
}

TEST(CodecScan, MatchesPerCodeComputerAllCodecs)
{
    const std::size_t d = 96;
    const std::size_t n = 300;
    auto data = randomMatrix(512, d, 21);
    auto queries = randomMatrix(3, d, 22);
    for (const char *spec : {"Flat", "SQ8", "SQ4", "PQ16", "OPQ8"}) {
        auto codec = quant::makeCodec(spec, d);
        codec->train(data);
        std::vector<std::uint8_t> codes(n * codec->codeSize());
        for (std::size_t i = 0; i < n; ++i)
            codec->encode(data.row(i % data.rows()),
                          codes.data() + i * codec->codeSize());
        for (Metric metric : {Metric::L2, Metric::InnerProduct}) {
            for (std::size_t q = 0; q < queries.rows(); ++q) {
                auto computer =
                    codec->distanceComputer(metric, queries.row(q));
                ASSERT_EQ(computer->codeSize(), codec->codeSize());
                std::vector<float> batch(n);
                computer->scan(codes.data(), n,
                               std::numeric_limits<float>::max(),
                               batch.data());
                for (std::size_t i = 0; i < n; ++i) {
                    float one =
                        (*computer)(codes.data() + i * codec->codeSize());
                    expectClose(one, batch[i],
                                std::string(spec) + "/" +
                                    vecstore::metricName(metric) +
                                    " scan row " + std::to_string(i));
                }
            }
        }
    }
}

TEST(CodecScan, OddDimFlatAndSq8)
{
    // Codecs without divisibility constraints must scan at odd dims too.
    const std::size_t d = 97;
    const std::size_t n = 41;
    auto data = randomMatrix(128, d, 23);
    auto query = randomMatrix(1, d, 24);
    for (const char *spec : {"Flat", "SQ8"}) {
        auto codec = quant::makeCodec(spec, d);
        codec->train(data);
        std::vector<std::uint8_t> codes(n * codec->codeSize());
        for (std::size_t i = 0; i < n; ++i)
            codec->encode(data.row(i), codes.data() + i * codec->codeSize());
        for (Metric metric : {Metric::L2, Metric::InnerProduct}) {
            auto computer = codec->distanceComputer(metric, query.row(0));
            std::vector<float> batch(n);
            computer->scan(codes.data(), n,
                           std::numeric_limits<float>::max(), batch.data());
            for (std::size_t i = 0; i < n; ++i) {
                float one =
                    (*computer)(codes.data() + i * codec->codeSize());
                expectClose(one, batch[i],
                            std::string(spec) + " odd-dim scan");
            }
        }
    }
}

TEST(SimdDispatch, MultiQueryKernelsMatchSingleQueryBatch)
{
    // The list-major contract is bit-parity, not ulp-parity: the multi
    // kernels must replay each (query, row) reduction in exactly the
    // single-query order, so the comparison is ==, both arms, including
    // the 2-query pairing remainder (odd Q) and the row tail (n % 4).
    std::vector<const KernelTable *> arms = {
        &vecstore::simd::scalarKernels()};
    if (vecstore::simd::avx2Kernels() != nullptr)
        arms.push_back(vecstore::simd::avx2Kernels());
    util::Rng rng(71);
    const std::size_t n = 37;
    for (const KernelTable *kt : arms) {
        for (std::size_t d : kDims) {
            for (std::size_t q_count : {1, 2, 3, 5, 8}) {
                std::vector<std::vector<float>> queries;
                std::vector<const float *> query_ptrs;
                for (std::size_t q = 0; q < q_count; ++q) {
                    queries.push_back(randomVec(rng, d));
                    query_ptrs.push_back(queries.back().data());
                }
                auto buf = randomVec(rng, n * d + 1);
                const float *base = buf.data() + 1; // unaligned rows
                std::vector<std::vector<float>> multi(
                    q_count, std::vector<float>(n));
                std::vector<float *> out_ptrs;
                for (auto &out : multi)
                    out_ptrs.push_back(out.data());
                std::vector<float> ref(n);

                kt->l2_sq_batch_multi(query_ptrs.data(), q_count, base, n,
                                      d, out_ptrs.data());
                for (std::size_t q = 0; q < q_count; ++q) {
                    kt->l2_sq_batch(query_ptrs[q], base, n, d, ref.data());
                    for (std::size_t i = 0; i < n; ++i)
                        EXPECT_EQ(ref[i], multi[q][i])
                            << kt->name << " l2 multi d=" << d << " Q="
                            << q_count << " q=" << q << " row=" << i;
                }

                kt->dot_batch_multi(query_ptrs.data(), q_count, base, n,
                                    d, out_ptrs.data());
                for (std::size_t q = 0; q < q_count; ++q) {
                    kt->dot_batch(query_ptrs[q], base, n, d, ref.data());
                    for (std::size_t i = 0; i < n; ++i)
                        EXPECT_EQ(ref[i], multi[q][i])
                            << kt->name << " dot multi d=" << d << " Q="
                            << q_count << " q=" << q << " row=" << i;
                }
            }
        }
    }
}

TEST(SimdDispatch, Sq8MultiScanMatchesSingleScan)
{
    // Same ==-parity contract for the fused SQ8 scans: the multi kernel
    // shares the dequant loads across query pairs but must keep each
    // query's accumulation order identical to the single-query scan.
    std::vector<const KernelTable *> arms = {
        &vecstore::simd::scalarKernels()};
    if (vecstore::simd::avx2Kernels() != nullptr)
        arms.push_back(vecstore::simd::avx2Kernels());
    util::Rng rng(72);
    const std::size_t n = 33;
    for (const KernelTable *kt : arms) {
        for (std::size_t d : kDims) {
            for (std::size_t q_count : {1, 3, 6}) {
                auto b = randomVec(rng, d);
                for (auto &x : b)
                    x /= 255.f;
                std::vector<std::vector<float>> as;
                std::vector<const float *> a_ptrs;
                std::vector<float> biases;
                for (std::size_t q = 0; q < q_count; ++q) {
                    as.push_back(randomVec(rng, d));
                    for (auto &x : as.back())
                        x /= 255.f;
                    a_ptrs.push_back(as.back().data());
                    biases.push_back(
                        static_cast<float>(rng.gaussian()));
                }
                std::vector<std::uint8_t> codes(n * d);
                for (auto &c : codes)
                    c = static_cast<std::uint8_t>(rng.uniformInt(256));
                std::vector<std::vector<float>> multi(
                    q_count, std::vector<float>(n));
                std::vector<float *> out_ptrs;
                for (auto &out : multi)
                    out_ptrs.push_back(out.data());
                std::vector<float> ref(n);

                kt->sq8_scan_l2_multi(a_ptrs.data(), b.data(), q_count,
                                      codes.data(), n, d, out_ptrs.data());
                for (std::size_t q = 0; q < q_count; ++q) {
                    kt->sq8_scan_l2(a_ptrs[q], b.data(), codes.data(), n,
                                    d, ref.data());
                    for (std::size_t i = 0; i < n; ++i)
                        EXPECT_EQ(ref[i], multi[q][i])
                            << kt->name << " sq8 l2 multi d=" << d
                            << " q=" << q << " row=" << i;
                }

                kt->sq8_scan_ip_multi(a_ptrs.data(), biases.data(),
                                      q_count, codes.data(), n, d,
                                      out_ptrs.data());
                for (std::size_t q = 0; q < q_count; ++q) {
                    kt->sq8_scan_ip(a_ptrs[q], biases[q], codes.data(), n,
                                    d, ref.data());
                    for (std::size_t i = 0; i < n; ++i)
                        EXPECT_EQ(ref[i], multi[q][i])
                            << kt->name << " sq8 ip multi d=" << d
                            << " q=" << q << " row=" << i;
                }
            }
        }
    }
}

TEST(CodecScan, ScanMultiMatchesPerQueryScanAllCodecs)
{
    // scanMulti must be bit-identical to per-query scan for every codec
    // and metric on whichever dispatch arms this machine has.
    const std::size_t d = 96;
    const std::size_t n = 300;
    const std::size_t q_count = 5;
    auto data = randomMatrix(512, d, 73);
    auto queries = randomMatrix(q_count, d, 74);
    IsaGuard guard;
    for (const char *arm : {"scalar", "avx2"}) {
        if (!vecstore::simd::forceIsaForTesting(arm))
            continue;
        for (const char *spec : {"Flat", "SQ8", "SQ4", "PQ16", "OPQ8"}) {
            auto codec = quant::makeCodec(spec, d);
            codec->train(data);
            std::vector<std::uint8_t> codes(n * codec->codeSize());
            for (std::size_t i = 0; i < n; ++i)
                codec->encode(data.row(i % data.rows()),
                              codes.data() + i * codec->codeSize());
            for (Metric metric : {Metric::L2, Metric::InnerProduct}) {
                std::vector<std::unique_ptr<quant::DistanceComputer>>
                    computers;
                std::vector<const quant::DistanceComputer *> peers;
                for (std::size_t q = 0; q < q_count; ++q) {
                    computers.push_back(
                        codec->distanceComputer(metric, queries.row(q)));
                    peers.push_back(computers.back().get());
                }
                std::vector<std::vector<float>> multi(
                    q_count, std::vector<float>(n));
                std::vector<float *> out_ptrs;
                for (auto &out : multi)
                    out_ptrs.push_back(out.data());
                std::vector<float> thresholds(
                    q_count, std::numeric_limits<float>::max());
                peers[0]->scanMulti(peers.data(), q_count, codes.data(),
                                    n, thresholds.data(), out_ptrs.data());
                std::vector<float> ref(n);
                for (std::size_t q = 0; q < q_count; ++q) {
                    computers[q]->scan(
                        codes.data(), n,
                        std::numeric_limits<float>::max(), ref.data());
                    for (std::size_t i = 0; i < n; ++i)
                        EXPECT_EQ(ref[i], multi[q][i])
                            << arm << "/" << spec << "/"
                            << vecstore::metricName(metric) << " q=" << q
                            << " row=" << i;
                }
            }
        }
    }
}

TEST(TopK, PushBatchMatchesPushLoop)
{
    util::Rng rng(31);
    const std::size_t n = 500;
    std::vector<vecstore::VecId> ids(n);
    std::vector<float> scores(n);
    for (std::size_t i = 0; i < n; ++i) {
        ids[i] = static_cast<vecstore::VecId>(i);
        // Duplicate scores on purpose to exercise tie-breaking.
        scores[i] = static_cast<float>(rng.uniformInt(64));
    }
    for (std::size_t k : {1, 10, 499, 600}) {
        vecstore::TopK loop(k);
        vecstore::TopK batch(k);
        for (std::size_t i = 0; i < n; ++i)
            loop.push(ids[i], scores[i]);
        batch.pushBatch(ids.data(), scores.data(), n);
        EXPECT_EQ(loop.take(), batch.take()) << "k=" << k;
    }
}

TEST(TopK, MergeHitListsKeepsBestScorePerId)
{
    vecstore::HitList a = {{1, 0.5f}, {2, 0.9f}, {3, 0.1f}};
    vecstore::HitList b = {{2, 0.2f}, {4, 0.8f}, {1, 0.7f}};
    auto merged = vecstore::mergeHitLists({a, b}, 3);
    ASSERT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged[0], (vecstore::Hit{3, 0.1f}));
    EXPECT_EQ(merged[1], (vecstore::Hit{2, 0.2f}));
    EXPECT_EQ(merged[2], (vecstore::Hit{1, 0.5f}));
    // Truncation and empty-input behaviour.
    EXPECT_EQ(vecstore::mergeHitLists({a, b}, 1).size(), 1u);
    EXPECT_TRUE(vecstore::mergeHitLists({}, 5).empty());
}

TEST(IvfParity, ScalarAndDefaultArmsAgreeEndToEnd)
{
    const std::size_t d = 32;
    const std::size_t n = 2000;
    auto data = randomMatrix(n, d, 41);
    auto queries = randomMatrix(20, d, 42);

    index::IvfConfig config;
    config.nlist = 16;
    config.codec = "SQ8";
    index::IvfIndex idx(d, vecstore::Metric::L2, config);
    idx.train(data);
    idx.addSequential(data);

    index::SearchParams params;
    params.nprobe = 4;

    IsaGuard guard;
    std::vector<vecstore::HitList> with_default;
    for (std::size_t q = 0; q < queries.rows(); ++q)
        with_default.push_back(idx.search(queries.row(q), 10, params));

    ASSERT_TRUE(vecstore::simd::forceIsaForTesting("scalar"));
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        auto hits = idx.search(queries.row(q), 10, params);
        ASSERT_EQ(hits.size(), with_default[q].size()) << "query " << q;
        for (std::size_t i = 0; i < hits.size(); ++i) {
            EXPECT_EQ(hits[i].id, with_default[q][i].id)
                << "query " << q << " rank " << i;
            expectClose(hits[i].score, with_default[q][i].score,
                        "ivf score parity");
        }
    }
}

TEST(IvfParity, AddParallelMatchesSequentialAdd)
{
    const std::size_t d = 24;
    auto data = randomMatrix(600, d, 51);
    auto queries = randomMatrix(8, d, 52);

    index::IvfConfig config;
    config.nlist = 8;
    config.codec = "PQ8";
    index::IvfIndex seq(d, vecstore::Metric::L2, config);
    index::IvfIndex par(d, vecstore::Metric::L2, config);
    seq.train(data);
    par.train(data);
    seq.addSequential(data);

    std::vector<vecstore::VecId> ids(data.rows());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<vecstore::VecId>(i);
    util::ThreadPool pool(4);
    par.addParallel(data, ids, pool);

    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t l = 0; l < config.nlist; ++l)
        EXPECT_EQ(seq.listSize(l), par.listSize(l)) << "list " << l;
    index::SearchParams params;
    params.nprobe = 3;
    for (std::size_t q = 0; q < queries.rows(); ++q) {
        EXPECT_EQ(seq.search(queries.row(q), 5, params),
                  par.search(queries.row(q), 5, params))
            << "query " << q;
    }
}

TEST(FlatParity, FlatIndexMatchesNaiveScan)
{
    const std::size_t d = 48;
    auto data = randomMatrix(900, d, 61);
    auto queries = randomMatrix(5, d, 62);
    for (Metric metric : {Metric::L2, Metric::InnerProduct}) {
        index::FlatIndex idx(d, metric);
        idx.addSequential(data);
        for (std::size_t q = 0; q < queries.rows(); ++q) {
            auto hits = idx.search(queries.row(q), 7);
            ASSERT_EQ(hits.size(), 7u);
            // Reference: exhaustive per-row distance + full sort.
            vecstore::TopK ref(7);
            for (std::size_t i = 0; i < data.rows(); ++i) {
                ref.push(static_cast<vecstore::VecId>(i),
                         vecstore::distance(metric, queries.row(q).data(),
                                            data.row(i).data(), d));
            }
            auto expected = ref.take();
            for (std::size_t i = 0; i < hits.size(); ++i) {
                EXPECT_EQ(hits[i].id, expected[i].id);
                expectClose(expected[i].score, hits[i].score,
                            "flat score");
            }
        }
    }
}

} // namespace
