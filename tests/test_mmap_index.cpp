/**
 * @file
 * Zero-copy mmap datastore tests: bit-parity between in-memory, heap
 * reloaded and mmap-opened indices across every codec and both SIMD
 * arms; adversarial rejection of every truncation prefix and every
 * single-bit flip; read-only semantics; concurrent readers over one
 * shared mapping; and byte-identity of the bounded-memory stream
 * writer against save().
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "index/ivf_index.hpp"
#include "index/ivf_stream_writer.hpp"
#include "util/serialize.hpp"
#include "util/threadpool.hpp"
#include "vecstore/simd_dispatch.hpp"
#include "workload/corpus.hpp"

namespace {

using namespace hermes;
using namespace hermes::index;
using hermes::vecstore::Matrix;
using hermes::vecstore::Metric;

struct TestData
{
    Matrix base{0};
    Matrix queries{0};
};

const TestData &
sharedData()
{
    static TestData data = [] {
        workload::CorpusConfig cc;
        cc.num_docs = 3000;
        cc.dim = 24; // divisible by 4 so PQ4/OPQ4 are legal
        cc.num_topics = 12;
        cc.seed = 17;
        auto corpus = workload::generateCorpus(cc);

        workload::QueryConfig qc;
        qc.num_queries = 32;
        qc.seed = 18;
        auto queries = workload::generateQueries(corpus, qc);

        TestData out;
        out.base = std::move(corpus.embeddings);
        out.queries = std::move(queries.embeddings);
        return out;
    }();
    return data;
}

std::filesystem::path
tempIndexPath(const std::string &tag)
{
    return std::filesystem::temp_directory_path() /
           ("hermes_mmap_" + tag + ".hivf");
}

/** Restores the startup dispatch arm when a test returns. */
class IsaGuard
{
  public:
    IsaGuard() : name_(vecstore::simd::activeIsa()) {}
    ~IsaGuard() { vecstore::simd::forceIsaForTesting(name_.c_str()); }

  private:
    std::string name_;
};

std::vector<std::uint8_t>
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                     std::istreambuf_iterator<char>());
}

void
writeFile(const std::filesystem::path &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
}

/** Build a trained, populated index over the shared corpus. */
IvfIndex
buildIndex(const std::string &codec, Metric metric,
           bool hnsw_coarse = false)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 16;
    config.codec = codec;
    config.hnsw_coarse = hnsw_coarse;
    IvfIndex ivf(data.base.dim(), metric, config);
    ivf.train(data.base);
    ivf.addSequential(data.base);
    return ivf;
}

/**
 * The tentpole invariant: searches through the mmap view are
 * bit-identical (ids AND float scores, exact ==) to the in-memory
 * index, for per-query search and the forced list-major batch path.
 */
void
expectSearchParity(const IvfIndex &expect, const IvfIndex &got)
{
    const auto &data = sharedData();
    const std::size_t k = 10;

    SearchParams params;
    params.nprobe = 8;
    for (std::size_t q = 0; q < data.queries.rows(); ++q) {
        auto a = expect.search(data.queries.row(q), k, params);
        auto b = got.search(data.queries.row(q), k, params);
        ASSERT_EQ(a, b) << "per-query drift at query " << q;
    }

    // Force the list-major multi-query kernel so the mapped bytes run
    // through scanMulti as well as scan.
    params.batch_min_scan_floats = 0;
    std::vector<SearchStats> stats_a;
    std::vector<SearchStats> stats_b;
    auto batch_a = expect.searchBatch(data.queries, k, params, &stats_a);
    auto batch_b = got.searchBatch(data.queries, k, params, &stats_b);
    ASSERT_EQ(batch_a, batch_b);
    ASSERT_EQ(stats_a.size(), stats_b.size());
    for (std::size_t q = 0; q < stats_a.size(); ++q) {
        EXPECT_EQ(stats_a[q].vectors_scanned, stats_b[q].vectors_scanned);
        EXPECT_EQ(stats_a[q].bytes_scanned, stats_b[q].bytes_scanned);
    }
}

void
runParity(const std::string &codec, Metric metric, const char *isa)
{
    IsaGuard guard;
    if (!vecstore::simd::forceIsaForTesting(isa))
        GTEST_SKIP() << isa << " arm unavailable";

    auto built = buildIndex(codec, metric);
    auto path = tempIndexPath(codec + (metric == Metric::L2 ? "_l2" : "_ip") +
                              "_" + isa);
    built.save(path.string());

    auto heap = IvfIndex::load(path.string());
    auto mapped = IvfIndex::openMapped(path.string());
    ASSERT_FALSE(heap->isMapped());
    ASSERT_TRUE(mapped->isMapped());
    EXPECT_EQ(mapped->size(), built.size());

    expectSearchParity(built, *heap);
    expectSearchParity(built, *mapped);
    std::filesystem::remove(path);
}

TEST(MmapParity, FlatScalar) { runParity("Flat", Metric::L2, "scalar"); }
TEST(MmapParity, FlatAvx2) { runParity("Flat", Metric::L2, "avx2"); }
TEST(MmapParity, Sq8Scalar) { runParity("SQ8", Metric::L2, "scalar"); }
TEST(MmapParity, Sq8Avx2) { runParity("SQ8", Metric::L2, "avx2"); }
TEST(MmapParity, Sq4Scalar) { runParity("SQ4", Metric::L2, "scalar"); }
TEST(MmapParity, Sq4Avx2) { runParity("SQ4", Metric::L2, "avx2"); }
TEST(MmapParity, Pq4Scalar) { runParity("PQ4", Metric::L2, "scalar"); }
TEST(MmapParity, Pq4Avx2) { runParity("PQ4", Metric::L2, "avx2"); }
TEST(MmapParity, Opq4Scalar) { runParity("OPQ4", Metric::L2, "scalar"); }
TEST(MmapParity, Opq4Avx2) { runParity("OPQ4", Metric::L2, "avx2"); }
TEST(MmapParity, Sq8InnerProductScalar)
{
    runParity("SQ8", Metric::InnerProduct, "scalar");
}
TEST(MmapParity, Sq8InnerProductAvx2)
{
    runParity("SQ8", Metric::InnerProduct, "avx2");
}

TEST(MmapParity, HnswCoarseRebuiltOnMappedOpen)
{
    auto built = buildIndex("SQ8", Metric::L2, /*hnsw_coarse=*/true);
    auto path = tempIndexPath("hnsw_coarse");
    built.save(path.string());
    auto mapped = IvfIndex::openMapped(path.string());
    ASSERT_TRUE(mapped->isMapped());
    expectSearchParity(built, *mapped);
    std::filesystem::remove(path);
}

TEST(MmapParity, PrefaultOptionSearchesIdentically)
{
    auto built = buildIndex("SQ8", Metric::L2);
    auto path = tempIndexPath("prefault");
    built.save(path.string());
    IvfIndex::MmapOptions options;
    options.prefault = true;
    auto mapped = IvfIndex::openMapped(path.string(), options);
    expectSearchParity(built, *mapped);
    std::filesystem::remove(path);
}

TEST(MmapView, IsReadOnly)
{
    const auto &data = sharedData();
    auto built = buildIndex("SQ8", Metric::L2);
    auto path = tempIndexPath("readonly");
    built.save(path.string());
    auto mapped = IvfIndex::openMapped(path.string());

    std::vector<vecstore::VecId> ids(data.base.rows());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = static_cast<vecstore::VecId>(i);
    EXPECT_THROW(mapped->train(data.base), std::logic_error);
    EXPECT_THROW(mapped->add(data.base, ids), std::logic_error);
    EXPECT_THROW((void)mapped->removeIds({0, 1}), std::logic_error);
    // The view itself stays consistent after the refusals.
    EXPECT_EQ(mapped->size(), built.size());
    std::filesystem::remove(path);
}

TEST(MmapView, ReportsMappingFootprint)
{
    auto built = buildIndex("SQ8", Metric::L2);
    auto path = tempIndexPath("footprint");
    built.save(path.string());
    auto mapped = IvfIndex::openMapped(path.string());

    EXPECT_EQ(mapped->mappedBytes(),
              std::filesystem::file_size(path));
    EXPECT_LE(mapped->mappedResidentBytes(), mapped->mappedBytes());
    // The heap footprint of a view is just centroids + codec tables —
    // far below the full index payload.
    EXPECT_LT(mapped->memoryBytes(), built.memoryBytes());
    EXPECT_EQ(built.mappedBytes(), 0u);
    std::filesystem::remove(path);
}

/**
 * Every proper prefix of a valid index file must be rejected with a
 * typed error — no crashes, no std::terminate, no partial loads.
 */
TEST(MmapCorruption, EveryTruncationPrefixIsRejected)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 4;
    config.codec = "Flat";
    Matrix small(8);
    for (std::size_t i = 0; i < 64; ++i)
        small.append(data.base.row(i).first(8));
    IvfIndex ivf(8, Metric::L2, config);
    ivf.train(small);
    ivf.addSequential(small);

    auto path = tempIndexPath("truncate");
    ivf.save(path.string());
    const auto bytes = readFile(path);
    ASSERT_GT(bytes.size(), 256u);

    auto prefix_path = tempIndexPath("truncate_prefix");
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        writeFile(prefix_path, std::vector<std::uint8_t>(
                                   bytes.begin(),
                                   bytes.begin() +
                                       static_cast<std::ptrdiff_t>(len)));
        EXPECT_THROW((void)IvfIndex::openMapped(prefix_path.string()),
                     util::FormatError)
            << "prefix of " << len << " bytes was accepted";
    }
    std::filesystem::remove(path);
    std::filesystem::remove(prefix_path);
}

/**
 * Single-bit corruption anywhere in the file must be caught: every
 * byte is covered by a section CRC, the header CRC, or a must-be-zero
 * padding rule.
 */
TEST(MmapCorruption, EveryBitFlipIsRejected)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 4;
    config.codec = "SQ8";
    Matrix small(8);
    for (std::size_t i = 0; i < 48; ++i)
        small.append(data.base.row(i).first(8));
    IvfIndex ivf(8, Metric::L2, config);
    ivf.train(small);
    ivf.addSequential(small);

    auto path = tempIndexPath("bitflip");
    ivf.save(path.string());
    auto bytes = readFile(path);

    auto flipped_path = tempIndexPath("bitflip_mut");
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        const std::uint8_t mask =
            static_cast<std::uint8_t>(1u << (i % 8));
        bytes[i] ^= mask;
        writeFile(flipped_path, bytes);
        EXPECT_THROW((void)IvfIndex::openMapped(flipped_path.string()),
                     util::FormatError)
            << "bit flip at byte " << i << " was accepted";
        bytes[i] ^= mask;
    }
    std::filesystem::remove(path);
    std::filesystem::remove(flipped_path);
}

/** Growing the file must be rejected too (trailing garbage). */
TEST(MmapCorruption, TrailingBytesAreRejected)
{
    auto built = buildIndex("SQ8", Metric::L2);
    auto path = tempIndexPath("trailing");
    built.save(path.string());
    auto bytes = readFile(path);
    bytes.push_back(0);
    writeFile(path, bytes);
    EXPECT_THROW((void)IvfIndex::openMapped(path.string()),
                 util::FormatError);
    EXPECT_THROW((void)IvfIndex::load(path.string()), util::FormatError);
    std::filesystem::remove(path);
}

/**
 * Many threads searching one shared mapping concurrently: results must
 * match the single-threaded baseline exactly. Run under TSan, this
 * also pins the read-only-ness of the hot path (no hidden caches or
 * lazily-built state behind the mapped view).
 */
TEST(MmapConcurrency, ConcurrentReadersShareOneMapping)
{
    const auto &data = sharedData();
    auto built = buildIndex("SQ8", Metric::L2);
    auto path = tempIndexPath("concurrent");
    built.save(path.string());
    auto mapped = IvfIndex::openMapped(path.string());

    SearchParams params;
    params.nprobe = 8;
    const std::size_t k = 10;
    auto baseline = mapped->searchBatch(data.queries, k, params);

    constexpr std::size_t kThreads = 4;
    constexpr int kRounds = 8;
    std::vector<std::thread> threads;
    std::vector<int> mismatches(kThreads, 0);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int round = 0; round < kRounds; ++round) {
                for (std::size_t q = 0; q < data.queries.rows(); ++q) {
                    auto hits =
                        mapped->search(data.queries.row(q), k, params);
                    if (hits != baseline[q])
                        ++mismatches[t];
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(mismatches[t], 0) << "reader " << t << " drifted";
    std::filesystem::remove(path);
}

/**
 * The bounded-memory stream writer must produce the same bytes as
 * add() + save(), for any batch split, with or without a thread pool,
 * even with a budget small enough to force mid-scatter flushes.
 */
TEST(StreamWriter, ByteIdenticalToSave)
{
    const auto &data = sharedData();
    IvfConfig config;
    config.nlist = 16;
    config.codec = "SQ8";

    IvfIndex reference(data.base.dim(), Metric::L2, config);
    reference.train(data.base);
    reference.addSequential(data.base);
    auto ref_path = tempIndexPath("stream_ref");
    reference.save(ref_path.string());

    IvfIndex prototype(data.base.dim(), Metric::L2, config);
    prototype.train(data.base);

    auto stream_path = tempIndexPath("stream_out");
    IvfStreamWriter::Options options;
    options.buffer_budget_bytes = 1024; // force repeated flushes
    util::ThreadPool pool;
    IvfStreamWriter writer(prototype, stream_path.string(), options);
    const std::size_t batch = 257; // deliberately odd split
    for (std::size_t at = 0; at < data.base.rows(); at += batch) {
        const std::size_t n = std::min(batch, data.base.rows() - at);
        Matrix rows(data.base.dim());
        std::vector<vecstore::VecId> ids;
        for (std::size_t i = 0; i < n; ++i) {
            rows.append(data.base.row(at + i));
            ids.push_back(static_cast<vecstore::VecId>(at + i));
        }
        writer.add(rows, ids, &pool);
    }
    EXPECT_EQ(writer.finish(), data.base.rows());

    EXPECT_EQ(readFile(ref_path), readFile(stream_path));

    // And the streamed file round-trips through the mmap searcher.
    auto mapped = IvfIndex::openMapped(stream_path.string());
    expectSearchParity(reference, *mapped);
    std::filesystem::remove(ref_path);
    std::filesystem::remove(stream_path);
}

} // namespace
