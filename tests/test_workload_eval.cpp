/**
 * @file
 * Tests for workload synthesis (corpus, queries, traces) and retrieval
 * quality metrics (recall, NDCG).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "cluster/kmeans.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "workload/corpus.hpp"
#include "workload/trace.hpp"

namespace {

using namespace hermes;
using namespace hermes::workload;
using hermes::vecstore::Hit;
using hermes::vecstore::HitList;

TEST(Corpus, ShapesMatchConfig)
{
    CorpusConfig cc;
    cc.num_docs = 500;
    cc.dim = 12;
    cc.num_topics = 7;
    auto corpus = generateCorpus(cc);
    EXPECT_EQ(corpus.embeddings.rows(), 500u);
    EXPECT_EQ(corpus.embeddings.dim(), 12u);
    EXPECT_EQ(corpus.topic_of_doc.size(), 500u);
    EXPECT_EQ(corpus.topic_centers.rows(), 7u);
    EXPECT_EQ(corpus.totalTokens(), 500u * cc.tokens_per_chunk);
}

TEST(Corpus, EmbeddingsAreUnitNorm)
{
    CorpusConfig cc;
    cc.num_docs = 200;
    cc.dim = 16;
    auto corpus = generateCorpus(cc);
    for (std::size_t i = 0; i < 20; ++i) {
        float n = vecstore::normSq(corpus.embeddings.row(i).data(), cc.dim);
        EXPECT_NEAR(n, 1.f, 1e-4);
    }
}

TEST(Corpus, DocsClusterAroundTheirTopicCenter)
{
    CorpusConfig cc;
    cc.num_docs = 600;
    cc.dim = 24;
    cc.num_topics = 6;
    cc.topic_spread = 0.15;
    auto corpus = generateCorpus(cc);

    std::size_t correct = 0;
    for (std::size_t i = 0; i < corpus.embeddings.rows(); ++i) {
        auto nearest = cluster::nearestCentroid(corpus.embeddings.row(i),
                                                corpus.topic_centers);
        correct += nearest == corpus.topic_of_doc[i];
    }
    EXPECT_GT(static_cast<double>(correct) / cc.num_docs, 0.95);
}

TEST(Corpus, ZipfSkewsTopicSizes)
{
    CorpusConfig uniform, skewed;
    uniform.num_docs = skewed.num_docs = 2000;
    uniform.dim = skewed.dim = 8;
    uniform.num_topics = skewed.num_topics = 10;
    uniform.topic_zipf = 0.0;
    skewed.topic_zipf = 1.2;

    auto count_max = [](const Corpus &corpus) {
        std::vector<std::size_t> counts(corpus.config.num_topics, 0);
        for (auto t : corpus.topic_of_doc)
            counts[t]++;
        return *std::max_element(counts.begin(), counts.end());
    };
    EXPECT_GT(count_max(generateCorpus(skewed)),
              count_max(generateCorpus(uniform)) * 2);
}

TEST(Corpus, DeterministicForSeed)
{
    CorpusConfig cc;
    cc.num_docs = 100;
    cc.dim = 8;
    auto a = generateCorpus(cc);
    auto b = generateCorpus(cc);
    for (std::size_t j = 0; j < cc.dim; ++j)
        EXPECT_FLOAT_EQ(a.embeddings.row(0)[j], b.embeddings.row(0)[j]);
}

TEST(Queries, CorrelateWithSeedTopic)
{
    CorpusConfig cc;
    cc.num_docs = 800;
    cc.dim = 24;
    cc.num_topics = 8;
    cc.topic_spread = 0.15;
    auto corpus = generateCorpus(cc);

    QueryConfig qc;
    qc.num_queries = 200;
    qc.noise = 0.15;
    auto queries = generateQueries(corpus, qc);

    std::size_t correct = 0;
    for (std::size_t q = 0; q < queries.embeddings.rows(); ++q) {
        auto nearest = cluster::nearestCentroid(queries.embeddings.row(q),
                                                corpus.topic_centers);
        correct += nearest == queries.topic_of_query[q];
    }
    EXPECT_GT(static_cast<double>(correct) / qc.num_queries, 0.85);
}

TEST(Queries, ZipfConcentratesTopicPopularity)
{
    CorpusConfig cc;
    cc.num_docs = 500;
    cc.dim = 8;
    cc.num_topics = 10;
    cc.topic_zipf = 0.0;
    auto corpus = generateCorpus(cc);

    QueryConfig qc;
    qc.num_queries = 1000;
    qc.topic_zipf = 1.2;
    auto queries = generateQueries(corpus, qc);

    std::vector<std::size_t> counts(10, 0);
    for (auto t : queries.topic_of_query)
        counts[t]++;
    // Most popular topic should dominate the least popular by > 2x
    // (the Fig 13 access-frequency imbalance).
    auto mx = *std::max_element(counts.begin(), counts.end());
    auto mn = *std::min_element(counts.begin(), counts.end());
    EXPECT_GT(mx, 2 * std::max<std::size_t>(mn, 1));
}

TEST(Trace, AccessCountsAndBatches)
{
    ClusterTrace trace;
    trace.num_clusters = 4;
    trace.records = {{0, {0, 1}}, {1, {1, 2}}, {2, {1}}, {3, {3, 0, 1}}};

    auto counts = trace.accessCounts();
    EXPECT_EQ(counts, (std::vector<std::size_t>{2, 4, 1, 1}));

    auto batches = trace.batches(3);
    ASSERT_EQ(batches.size(), 2u);
    EXPECT_EQ(batches[0].size(), 3u);
    EXPECT_EQ(batches[1].size(), 1u);
    EXPECT_EQ(batches[1][0]->query, 3u);
}

TEST(Trace, SaveCsvWritesAllRecords)
{
    ClusterTrace trace;
    trace.num_clusters = 2;
    trace.records = {{0, {0}}, {1, {1, 0}}};
    auto path = std::filesystem::temp_directory_path() / "hermes_trace.csv";
    trace.saveCsv(path.string());
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "query,clusters");
    std::getline(in, line);
    EXPECT_EQ(line, "0,0");
    std::getline(in, line);
    EXPECT_EQ(line, "1,1 0");
    std::filesystem::remove(path);
}

TEST(Metrics, PerfectRetrievalScoresOne)
{
    HitList truth{{1, 0.1f}, {2, 0.2f}, {3, 0.3f}};
    EXPECT_DOUBLE_EQ(eval::recallAtK(truth, truth, 3), 1.0);
    EXPECT_DOUBLE_EQ(eval::ndcgAtK(truth, truth, 3), 1.0);
}

TEST(Metrics, DisjointRetrievalScoresZero)
{
    HitList truth{{1, 0.1f}, {2, 0.2f}};
    HitList got{{7, 0.1f}, {8, 0.2f}};
    EXPECT_DOUBLE_EQ(eval::recallAtK(got, truth, 2), 0.0);
    EXPECT_DOUBLE_EQ(eval::ndcgAtK(got, truth, 2), 0.0);
}

TEST(Metrics, RecallIsOrderInsensitive)
{
    HitList truth{{1, 0.1f}, {2, 0.2f}, {3, 0.3f}};
    HitList reversed{{3, 0.3f}, {2, 0.2f}, {1, 0.1f}};
    EXPECT_DOUBLE_EQ(eval::recallAtK(reversed, truth, 3), 1.0);
}

TEST(Metrics, NdcgRewardsCorrectOrder)
{
    HitList truth{{1, 0.1f}, {2, 0.2f}, {3, 0.3f}};
    HitList reversed{{3, 0.3f}, {2, 0.2f}, {1, 0.1f}};
    double perfect = eval::ndcgAtK(truth, truth, 3);
    double swapped = eval::ndcgAtK(reversed, truth, 3);
    EXPECT_LT(swapped, perfect);
    EXPECT_GT(swapped, 0.0);
}

TEST(Metrics, PartialOverlapBetweenZeroAndOne)
{
    HitList truth{{1, 0.1f}, {2, 0.2f}, {3, 0.3f}, {4, 0.4f}};
    HitList got{{1, 0.1f}, {9, 0.2f}, {3, 0.3f}, {8, 0.4f}};
    double recall = eval::recallAtK(got, truth, 4);
    EXPECT_DOUBLE_EQ(recall, 0.5);
    double ndcg = eval::ndcgAtK(got, truth, 4);
    EXPECT_GT(ndcg, 0.0);
    EXPECT_LT(ndcg, 1.0);
}

TEST(Metrics, MeanAggregatesPerQuery)
{
    HitList truth{{1, 0.f}};
    HitList hit{{1, 0.f}};
    HitList miss{{2, 0.f}};
    double mean_recall =
        eval::meanRecallAtK({hit, miss}, {truth, truth}, 1);
    EXPECT_DOUBLE_EQ(mean_recall, 0.5);
}

TEST(GroundTruth, SelfQueryFindsItself)
{
    CorpusConfig cc;
    cc.num_docs = 300;
    cc.dim = 16;
    auto corpus = generateCorpus(cc);
    auto truth = eval::exactGroundTruth(corpus.embeddings,
                                        corpus.embeddings, 1,
                                        vecstore::Metric::L2);
    // Each vector's nearest neighbor is itself (distance 0).
    std::size_t self_hits = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        ASSERT_FALSE(truth[i].empty());
        EXPECT_NEAR(truth[i][0].score, 0.f, 1e-6);
        self_hits += truth[i][0].id == static_cast<vecstore::VecId>(i);
    }
    // Duplicates may tie; the overwhelming majority should self-match.
    EXPECT_GT(self_hits, truth.size() * 9 / 10);
}

} // namespace
