file(REMOVE_RECURSE
  "CMakeFiles/fig21_dvfs.dir/fig21_dvfs.cpp.o"
  "CMakeFiles/fig21_dvfs.dir/fig21_dvfs.cpp.o.d"
  "fig21_dvfs"
  "fig21_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
