# Empty dependencies file for fig21_dvfs.
# This may be replaced when dependencies are built.
