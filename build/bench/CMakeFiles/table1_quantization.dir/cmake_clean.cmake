file(REMOVE_RECURSE
  "CMakeFiles/table1_quantization.dir/table1_quantization.cpp.o"
  "CMakeFiles/table1_quantization.dir/table1_quantization.cpp.o.d"
  "table1_quantization"
  "table1_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
