# Empty compiler generated dependencies file for table1_quantization.
# This may be replaced when dependencies are built.
