file(REMOVE_RECURSE
  "CMakeFiles/ablation_mutation.dir/ablation_mutation.cpp.o"
  "CMakeFiles/ablation_mutation.dir/ablation_mutation.cpp.o.d"
  "ablation_mutation"
  "ablation_mutation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mutation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
