# Empty dependencies file for fig05_stride_perplexity.
# This may be replaced when dependencies are built.
