file(REMOVE_RECURSE
  "CMakeFiles/fig05_stride_perplexity.dir/fig05_stride_perplexity.cpp.o"
  "CMakeFiles/fig05_stride_perplexity.dir/fig05_stride_perplexity.cpp.o.d"
  "fig05_stride_perplexity"
  "fig05_stride_perplexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_stride_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
