# Empty compiler generated dependencies file for ablation_coarse.
# This may be replaced when dependencies are built.
