file(REMOVE_RECURSE
  "CMakeFiles/ablation_coarse.dir/ablation_coarse.cpp.o"
  "CMakeFiles/ablation_coarse.dir/ablation_coarse.cpp.o.d"
  "ablation_coarse"
  "ablation_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
