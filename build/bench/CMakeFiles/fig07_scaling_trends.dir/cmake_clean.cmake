file(REMOVE_RECURSE
  "CMakeFiles/fig07_scaling_trends.dir/fig07_scaling_trends.cpp.o"
  "CMakeFiles/fig07_scaling_trends.dir/fig07_scaling_trends.cpp.o.d"
  "fig07_scaling_trends"
  "fig07_scaling_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_scaling_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
