# Empty dependencies file for fig07_scaling_trends.
# This may be replaced when dependencies are built.
