# Empty compiler generated dependencies file for fig20_hardware_platforms.
# This may be replaced when dependencies are built.
