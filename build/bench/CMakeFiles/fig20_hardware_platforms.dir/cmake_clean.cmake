file(REMOVE_RECURSE
  "CMakeFiles/fig20_hardware_platforms.dir/fig20_hardware_platforms.cpp.o"
  "CMakeFiles/fig20_hardware_platforms.dir/fig20_hardware_platforms.cpp.o.d"
  "fig20_hardware_platforms"
  "fig20_hardware_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_hardware_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
