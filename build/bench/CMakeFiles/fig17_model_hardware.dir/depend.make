# Empty dependencies file for fig17_model_hardware.
# This may be replaced when dependencies are built.
