file(REMOVE_RECURSE
  "CMakeFiles/fig17_model_hardware.dir/fig17_model_hardware.cpp.o"
  "CMakeFiles/fig17_model_hardware.dir/fig17_model_hardware.cpp.o.d"
  "fig17_model_hardware"
  "fig17_model_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_model_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
