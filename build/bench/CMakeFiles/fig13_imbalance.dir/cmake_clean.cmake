file(REMOVE_RECURSE
  "CMakeFiles/fig13_imbalance.dir/fig13_imbalance.cpp.o"
  "CMakeFiles/fig13_imbalance.dir/fig13_imbalance.cpp.o.d"
  "fig13_imbalance"
  "fig13_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
