# Empty dependencies file for fig13_imbalance.
# This may be replaced when dependencies are built.
