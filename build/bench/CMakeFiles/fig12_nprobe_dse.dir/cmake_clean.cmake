file(REMOVE_RECURSE
  "CMakeFiles/fig12_nprobe_dse.dir/fig12_nprobe_dse.cpp.o"
  "CMakeFiles/fig12_nprobe_dse.dir/fig12_nprobe_dse.cpp.o.d"
  "fig12_nprobe_dse"
  "fig12_nprobe_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_nprobe_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
