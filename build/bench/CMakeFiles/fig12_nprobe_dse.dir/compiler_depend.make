# Empty compiler generated dependencies file for fig12_nprobe_dse.
# This may be replaced when dependencies are built.
