file(REMOVE_RECURSE
  "CMakeFiles/fig18_throughput_energy.dir/fig18_throughput_energy.cpp.o"
  "CMakeFiles/fig18_throughput_energy.dir/fig18_throughput_energy.cpp.o.d"
  "fig18_throughput_energy"
  "fig18_throughput_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_throughput_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
