# Empty compiler generated dependencies file for fig19_cluster_size_planner.
# This may be replaced when dependencies are built.
