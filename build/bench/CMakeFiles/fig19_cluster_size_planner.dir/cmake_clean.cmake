file(REMOVE_RECURSE
  "CMakeFiles/fig19_cluster_size_planner.dir/fig19_cluster_size_planner.cpp.o"
  "CMakeFiles/fig19_cluster_size_planner.dir/fig19_cluster_size_planner.cpp.o.d"
  "fig19_cluster_size_planner"
  "fig19_cluster_size_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_cluster_size_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
