file(REMOVE_RECURSE
  "CMakeFiles/fig04_hnsw_vs_ivf.dir/fig04_hnsw_vs_ivf.cpp.o"
  "CMakeFiles/fig04_hnsw_vs_ivf.dir/fig04_hnsw_vs_ivf.cpp.o.d"
  "fig04_hnsw_vs_ivf"
  "fig04_hnsw_vs_ivf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_hnsw_vs_ivf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
