# Empty compiler generated dependencies file for fig04_hnsw_vs_ivf.
# This may be replaced when dependencies are built.
