# Empty dependencies file for fig08_prior_work.
# This may be replaced when dependencies are built.
