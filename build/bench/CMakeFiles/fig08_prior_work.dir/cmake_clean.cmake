file(REMOVE_RECURSE
  "CMakeFiles/fig08_prior_work.dir/fig08_prior_work.cpp.o"
  "CMakeFiles/fig08_prior_work.dir/fig08_prior_work.cpp.o.d"
  "fig08_prior_work"
  "fig08_prior_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_prior_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
