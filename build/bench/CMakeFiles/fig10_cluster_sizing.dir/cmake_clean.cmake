file(REMOVE_RECURSE
  "CMakeFiles/fig10_cluster_sizing.dir/fig10_cluster_sizing.cpp.o"
  "CMakeFiles/fig10_cluster_sizing.dir/fig10_cluster_sizing.cpp.o.d"
  "fig10_cluster_sizing"
  "fig10_cluster_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cluster_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
