# Empty compiler generated dependencies file for fig10_cluster_sizing.
# This may be replaced when dependencies are built.
