file(REMOVE_RECURSE
  "CMakeFiles/fig14_e2e_comparison.dir/fig14_e2e_comparison.cpp.o"
  "CMakeFiles/fig14_e2e_comparison.dir/fig14_e2e_comparison.cpp.o.d"
  "fig14_e2e_comparison"
  "fig14_e2e_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_e2e_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
