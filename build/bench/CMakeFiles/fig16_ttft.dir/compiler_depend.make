# Empty compiler generated dependencies file for fig16_ttft.
# This may be replaced when dependencies are built.
