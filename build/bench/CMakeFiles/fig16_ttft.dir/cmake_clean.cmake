file(REMOVE_RECURSE
  "CMakeFiles/fig16_ttft.dir/fig16_ttft.cpp.o"
  "CMakeFiles/fig16_ttft.dir/fig16_ttft.cpp.o.d"
  "fig16_ttft"
  "fig16_ttft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ttft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
