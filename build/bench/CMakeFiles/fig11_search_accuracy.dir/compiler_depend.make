# Empty compiler generated dependencies file for fig11_search_accuracy.
# This may be replaced when dependencies are built.
