# Empty dependencies file for ablation_early_exit.
# This may be replaced when dependencies are built.
