file(REMOVE_RECURSE
  "CMakeFiles/rag_chat.dir/rag_chat.cpp.o"
  "CMakeFiles/rag_chat.dir/rag_chat.cpp.o.d"
  "rag_chat"
  "rag_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rag_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
