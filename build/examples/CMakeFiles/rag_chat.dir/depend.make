# Empty dependencies file for rag_chat.
# This may be replaced when dependencies are built.
