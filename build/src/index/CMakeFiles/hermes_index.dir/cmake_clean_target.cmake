file(REMOVE_RECURSE
  "libhermes_index.a"
)
