# Empty compiler generated dependencies file for hermes_index.
# This may be replaced when dependencies are built.
