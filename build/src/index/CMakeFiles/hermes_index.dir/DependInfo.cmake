
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/ann_index.cpp" "src/index/CMakeFiles/hermes_index.dir/ann_index.cpp.o" "gcc" "src/index/CMakeFiles/hermes_index.dir/ann_index.cpp.o.d"
  "/root/repo/src/index/flat_index.cpp" "src/index/CMakeFiles/hermes_index.dir/flat_index.cpp.o" "gcc" "src/index/CMakeFiles/hermes_index.dir/flat_index.cpp.o.d"
  "/root/repo/src/index/hnsw_index.cpp" "src/index/CMakeFiles/hermes_index.dir/hnsw_index.cpp.o" "gcc" "src/index/CMakeFiles/hermes_index.dir/hnsw_index.cpp.o.d"
  "/root/repo/src/index/index_factory.cpp" "src/index/CMakeFiles/hermes_index.dir/index_factory.cpp.o" "gcc" "src/index/CMakeFiles/hermes_index.dir/index_factory.cpp.o.d"
  "/root/repo/src/index/ivf_index.cpp" "src/index/CMakeFiles/hermes_index.dir/ivf_index.cpp.o" "gcc" "src/index/CMakeFiles/hermes_index.dir/ivf_index.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/hermes_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hermes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/vecstore/CMakeFiles/hermes_vecstore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
