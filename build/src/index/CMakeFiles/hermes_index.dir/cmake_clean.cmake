file(REMOVE_RECURSE
  "CMakeFiles/hermes_index.dir/ann_index.cpp.o"
  "CMakeFiles/hermes_index.dir/ann_index.cpp.o.d"
  "CMakeFiles/hermes_index.dir/flat_index.cpp.o"
  "CMakeFiles/hermes_index.dir/flat_index.cpp.o.d"
  "CMakeFiles/hermes_index.dir/hnsw_index.cpp.o"
  "CMakeFiles/hermes_index.dir/hnsw_index.cpp.o.d"
  "CMakeFiles/hermes_index.dir/index_factory.cpp.o"
  "CMakeFiles/hermes_index.dir/index_factory.cpp.o.d"
  "CMakeFiles/hermes_index.dir/ivf_index.cpp.o"
  "CMakeFiles/hermes_index.dir/ivf_index.cpp.o.d"
  "libhermes_index.a"
  "libhermes_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
