file(REMOVE_RECURSE
  "libhermes_serve.a"
)
