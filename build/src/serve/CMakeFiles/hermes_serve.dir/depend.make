# Empty dependencies file for hermes_serve.
# This may be replaced when dependencies are built.
