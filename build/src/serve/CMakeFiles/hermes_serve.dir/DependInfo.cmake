
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/broker.cpp" "src/serve/CMakeFiles/hermes_serve.dir/broker.cpp.o" "gcc" "src/serve/CMakeFiles/hermes_serve.dir/broker.cpp.o.d"
  "/root/repo/src/serve/node.cpp" "src/serve/CMakeFiles/hermes_serve.dir/node.cpp.o" "gcc" "src/serve/CMakeFiles/hermes_serve.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hermes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hermes_index.dir/DependInfo.cmake"
  "/root/repo/build/src/vecstore/CMakeFiles/hermes_vecstore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/hermes_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hermes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hermes_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
