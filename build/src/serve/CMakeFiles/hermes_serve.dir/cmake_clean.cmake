file(REMOVE_RECURSE
  "CMakeFiles/hermes_serve.dir/broker.cpp.o"
  "CMakeFiles/hermes_serve.dir/broker.cpp.o.d"
  "CMakeFiles/hermes_serve.dir/node.cpp.o"
  "CMakeFiles/hermes_serve.dir/node.cpp.o.d"
  "libhermes_serve.a"
  "libhermes_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
