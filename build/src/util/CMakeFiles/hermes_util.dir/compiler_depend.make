# Empty compiler generated dependencies file for hermes_util.
# This may be replaced when dependencies are built.
