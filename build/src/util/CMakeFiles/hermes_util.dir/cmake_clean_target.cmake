file(REMOVE_RECURSE
  "libhermes_util.a"
)
