file(REMOVE_RECURSE
  "CMakeFiles/hermes_util.dir/argparse.cpp.o"
  "CMakeFiles/hermes_util.dir/argparse.cpp.o.d"
  "CMakeFiles/hermes_util.dir/csv.cpp.o"
  "CMakeFiles/hermes_util.dir/csv.cpp.o.d"
  "CMakeFiles/hermes_util.dir/logging.cpp.o"
  "CMakeFiles/hermes_util.dir/logging.cpp.o.d"
  "CMakeFiles/hermes_util.dir/rng.cpp.o"
  "CMakeFiles/hermes_util.dir/rng.cpp.o.d"
  "CMakeFiles/hermes_util.dir/serialize.cpp.o"
  "CMakeFiles/hermes_util.dir/serialize.cpp.o.d"
  "CMakeFiles/hermes_util.dir/stats.cpp.o"
  "CMakeFiles/hermes_util.dir/stats.cpp.o.d"
  "CMakeFiles/hermes_util.dir/threadpool.cpp.o"
  "CMakeFiles/hermes_util.dir/threadpool.cpp.o.d"
  "libhermes_util.a"
  "libhermes_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
