
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/imbalance.cpp" "src/cluster/CMakeFiles/hermes_cluster.dir/imbalance.cpp.o" "gcc" "src/cluster/CMakeFiles/hermes_cluster.dir/imbalance.cpp.o.d"
  "/root/repo/src/cluster/kmeans.cpp" "src/cluster/CMakeFiles/hermes_cluster.dir/kmeans.cpp.o" "gcc" "src/cluster/CMakeFiles/hermes_cluster.dir/kmeans.cpp.o.d"
  "/root/repo/src/cluster/partitioner.cpp" "src/cluster/CMakeFiles/hermes_cluster.dir/partitioner.cpp.o" "gcc" "src/cluster/CMakeFiles/hermes_cluster.dir/partitioner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vecstore/CMakeFiles/hermes_vecstore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
