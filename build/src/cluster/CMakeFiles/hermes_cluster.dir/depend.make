# Empty dependencies file for hermes_cluster.
# This may be replaced when dependencies are built.
