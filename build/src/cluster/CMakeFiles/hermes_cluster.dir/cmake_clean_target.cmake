file(REMOVE_RECURSE
  "libhermes_cluster.a"
)
