file(REMOVE_RECURSE
  "CMakeFiles/hermes_cluster.dir/imbalance.cpp.o"
  "CMakeFiles/hermes_cluster.dir/imbalance.cpp.o.d"
  "CMakeFiles/hermes_cluster.dir/kmeans.cpp.o"
  "CMakeFiles/hermes_cluster.dir/kmeans.cpp.o.d"
  "CMakeFiles/hermes_cluster.dir/partitioner.cpp.o"
  "CMakeFiles/hermes_cluster.dir/partitioner.cpp.o.d"
  "libhermes_cluster.a"
  "libhermes_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
