file(REMOVE_RECURSE
  "CMakeFiles/hermes_workload.dir/corpus.cpp.o"
  "CMakeFiles/hermes_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/hermes_workload.dir/trace.cpp.o"
  "CMakeFiles/hermes_workload.dir/trace.cpp.o.d"
  "libhermes_workload.a"
  "libhermes_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
