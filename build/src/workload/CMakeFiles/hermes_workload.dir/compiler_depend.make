# Empty compiler generated dependencies file for hermes_workload.
# This may be replaced when dependencies are built.
