file(REMOVE_RECURSE
  "libhermes_workload.a"
)
