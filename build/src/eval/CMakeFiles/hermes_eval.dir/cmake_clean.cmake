file(REMOVE_RECURSE
  "CMakeFiles/hermes_eval.dir/ground_truth.cpp.o"
  "CMakeFiles/hermes_eval.dir/ground_truth.cpp.o.d"
  "CMakeFiles/hermes_eval.dir/metrics.cpp.o"
  "CMakeFiles/hermes_eval.dir/metrics.cpp.o.d"
  "libhermes_eval.a"
  "libhermes_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
