# Empty compiler generated dependencies file for hermes_eval.
# This may be replaced when dependencies are built.
