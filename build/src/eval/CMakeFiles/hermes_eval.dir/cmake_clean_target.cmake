file(REMOVE_RECURSE
  "libhermes_eval.a"
)
