# Empty compiler generated dependencies file for hermes_quant.
# This may be replaced when dependencies are built.
