
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/codec_factory.cpp" "src/quant/CMakeFiles/hermes_quant.dir/codec_factory.cpp.o" "gcc" "src/quant/CMakeFiles/hermes_quant.dir/codec_factory.cpp.o.d"
  "/root/repo/src/quant/flat_codec.cpp" "src/quant/CMakeFiles/hermes_quant.dir/flat_codec.cpp.o" "gcc" "src/quant/CMakeFiles/hermes_quant.dir/flat_codec.cpp.o.d"
  "/root/repo/src/quant/linalg.cpp" "src/quant/CMakeFiles/hermes_quant.dir/linalg.cpp.o" "gcc" "src/quant/CMakeFiles/hermes_quant.dir/linalg.cpp.o.d"
  "/root/repo/src/quant/opq_codec.cpp" "src/quant/CMakeFiles/hermes_quant.dir/opq_codec.cpp.o" "gcc" "src/quant/CMakeFiles/hermes_quant.dir/opq_codec.cpp.o.d"
  "/root/repo/src/quant/pq_codec.cpp" "src/quant/CMakeFiles/hermes_quant.dir/pq_codec.cpp.o" "gcc" "src/quant/CMakeFiles/hermes_quant.dir/pq_codec.cpp.o.d"
  "/root/repo/src/quant/scalar_codec.cpp" "src/quant/CMakeFiles/hermes_quant.dir/scalar_codec.cpp.o" "gcc" "src/quant/CMakeFiles/hermes_quant.dir/scalar_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/hermes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/vecstore/CMakeFiles/hermes_vecstore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
