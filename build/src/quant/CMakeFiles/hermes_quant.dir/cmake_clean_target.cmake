file(REMOVE_RECURSE
  "libhermes_quant.a"
)
