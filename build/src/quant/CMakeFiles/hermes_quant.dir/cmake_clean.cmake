file(REMOVE_RECURSE
  "CMakeFiles/hermes_quant.dir/codec_factory.cpp.o"
  "CMakeFiles/hermes_quant.dir/codec_factory.cpp.o.d"
  "CMakeFiles/hermes_quant.dir/flat_codec.cpp.o"
  "CMakeFiles/hermes_quant.dir/flat_codec.cpp.o.d"
  "CMakeFiles/hermes_quant.dir/linalg.cpp.o"
  "CMakeFiles/hermes_quant.dir/linalg.cpp.o.d"
  "CMakeFiles/hermes_quant.dir/opq_codec.cpp.o"
  "CMakeFiles/hermes_quant.dir/opq_codec.cpp.o.d"
  "CMakeFiles/hermes_quant.dir/pq_codec.cpp.o"
  "CMakeFiles/hermes_quant.dir/pq_codec.cpp.o.d"
  "CMakeFiles/hermes_quant.dir/scalar_codec.cpp.o"
  "CMakeFiles/hermes_quant.dir/scalar_codec.cpp.o.d"
  "libhermes_quant.a"
  "libhermes_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
