
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/hermes_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/hardware.cpp" "src/sim/CMakeFiles/hermes_sim.dir/hardware.cpp.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/hardware.cpp.o.d"
  "/root/repo/src/sim/node_sim.cpp" "src/sim/CMakeFiles/hermes_sim.dir/node_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/node_sim.cpp.o.d"
  "/root/repo/src/sim/pipeline.cpp" "src/sim/CMakeFiles/hermes_sim.dir/pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/pipeline.cpp.o.d"
  "/root/repo/src/sim/queue_sim.cpp" "src/sim/CMakeFiles/hermes_sim.dir/queue_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hermes_sim.dir/queue_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/hermes_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vecstore/CMakeFiles/hermes_vecstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
