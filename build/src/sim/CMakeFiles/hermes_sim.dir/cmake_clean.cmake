file(REMOVE_RECURSE
  "CMakeFiles/hermes_sim.dir/cost_model.cpp.o"
  "CMakeFiles/hermes_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/hermes_sim.dir/hardware.cpp.o"
  "CMakeFiles/hermes_sim.dir/hardware.cpp.o.d"
  "CMakeFiles/hermes_sim.dir/node_sim.cpp.o"
  "CMakeFiles/hermes_sim.dir/node_sim.cpp.o.d"
  "CMakeFiles/hermes_sim.dir/pipeline.cpp.o"
  "CMakeFiles/hermes_sim.dir/pipeline.cpp.o.d"
  "CMakeFiles/hermes_sim.dir/queue_sim.cpp.o"
  "CMakeFiles/hermes_sim.dir/queue_sim.cpp.o.d"
  "libhermes_sim.a"
  "libhermes_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
