file(REMOVE_RECURSE
  "libhermes_sim.a"
)
