file(REMOVE_RECURSE
  "CMakeFiles/hermes_core.dir/distributed_store.cpp.o"
  "CMakeFiles/hermes_core.dir/distributed_store.cpp.o.d"
  "CMakeFiles/hermes_core.dir/rerank.cpp.o"
  "CMakeFiles/hermes_core.dir/rerank.cpp.o.d"
  "CMakeFiles/hermes_core.dir/search_strategy.cpp.o"
  "CMakeFiles/hermes_core.dir/search_strategy.cpp.o.d"
  "libhermes_core.a"
  "libhermes_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
