file(REMOVE_RECURSE
  "CMakeFiles/hermes_rag.dir/analysis.cpp.o"
  "CMakeFiles/hermes_rag.dir/analysis.cpp.o.d"
  "CMakeFiles/hermes_rag.dir/datastore.cpp.o"
  "CMakeFiles/hermes_rag.dir/datastore.cpp.o.d"
  "CMakeFiles/hermes_rag.dir/encoder.cpp.o"
  "CMakeFiles/hermes_rag.dir/encoder.cpp.o.d"
  "CMakeFiles/hermes_rag.dir/perplexity.cpp.o"
  "CMakeFiles/hermes_rag.dir/perplexity.cpp.o.d"
  "CMakeFiles/hermes_rag.dir/rag_system.cpp.o"
  "CMakeFiles/hermes_rag.dir/rag_system.cpp.o.d"
  "CMakeFiles/hermes_rag.dir/reranker.cpp.o"
  "CMakeFiles/hermes_rag.dir/reranker.cpp.o.d"
  "CMakeFiles/hermes_rag.dir/synth_text.cpp.o"
  "CMakeFiles/hermes_rag.dir/synth_text.cpp.o.d"
  "libhermes_rag.a"
  "libhermes_rag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_rag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
