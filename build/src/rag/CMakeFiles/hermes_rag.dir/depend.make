# Empty dependencies file for hermes_rag.
# This may be replaced when dependencies are built.
