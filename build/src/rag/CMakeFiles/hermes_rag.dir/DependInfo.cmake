
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rag/analysis.cpp" "src/rag/CMakeFiles/hermes_rag.dir/analysis.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/analysis.cpp.o.d"
  "/root/repo/src/rag/datastore.cpp" "src/rag/CMakeFiles/hermes_rag.dir/datastore.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/datastore.cpp.o.d"
  "/root/repo/src/rag/encoder.cpp" "src/rag/CMakeFiles/hermes_rag.dir/encoder.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/encoder.cpp.o.d"
  "/root/repo/src/rag/perplexity.cpp" "src/rag/CMakeFiles/hermes_rag.dir/perplexity.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/perplexity.cpp.o.d"
  "/root/repo/src/rag/rag_system.cpp" "src/rag/CMakeFiles/hermes_rag.dir/rag_system.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/rag_system.cpp.o.d"
  "/root/repo/src/rag/reranker.cpp" "src/rag/CMakeFiles/hermes_rag.dir/reranker.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/reranker.cpp.o.d"
  "/root/repo/src/rag/synth_text.cpp" "src/rag/CMakeFiles/hermes_rag.dir/synth_text.cpp.o" "gcc" "src/rag/CMakeFiles/hermes_rag.dir/synth_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hermes_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hermes_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/vecstore/CMakeFiles/hermes_vecstore.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/hermes_index.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/hermes_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/hermes_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/hermes_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
