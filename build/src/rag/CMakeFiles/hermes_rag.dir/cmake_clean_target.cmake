file(REMOVE_RECURSE
  "libhermes_rag.a"
)
