file(REMOVE_RECURSE
  "CMakeFiles/hermes_vecstore.dir/distance.cpp.o"
  "CMakeFiles/hermes_vecstore.dir/distance.cpp.o.d"
  "CMakeFiles/hermes_vecstore.dir/matrix.cpp.o"
  "CMakeFiles/hermes_vecstore.dir/matrix.cpp.o.d"
  "CMakeFiles/hermes_vecstore.dir/topk.cpp.o"
  "CMakeFiles/hermes_vecstore.dir/topk.cpp.o.d"
  "libhermes_vecstore.a"
  "libhermes_vecstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_vecstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
