# Empty compiler generated dependencies file for hermes_vecstore.
# This may be replaced when dependencies are built.
