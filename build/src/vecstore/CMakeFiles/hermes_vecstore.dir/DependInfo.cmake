
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vecstore/distance.cpp" "src/vecstore/CMakeFiles/hermes_vecstore.dir/distance.cpp.o" "gcc" "src/vecstore/CMakeFiles/hermes_vecstore.dir/distance.cpp.o.d"
  "/root/repo/src/vecstore/matrix.cpp" "src/vecstore/CMakeFiles/hermes_vecstore.dir/matrix.cpp.o" "gcc" "src/vecstore/CMakeFiles/hermes_vecstore.dir/matrix.cpp.o.d"
  "/root/repo/src/vecstore/topk.cpp" "src/vecstore/CMakeFiles/hermes_vecstore.dir/topk.cpp.o" "gcc" "src/vecstore/CMakeFiles/hermes_vecstore.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hermes_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
