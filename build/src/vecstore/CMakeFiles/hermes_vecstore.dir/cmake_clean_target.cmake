file(REMOVE_RECURSE
  "libhermes_vecstore.a"
)
