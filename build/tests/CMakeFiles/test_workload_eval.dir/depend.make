# Empty dependencies file for test_workload_eval.
# This may be replaced when dependencies are built.
