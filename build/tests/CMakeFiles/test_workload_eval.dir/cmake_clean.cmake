file(REMOVE_RECURSE
  "CMakeFiles/test_workload_eval.dir/test_workload_eval.cpp.o"
  "CMakeFiles/test_workload_eval.dir/test_workload_eval.cpp.o.d"
  "test_workload_eval"
  "test_workload_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
