# Empty dependencies file for test_vecstore.
# This may be replaced when dependencies are built.
