file(REMOVE_RECURSE
  "CMakeFiles/test_vecstore.dir/test_vecstore.cpp.o"
  "CMakeFiles/test_vecstore.dir/test_vecstore.cpp.o.d"
  "test_vecstore"
  "test_vecstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vecstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
