file(REMOVE_RECURSE
  "CMakeFiles/test_reranker.dir/test_reranker.cpp.o"
  "CMakeFiles/test_reranker.dir/test_reranker.cpp.o.d"
  "test_reranker"
  "test_reranker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reranker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
