file(REMOVE_RECURSE
  "CMakeFiles/hermes_build_index.dir/hermes_build_index.cpp.o"
  "CMakeFiles/hermes_build_index.dir/hermes_build_index.cpp.o.d"
  "hermes_build_index"
  "hermes_build_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_build_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
