# Empty dependencies file for hermes_build_index.
# This may be replaced when dependencies are built.
