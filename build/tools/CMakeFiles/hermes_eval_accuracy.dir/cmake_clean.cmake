file(REMOVE_RECURSE
  "CMakeFiles/hermes_eval_accuracy.dir/hermes_eval_accuracy.cpp.o"
  "CMakeFiles/hermes_eval_accuracy.dir/hermes_eval_accuracy.cpp.o.d"
  "hermes_eval_accuracy"
  "hermes_eval_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_eval_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
