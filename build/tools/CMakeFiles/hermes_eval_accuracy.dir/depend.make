# Empty dependencies file for hermes_eval_accuracy.
# This may be replaced when dependencies are built.
