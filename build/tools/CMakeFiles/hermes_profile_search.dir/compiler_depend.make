# Empty compiler generated dependencies file for hermes_profile_search.
# This may be replaced when dependencies are built.
