file(REMOVE_RECURSE
  "CMakeFiles/hermes_profile_search.dir/hermes_profile_search.cpp.o"
  "CMakeFiles/hermes_profile_search.dir/hermes_profile_search.cpp.o.d"
  "hermes_profile_search"
  "hermes_profile_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hermes_profile_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
