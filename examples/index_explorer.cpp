/**
 * @file
 * Index explorer: builds every index type the library offers on the same
 * corpus, compares recall / latency / memory, and demonstrates IVF
 * save/load — the offline index-construction workflow of Fig 2.
 *
 * Usage: index_explorer [num_docs] [dim]
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "hermes/hermes.hpp"

int
main(int argc, char **argv)
{
    using namespace hermes;
    util::setQuiet(true);

    std::size_t num_docs =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
    std::size_t dim = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 48;

    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = dim;
    cc.num_topics = 24;
    auto corpus = workload::generateCorpus(cc);

    workload::QueryConfig qc;
    qc.num_queries = 64;
    auto queries = workload::generateQueries(corpus, qc);
    auto truth = eval::exactGroundTruth(corpus.embeddings,
                                        queries.embeddings, 10,
                                        vecstore::Metric::L2);

    std::printf("\nCorpus: %zu vectors, d=%zu (%.1f MB raw fp32)\n\n",
                corpus.embeddings.rows(), corpus.embeddings.dim(),
                corpus.embeddings.memoryBytes() / 1e6);

    util::TablePrinter table({16, 12, 14, 12, 14});
    table.header({"index", "recall@10", "batch (ms)", "mem (MB)",
                  "vectors/query"});
    for (const char *spec :
         {"Flat", "IVF141,Flat", "IVF141,SQ8", "IVF141,SQ4", "IVF141,PQ12",
          "HNSW16"}) {
        auto idx = index::makeIndex(spec, dim, vecstore::Metric::L2);
        idx->train(corpus.embeddings);
        idx->addSequential(corpus.embeddings);

        index::SearchParams params;
        params.nprobe = 16;
        params.ef_search = 64;
        index::SearchStats stats;
        util::Timer timer;
        auto results = idx->searchBatch(queries.embeddings, 10, params,
                                        &stats);
        double ms = timer.elapsedMillis();
        table.row({spec,
                   util::TablePrinter::num(
                       eval::meanRecallAtK(results, truth, 10), 3),
                   util::TablePrinter::num(ms, 1),
                   util::TablePrinter::num(idx->memoryBytes() / 1e6, 1),
                   util::TablePrinter::num(
                       static_cast<double>(stats.vectors_scanned) /
                       static_cast<double>(queries.embeddings.rows()), 0)});
    }

    // Save/load round trip.
    index::IvfConfig config;
    config.nlist = 141;
    config.codec = "SQ8";
    index::IvfIndex ivf(dim, vecstore::Metric::L2, config);
    ivf.train(corpus.embeddings);
    ivf.addSequential(corpus.embeddings);

    auto path = std::filesystem::temp_directory_path() / "explorer.hivf";
    ivf.save(path.string());
    auto loaded = index::IvfIndex::load(path.string());
    std::printf("\nSaved + reloaded %s: %zu vectors, %.1f MB on disk\n\n",
                loaded->name().c_str(), loaded->size(),
                static_cast<double>(std::filesystem::file_size(path)) /
                    1e6);
    std::filesystem::remove(path);
    return 0;
}
