/**
 * @file
 * Online serving demo: stands up the threaded Hermes broker (one worker
 * per cluster node), drives it with concurrent client threads, and prints
 * per-node load — the deployment shape of Fig 9 in miniature.
 *
 * Usage: serving_demo [num_docs] [clients] [queries_per_client]
 */

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "hermes/hermes.hpp"

int
main(int argc, char **argv)
{
    using namespace hermes;
    util::setQuiet(true);

    std::size_t num_docs =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
    std::size_t clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    std::size_t per_client =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 64;

    // Build the distributed store.
    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = 32;
    cc.num_topics = 30;
    auto corpus = workload::generateCorpus(cc);

    core::HermesConfig config;
    config.num_clusters = 10;
    config.clusters_to_search = 3;
    config.sample_nprobe = 4;
    config.deep_nprobe = 32;
    config.partition.seeds_to_try = 3;
    auto store = core::DistributedStore::build(corpus.embeddings, config);

    workload::QueryConfig qc;
    qc.num_queries = clients * per_client;
    qc.topic_zipf = 1.0;
    auto queries = workload::generateQueries(corpus, qc);

    // Stand up the broker and hammer it from concurrent clients.
    serve::HermesBroker broker(store);
    std::printf("serving %zu vectors over %zu node workers; %zu clients x "
                "%zu queries\n", store.totalVectors(), broker.numNodes(),
                clients, per_client);

    util::Timer wall;
    std::vector<std::thread> threads;
    std::vector<double> client_seconds(clients, 0.0);
    for (std::size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            util::Timer timer;
            for (std::size_t i = 0; i < per_client; ++i) {
                std::size_t q = t * per_client + i;
                broker.search(queries.embeddings.row(q), 5);
            }
            client_seconds[t] = timer.elapsedSeconds();
        });
    }
    for (auto &thread : threads)
        thread.join();
    double elapsed = wall.elapsedSeconds();

    auto stats = broker.stats();
    std::printf("\nserved %llu queries in %.3f s => %.0f QPS aggregate\n",
                static_cast<unsigned long long>(stats.queries), elapsed,
                static_cast<double>(stats.queries) / elapsed);
    std::printf("deep requests: %llu (%.2f clusters/query)\n\n",
                static_cast<unsigned long long>(stats.deep_requests),
                static_cast<double>(stats.deep_requests) /
                    static_cast<double>(stats.queries));

    std::printf("%-6s %-10s %-10s %-10s %-12s\n", "node", "shard", "reqs",
                "batches", "busy (ms)");
    for (std::size_t c = 0; c < stats.nodes.size(); ++c) {
        const auto &node = stats.nodes[c];
        std::printf("%-6zu %-10zu %-10llu %-10llu %-12.1f\n", c,
                    store.clusterSize(c),
                    static_cast<unsigned long long>(node.requests),
                    static_cast<unsigned long long>(node.batches),
                    node.busy_seconds * 1e3);
    }
    std::printf("\nZipf-popular topics load their home nodes harder — the "
                "access imbalance of\nFig 13, live. Compare 'reqs' across "
                "nodes: sampling adds a uniform floor of one\nrequest per "
                "query per node; the surplus is deep-search skew.\n");
    return 0;
}
