/**
 * @file
 * Online serving demo: stands up the threaded Hermes broker (one worker
 * per cluster node), drives it with concurrent client threads, and prints
 * per-node load — the deployment shape of Fig 9 in miniature.
 *
 * Usage: serving_demo [num_docs] [clients] [queries_per_client]
 *                     [fail_prob] [drop_prob] [delay_ms]
 *                     [--metrics-json=PATH] [--metrics-prom=PATH]
 *                     [--metrics-interval=SECONDS]
 *                     [--trace-out=PATH] [--trace-sample=N]
 *                     [--http-port=PORT] [--duration=SECONDS]
 *                     [--batch-window-us=N] [--max-batch=N] [--dim=N]
 *                     [--nlist=N] [--remote-nodes=host:port,host:port,...]
 *                     [--replicate=c:r,...] [--auto-replicate=N]
 *                     [--auto-replicate-after=S] [--hedge=0|1]
 *                     [--deadline-ms=MS] [--perf=0|1]
 *                     [--index-dir=DIR] [--index-heap=0|1]
 *
 * --index-dir=DIR loads the store from a hermes_build_index deployment
 * manifest instead of partitioning and training at startup — the
 * "build once, serve many" path. Cluster indices are opened as
 * zero-copy mmap views (--index-heap=1 copies them to heap instead),
 * so a restart is ready in milliseconds regardless of store size. The
 * embedding dim and cluster count come from the manifest; the corpus
 * is still synthesized (with the manifest's dim) for query synthesis,
 * so build the deployment from the same corpus flags for meaningful
 * recall. Incompatible with --remote-nodes, which builds no store.
 *
 * --remote-nodes switches the broker to the out-of-process fleet: one
 * RemoteNodeClient per listed hermes_shard endpoint (in cluster order)
 * instead of in-process worker nodes. The demo then builds no store of
 * its own — only the corpus for query synthesis — and num_clusters
 * becomes the endpoint count, so launch the shards with a matching
 * --clusters (and matching corpus flags). Fault-injection positionals
 * are ignored in this mode; inject faults on the shard processes
 * instead. On an identical fleet the merged results are bit-identical
 * to the in-process run.
 *
 * Replication and skew-aware routing: each endpoint may carry an
 * explicit cluster assignment, `host:port@cluster` (all endpoints or
 * none) — listing two endpoints with the same cluster makes them
 * replicas of that cluster, served by bit-identical hermes_shard
 * processes (same corpus flags + --cluster, see hermes_shard
 * --replica). In-process, --replicate=c:r,... spins up r worker nodes
 * over cluster c's shard index, and --auto-replicate=N lets the broker
 * add up to N replicas itself from its live load report
 * (--auto-replicate-after delays the decision until the Zipf fit has
 * data; default 2 s). Replicated clusters are routed by
 * power-of-two-choices over live queue depth, and straggling sample
 * probes are hedged to a second replica (--hedge=0 disables) — the
 * run summary prints the hedge counters, and any query returning
 * fewer than the requested top-k is counted as "short". Hedging (and
 * the per-node retry ladder) needs a finite node deadline:
 * --deadline-ms sets it explicitly (it is otherwise 0 = infinite
 * unless drop_prob implies one), and for remote fleets it also
 * becomes each RPC's request deadline.
 *
 * --batch-window-us opts the nodes into micro-batching: concurrent
 * clients' requests landing on the same node within the window are
 * coalesced into one list-major shard scan (compare QPS and the
 * per-node batch_occupancy in the /load report against a window=0 run).
 * The amortization pays off in proportion to per-row scan work, so use
 * --dim to run at a realistic embedding width (the default 32 keeps the
 * demo fast but makes scans so cheap that the window's added queueing
 * outweighs the shared list streaming). --nlist overrides the per-node
 * IVF list count (0 = sqrt heuristic); fewer, larger lists give each
 * batched list visit more rows to amortize over.
 *
 * --perf=1 turns on hardware-grounded observability: per-phase
 * perf_event counter groups (IPC, cache miss rates) and RAPL energy
 * sampling, surfaced through the /perf endpoint and the perf.* metric
 * family. When the kernel denies access (perf_event_paranoid,
 * missing powercap) the run degrades gracefully — counters report
 * unavailable and the output is bit-identical to a --perf=0 run.
 *
 * --http-port starts the embedded metrics endpoint (0 = ephemeral; the
 * bound port is printed) serving /metrics, /metrics.json and the
 * broker's /load while the demo runs. --duration switches the clients
 * from a fixed query count to a wall-clock run (queries are reused
 * round-robin), which keeps the endpoint alive long enough to watch
 * with hermes_monitor or scrape from CI. --metrics-interval re-writes
 * the --metrics-json/--metrics-prom files periodically during the run.
 *
 * The optional fault arguments inject per-request failures, drops (dead
 * node: the broker's deadline fires) and delays into every node, showing
 * the broker's graceful degradation: queries still return top-k from the
 * surviving nodes, and the timeout/failure/degraded counters account for
 * what was lost.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "hermes/hermes.hpp"

namespace {

/**
 * Split `--metrics-json=` / `--trace-out=` / `--trace-sample=` options out
 * of argv, leaving the positional fault-injection arguments in place.
 */
const char *
matchOption(const char *arg, const char *name)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

/** Split a comma-separated endpoint list, dropping empty entries. */
std::vector<std::string>
splitEndpoints(const std::string &spec)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        if (comma > start)
            out.push_back(spec.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;
    util::setQuiet(true);

    std::string metrics_json;
    std::string metrics_prom;
    double metrics_interval = 0.0;
    std::string trace_out;
    std::size_t trace_sample = 1;
    int http_port = -1;
    double duration = 0.0;
    double batch_window_us = 0.0;
    std::size_t max_batch = 0;
    std::size_t dim = 32;
    std::size_t nlist = 0;
    std::string remote_nodes;
    std::string replicate;
    std::size_t auto_replicate = 0;
    double auto_replicate_after = 2.0;
    bool hedge = true;
    double deadline_ms = 0.0;
    bool perf_flag = false;
    std::string index_dir;
    bool index_heap = false;
    std::vector<char *> positional;
    for (int i = 0; i < argc; ++i) {
        if (const char *v = matchOption(argv[i], "--metrics-json"))
            metrics_json = v;
        else if (const char *v = matchOption(argv[i], "--metrics-prom"))
            metrics_prom = v;
        else if (const char *v = matchOption(argv[i], "--metrics-interval"))
            metrics_interval = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--trace-out"))
            trace_out = v;
        else if (const char *v = matchOption(argv[i], "--trace-sample"))
            trace_sample = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--http-port"))
            http_port = std::atoi(v);
        else if (const char *v = matchOption(argv[i], "--duration"))
            duration = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--batch-window-us"))
            batch_window_us = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--max-batch"))
            max_batch = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--dim"))
            dim = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--nlist"))
            nlist = std::strtoul(v, nullptr, 10);
        else if (const char *v = matchOption(argv[i], "--remote-nodes"))
            remote_nodes = v;
        else if (const char *v = matchOption(argv[i], "--replicate"))
            replicate = v;
        else if (const char *v = matchOption(argv[i], "--auto-replicate"))
            auto_replicate = std::strtoul(v, nullptr, 10);
        else if (const char *v =
                     matchOption(argv[i], "--auto-replicate-after"))
            auto_replicate_after = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--hedge"))
            hedge = std::atoi(v) != 0;
        else if (const char *v = matchOption(argv[i], "--deadline-ms"))
            deadline_ms = std::strtod(v, nullptr);
        else if (const char *v = matchOption(argv[i], "--perf"))
            perf_flag = std::atoi(v) != 0;
        else if (const char *v = matchOption(argv[i], "--index-dir"))
            index_dir = v;
        else if (const char *v = matchOption(argv[i], "--index-heap"))
            index_heap = std::atoi(v) != 0;
        else
            positional.push_back(argv[i]);
    }
    argc = static_cast<int>(positional.size());
    argv = positional.data();

    if (perf_flag)
        obs::setPerfEnabled(true);

    if (!trace_out.empty())
        obs::TraceRecorder::instance().start(trace_sample);

    std::size_t num_docs =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
    std::size_t clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    std::size_t per_client =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 64;
    double fail_prob = argc > 4 ? std::strtod(argv[4], nullptr) : 0.0;
    double drop_prob = argc > 5 ? std::strtod(argv[5], nullptr) : 0.0;
    double delay_ms = argc > 6 ? std::strtod(argv[6], nullptr) : 0.0;

    if (!index_dir.empty() && !remote_nodes.empty()) {
        std::fprintf(stderr, "--index-dir and --remote-nodes are "
                             "mutually exclusive (remote fleets load "
                             "their own index files)\n");
        return 2;
    }

    // A deployment manifest pins the store geometry; the corpus below
    // is then only synthesized for query generation and must match the
    // manifest's embedding dim.
    std::optional<core::Manifest> manifest;
    if (!index_dir.empty()) {
        manifest = core::Manifest::load(index_dir);
        dim = manifest->dim;
    }

    // Build the corpus (and, when serving in-process, the store).
    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = dim;
    cc.num_topics = 30;
    auto corpus = workload::generateCorpus(cc);

    std::vector<std::string> endpoints = splitEndpoints(remote_nodes);

    // Optional per-endpoint cluster assignment, "host:port@cluster":
    // listing several endpoints with the same cluster makes them
    // replicas. All endpoints carry an assignment or none do (then
    // endpoint i serves cluster i, the pre-replication shape).
    std::vector<std::uint32_t> endpoint_clusters(endpoints.size(), 0);
    std::size_t tagged = 0;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        std::size_t at = endpoints[i].rfind('@');
        if (at == std::string::npos) {
            endpoint_clusters[i] = static_cast<std::uint32_t>(i);
            continue;
        }
        endpoint_clusters[i] = static_cast<std::uint32_t>(
            std::strtoul(endpoints[i].c_str() + at + 1, nullptr, 10));
        endpoints[i].resize(at);
        ++tagged;
    }
    if (tagged != 0 && tagged != endpoints.size()) {
        std::fprintf(stderr, "either every --remote-nodes endpoint "
                             "carries @cluster or none do\n");
        return 2;
    }
    std::size_t remote_clusters = 0;
    for (std::uint32_t c : endpoint_clusters)
        remote_clusters = std::max<std::size_t>(remote_clusters, c + 1);

    core::HermesConfig config;
    config.num_clusters = manifest ? manifest->num_clusters
                                   : (endpoints.empty() ? 10
                                                        : remote_clusters);
    config.clusters_to_search =
        std::min<std::size_t>(3, config.num_clusters);
    config.sample_nprobe = 4;
    config.deep_nprobe = 32;
    config.partition.seeds_to_try = 3;
    config.nlist_per_cluster = nlist;
    std::optional<core::DistributedStore> store;
    util::Timer store_timer;
    if (manifest) {
        store = core::loadOrFatal([&] {
            return core::loadStore(index_dir, *manifest, config,
                                   index_heap
                                       ? core::StoreLoadMode::kHeap
                                       : core::StoreLoadMode::kMapped);
        });
        config = store->config();
        std::printf("loaded %zu %s indices from %s in %.1f ms (%s)\n",
                    store->numClusters(), store->config().codec.c_str(),
                    index_dir.c_str(),
                    store_timer.elapsedSeconds() * 1e3,
                    index_heap ? "heap copies" : "zero-copy mmap");
    } else if (endpoints.empty()) {
        store = core::DistributedStore::build(corpus.embeddings, config);
    }

    workload::QueryConfig qc;
    qc.num_queries = clients * per_client;
    qc.topic_zipf = 1.0;
    auto queries = workload::generateQueries(corpus, qc);

    // Stand up the broker and hammer it from concurrent clients.
    serve::BrokerConfig broker_config;
    broker_config.node.batch_window_us = batch_window_us;
    if (max_batch > 0)
        broker_config.node.max_batch = max_batch;
    broker_config.node.faults.fail_probability = fail_prob;
    broker_config.node.faults.drop_probability = drop_prob;
    broker_config.node.faults.delay_probability = delay_ms > 0.0 ? 0.2 : 0.0;
    broker_config.node.faults.delay_ms = delay_ms;
    if (drop_prob > 0.0)
        broker_config.node_deadline_ms = 250.0; // make dead nodes cheap
    if (deadline_ms > 0.0)
        broker_config.node_deadline_ms = deadline_ms;
    broker_config.hedge.enabled = hedge;
    if (!replicate.empty() &&
        !serve::ReplicaMap::parseSpec(replicate,
                                      broker_config.replicate)) {
        std::fprintf(stderr, "bad --replicate spec (want c:r,c:r,...): "
                             "%s\n", replicate.c_str());
        return 2;
    }
    if (!endpoints.empty() && tagged > 0) {
        serve::ReplicaMap map;
        for (std::size_t i = 0; i < endpoints.size(); ++i)
            map.assign(endpoint_clusters[i],
                       static_cast<std::uint32_t>(i));
        if (!map.complete()) {
            std::fprintf(stderr, "endpoint cluster assignments must "
                                 "cover every cluster 0..%zu\n",
                         config.num_clusters - 1);
            return 2;
        }
        broker_config.replica_map = std::move(map);
    }

    // Per-node shard sizes for the load table: from the store when
    // in-process, from each shard's Health RPC when remote.
    std::vector<std::size_t> shard_sizes(config.num_clusters, 0);
    std::unique_ptr<serve::HermesBroker> broker;
    if (endpoints.empty()) {
        for (std::size_t c = 0; c < config.num_clusters; ++c)
            shard_sizes[c] = store->clusterSize(c);
        broker = std::make_unique<serve::HermesBroker>(*store,
                                                       broker_config);
    } else {
        std::vector<std::unique_ptr<serve::NodeClient>> nodes;
        for (std::size_t c = 0; c < endpoints.size(); ++c) {
            serve::RemoteNodeOptions ro;
            if (!serve::parseEndpoint(endpoints[c], ro.host, ro.port)) {
                std::fprintf(stderr, "bad endpoint: %s\n",
                             endpoints[c].c_str());
                return 2;
            }
            ro.request_deadline_ms = broker_config.node_deadline_ms;
            auto client =
                std::make_unique<serve::RemoteNodeClient>(std::move(ro));
            // Wait briefly for the shard to answer health — fleets come
            // up process by process — then fail loudly on a dim
            // mismatch, which would otherwise surface as per-query
            // BadRequest noise.
            serve::rpc::HealthResponse health;
            bool up = false;
            for (int attempt = 0; attempt < 20 && !up; ++attempt) {
                up = client->health(&health);
                if (!up)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(250));
            }
            if (!up) {
                std::fprintf(stderr, "shard %s unreachable\n",
                             endpoints[c].c_str());
                return 1;
            }
            if (health.dim != dim) {
                std::fprintf(stderr,
                             "shard %s serves dim %llu, demo runs dim "
                             "%zu — corpus flags must match\n",
                             endpoints[c].c_str(),
                             static_cast<unsigned long long>(health.dim),
                             dim);
                return 1;
            }
            shard_sizes[endpoint_clusters[c]] =
                static_cast<std::size_t>(health.shard_vectors);
            nodes.push_back(std::move(client));
        }
        broker = std::make_unique<serve::HermesBroker>(
            config, std::move(nodes), broker_config);
    }

    std::size_t total_vectors = 0;
    for (std::size_t n : shard_sizes)
        total_vectors += n;
    const char *node_kind = endpoints.empty() ? "node workers"
                                              : "remote shards";
    if (duration > 0.0) {
        std::printf("serving %zu vectors over %zu %s; %zu "
                    "clients for %.1f s\n", total_vectors,
                    broker->numNodes(), node_kind, clients, duration);
    } else {
        std::printf("serving %zu vectors over %zu %s; %zu "
                    "clients x %zu queries\n", total_vectors,
                    broker->numNodes(), node_kind, clients, per_client);
    }

    // Embedded observability: HTTP endpoint + periodic file flushes,
    // both alive for the whole serving run. Declared after the broker
    // so they stop before it (the /load handler dereferences it).
    std::unique_ptr<obs::Exporter> exporter;
    if (http_port >= 0) {
        obs::Exporter::Options options;
        options.port = static_cast<std::uint16_t>(http_port);
        exporter = std::make_unique<obs::Exporter>(options);
        exporter->setHandler("/load", [&broker] {
            return broker->loadReport().toJson();
        });
        if (exporter->start()) {
            std::printf("metrics endpoint: http://127.0.0.1:%u  "
                        "(/metrics, /metrics.json, /load)\n",
                        exporter->port());
            // Pollers wait on this line; with stdout redirected to a
            // file it would otherwise sit in the stdio buffer until exit.
            std::fflush(stdout);
        }
    }
    std::unique_ptr<obs::PeriodicFlusher> flusher;
    if (metrics_interval > 0.0 &&
        (!metrics_json.empty() || !metrics_prom.empty())) {
        flusher = std::make_unique<obs::PeriodicFlusher>(
            metrics_json, metrics_prom, metrics_interval);
    }

    // Dynamic replication: let the broker act on its own load report
    // once the Zipf fit has seen real traffic (in-process only; a
    // node-list broker has no shard index to clone).
    std::thread replicator;
    if (auto_replicate > 0 && endpoints.empty()) {
        replicator = std::thread(
            [&broker, auto_replicate, auto_replicate_after] {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(auto_replicate_after));
                serve::ReplicationPolicy policy;
                policy.max_total_extras = auto_replicate;
                std::size_t added = broker->autoReplicate(policy);
                std::printf("auto-replicate: added %zu replicas\n",
                            added);
                std::fflush(stdout);
            });
    }

    const std::size_t top_k = 5;
    std::atomic<std::uint64_t> short_queries{0};
    util::Timer wall;
    std::vector<std::thread> threads;
    std::vector<double> client_seconds(clients, 0.0);
    for (std::size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            util::Timer timer;
            if (duration > 0.0) {
                // Wall-clock mode: reuse the query set round-robin so
                // the Zipfian skew persists for the whole window.
                std::size_t sent = 0;
                while (timer.elapsedSeconds() < duration) {
                    std::size_t q = (t * per_client + sent) %
                        queries.embeddings.rows();
                    auto hits =
                        broker->search(queries.embeddings.row(q), top_k);
                    if (hits.size() < top_k)
                        short_queries.fetch_add(1);
                    ++sent;
                }
            } else {
                for (std::size_t i = 0; i < per_client; ++i) {
                    std::size_t q = t * per_client + i;
                    auto hits =
                        broker->search(queries.embeddings.row(q), top_k);
                    if (hits.size() < top_k)
                        short_queries.fetch_add(1);
                }
            }
            client_seconds[t] = timer.elapsedSeconds();
        });
    }
    for (auto &thread : threads)
        thread.join();
    if (replicator.joinable())
        replicator.join();
    double elapsed = wall.elapsedSeconds();

    auto stats = broker->stats();
    std::printf("\nserved %llu queries in %.3f s => %.0f QPS aggregate\n",
                static_cast<unsigned long long>(stats.queries), elapsed,
                static_cast<double>(stats.queries) / elapsed);
    std::printf("deep requests: %llu (%.2f clusters/query)\n",
                static_cast<unsigned long long>(stats.deep_requests),
                static_cast<double>(stats.deep_requests) /
                    static_cast<double>(stats.queries));
    std::printf("faults: %llu timeouts, %llu failures, %llu degraded "
                "queries\n",
                static_cast<unsigned long long>(stats.timeouts),
                static_cast<unsigned long long>(stats.failures),
                static_cast<unsigned long long>(stats.degraded_queries));
    std::printf("hedges: %llu issued, %llu won, %llu wasted\n",
                static_cast<unsigned long long>(stats.hedges_issued),
                static_cast<unsigned long long>(stats.hedges_won),
                static_cast<unsigned long long>(stats.hedges_wasted));
    std::printf("short queries: %llu\n\n",
                static_cast<unsigned long long>(short_queries.load()));

    const struct {
        const char *label;
        const obs::LatencySummary &summary;
    } phases[] = {
        {"query latency", stats.query_latency},
        {"sample phase", stats.sample_phase},
        {"deep phase", stats.deep_phase},
        {"merge phase", stats.merge_phase},
    };
    std::printf("%-14s %10s %10s %10s %10s\n", "phase", "p50 (us)",
                "p95 (us)", "p99 (us)", "max (us)");
    for (const auto &phase : phases) {
        if (phase.summary.count == 0)
            continue;
        std::printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", phase.label,
                    phase.summary.p50_us, phase.summary.p95_us,
                    phase.summary.p99_us, phase.summary.max_us);
    }
    std::printf("\n");

    std::printf("%-6s %-8s %-10s %-10s %-10s %-6s %-12s\n", "node",
                "cluster", "shard", "reqs", "batches", "occ",
                "busy (ms)");
    for (std::size_t i = 0; i < stats.nodes.size(); ++i) {
        const auto &node = stats.nodes[i];
        std::uint32_t cluster = i < stats.node_clusters.size()
            ? stats.node_clusters[i]
            : static_cast<std::uint32_t>(i);
        double occ = node.batches > 0
            ? static_cast<double>(node.requests) /
                static_cast<double>(node.batches)
            : 0.0;
        std::printf("%-6zu %-8u %-10zu %-10llu %-10llu %-6.2f %-12.1f\n",
                    i, cluster, shard_sizes[cluster],
                    static_cast<unsigned long long>(node.requests),
                    static_cast<unsigned long long>(node.batches), occ,
                    node.busy_seconds * 1e3);
    }
    std::printf("\nZipf-popular topics load their home nodes harder — the "
                "access imbalance of\nFig 13, live. Compare 'reqs' across "
                "nodes: sampling adds a uniform floor of one\nrequest per "
                "query per node; the surplus is deep-search skew.\n");

    // Fleet summary from the same LoadReport the /load endpoint serves.
    auto load = broker->loadReport();
    std::printf("\nload report: max/mean deep load %.2f, fitted zipf "
                "~%.2f, modeled energy %.1f J (%.2f J/query)\n",
                load.max_mean_ratio, load.zipf_exponent,
                load.total_energy_joules,
                load.queries ? load.total_energy_joules /
                        static_cast<double>(load.queries)
                             : 0.0);
    // Hardware-grounded lines print only when the measurement actually
    // succeeded, so a --perf=1 run with counters/powercap denied stays
    // bit-identical to --perf=0.
    if (load.measured_energy_valid) {
        std::printf("measured energy: %.1f J package, %.1f J dram "
                    "(measured/modeled %.2f)\n",
                    load.measured_package_joules,
                    load.measured_dram_joules,
                    load.energy_model_error_ratio);
    }
    if (obs::perfCountersAvailable()) {
        std::printf("perf counters: per-phase IPC and miss rates live "
                    "in perf.* metrics and at /perf\n");
    }

    flusher.reset(); // final flush before the one-shot writes below
    if (!metrics_json.empty()) {
        obs::Registry::instance().writeJson(metrics_json);
        std::printf("\nmetrics written to %s\n", metrics_json.c_str());
    }
    if (!metrics_prom.empty()) {
        obs::Registry::instance().writePrometheus(metrics_prom);
        std::printf("prometheus metrics written to %s\n",
                    metrics_prom.c_str());
    }
    if (!trace_out.empty()) {
        auto &recorder = obs::TraceRecorder::instance();
        recorder.stop();
        // The "process" tag labels this dump as the broker side for
        // hermes_trace_merge (its rpc.clock_sync instants align the
        // shard dumps onto this clock).
        recorder.writeChromeTrace(trace_out, {{"process", "broker", false}});
        std::printf("trace (%zu spans) written to %s\n",
                    recorder.spanCount(), trace_out.c_str());
    }
    return 0;
}
