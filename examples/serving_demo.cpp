/**
 * @file
 * Online serving demo: stands up the threaded Hermes broker (one worker
 * per cluster node), drives it with concurrent client threads, and prints
 * per-node load — the deployment shape of Fig 9 in miniature.
 *
 * Usage: serving_demo [num_docs] [clients] [queries_per_client]
 *                     [fail_prob] [drop_prob] [delay_ms]
 *                     [--metrics-json=PATH] [--trace-out=PATH]
 *                     [--trace-sample=N]
 *
 * The optional fault arguments inject per-request failures, drops (dead
 * node: the broker's deadline fires) and delays into every node, showing
 * the broker's graceful degradation: queries still return top-k from the
 * surviving nodes, and the timeout/failure/degraded counters account for
 * what was lost.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "hermes/hermes.hpp"

namespace {

/**
 * Split `--metrics-json=` / `--trace-out=` / `--trace-sample=` options out
 * of argv, leaving the positional fault-injection arguments in place.
 */
const char *
matchOption(const char *arg, const char *name)
{
    std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=')
        return arg + len + 1;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace hermes;
    util::setQuiet(true);

    std::string metrics_json;
    std::string trace_out;
    std::size_t trace_sample = 1;
    std::vector<char *> positional;
    for (int i = 0; i < argc; ++i) {
        if (const char *v = matchOption(argv[i], "--metrics-json"))
            metrics_json = v;
        else if (const char *v = matchOption(argv[i], "--trace-out"))
            trace_out = v;
        else if (const char *v = matchOption(argv[i], "--trace-sample"))
            trace_sample = std::strtoul(v, nullptr, 10);
        else
            positional.push_back(argv[i]);
    }
    argc = static_cast<int>(positional.size());
    argv = positional.data();

    if (!trace_out.empty())
        obs::TraceRecorder::instance().start(trace_sample);

    std::size_t num_docs =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;
    std::size_t clients = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;
    std::size_t per_client =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 64;
    double fail_prob = argc > 4 ? std::strtod(argv[4], nullptr) : 0.0;
    double drop_prob = argc > 5 ? std::strtod(argv[5], nullptr) : 0.0;
    double delay_ms = argc > 6 ? std::strtod(argv[6], nullptr) : 0.0;

    // Build the distributed store.
    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = 32;
    cc.num_topics = 30;
    auto corpus = workload::generateCorpus(cc);

    core::HermesConfig config;
    config.num_clusters = 10;
    config.clusters_to_search = 3;
    config.sample_nprobe = 4;
    config.deep_nprobe = 32;
    config.partition.seeds_to_try = 3;
    auto store = core::DistributedStore::build(corpus.embeddings, config);

    workload::QueryConfig qc;
    qc.num_queries = clients * per_client;
    qc.topic_zipf = 1.0;
    auto queries = workload::generateQueries(corpus, qc);

    // Stand up the broker and hammer it from concurrent clients.
    serve::BrokerConfig broker_config;
    broker_config.node.faults.fail_probability = fail_prob;
    broker_config.node.faults.drop_probability = drop_prob;
    broker_config.node.faults.delay_probability = delay_ms > 0.0 ? 0.2 : 0.0;
    broker_config.node.faults.delay_ms = delay_ms;
    if (drop_prob > 0.0)
        broker_config.node_deadline_ms = 250.0; // make dead nodes cheap
    serve::HermesBroker broker(store, broker_config);
    std::printf("serving %zu vectors over %zu node workers; %zu clients x "
                "%zu queries\n", store.totalVectors(), broker.numNodes(),
                clients, per_client);

    util::Timer wall;
    std::vector<std::thread> threads;
    std::vector<double> client_seconds(clients, 0.0);
    for (std::size_t t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            util::Timer timer;
            for (std::size_t i = 0; i < per_client; ++i) {
                std::size_t q = t * per_client + i;
                broker.search(queries.embeddings.row(q), 5);
            }
            client_seconds[t] = timer.elapsedSeconds();
        });
    }
    for (auto &thread : threads)
        thread.join();
    double elapsed = wall.elapsedSeconds();

    auto stats = broker.stats();
    std::printf("\nserved %llu queries in %.3f s => %.0f QPS aggregate\n",
                static_cast<unsigned long long>(stats.queries), elapsed,
                static_cast<double>(stats.queries) / elapsed);
    std::printf("deep requests: %llu (%.2f clusters/query)\n",
                static_cast<unsigned long long>(stats.deep_requests),
                static_cast<double>(stats.deep_requests) /
                    static_cast<double>(stats.queries));
    std::printf("faults: %llu timeouts, %llu failures, %llu degraded "
                "queries\n\n",
                static_cast<unsigned long long>(stats.timeouts),
                static_cast<unsigned long long>(stats.failures),
                static_cast<unsigned long long>(stats.degraded_queries));

    const struct {
        const char *label;
        const obs::LatencySummary &summary;
    } phases[] = {
        {"query latency", stats.query_latency},
        {"sample phase", stats.sample_phase},
        {"deep phase", stats.deep_phase},
        {"merge phase", stats.merge_phase},
    };
    std::printf("%-14s %10s %10s %10s %10s\n", "phase", "p50 (us)",
                "p95 (us)", "p99 (us)", "max (us)");
    for (const auto &phase : phases) {
        if (phase.summary.count == 0)
            continue;
        std::printf("%-14s %10.1f %10.1f %10.1f %10.1f\n", phase.label,
                    phase.summary.p50_us, phase.summary.p95_us,
                    phase.summary.p99_us, phase.summary.max_us);
    }
    std::printf("\n");

    std::printf("%-6s %-10s %-10s %-10s %-12s\n", "node", "shard", "reqs",
                "batches", "busy (ms)");
    for (std::size_t c = 0; c < stats.nodes.size(); ++c) {
        const auto &node = stats.nodes[c];
        std::printf("%-6zu %-10zu %-10llu %-10llu %-12.1f\n", c,
                    store.clusterSize(c),
                    static_cast<unsigned long long>(node.requests),
                    static_cast<unsigned long long>(node.batches),
                    node.busy_seconds * 1e3);
    }
    std::printf("\nZipf-popular topics load their home nodes harder — the "
                "access imbalance of\nFig 13, live. Compare 'reqs' across "
                "nodes: sampling adds a uniform floor of one\nrequest per "
                "query per node; the surplus is deep-search skew.\n");

    if (!metrics_json.empty()) {
        obs::Registry::instance().writeJson(metrics_json);
        std::printf("\nmetrics written to %s\n", metrics_json.c_str());
    }
    if (!trace_out.empty()) {
        auto &recorder = obs::TraceRecorder::instance();
        recorder.stop();
        recorder.writeChromeTrace(trace_out);
        std::printf("trace (%zu spans) written to %s\n",
                    recorder.spanCount(), trace_out.c_str());
    }
    return 0;
}
