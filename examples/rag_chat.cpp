/**
 * @file
 * Strided-generation walkthrough: watches the Hermes hierarchical search
 * route every retrieval stride of a multi-question "chat" session, and
 * contrasts the work done against a naive search of all clusters.
 *
 * Usage: rag_chat [num_docs] [num_questions]
 */

#include <cstdio>
#include <cstdlib>

#include "hermes/hermes.hpp"

int
main(int argc, char **argv)
{
    using namespace hermes;

    std::size_t num_docs = argc > 1 ? std::strtoul(argv[1], nullptr, 10)
                                    : 600;
    std::size_t num_questions =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

    rag::SynthTextConfig text_config;
    text_config.num_docs = num_docs;
    text_config.num_topics = 10;
    text_config.words_per_doc = 200;
    auto corpus = rag::generateSynthCorpus(text_config);

    rag::RagSystemConfig config;
    config.embedding_dim = 128;
    config.chunking.tokens_per_chunk = 100;
    config.hermes.num_clusters = 10;
    config.hermes.clusters_to_search = 3;
    config.hermes.sample_nprobe = 2;
    config.hermes.deep_nprobe = 16;
    config.generation.output_tokens = 32;
    config.generation.stride = 8;

    rag::RagSystem system(config);
    for (const auto &doc : corpus.documents)
        system.addDocument(doc);
    system.finalize();

    std::printf("\nCluster sizes:");
    for (auto size : system.store().partitioning().sizes())
        std::printf(" %zu", size);
    std::printf("\n");

    util::RunningStats scanned_hermes, scanned_naive;
    core::NaiveSplitSearch naive(system.store());

    for (std::size_t q = 0; q < num_questions; ++q) {
        auto topic = static_cast<std::uint32_t>(
            q % text_config.num_topics);
        auto question = corpus.questionAbout(topic, q);
        std::printf("\n=== Q%zu (topic %u): %s\n", q + 1, topic,
                    question.c_str());

        auto result = system.generate(question);
        std::printf("A: %.120s...\n", result.output_text.c_str());
        std::printf("strides:\n");
        for (const auto &event : result.strides) {
            std::printf("  #%zu: clusters [", event.index);
            for (std::size_t i = 0; i < event.deep_clusters.size(); ++i)
                std::printf("%s%u", i ? " " : "", event.deep_clusters[i]);
            std::printf("], best chunk %lld, %.2f ms\n",
                        static_cast<long long>(event.best_chunk),
                        event.retrieval_seconds * 1e3);
        }

        // Work accounting: Hermes vs searching every cluster.
        auto query = system.encoder().encode(question);
        auto hermes_result = system.searchStrategy().search(
            vecstore::VecView(query.data(), query.size()), 5);
        auto naive_result = naive.search(
            vecstore::VecView(query.data(), query.size()), 5);
        scanned_hermes.add(static_cast<double>(
            hermes_result.total.vectors_scanned));
        scanned_naive.add(static_cast<double>(
            naive_result.total.vectors_scanned));
    }

    std::printf("\nMean vectors scanned per query: Hermes %.0f vs "
                "naive-all-clusters %.0f (%.2fx less work)\n\n",
                scanned_hermes.mean(), scanned_naive.mean(),
                scanned_naive.mean() / scanned_hermes.mean());
    return 0;
}
