/**
 * @file
 * Quickstart: the five-minute Hermes tour.
 *
 * Builds a small RAG system over a synthetic topic corpus, asks a
 * question, and shows what the hierarchical search retrieved and which
 * clusters it visited. See examples/rag_chat.cpp for the full strided
 * generation loop and examples/capacity_planner.cpp for at-scale
 * deployment planning.
 */

#include <cstdio>

#include "hermes/hermes.hpp"

int
main()
{
    using namespace hermes;

    // 1. Synthesize a corpus of topic-coherent documents (stand-in for
    //    your real document collection).
    rag::SynthTextConfig text_config;
    text_config.num_docs = 400;
    text_config.num_topics = 8;
    text_config.words_per_doc = 160;
    auto corpus = rag::generateSynthCorpus(text_config);

    // 2. Configure the system: 8 similarity clusters, deep-search the
    //    best 3 (the paper's recommended operating point).
    rag::RagSystemConfig config;
    config.embedding_dim = 96;
    config.chunking.tokens_per_chunk = 80;
    config.hermes.num_clusters = 8;
    config.hermes.clusters_to_search = 3;
    config.hermes.sample_nprobe = 2;
    config.hermes.deep_nprobe = 16;
    config.hermes.docs_to_retrieve = 5;

    rag::RagSystem system(config);
    for (const auto &doc : corpus.documents)
        system.addDocument(doc);
    system.finalize();

    const auto &store = system.store();
    std::printf("\nDatastore: %zu chunks in %zu clusters "
                "(size imbalance %.2fx, seed %llu)\n",
                system.datastore().size(), store.numClusters(),
                store.partitioning().imbalance.max_min_ratio,
                static_cast<unsigned long long>(
                    store.partitioning().chosen_seed));

    // 3. Ask a question about topic 3.
    std::string question = corpus.questionAbout(3);
    std::printf("\nQ: %s\n\n", question.c_str());

    auto hits = system.retrieve(question, 5);
    std::printf("Top-%zu retrieved chunks (inner-product reranked):\n",
                hits.size());
    for (const auto &hit : hits) {
        const auto &chunk = system.datastore().chunk(hit.id);
        std::printf("  chunk %-4lld (doc %-3zu, topic %u): %.60s...\n",
                    static_cast<long long>(hit.id), chunk.doc,
                    corpus.topic_of_doc[chunk.doc], chunk.text.c_str());
    }

    // 4. Generate an answer with retrieval striding.
    rag::GenerationConfig gen;
    gen.output_tokens = 24;
    gen.stride = 8;
    auto result = system.generate(question, gen);
    std::printf("\nA (surrogate decoder, %zu strides, %.2f ms retrieval):"
                "\n  %s\n\n",
                result.strides.size(),
                result.retrieval_wall_seconds * 1e3,
                result.output_text.c_str());
    return 0;
}
