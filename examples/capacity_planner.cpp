/**
 * @file
 * Deployment capacity planner: given a datastore size and serving
 * scenario, uses the multi-node cost models to recommend a Hermes
 * deployment (cluster size / node count) and predicts TTFT, E2E latency,
 * throughput and energy against the monolithic baseline.
 *
 * Usage: capacity_planner [tokens] [batch] [stride] [model] [gpu]
 *   tokens: datastore size, e.g. 1e12 (default 100e9)
 *   model:  phi | gemma | opt   (default gemma)
 *   gpu:    a6000 | l4          (default a6000)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hermes/hermes.hpp"

namespace {

using namespace hermes;

sim::LlmModel
parseModel(const char *name)
{
    if (!std::strcmp(name, "phi"))
        return sim::LlmModel::Phi15;
    if (!std::strcmp(name, "opt"))
        return sim::LlmModel::Opt30B;
    if (!std::strcmp(name, "gemma"))
        return sim::LlmModel::Gemma2_9B;
    HERMES_FATAL("unknown model '", name, "' (phi | gemma | opt)");
}

sim::GpuModel
parseGpu(const char *name)
{
    if (!std::strcmp(name, "l4"))
        return sim::GpuModel::L4;
    if (!std::strcmp(name, "a6000"))
        return sim::GpuModel::A6000Ada;
    HERMES_FATAL("unknown GPU '", name, "' (a6000 | l4)");
}

} // namespace

int
main(int argc, char **argv)
{
    double tokens = argc > 1 ? std::strtod(argv[1], nullptr) : 100e9;
    std::size_t batch =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 128;
    std::size_t stride =
        argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 16;
    sim::LlmModel model = parseModel(argc > 4 ? argv[4] : "gemma");
    sim::GpuModel gpu = parseGpu(argc > 5 ? argv[5] : "a6000");

    sim::PipelineConfig config;
    config.datastore.tokens = tokens;
    config.batch = batch;
    config.stride = stride;
    config.model = model;
    config.gpu = gpu;

    const auto &llm = sim::llmProfile(model);
    const auto &gpu_profile = sim::gpuProfile(gpu);
    std::size_t gpus = sim::LlmCostModel(model, gpu).numGpus();

    std::printf("\n=== Hermes capacity planner ===\n");
    std::printf("datastore: %.3g tokens (%.2f TB as IVF-SQ8)\n", tokens,
                config.datastore.indexBytes() / 1e12);
    std::printf("serving:   %s on %zux %s, batch %zu, stride %zu\n",
                llm.name.c_str(), gpus, gpu_profile.name.c_str(), batch,
                stride);

    // KV-cache feasibility: weights + per-sequence cache must fit.
    std::size_t context = config.input_tokens + config.output_tokens;
    std::size_t max_batch = llm.maxBatch(gpu_profile, gpus, context);
    if (max_batch < batch) {
        HERMES_WARN("batch ", batch, " exceeds the KV-cache capacity of ",
                    gpus, "x ", gpu_profile.name, " at context ", context,
                    " (max ", max_batch, "); expect paging/preemption");
    } else {
        std::printf("KV cache:  batch %zu of %zu-token contexts fits "
                    "(max %zu)\n", batch, context, max_batch);
    }

    // Recommend a cluster size that hides retrieval under inference.
    double cluster_tokens =
        sim::RagPipelineSim::optimalClusterTokens(config);
    auto nodes = static_cast<std::size_t>(
        std::max(1.0, std::ceil(tokens / cluster_tokens)));
    // Keep at least clusters_to_search+1 nodes so routing has choices.
    nodes = std::max<std::size_t>(nodes, config.clusters_to_search + 1);
    config.num_clusters = nodes;

    sim::DatastoreGeometry per_node = config.datastore.split(nodes);
    std::printf("\nrecommendation: %zu retrieval nodes of ~%.3g tokens "
                "(%.0f GB each),\n  deep-searching %zu per query with "
                "nProbe %zu/%zu (sample/deep)\n", nodes, per_node.tokens,
                per_node.indexBytes() / 1e9, config.clusters_to_search,
                config.sample_nprobe, config.deep_nprobe);

    // Compare the three deployments.
    sim::PipelineConfig mono = config;
    mono.retrieval = sim::RetrievalMode::Monolithic;
    sim::PipelineConfig naive = config;
    naive.retrieval = sim::RetrievalMode::NaiveSplit;
    sim::PipelineConfig hermes = config;
    hermes.retrieval = sim::RetrievalMode::Hermes;
    hermes.pipelining = true;
    hermes.prefix_caching = true;
    hermes.dvfs = sim::DvfsPolicy::SlowestCluster;

    util::TablePrinter table({22, 10, 10, 12, 14});
    std::printf("\n");
    table.header({"deployment", "TTFT (s)", "E2E (s)", "QPS",
                  "energy (kJ)"});
    for (const auto *entry :
         {&mono, &naive, &hermes}) {
        auto result = sim::RagPipelineSim(*entry).run();
        std::string name =
            entry->retrieval == sim::RetrievalMode::Monolithic
                ? "monolithic baseline"
                : entry->retrieval == sim::RetrievalMode::NaiveSplit
                      ? "naive split"
                      : "Hermes (+pipe +cache)";
        table.row({name, util::TablePrinter::num(result.ttft, 2),
                   util::TablePrinter::num(result.e2e, 1),
                   util::TablePrinter::num(result.throughput_qps, 2),
                   util::TablePrinter::num(result.totalEnergy() / 1e3,
                                           1)});
    }

    auto base = sim::RagPipelineSim(mono).run();
    auto best = sim::RagPipelineSim(hermes).run();
    std::printf("\nHermes vs monolithic: %.2fx latency, %.2fx TTFT, "
                "%.2fx energy\n\n", base.e2e / best.e2e,
                base.ttft / best.ttft,
                base.totalEnergy() / best.totalEnergy());
    return 0;
}
