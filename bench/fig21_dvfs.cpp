/**
 * @file
 * Fig 21 reproduction: energy of Hermes retrieval under no DVFS, the
 * baseline per-batch DVFS (slow under-loaded nodes to the slowest
 * cluster), and the enhanced DVFS (slow retrieval all the way to the
 * pipelined inference latency).
 */

#include "bench_common.hpp"

#include "sim/node_sim.hpp"
#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 21", "DVFS energy savings vs clusters searched",
        "baseline DVFS saves 10.1-14.5% (avg 12.24%); enhanced DVFS "
        "saves 18.8-22.1% more (avg 20.44%); 19.6% at the 3-cluster "
        "operating point");

    // Measured testbed supplies real (imbalanced) cluster shares and
    // traces; the simulator models a 10x1B-token deployment.
    auto tb = bench::buildTestbed(20000, 32, 512, 10);
    sim::LlmCostModel llm(sim::LlmModel::Gemma2_9B,
                          sim::GpuModel::A6000Ada);
    double inference = llm.prefillLatency(128, 512) +
                       llm.decodeLatency(128, 16);

    util::TablePrinter table({10, 12, 16, 16, 18});
    table.header({"clusters", "none (J)", "baseline DVFS", "enhanced DVFS",
                  "enhanced saving"});
    double baseline_saving_sum = 0.0, enhanced_saving_sum = 0.0;
    double saving_at_3 = 0.0;
    for (std::size_t deep = 1; deep <= 10; ++deep) {
        core::HermesSearch hermes(*tb.store, deep);
        auto trace = hermes.traceBatch(tb.queries.embeddings, 5);

        sim::MultiNodeConfig config;
        config.total.tokens = 10e9;
        config.num_clusters = 10;
        config.batch = 128;
        config.inference_latency = inference;
        for (auto size : tb.store->partitioning().sizes())
            config.cluster_shares.push_back(static_cast<double>(size));

        config.dvfs = sim::DvfsPolicy::None;
        auto none = sim::MultiNodeSimulator(config).replayTrace(trace);
        config.dvfs = sim::DvfsPolicy::SlowestCluster;
        auto slow = sim::MultiNodeSimulator(config).replayTrace(trace);
        config.dvfs = sim::DvfsPolicy::MatchInference;
        auto match = sim::MultiNodeSimulator(config).replayTrace(trace);

        double saving_slow = 1.0 - slow.energy / none.energy;
        double saving_match = 1.0 - match.energy / none.energy;
        baseline_saving_sum += saving_slow;
        enhanced_saving_sum += saving_match;
        if (deep == 3)
            saving_at_3 = saving_match;
        table.row({std::to_string(deep),
                   util::TablePrinter::num(none.energy, 0),
                   util::TablePrinter::num(slow.energy / none.energy, 3),
                   util::TablePrinter::num(match.energy / none.energy, 3),
                   util::TablePrinter::num(saving_match * 100.0, 1) + "%"});
    }
    std::printf("\nAverage savings: baseline DVFS %.1f%%, enhanced DVFS "
                "%.1f%% (paper: 12.24%% / 20.44%%)\n",
                baseline_saving_sum * 10.0, enhanced_saving_sum * 10.0);
    std::printf("Enhanced saving at 3 clusters: %.1f%% (paper: "
                "19.6%%)\n\n", saving_at_3 * 100.0);
    return 0;
}
