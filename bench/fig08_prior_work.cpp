/**
 * @file
 * Fig 8 reproduction: how far PipeRAG-style pipelining and RAGCache-style
 * prefill caching get as the datastore scales — and where they stop
 * helping.
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"

namespace {

using namespace hermes;

sim::PipelineResult
runWith(double tokens, bool pipelining, bool caching)
{
    sim::PipelineConfig config;
    config.batch = 32;
    config.datastore.tokens = tokens;
    config.pipelining = pipelining;
    config.prefix_caching = caching;
    return sim::RagPipelineSim(config).run();
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 8", "Prior RAG optimizations vs datastore scale",
        "pipelining saves up to 1.62x on small datastores; both "
        "pipelining and caching benefits decay monotonically as retrieval "
        "dominates at 100B+ tokens");

    util::TablePrinter table({10, 14, 16, 16});
    table.header({"tokens", "baseline (s)", "PipeRAG speedup",
                  "RAGCache speedup"});
    for (double tokens : {100e6, 1e9, 10e9, 100e9, 1e12}) {
        auto base = runWith(tokens, false, false);
        auto piped = runWith(tokens, true, false);
        auto cached = runWith(tokens, false, true);
        table.row({bench::tokenLabel(tokens),
                   util::TablePrinter::num(base.e2e, 1),
                   util::TablePrinter::num(base.e2e / piped.e2e, 2) + "x",
                   util::TablePrinter::num(base.e2e / cached.e2e, 2) + "x"});
    }

    std::printf("\nPer-stride timeline (retrieval vs inference window):\n");
    util::TablePrinter timeline({10, 16, 20, 24});
    timeline.header({"tokens", "retrieval (s)", "inference (s)",
                     "overlap-able fraction"});
    for (double tokens : {1e9, 100e9}) {
        auto base = runWith(tokens, false, false);
        double overlap =
            std::min(base.inference_per_stride, base.retrieval_per_stride) /
            base.retrieval_per_stride;
        timeline.row({bench::tokenLabel(tokens),
                      util::TablePrinter::num(base.retrieval_per_stride, 2),
                      util::TablePrinter::num(base.inference_per_stride, 2),
                      util::TablePrinter::num(overlap * 100.0, 1) + "%"});
    }
    std::printf("\nAt small scale retrieval hides under inference almost "
                "fully; at 100B+ the\noverlap-able fraction collapses — "
                "prior work's headroom is gone (Takeaway 3).\n\n");
    return 0;
}
