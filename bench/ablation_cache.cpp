/**
 * @file
 * Ablation: RAGCache's ideal-hit-rate assumption.
 *
 * The paper grants RAGCache a 100% KV-cache hit rate (§3). Here we (a)
 * *measure* actual document reuse across retrieval strides on the real
 * retrieval stack, and (b) sweep the cache hit rate in the pipeline model
 * to show how the RAGCache speedup degrades with realistic reuse.
 */

#include "bench_common.hpp"

#include "rag/analysis.hpp"
#include "util/stats.hpp"
#include "rag/rag_system.hpp"
#include "rag/synth_text.hpp"
#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Ablation", "RAGCache hit-rate sensitivity",
        "the paper's RAGCache baseline assumes an ideal 100% KV hit rate; "
        "measured stride-to-stride document reuse is high but not total, "
        "and the speedup shrinks accordingly");

    // (a) Measure real document reuse across strides.
    rag::SynthTextConfig tc;
    tc.num_docs = 500;
    tc.num_topics = 10;
    tc.words_per_doc = 200;
    auto corpus = rag::generateSynthCorpus(tc);

    rag::RagSystemConfig rc;
    rc.embedding_dim = 128;
    rc.chunking.tokens_per_chunk = 100;
    rc.hermes.num_clusters = 10;
    rc.hermes.clusters_to_search = 3;
    rc.hermes.sample_nprobe = 2;
    rc.hermes.deep_nprobe = 16;
    rc.generation.output_tokens = 64;
    rc.generation.stride = 16;
    rag::RagSystem system(rc);
    for (const auto &doc : corpus.documents)
        system.addDocument(doc);
    system.finalize();

    util::RunningStats hit_rate, jaccard, stability;
    for (std::uint32_t topic = 0; topic < tc.num_topics; ++topic) {
        auto result = system.generate(corpus.questionAbout(topic));
        auto overlap = rag::strideOverlap(result);
        hit_rate.add(overlap.mean_hit_rate);
        jaccard.add(overlap.mean_jaccard);
        stability.add(rag::routingStability(result));
    }
    std::printf("Measured across %zu generations (stride 16):\n",
                hit_rate.count());
    std::printf("  stride-to-stride document hit rate: %.2f\n",
                hit_rate.mean());
    std::printf("  mean Jaccard of retrieved sets:     %.2f\n",
                jaccard.mean());
    std::printf("  cluster routing stability:          %.2f\n\n",
                stability.mean());

    // (b) Sweep the modeled hit rate.
    util::TablePrinter table({12, 16, 18});
    table.header({"hit rate", "E2E @10B (s)", "RAGCache speedup"});
    sim::PipelineConfig base;
    base.datastore.tokens = 10e9;
    base.batch = 32;
    double e2e_base = sim::RagPipelineSim(base).run().e2e;
    for (double hit : {1.0, 0.9, 0.75, 0.5, 0.25, 0.0}) {
        sim::PipelineConfig cached = base;
        cached.prefix_caching = true;
        cached.cache_hit_rate = hit;
        double e2e = sim::RagPipelineSim(cached).run().e2e;
        table.row({util::TablePrinter::num(hit, 2),
                   util::TablePrinter::num(e2e, 1),
                   util::TablePrinter::num(e2e_base / e2e, 2) + "x"});
    }
    std::printf("\nAt the measured hit rate the RAGCache benefit sits "
                "between the ideal row and\nno-cache — the paper's "
                "100%%-hit assumption is an upper bound on its "
                "baseline.\n\n");
    return 0;
}
