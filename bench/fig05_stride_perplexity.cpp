/**
 * @file
 * Fig 5 reproduction: perplexity vs retrieval stride (GPT-2 762M/1.5B,
 * RETRO-578M) and total retrieval latency vs stride (10B/100B tokens).
 */

#include "bench_common.hpp"

#include "rag/perplexity.hpp"
#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 5", "Retrieval stride: output quality vs retrieval cost",
        "frequent retrieval lets a model with half the parameters match "
        "the bigger model's perplexity; retrieval time grows steeply as "
        "stride shrinks (stride 4 vs 64 => 12.12x E2E at 100B)");

    util::TablePrinter ppl({8, 14, 14, 14});
    ppl.header({"stride", "GPT-2 762M", "GPT-2 1.5B", "RETRO 578M"});
    for (std::size_t stride : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        ppl.row({std::to_string(stride),
                 util::TablePrinter::num(rag::modelPerplexity(
                     sim::LlmModel::Gpt2_762M, stride), 1),
                 util::TablePrinter::num(rag::modelPerplexity(
                     sim::LlmModel::Gpt2_1_5B, stride), 1),
                 util::TablePrinter::num(rag::modelPerplexity(
                     sim::LlmModel::Retro578M, stride), 1)});
    }
    std::printf("RETRO-578M matches GPT-2 1.5B up to stride %zu "
                "(the paper's circled optimum is stride 4)\n\n",
                rag::crossoverStride(sim::LlmModel::Retro578M,
                                     sim::LlmModel::Gpt2_1_5B));

    util::TablePrinter lat({8, 20, 20, 14});
    lat.header({"stride", "retrieval 10B (s)", "retrieval 100B (s)",
                "E2E 100B (s)"});
    double e2e_4 = 0.0, e2e_64 = 0.0;
    for (std::size_t stride : {4u, 8u, 16u, 32u, 64u}) {
        sim::PipelineConfig config;
        config.batch = 32;
        config.stride = stride;
        config.datastore.tokens = 10e9;
        auto r10 = sim::RagPipelineSim(config).run();
        config.datastore.tokens = 100e9;
        auto r100 = sim::RagPipelineSim(config).run();
        if (stride == 4)
            e2e_4 = r100.e2e;
        if (stride == 64)
            e2e_64 = r100.e2e;
        lat.row({std::to_string(stride),
                 util::TablePrinter::num(r10.stage.retrieval, 2),
                 util::TablePrinter::num(r100.stage.retrieval, 2),
                 util::TablePrinter::num(r100.e2e, 1)});
    }
    std::printf("\nE2E(stride 4) / E2E(stride 64) at 100B tokens: %.2fx "
                "(paper: 12.12x)\n\n", e2e_4 / e2e_64);
    return 0;
}
