/**
 * @file
 * Cold-start and page-cache economics of the zero-copy mmap datastore
 * (§4.1 deployment: one index per node, restarted at will).
 *
 * Builds one shard-sized index, saves it in the v3 on-disk format, then
 * times the three ways a restarted process can reach "ready": retrain +
 * re-add from raw embeddings (the seed-flag path hermes_shard uses
 * without --index-file), heap reload (IvfIndex::load — one full copy of
 * the file), and the zero-copy mmap open (IvfIndex::openMapped — header
 * + centroids only, lists faulted on demand). It then measures
 * first-batch and steady-state search latency through the heap and
 * mapped forms (which must do identical work — the stats are asserted
 * equal) and reports mapping residency before and after the scans.
 *
 * Page-cache caveat: an unprivileged bench cannot drop the page cache,
 * so "mmap open" here is the warm-cache figure — the cost of re-mapping
 * a file the previous process of this node already paid to fault in,
 * i.e. exactly the rolling-restart scenario. The first-batch latency
 * row shows the demand-fault tail instead.
 */

#include <cstdlib>

#include "bench_common.hpp"
#include "index/ivf_index.hpp"

#include <filesystem>

namespace {

using namespace hermes;
using hermes::vecstore::Matrix;
using hermes::vecstore::Metric;

double
envOr(const char *name, double fallback)
{
    const char *v = std::getenv(name);
    return v != nullptr ? std::strtod(v, nullptr) : fallback;
}

} // namespace

int
main()
{
    bench::banner(
        "coldstart", "mmap datastore cold start vs retrain vs heap reload",
        "shard restarts should cost milliseconds, not a rebuild "
        "(zero-copy mmap of the versioned on-disk index)");

    const std::size_t num_docs =
        static_cast<std::size_t>(envOr("HERMES_COLDSTART_DOCS", 60000));
    const std::size_t dim =
        static_cast<std::size_t>(envOr("HERMES_COLDSTART_DIM", 64));

    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = dim;
    cc.num_topics = 30;
    auto corpus = workload::generateCorpus(cc);

    workload::QueryConfig qc;
    qc.num_queries = 64;
    auto queries = workload::generateQueries(corpus, qc);

    index::IvfConfig config;
    config.nlist = index::IvfIndex::suggestedNlist(num_docs);
    config.codec = "SQ8";

    // The retrain path a restart pays without an index file.
    util::Timer build_timer;
    index::IvfIndex built(dim, Metric::L2, config);
    built.train(corpus.embeddings);
    built.addSequential(corpus.embeddings);
    const double build_ms = build_timer.elapsedSeconds() * 1e3;

    auto path = std::filesystem::temp_directory_path() /
                "hermes_coldstart.hivf";
    util::Timer save_timer;
    built.save(path.string());
    const double save_ms = save_timer.elapsedSeconds() * 1e3;
    const auto file_bytes = std::filesystem::file_size(path);

    std::printf("\nindex: %zu docs x %zu dims, %s, nlist=%zu, "
                "file %.1f MiB\n\n",
                num_docs, dim, built.name().c_str(), config.nlist,
                static_cast<double>(file_bytes) / (1024.0 * 1024.0));

    // Restart paths. Several rounds so the open cost is not a one-shot
    // noise sample; the first mapped open of the round also feeds the
    // first-batch latency row below.
    const int rounds = 5;
    double heap_ms = 0.0;
    double map_ms = 0.0;
    double map_noverify_ms = 0.0;
    double map_prefault_ms = 0.0;
    for (int r = 0; r < rounds; ++r) {
        util::Timer t1;
        auto heap = index::IvfIndex::load(path.string());
        heap_ms += t1.elapsedSeconds() * 1e3;

        util::Timer t2;
        auto mapped = index::IvfIndex::openMapped(path.string());
        map_ms += t2.elapsedSeconds() * 1e3;

        // The default open CRCs every section (one sequential pass over
        // the file); trusted redeploys can skip it and the open cost
        // collapses to header + centroids.
        index::IvfIndex::MmapOptions noverify;
        noverify.verify_checksums = false;
        util::Timer t3;
        auto trusted = index::IvfIndex::openMapped(path.string(), noverify);
        map_noverify_ms += t3.elapsedSeconds() * 1e3;

        index::IvfIndex::MmapOptions prefault;
        prefault.prefault = true;
        util::Timer t4;
        auto eager = index::IvfIndex::openMapped(path.string(), prefault);
        map_prefault_ms += t4.elapsedSeconds() * 1e3;
    }
    heap_ms /= rounds;
    map_ms /= rounds;
    map_noverify_ms /= rounds;
    map_prefault_ms /= rounds;

    std::printf("%-34s %12s %12s\n", "restart path", "ready (ms)",
                "vs retrain");
    std::printf("%-34s %12.2f %12s\n", "retrain + re-add (no file)",
                build_ms, "1.0x");
    std::printf("%-34s %12.2f %11.0fx\n", "heap reload (load)", heap_ms,
                build_ms / heap_ms);
    std::printf("%-34s %12.2f %11.0fx\n", "mmap open (openMapped)",
                map_ms, build_ms / map_ms);
    std::printf("%-34s %12.2f %11.0fx\n", "mmap open, checksums off",
                map_noverify_ms, build_ms / map_noverify_ms);
    std::printf("%-34s %12.2f %11.0fx\n", "mmap open + prefault",
                map_prefault_ms, build_ms / map_prefault_ms);

    // Search economics: the mapped view must do identical work; the
    // first batch pays the demand faults, steady state matches heap.
    index::SearchParams params;
    params.nprobe = 16;
    params.batch_min_scan_floats = 0;
    const std::size_t k = 10;

    auto heap = index::IvfIndex::load(path.string());
    auto mapped = index::IvfIndex::openMapped(path.string());

    index::SearchStats heap_stats;
    index::SearchStats map_stats;
    util::Timer first_heap;
    auto heap_hits = heap->searchBatch(queries.embeddings, k, params,
                                       &heap_stats);
    const double first_heap_ms = first_heap.elapsedSeconds() * 1e3;
    const std::size_t resident_before =
        mapped->mappedResidentBytes();
    util::Timer first_map;
    auto map_hits = mapped->searchBatch(queries.embeddings, k, params,
                                        &map_stats);
    const double first_map_ms = first_map.elapsedSeconds() * 1e3;
    HERMES_ASSERT(heap_hits == map_hits,
                  "mapped searcher drifted from heap searcher");
    HERMES_ASSERT(heap_stats.bytes_scanned == map_stats.bytes_scanned,
                  "mapped searcher scanned different bytes");

    const int search_rounds = 20;
    util::Timer steady_heap;
    for (int r = 0; r < search_rounds; ++r)
        (void)heap->searchBatch(queries.embeddings, k, params);
    const double steady_heap_ms =
        steady_heap.elapsedSeconds() * 1e3 / search_rounds;
    util::Timer steady_map;
    for (int r = 0; r < search_rounds; ++r)
        (void)mapped->searchBatch(queries.embeddings, k, params);
    const double steady_map_ms =
        steady_map.elapsedSeconds() * 1e3 / search_rounds;

    std::printf("\n%-34s %12s %12s\n", "search (64-query batch)",
                "heap (ms)", "mmap (ms)");
    std::printf("%-34s %12.2f %12.2f\n", "first batch (demand faults)",
                first_heap_ms, first_map_ms);
    std::printf("%-34s %12.2f %12.2f\n", "steady state (page-cache warm)",
                steady_heap_ms, steady_map_ms);

    std::printf("\nmapping residency: %.1f%% after open, %.1f%% after "
                "scans (%zu of %zu bytes)\n",
                100.0 * static_cast<double>(resident_before) /
                    static_cast<double>(mapped->mappedBytes()),
                100.0 * static_cast<double>(mapped->mappedResidentBytes()) /
                    static_cast<double>(mapped->mappedBytes()),
                mapped->mappedResidentBytes(), mapped->mappedBytes());
    std::printf("heap footprint: reload %.1f MiB resident vs view %.1f "
                "MiB + shared page cache\n",
                static_cast<double>(heap->memoryBytes()) / (1024.0 * 1024.0),
                static_cast<double>(mapped->memoryBytes()) /
                    (1024.0 * 1024.0));
    std::printf("save: %.2f ms\n", save_ms);

    std::filesystem::remove(path);
    return 0;
}
