/**
 * @file
 * Ablation: coarse-quantizer scaling.
 *
 * The at-scale cost model caps nlist at 10k because the O(nlist) centroid
 * scan becomes its own bottleneck (docs/MODEL.md). This study measures
 * that effect directly and shows the escape hatch: routing the coarse
 * step through an HNSW graph over the centroids (FAISS's IVF_HNSW
 * recipe), which keeps coarse cost ~logarithmic in nlist.
 */

#include "bench_common.hpp"

#include "index/ivf_index.hpp"
#include "util/timer.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Ablation", "Coarse quantizer: linear scan vs centroid HNSW",
        "supports the model's nlist cap (DESIGN.md): past ~10k lists the "
        "centroid scan rivals the list scans; a centroid graph removes "
        "that term, extending the efficient-nlist range");

    auto tb = bench::buildTestbed(30000, 32, 96);

    util::TablePrinter table({8, 10, 12, 18, 18, 12});
    table.header({"nlist", "coarse", "recall@5", "coarse evals/q",
                  "list scans/q", "batch (ms)"});

    for (std::size_t nlist : {64u, 256u, 1024u, 4096u}) {
        for (bool graph : {false, true}) {
            index::IvfConfig config;
            config.nlist = nlist;
            config.codec = "SQ8";
            config.hnsw_coarse = graph;
            config.max_training_points = 12000; // keep k-means tractable
            index::IvfIndex ivf(tb.corpus.embeddings.dim(),
                                vecstore::Metric::L2, config);
            ivf.train(tb.corpus.embeddings);
            ivf.addSequential(tb.corpus.embeddings);

            // Match the probed *fraction* across nlist values.
            index::SearchParams params;
            params.nprobe = std::max<std::size_t>(nlist / 16, 4);

            index::SearchStats stats;
            util::Timer timer;
            auto results = ivf.searchBatch(tb.queries.embeddings, 5,
                                           params, &stats);
            double ms = timer.elapsedMillis();
            double queries =
                static_cast<double>(tb.queries.embeddings.rows());
            double coarse_per_q =
                static_cast<double>(stats.distance_computations -
                                    stats.vectors_scanned) / queries;
            table.row({std::to_string(nlist), graph ? "hnsw" : "linear",
                       util::TablePrinter::num(
                           eval::meanRecallAtK(results, tb.truth, 5), 3),
                       util::TablePrinter::num(coarse_per_q, 0),
                       util::TablePrinter::num(
                           static_cast<double>(stats.vectors_scanned) /
                               queries, 0),
                       util::TablePrinter::num(ms, 1)});
        }
    }
    std::printf("\nThe graph cuts coarse distance evaluations at large "
                "nlist at equal recall; its\nwall-clock win appears once "
                "nlist reaches the 10^4-10^5 of at-scale indices,\nwhere "
                "the linear term the cost model charges (nlist * d * 4 "
                "bytes/query)\ndominates. At testbed scale the graph's "
                "constant factors mask part of it.\n\n");
    return 0;
}
