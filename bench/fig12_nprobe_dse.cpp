/**
 * @file
 * Fig 12 reproduction: design space exploration of the sampling nProbe
 * (left) and the deep-search nProbe (right).
 *
 * NDCG is measured on the laptop-scale testbed; latency per query is
 * modeled at the paper's 10B-token scale through the retrieval cost
 * model. Testbed nProbe values probe the same list *fractions* as the
 * paper's (nlist 10k, sample 1..8, deep 16..128).
 */

#include "bench_common.hpp"

#include "sim/cost_model.hpp"

namespace {

using namespace hermes;

/** Modeled per-query latency of the hierarchical search at 10B tokens. */
double
modeledLatency(std::size_t sample_nprobe, std::size_t deep_nprobe)
{
    sim::RetrievalCostModel model(
        sim::cpuProfile(sim::CpuModel::XeonGold6448Y));
    sim::DatastoreGeometry cluster;
    cluster.tokens = 10e9 / 10.0; // 10 clusters of 1B tokens
    // Sampling hits all nodes concurrently; the deep searches also run
    // concurrently, so the critical path is one sample plus one deep scan.
    double sample = model.queryLatency(
        model.queryScanBytes(cluster, sample_nprobe));
    double deep = model.queryLatency(
        model.queryScanBytes(cluster, deep_nprobe));
    return sample + deep;
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 12", "nProbe design space exploration",
        "optimum at small nProbe 8 for sampling and large nProbe 128 for "
        "the deep search: sampling effort buys NDCG cheaply, deep nProbe "
        "beyond 128 costs latency for little NDCG");

    auto tb = bench::buildTestbed(20000, 32, 128, 10, 3,
                                  /*deep_nprobe=*/32,
                                  /*sample_nprobe=*/4);

    std::printf("Left: sampling nProbe sweep (deep nProbe fixed high)\n");
    util::TablePrinter left({16, 12, 10, 22});
    left.header({"sample nProbe", "clusters", "NDCG@5",
                 "modeled latency @10B (s)"});
    for (std::size_t sample : {1u, 2u, 4u, 8u}) {
        for (std::size_t deep_clusters : {2u, 4u, 8u}) {
            core::HermesSearch hermes(*tb.store, deep_clusters, sample,
                                      /*deep_nprobe=*/32);
            left.row({std::to_string(sample),
                      std::to_string(deep_clusters),
                      util::TablePrinter::num(tb.ndcg(hermes, 5), 3),
                      util::TablePrinter::num(
                          modeledLatency(sample, 128), 4)});
        }
    }

    std::printf("\nRight: deep nProbe sweep (sample nProbe fixed)\n");
    util::TablePrinter right({20, 12, 10, 22});
    right.header({"deep nProbe (paper)", "clusters", "NDCG@5",
                  "modeled latency @10B (s)"});
    for (std::size_t deep : {4u, 8u, 16u, 32u}) {
        for (std::size_t deep_clusters : {2u, 4u, 8u}) {
            core::HermesSearch hermes(*tb.store, deep_clusters,
                                      /*sample_nprobe=*/4, deep);
            right.row({std::to_string(deep) + " (" +
                           std::to_string(deep * 4) + ")",
                       std::to_string(deep_clusters),
                       util::TablePrinter::num(tb.ndcg(hermes, 5), 3),
                       util::TablePrinter::num(
                           modeledLatency(8, deep * 4), 4)});
        }
    }
    std::printf("\nNDCG saturates by sample nProbe ~8 and deep nProbe "
                "~128 while latency keeps\ngrowing — reproducing the "
                "paper's (8, 128) design point.\n\n");
    return 0;
}
