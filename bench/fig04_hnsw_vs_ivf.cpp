/**
 * @file
 * Fig 4 reproduction: HNSW vs IVF latency, throughput, and memory.
 *
 * Latency/QPS are measured on the laptop-scale testbed (real index scans,
 * wall clock); the memory column is additionally projected to the paper's
 * 10B-token scale via the index geometry (IVF: SQ8 codes + ids; HNSW:
 * fp32 vectors + bidirectional links).
 */

#include "bench_common.hpp"

#include "index/hnsw_index.hpp"
#include "index/ivf_index.hpp"
#include "sim/cost_model.hpp"

namespace {

using namespace hermes;

double
measureBatch(const index::AnnIndex &idx, const vecstore::Matrix &queries,
             std::size_t batch, const index::SearchParams &params)
{
    // Repeat queries to fill the batch, take the best of 3 runs.
    double best = 1e30;
    for (int run = 0; run < 3; ++run) {
        util::Timer timer;
        for (std::size_t i = 0; i < batch; ++i)
            idx.search(queries.row(i % queries.rows()), 5, params);
        best = std::min(best, timer.elapsedSeconds());
    }
    return best;
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 4", "HNSW vs IVF on a 10B-token-class index",
        "HNSW: 0.40s / 321 QPS / 166GB vs IVF: 0.97s / 131 QPS / 71GB at "
        "batch 128 — HNSW ~2.4x faster but ~2.3x more memory");

    auto tb = bench::buildTestbed(30000, 32, 128);
    const auto &base = tb.corpus.embeddings;

    index::IvfConfig ivf_config;
    ivf_config.nlist = index::IvfIndex::suggestedNlist(base.rows());
    ivf_config.codec = "SQ8";
    index::IvfIndex ivf(base.dim(), vecstore::Metric::L2, ivf_config);
    ivf.train(base);
    ivf.addSequential(base);

    index::HnswConfig hnsw_config;
    hnsw_config.m = 16;
    hnsw_config.ef_construction = 80;
    index::HnswIndex hnsw(base.dim(), vecstore::Metric::L2, hnsw_config);
    hnsw.addSequential(base);

    index::SearchParams ivf_params;
    ivf_params.nprobe = 16;
    index::SearchParams hnsw_params;
    hnsw_params.ef_search = 48;

    util::TablePrinter table({8, 7, 14, 12, 12});
    table.header({"index", "batch", "latency (s)", "QPS", "recall@5"});
    for (std::size_t batch : {32u, 128u}) {
        double t_ivf = measureBatch(ivf, tb.queries.embeddings, batch,
                                    ivf_params);
        double t_hnsw = measureBatch(hnsw, tb.queries.embeddings, batch,
                                     hnsw_params);
        auto r_ivf = eval::meanRecallAtK(
            ivf.searchBatch(tb.queries.embeddings, 5, ivf_params),
            tb.truth, 5);
        auto r_hnsw = eval::meanRecallAtK(
            hnsw.searchBatch(tb.queries.embeddings, 5, hnsw_params),
            tb.truth, 5);
        table.row({"IVF", std::to_string(batch),
                   util::TablePrinter::num(t_ivf, 4),
                   util::TablePrinter::num(batch / t_ivf, 0),
                   util::TablePrinter::num(r_ivf, 3)});
        table.row({"HNSW", std::to_string(batch),
                   util::TablePrinter::num(t_hnsw, 4),
                   util::TablePrinter::num(batch / t_hnsw, 0),
                   util::TablePrinter::num(r_hnsw, 3)});
    }

    std::printf("\nMemory (measured at testbed scale, projected to 10B "
                "tokens at d=768):\n");
    double ivf_bytes = static_cast<double>(ivf.memoryBytes());
    double hnsw_bytes = static_cast<double>(hnsw.memoryBytes());
    sim::DatastoreGeometry geo;
    geo.tokens = 10e9;
    double num_vectors = geo.numVectors();
    double ivf_10b_gb = geo.indexBytes() / 1e9;

    // HNSW link/graph overhead per vector is dimension-independent:
    // measure it on the testbed graph and project alongside fp32 payloads
    // (our HNSW, like FAISS HNSW,Flat) and SQ8 payloads (the paper's
    // memory numbers imply compressed vector storage).
    double link_bytes_per_vec =
        hnsw_bytes / static_cast<double>(base.rows()) -
        static_cast<double>(base.dim()) * sizeof(float);
    double hnsw_fp32_gb =
        num_vectors * (768.0 * 4 + link_bytes_per_vec) / 1e9;
    double hnsw_sq8_gb =
        num_vectors * (768.0 + link_bytes_per_vec) / 1e9;

    util::TablePrinter mem({14, 16, 20, 14});
    mem.header({"index", "testbed (MB)", "10B tokens (GB)", "paper (GB)"});
    mem.row({"IVF,SQ8", util::TablePrinter::num(ivf_bytes / 1e6, 1),
             util::TablePrinter::num(ivf_10b_gb, 0), "71"});
    mem.row({"HNSW (fp32)", util::TablePrinter::num(hnsw_bytes / 1e6, 1),
             util::TablePrinter::num(hnsw_fp32_gb, 0), "-"});
    mem.row({"HNSW (SQ8)", "-",
             util::TablePrinter::num(hnsw_sq8_gb, 0), "166"});
    std::printf("\nHNSW/IVF memory ratio: fp32 payloads %.1fx, SQ8 "
                "payloads %.1fx (paper: 2.3x —\nits HNSW footprint "
                "implies compressed vector storage plus links).\n\n",
                hnsw_fp32_gb / ivf_10b_gb, hnsw_sq8_gb / ivf_10b_gb);
    return 0;
}
