/**
 * @file
 * Ablation: mutable datastores.
 *
 * The paper's core motivation (§1) is that RAG datastores are *mutable* —
 * fresh documents arrive, stale ones get evicted, so the index must
 * absorb updates without a rebuild. This study churns a fraction of the
 * datastore (remove + re-add new documents) and checks that retrieval
 * quality and balance survive.
 */

#include "bench_common.hpp"

#include "index/ivf_index.hpp"
#include "util/rng.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Ablation", "Datastore churn: dynamic updates without rebuilds",
        "RAG's raison d'etre is incorporating real-time information "
        "without retraining (paper §1); the IVF shards must absorb "
        "document turnover in place");

    workload::CorpusConfig cc;
    cc.num_docs = 20000;
    cc.dim = 32;
    cc.num_topics = 30;
    cc.seed = 500;
    auto corpus = workload::generateCorpus(cc);

    workload::QueryConfig qc;
    qc.num_queries = 128;
    qc.seed = 501;
    auto queries = workload::generateQueries(corpus, qc);

    index::IvfConfig config;
    config.nlist = 128;
    config.codec = "SQ8";
    index::IvfIndex ivf(cc.dim, vecstore::Metric::L2, config);
    ivf.train(corpus.embeddings);
    ivf.addSequential(corpus.embeddings);

    // Fresh replacement documents from the same topic distribution.
    workload::CorpusConfig fresh_config = cc;
    fresh_config.seed = 777;
    auto fresh = workload::generateCorpus(fresh_config);

    util::TablePrinter table({14, 12, 12, 14});
    table.header({"churn", "size", "recall@5", "max list skew"});

    util::Rng rng(99);
    vecstore::VecId next_id =
        static_cast<vecstore::VecId>(corpus.embeddings.rows());
    std::size_t fresh_cursor = 0;
    double churned_total = 0.0;

    for (int round = 0; round <= 4; ++round) {
        if (round > 0) {
            // Evict 10% of the *current* population, then admit the same
            // number of fresh documents under new ids.
            std::size_t churn = ivf.size() / 10;
            std::vector<vecstore::VecId> doomed;
            while (doomed.size() < churn) {
                auto candidate = static_cast<vecstore::VecId>(
                    rng.uniformInt(static_cast<std::uint64_t>(next_id)));
                doomed.push_back(candidate);
            }
            std::size_t removed = ivf.removeIds(doomed);

            vecstore::Matrix additions(cc.dim);
            std::vector<vecstore::VecId> ids;
            for (std::size_t i = 0; i < removed; ++i) {
                additions.append(fresh.embeddings.row(
                    fresh_cursor % fresh.embeddings.rows()));
                ++fresh_cursor;
                ids.push_back(next_id++);
            }
            ivf.add(additions, ids);
            churned_total += static_cast<double>(removed);
        }

        // Recall against the original ground truth restricted to ids
        // still present (evicted ids are excluded from both sides).
        index::SearchParams params;
        params.nprobe = 32;
        index::SearchStats stats;
        auto results = ivf.searchBatch(queries.embeddings, 5, params,
                                       &stats);
        // Ground truth over the surviving original docs only: brute-force
        // against the index itself at max nprobe is the fair oracle here.
        index::SearchParams oracle;
        oracle.nprobe = config.nlist;
        auto truth = ivf.searchBatch(queries.embeddings, 5, oracle);
        double recall = eval::meanRecallAtK(results, truth, 5);

        std::size_t max_list = 0;
        for (std::size_t l = 0; l < ivf.nlist(); ++l)
            max_list = std::max(max_list, ivf.listSize(l));
        double skew = static_cast<double>(max_list) /
                      (static_cast<double>(ivf.size()) /
                       static_cast<double>(ivf.nlist()));

        table.row({round == 0 ? "initial"
                              : util::TablePrinter::num(
                                    100.0 * churned_total /
                                    static_cast<double>(
                                        corpus.embeddings.rows()), 0) +
                                    "% cum.",
                   std::to_string(ivf.size()),
                   util::TablePrinter::num(recall, 3),
                   util::TablePrinter::num(skew, 2) + "x"});
    }

    std::printf("\nRecall at fixed nProbe stays flat through heavy churn "
                "and list skew stays\nbounded — the trained coarse "
                "quantizer generalizes to same-distribution\nreplacement "
                "documents, so no retrain/rebuild is needed.\n\n");
    return 0;
}
