/**
 * @file
 * Fig 6 reproduction: TTFT breakdown and end-to-end latency as the
 * datastore scales from 100M to 1T tokens (batch 32, stride 16,
 * Gemma2-9B, 512 in / 256 out).
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 6", "TTFT and E2E latency vs datastore size",
        "retrieval is ~61% of TTFT at 10B and ~94% at 100B; E2E grows "
        "from ~12s (100M) to ~101.8s (100B) and ~909.1s (1T)");

    util::TablePrinter table({10, 10, 12, 10, 10, 12, 12, 12});
    table.header({"tokens", "TTFT (s)", "retr/TTFT", "enc (s)", "retr (s)",
                  "prefill (s)", "decode (s)", "E2E (s)"});

    for (double tokens : {100e6, 1e9, 10e9, 100e9, 1e12}) {
        sim::PipelineConfig config;
        config.batch = 32;
        config.datastore.tokens = tokens;
        sim::RagPipelineSim sim(config);
        auto result = sim.run();
        double retr_frac = sim.retrievalLatency() / result.ttft;
        table.row({bench::tokenLabel(tokens),
                   util::TablePrinter::num(result.ttft, 2),
                   util::TablePrinter::num(retr_frac * 100.0, 1) + "%",
                   util::TablePrinter::num(result.stage.encode, 2),
                   util::TablePrinter::num(result.stage.retrieval, 1),
                   util::TablePrinter::num(result.stage.prefill, 2),
                   util::TablePrinter::num(result.stage.decode, 2),
                   util::TablePrinter::num(result.e2e, 1)});
    }
    std::printf("\nStage columns are per-generation totals (16 strides); "
                "1T rows correspond to the\npaper's extrapolated "
                "lighter-color bars.\n\n");
    return 0;
}
