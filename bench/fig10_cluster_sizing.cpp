/**
 * @file
 * Fig 10 reproduction: (left) K-means dataset disaggregation — subset
 * seed search tracks the full-data imbalance at a fraction of the cost;
 * (right) per-cluster search latency vs the Gemma2-9B inference window
 * that a pipelined deployment can hide it under.
 */

#include "bench_common.hpp"

#include "cluster/imbalance.hpp"
#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 10", "Cluster sizing: disaggregation + pipeline gap",
        "clustering 1-2% subsets tracks the full clustering; splitting "
        "100B tokens into 10x10B clusters hides retrieval under "
        "inference; best seed reaches ~2x max/min imbalance");

    // Left: seed search on subsets vs full data.
    workload::CorpusConfig cc;
    cc.num_docs = 20000;
    cc.dim = 24;
    cc.num_topics = 30;
    cc.topic_zipf = 0.7;
    auto corpus = workload::generateCorpus(cc);

    std::printf("Seed-search imbalance (max/min cluster size), 10 "
                "clusters:\n");
    util::TablePrinter seeds({10, 18, 18, 14});
    seeds.header({"seed", "2% subset", "20% subset", "full data"});
    for (std::uint64_t seed = 50; seed < 55; ++seed) {
        double ratios[3];
        std::size_t idx = 0;
        for (double fraction : {0.02, 0.20, 1.0}) {
            cluster::KMeansConfig km;
            km.k = 10;
            km.seed = seed;
            km.max_iterations = 10;
            km.max_training_points = fraction >= 1.0
                ? 0
                : static_cast<std::size_t>(fraction * cc.num_docs);
            auto run = cluster::kmeans(corpus.embeddings, km);
            auto assignments = cluster::assignToCentroids(corpus.embeddings,
                                                          run.centroids);
            std::vector<std::size_t> sizes(10, 0);
            for (auto a : assignments)
                sizes[a]++;
            ratios[idx++] = cluster::imbalance(sizes).max_min_ratio;
        }
        seeds.row({std::to_string(seed),
                   util::TablePrinter::num(ratios[0], 2),
                   util::TablePrinter::num(ratios[1], 2),
                   util::TablePrinter::num(ratios[2], 2)});
    }
    auto search = cluster::findBalancedSeed(corpus.embeddings, 10, 8, 50,
                                            0.02);
    std::printf("Best seed by 2%%-subset search: %llu (ratio %.2f)\n\n",
                static_cast<unsigned long long>(search.best_seed),
                search.best_ratio);

    // Right: per-cluster search latency vs the inference window.
    sim::PipelineConfig pc;
    pc.batch = 32;
    sim::LlmCostModel llm(pc.model, pc.gpu);
    double inference = llm.prefillLatency(pc.batch, pc.input_tokens) +
                       llm.decodeLatency(pc.batch, pc.stride);
    sim::RetrievalCostModel cost(sim::cpuProfile(pc.cpu));

    std::printf("Per-node search latency vs Gemma2-9B inference window "
                "(%.2fs, batch 32):\n", inference);
    util::TablePrinter gap({12, 18, 14});
    gap.header({"cluster size", "search (s)", "pipeline gap"});
    for (double tokens : {10e6, 100e6, 1e9, 10e9, 100e9}) {
        sim::DatastoreGeometry geo;
        geo.tokens = tokens;
        double latency = cost.batchLatency(geo, 128, pc.batch);
        gap.row({bench::tokenLabel(tokens),
                 util::TablePrinter::num(latency, 3),
                 latency <= inference ? "hidden" : "exposed"});
    }
    double optimal = sim::RagPipelineSim::optimalClusterTokens(pc);
    std::printf("\nLargest cluster hideable under inference: ~%s tokens "
                "=> a 100B-token datastore\nneeds ~%.0f clusters (the "
                "paper picks 10x10B).\n\n",
                bench::tokenLabel(optimal).c_str(),
                std::max(1.0, 100e9 / optimal));
    return 0;
}
