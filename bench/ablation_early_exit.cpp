/**
 * @file
 * Ablation: SPANN-style query-time list pruning inside each IVF index
 * (extension; paper §7 "IVF Optimizations"). Lists whose centroid is far
 * from the query are skipped even when nProbe allows them, trading a
 * controlled amount of recall for scan work.
 */

#include "bench_common.hpp"

#include "index/ivf_index.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Ablation", "IVF query-time list pruning (prune_ratio)",
        "extension: SPANN-style pruning composes with the distributed "
        "design — the paper notes such IVF optimizations 'need to be "
        "used in conjunction with our distributed system'");

    auto tb = bench::buildTestbed(20000, 32, 128);

    index::IvfConfig config;
    config.nlist = 64;
    config.codec = "SQ8";
    index::IvfIndex ivf(tb.corpus.embeddings.dim(), vecstore::Metric::L2,
                        config);
    ivf.train(tb.corpus.embeddings);
    ivf.addSequential(tb.corpus.embeddings);

    util::TablePrinter table({14, 12, 16, 18, 14});
    table.header({"prune ratio", "recall@5", "lists probed/q",
                  "vectors scanned/q", "work saved"});

    index::SearchParams plain;
    plain.nprobe = 16;
    index::SearchStats base_stats;
    auto base_results = ivf.searchBatch(tb.queries.embeddings, 5, plain,
                                        &base_stats);
    double base_work = static_cast<double>(base_stats.vectors_scanned);

    auto report = [&](double ratio) {
        index::SearchParams params = plain;
        params.prune_ratio = ratio;
        index::SearchStats stats;
        auto results = ivf.searchBatch(tb.queries.embeddings, 5, params,
                                       &stats);
        double queries = static_cast<double>(tb.queries.embeddings.rows());
        double work = static_cast<double>(stats.vectors_scanned);
        table.row({ratio == 0.0 ? "off" : util::TablePrinter::num(ratio, 1),
                   util::TablePrinter::num(
                       eval::meanRecallAtK(results, tb.truth, 5), 3),
                   util::TablePrinter::num(
                       static_cast<double>(stats.lists_probed) / queries,
                       1),
                   util::TablePrinter::num(work / queries, 0),
                   util::TablePrinter::num(
                       100.0 * (1.0 - work / base_work), 1) + "%"});
    };

    report(0.0);
    for (double ratio : {6.0, 4.0, 3.0, 2.0, 1.5, 1.2})
        report(ratio);

    std::printf("\nModerate ratios skip the long tail of barely-relevant "
                "lists for single-digit\nrecall cost; combined with "
                "Hermes' cluster routing this compounds the per-node\n"
                "work reduction.\n\n");
    return 0;
}
