/**
 * @file
 * Ablation: adaptive cluster pruning (extension; SPANN-style, paper §7).
 *
 * Instead of always deep-searching a fixed number of clusters, the
 * adaptive mode skips ranked clusters whose sampled distance is more than
 * (1 + epsilon) x the best cluster's. Easy queries then touch one or two
 * nodes, cutting work below the paper's fixed-3 operating point at equal
 * accuracy.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Ablation", "Adaptive cluster pruning vs fixed clusters-to-search",
        "extension beyond the paper: fixed 3-cluster deep search leaves "
        "work on the table for easy queries; SPANN-style epsilon pruning "
        "recovers it without hurting NDCG");

    auto tb = bench::buildTestbed(20000, 32, 128, 10, /*fixed cap=*/4, 32,
                                  4);

    util::TablePrinter table({18, 10, 18, 20});
    table.header({"policy", "NDCG@5", "mean clusters", "deep work (vec/q)"});

    auto evaluate = [&](const core::DistributedStore &store,
                        const std::string &label) {
        core::HermesSearch hermes(store);
        double clusters_sum = 0.0;
        double work_sum = 0.0;
        std::vector<vecstore::HitList> results;
        for (std::size_t q = 0; q < tb.queries.embeddings.rows(); ++q) {
            auto result =
                hermes.search(tb.queries.embeddings.row(q), 5);
            clusters_sum +=
                static_cast<double>(result.deep_clusters.size());
            for (const auto &stats : result.deep_stats)
                work_sum += static_cast<double>(stats.vectors_scanned);
            results.push_back(std::move(result.hits));
        }
        auto n = static_cast<double>(tb.queries.embeddings.rows());
        table.row({label,
                   util::TablePrinter::num(
                       eval::meanNdcgAtK(results, tb.truth, 5), 3),
                   util::TablePrinter::num(clusters_sum / n, 2),
                   util::TablePrinter::num(work_sum / n, 0)});
    };

    evaluate(*tb.store, "fixed (4)");
    for (double epsilon : {0.02, 0.05, 0.10, 0.25, 0.50}) {
        core::HermesConfig config = tb.config;
        config.adaptive_epsilon = epsilon;
        auto store = core::DistributedStore::build(tb.corpus.embeddings,
                                                   config);
        evaluate(store, "eps=" + util::TablePrinter::num(epsilon, 2));
    }

    std::printf("\nSmall epsilon collapses many queries to 1-2 deep "
                "clusters at nearly flat NDCG —\na future-work-style "
                "refinement of the paper's fixed operating point.\n\n");
    return 0;
}
