/**
 * @file
 * Fig 7 reproduction: retrieval throughput, energy per query, and index
 * memory footprint vs datastore size (IVF-SQ8, 32-core Xeon Gold).
 */

#include "bench_common.hpp"

#include "sim/cost_model.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 7", "Retrieval scaling trends (IVF-SQ8)",
        "10x tokens => ~10x lower QPS / higher J/query; 100B tokens: "
        "~5.69 QPS; 1T tokens: ~10TB of memory");

    sim::RetrievalCostModel model(
        sim::cpuProfile(sim::CpuModel::XeonGold6448Y));

    util::TablePrinter table({10, 12, 14, 16});
    table.header({"tokens", "QPS", "J/query", "memory"});
    for (double tokens : {100e6, 1e9, 10e9, 100e9, 1e12}) {
        sim::DatastoreGeometry geo;
        geo.tokens = tokens;
        double qps = model.throughputQps(geo, 128, 128);
        double batch_latency = model.batchLatency(geo, 128, 128);
        double joules_per_query =
            model.energy(batch_latency, 1.0) / 128.0;
        double bytes = geo.indexBytes();
        std::string mem = bytes >= 1e12
            ? util::TablePrinter::num(bytes / 1e12, 2) + " TB"
            : util::TablePrinter::num(bytes / 1e9, 1) + " GB";
        table.row({bench::tokenLabel(tokens),
                   util::TablePrinter::num(qps, 2),
                   util::TablePrinter::num(joules_per_query, 1), mem});
    }
    std::printf("\nAll three metrics scale ~linearly with datastore size "
                "in the capped-nlist regime\n(the paper's measured trend); "
                "a 1T-token index exceeds single-node DRAM.\n\n");
    return 0;
}
