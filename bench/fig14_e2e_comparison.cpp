/**
 * @file
 * Fig 14 reproduction: normalized end-to-end latency and energy for
 * Baseline / RAGCache / PipeRAG / Hermes / Hermes+PipeRAG+RAGCache across
 * batch sizes, datastore sizes, and stride lengths.
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"

namespace {

using namespace hermes;

struct Variant
{
    const char *name;
    sim::RetrievalMode retrieval;
    bool pipelining;
    bool caching;
};

const Variant kVariants[] = {
    {"Baseline", sim::RetrievalMode::Monolithic, false, false},
    {"RAGCache", sim::RetrievalMode::Monolithic, false, true},
    {"PipeRAG", sim::RetrievalMode::Monolithic, true, false},
    {"Hermes", sim::RetrievalMode::Hermes, false, false},
    {"Hermes+P+C", sim::RetrievalMode::Hermes, true, true},
};

void
sweepRow(util::TablePrinter &table, const std::string &label,
         sim::PipelineConfig base)
{
    double base_e2e = 0.0, base_energy = 0.0;
    std::vector<std::string> lat_row{label}, energy_row{label};
    for (const auto &variant : kVariants) {
        sim::PipelineConfig config = base;
        config.retrieval = variant.retrieval;
        config.pipelining = variant.pipelining;
        config.prefix_caching = variant.caching;
        config.dvfs = variant.retrieval == sim::RetrievalMode::Hermes
            ? sim::DvfsPolicy::SlowestCluster : sim::DvfsPolicy::None;
        auto result = sim::RagPipelineSim(config).run();
        if (variant.retrieval == sim::RetrievalMode::Monolithic &&
            !variant.pipelining && !variant.caching) {
            base_e2e = result.e2e;
            base_energy = result.totalEnergy();
        }
        lat_row.push_back(util::TablePrinter::num(
            result.e2e / base_e2e, 3));
        energy_row.push_back(util::TablePrinter::num(
            result.totalEnergy() / base_energy, 3));
    }
    table.row(lat_row);
    table.row(energy_row);
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 14", "End-to-end latency & energy vs prior work",
        "Hermes: 2.45-10.25x latency and 1.08-3.37x energy improvements "
        "across serving configurations; 9.33x / 2.10x at 1T tokens");

    std::printf("(each cell: value normalized to Baseline; first row of "
                "a pair = E2E latency,\n second row = energy)\n\n");

    util::TablePrinter table({16, 10, 10, 10, 10, 12});
    table.header({"config", "Baseline", "RAGCache", "PipeRAG", "Hermes",
                  "Hermes+P+C"});

    std::printf("--- Batch size sweep (10B tokens, stride 16) ---\n");
    for (std::size_t batch : {32u, 64u, 128u, 256u}) {
        sim::PipelineConfig config;
        config.datastore.tokens = 10e9;
        config.batch = batch;
        sweepRow(table, "bs=" + std::to_string(batch), config);
    }

    std::printf("\n--- Datastore size sweep (batch 128, stride 16) ---\n");
    for (double tokens : {1e9, 10e9, 100e9, 1e12}) {
        sim::PipelineConfig config;
        config.datastore.tokens = tokens;
        sweepRow(table, bench::tokenLabel(tokens), config);
    }

    std::printf("\n--- Stride length sweep (10B tokens, batch 128) ---\n");
    for (std::size_t stride : {4u, 8u, 16u, 32u, 64u}) {
        sim::PipelineConfig config;
        config.datastore.tokens = 10e9;
        config.stride = stride;
        sweepRow(table, "stride=" + std::to_string(stride), config);
    }

    // Headline numbers at 1T.
    sim::PipelineConfig big;
    big.datastore.tokens = 1e12;
    sim::PipelineConfig hermes_big = big;
    hermes_big.retrieval = sim::RetrievalMode::Hermes;
    hermes_big.pipelining = true;
    hermes_big.prefix_caching = true;
    hermes_big.dvfs = sim::DvfsPolicy::SlowestCluster;
    auto base = sim::RagPipelineSim(big).run();
    auto best = sim::RagPipelineSim(hermes_big).run();
    std::printf("\n1T-token headline: %.2fx latency speedup, %.2fx energy "
                "savings (paper: 9.33x / 2.10x)\n\n",
                base.e2e / best.e2e,
                base.totalEnergy() / best.totalEnergy());
    return 0;
}
