/**
 * @file
 * Fig 13 reproduction (measured): cluster size imbalance from K-means
 * partitioning and access-frequency imbalance from a Natural-Questions-
 * like (Zipf-popular) query workload.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 13", "Cluster size and access frequency imbalance",
        "largest clusters ~2x the smallest; some clusters accessed >2x "
        "as often as others (Natural Questions trace)");

    auto tb = bench::buildTestbed(20000, 32, 512, 10);
    core::HermesSearch hermes(*tb.store);
    auto trace = hermes.traceBatch(tb.queries.embeddings, 5);
    auto accesses = trace.accessCounts();
    auto sizes = tb.store->partitioning().sizes();

    util::TablePrinter table({10, 14, 12, 16});
    table.header({"cluster", "size (docs)", "accesses", "access share"});
    std::size_t total_accesses = 0;
    for (auto a : accesses)
        total_accesses += a;
    for (std::size_t c = 0; c < sizes.size(); ++c) {
        table.row({std::to_string(c), std::to_string(sizes[c]),
                   std::to_string(accesses[c]),
                   util::TablePrinter::num(
                       100.0 * static_cast<double>(accesses[c]) /
                       static_cast<double>(total_accesses), 1) + "%"});
    }

    auto size_stats = cluster::imbalance(sizes);
    auto access_stats = cluster::imbalance(accesses);
    std::printf("\nSize imbalance (max/min): %.2fx (paper: ~2x)\n",
                size_stats.max_min_ratio);
    std::printf("Access imbalance (max/min): %.2fx (paper: >2x)\n",
                access_stats.max_min_ratio);
    std::printf("Chosen partition seed: %llu\n\n",
                static_cast<unsigned long long>(
                    tb.store->partitioning().chosen_seed));
    return 0;
}
