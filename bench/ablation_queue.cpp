/**
 * @file
 * Ablation: quality-of-service under load.
 *
 * The paper argues TTFT variance hurts production QoS (Takeaway 2). This
 * study subjects the baseline and Hermes deployments to the same Poisson
 * query stream and reports tail latency — Hermes' shorter service times
 * keep the queue stable at arrival rates that drown the monolithic
 * baseline.
 *
 * The second table is live, not simulated: it stands up the threaded
 * broker over a Zipfian-skewed store and sweeps the node micro-batch cap
 * (`--max-batch=1,2,4,...`) at a fixed `--window-us`, reporting the
 * measured batch occupancy (requests per drained batch, same figure as
 * `batch_occupancy` in the /load report) against node throughput and
 * client-side tail latency — the occupancy -> throughput curve that the
 * list-major scan path is built to climb.
 */

#include "bench_common.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <thread>

#include "core/search_strategy.hpp"
#include "serve/broker.hpp"
#include "serve/node_client.hpp"
#include "sim/pipeline.hpp"
#include "sim/queue_sim.hpp"
#include "util/argparse.hpp"

namespace {

using namespace hermes;

/** TTFT-style service time model: encode + retrieve + prefill. */
std::function<double(std::size_t)>
serviceModel(sim::RetrievalMode mode, double tokens)
{
    return [mode, tokens](std::size_t batch) {
        sim::PipelineConfig config;
        config.datastore.tokens = tokens;
        config.batch = std::max<std::size_t>(batch, 1);
        config.retrieval = mode;
        return sim::RagPipelineSim(config).run().ttft;
    };
}

/** Parse a comma-separated list of positive integers. */
std::vector<std::size_t>
parseList(const std::string &spec)
{
    std::vector<std::size_t> values;
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(',', begin);
        if (end == std::string::npos)
            end = spec.size();
        std::string token = spec.substr(begin, end - begin);
        if (!token.empty())
            values.push_back(std::strtoul(token.c_str(), nullptr, 10));
        begin = end + 1;
    }
    return values;
}

double
percentile(std::vector<double> &sorted_us, double pct)
{
    if (sorted_us.empty())
        return 0.0;
    std::sort(sorted_us.begin(), sorted_us.end());
    auto rank = static_cast<std::size_t>(
        pct / 100.0 * static_cast<double>(sorted_us.size() - 1) + 0.5);
    return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

/**
 * Live broker sweep: same Zipfian client load at every micro-batch cap,
 * so the only variable is how many co-arrived requests each node drain
 * may coalesce into one list-major scan.
 */
void
runLiveSweep(const std::vector<std::size_t> &caps, double window_us,
             std::size_t num_docs, std::size_t dim, std::size_t nlist,
             std::size_t clients, std::size_t per_client)
{
    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = dim;
    cc.num_topics = 30;
    auto corpus = workload::generateCorpus(cc);

    core::HermesConfig config;
    config.num_clusters = 8;
    config.clusters_to_search = 3;
    config.sample_nprobe = 4;
    config.deep_nprobe = 32;
    config.partition.seeds_to_try = 2;
    config.nlist_per_cluster = nlist;
    auto store = core::DistributedStore::build(corpus.embeddings, config);

    workload::QueryConfig qc;
    qc.num_queries = clients * per_client;
    qc.topic_zipf = 1.0;
    auto queries = workload::generateQueries(corpus, qc);

    std::printf("live broker sweep: %zu docs x %zu dims (nlist %zu), "
                "%zu clients x %zu queries, window %.0f us\n\n",
                num_docs, dim, nlist, clients, per_client, window_us);
    util::TablePrinter table({10, 10, 10, 12, 12, 12});
    table.header({"max batch", "occupancy", "QPS", "p50 (us)", "p95 (us)",
                  "p99 (us)"});
    for (std::size_t cap : caps) {
        serve::BrokerConfig broker_config;
        broker_config.node.max_batch = std::max<std::size_t>(cap, 1);
        // cap 1 is the no-batching baseline; give it window 0 so it is
        // exactly the seed drain loop, not a pointless wait.
        broker_config.node.batch_window_us = cap > 1 ? window_us : 0.0;
        serve::HermesBroker broker(store, broker_config);

        // Client-side latency capture: broker.stats() histograms are
        // process-wide and would accumulate across sweep points.
        std::vector<std::vector<double>> latency_us(clients);
        util::Timer wall;
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < clients; ++t) {
            threads.emplace_back([&, t] {
                latency_us[t].reserve(per_client);
                for (std::size_t i = 0; i < per_client; ++i) {
                    std::size_t q = t * per_client + i;
                    util::Timer timer;
                    broker.search(queries.embeddings.row(q), 5);
                    latency_us[t].push_back(timer.elapsedSeconds() * 1e6);
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
        double elapsed = wall.elapsedSeconds();

        std::uint64_t requests = 0;
        std::uint64_t batches = 0;
        for (const auto &node : broker.stats().nodes) {
            requests += node.requests;
            batches += node.batches;
        }
        std::vector<double> all_us;
        for (auto &client : latency_us)
            all_us.insert(all_us.end(), client.begin(), client.end());
        double occupancy = batches > 0
            ? static_cast<double>(requests) / static_cast<double>(batches)
            : 0.0;
        table.row({util::TablePrinter::num(static_cast<double>(
                       broker_config.node.max_batch), 0),
                   util::TablePrinter::num(occupancy, 2),
                   util::TablePrinter::num(
                       static_cast<double>(clients * per_client) / elapsed,
                       0),
                   util::TablePrinter::num(percentile(all_us, 50.0), 0),
                   util::TablePrinter::num(percentile(all_us, 95.0), 0),
                   util::TablePrinter::num(percentile(all_us, 99.0), 0)});
    }
    std::printf("\nOccupancy climbs with the cap until the window runs "
                "dry of co-arrived\nrequests; every point of occupancy is "
                "a hot list streamed once instead of\nN times, which is "
                "where the QPS headroom comes from.\n\n");
}

/**
 * Replication/hedging sweep (`--hedge`): same Zipfian client load
 * against three brokers — unreplicated baseline, hot cluster at R=2
 * with power-of-two-choices routing, and R=2 with hedged sample probes
 * on top. The hot cluster is found deterministically by counting deep
 * requests over the query set with the in-process reference search, so
 * every run replicates the same cluster. The point of the table: with
 * the hot cluster's queue split over two replicas, client p99 tracks
 * the median node's latency instead of the hottest node's. To make the
 * effect visible even on a single core (where splitting a CPU-bound
 * queue buys nothing), the hot cluster's primary is additionally
 * degraded with a sleep-based straggler fault; the replica is clean.
 */

/** Straggler injected into the hot cluster's primary for the sweep. */
constexpr double kStragglerProbability = 0.05;
constexpr double kStragglerDelayMs = 25.0;

void
runReplicationSweep(std::size_t num_docs, std::size_t dim,
                    std::size_t nlist, std::size_t clients,
                    std::size_t per_client)
{
    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = dim;
    cc.num_topics = 30;
    auto corpus = workload::generateCorpus(cc);

    core::HermesConfig config;
    config.num_clusters = 8;
    config.clusters_to_search = 3;
    config.sample_nprobe = 4;
    config.deep_nprobe = 32;
    config.partition.seeds_to_try = 2;
    config.nlist_per_cluster = nlist;
    auto store = core::DistributedStore::build(corpus.embeddings, config);

    workload::QueryConfig qc;
    qc.num_queries = clients * per_client;
    qc.topic_zipf = 1.0;
    auto queries = workload::generateQueries(corpus, qc);

    // Hottest cluster under this exact query set, by deep-request count.
    core::HermesSearch reference(store);
    std::vector<std::uint64_t> deep_counts(config.num_clusters, 0);
    for (std::size_t q = 0; q < queries.embeddings.rows(); ++q) {
        auto result = reference.search(queries.embeddings.row(q), 5);
        for (std::uint32_t c : result.deep_clusters)
            ++deep_counts[c];
    }
    std::uint32_t hot = 0;
    for (std::uint32_t c = 1; c < config.num_clusters; ++c)
        if (deep_counts[c] > deep_counts[hot])
            hot = c;

    std::printf("replication sweep: %zu docs x %zu dims, %zu clients x "
                "%zu queries, hot cluster %u (%llu of %llu deep "
                "requests)\n"
                "hot cluster's primary node is degraded: +%.0f ms on "
                "%.0f%% of its requests\n\n",
                num_docs, dim, clients, per_client, hot,
                static_cast<unsigned long long>(deep_counts[hot]),
                static_cast<unsigned long long>(
                    std::accumulate(deep_counts.begin(), deep_counts.end(),
                                    std::uint64_t{0})),
                kStragglerDelayMs, kStragglerProbability * 100.0);

    struct Sweep
    {
        const char *label;
        bool replicate;
        bool hedge;
    };
    const Sweep sweeps[] = {
        {"R=1 baseline", false, false},
        {"R=2 p2c", true, false},
        {"R=2 p2c+hedge", true, true},
    };

    util::TablePrinter table({14, 10, 12, 12, 12, 14, 12});
    table.header({"deployment", "QPS", "p50 (us)", "p95 (us)", "p99 (us)",
                  "hedges (won)", "max/mean"});
    for (const Sweep &sweep : sweeps) {
        // Every row faces the same degraded fleet: the hot cluster's
        // PRIMARY node stalls on a few percent of its requests (a slow
        // disk, a noisy neighbor — sleeps, so this shows even on one
        // core where queue-splitting cannot). The replica added below
        // is clean; p2c moves half the traffic off the straggler,
        // hedging rescues the probes that still land on it.
        serve::BrokerConfig broker_config;
        broker_config.node_faults.resize(config.num_clusters);
        broker_config.node_faults[hot].delay_probability =
            kStragglerProbability;
        broker_config.node_faults[hot].delay_ms = kStragglerDelayMs;
        broker_config.hedge.enabled = sweep.hedge;
        // Hedging is gated on a finite node deadline (a hedge must fire
        // strictly before it); generous enough to never time a probe out.
        broker_config.node_deadline_ms = 5000.0;
        serve::HermesBroker broker(store, broker_config);
        if (sweep.replicate) {
            serve::NodeConfig clean;
            clean.node_id = broker.numNodes();
            broker.addReplica(hot,
                              std::make_unique<serve::LocalNodeClient>(
                                  store.clusterIndex(hot), clean));
        }

        std::vector<std::vector<double>> latency_us(clients);
        util::Timer wall;
        std::vector<std::thread> threads;
        for (std::size_t t = 0; t < clients; ++t) {
            threads.emplace_back([&, t] {
                latency_us[t].reserve(per_client);
                for (std::size_t i = 0; i < per_client; ++i) {
                    std::size_t q = t * per_client + i;
                    util::Timer timer;
                    broker.search(queries.embeddings.row(q), 5);
                    latency_us[t].push_back(timer.elapsedSeconds() * 1e6);
                }
            });
        }
        for (auto &thread : threads)
            thread.join();
        double elapsed = wall.elapsedSeconds();

        auto stats = broker.stats();
        auto load = broker.loadReport();
        std::vector<double> all_us;
        for (auto &client : latency_us)
            all_us.insert(all_us.end(), client.begin(), client.end());
        char hedge_cell[32];
        std::snprintf(hedge_cell, sizeof(hedge_cell), "%llu (%llu)",
                      static_cast<unsigned long long>(stats.hedges_issued),
                      static_cast<unsigned long long>(stats.hedges_won));
        table.row({sweep.label,
                   util::TablePrinter::num(
                       static_cast<double>(clients * per_client) / elapsed,
                       0),
                   util::TablePrinter::num(percentile(all_us, 50.0), 0),
                   util::TablePrinter::num(percentile(all_us, 95.0), 0),
                   util::TablePrinter::num(percentile(all_us, 99.0), 0),
                   hedge_cell,
                   util::TablePrinter::num(load.max_mean_ratio, 2)});
    }
    std::printf("\nReplicating the hot cluster puts a clean, "
                "bit-identical second copy next to the\ndegraded "
                "primary: power-of-two-choices over live queue depth "
                "moves half the\ntraffic off the straggler (p95 "
                "drops), and hedging re-issues the probes that\nstill "
                "land on it once they outlive the windowed p95 of "
                "broker.sample_probe_us\n(p99 drops), for a bounded "
                "duplicate-work budget (the hedges column; results\n"
                "stay bit-identical either way). On a multi-core host "
                "the same mechanisms also\nsplit a purely queue-bound "
                "hot cluster; on one core that component is\n"
                "serialized away and the straggler dominates the "
                "tail.\n\n");
}

} // namespace

int
main(int argc, char **argv)
{
    util::setQuiet(true);

    util::ArgParser args("ablation_queue",
                         "serving QoS under load + live micro-batch sweep");
    args.addFlag("max-batch", "1,2,4,8,16,32",
                 "comma-separated micro-batch caps for the live sweep "
                 "(empty = skip)");
    args.addFlag("window-us", "200",
                 "micro-batch window for caps > 1, microseconds");
    args.addFlag("docs", "20000", "corpus size for the live sweep");
    args.addFlag("dim", "384",
                 "embedding width for the live sweep (list-major "
                 "amortization scales with per-row work; tiny dims make "
                 "the cap=1 baseline win)");
    args.addFlag("nlist", "16",
                 "per-node IVF list count for the live sweep (0 = sqrt "
                 "heuristic; fewer, larger lists amortize better)");
    args.addFlag("clients", "24",
                 "concurrent client threads (the cap only coalesces "
                 "requests that co-arrive, so the sweep needs enough "
                 "concurrency to keep node queues non-empty)");
    args.addFlag("queries", "60", "queries per client");
    args.addFlag("hedge", "0",
                 "also run the replication/hedging sweep: R=1 vs R=2 "
                 "power-of-two-choices vs R=2 + hedged sample probes "
                 "over the same Zipfian load");
    args.parse(argc, argv);
    bench::banner(
        "Ablation", "Serving QoS: tail TTFT under Poisson load",
        "production systems care about TTFT distribution, not means "
        "(paper Takeaway 2); Hermes' lower retrieval latency keeps p99 "
        "bounded at arrival rates that saturate the monolithic baseline");

    const double tokens = 100e9;

    util::TablePrinter table({14, 14, 12, 12, 12, 12});
    table.header({"deployment", "arrival QPS", "p50 (s)", "p99 (s)",
                  "mean batch", "util"});
    for (double qps : {0.5, 2.0, 8.0}) {
        for (auto mode : {sim::RetrievalMode::Monolithic,
                          sim::RetrievalMode::Hermes}) {
            sim::QueueConfig queue;
            queue.arrival_qps = qps;
            queue.max_batch = 128;
            queue.max_wait = 0.25;
            queue.num_queries = 3000;
            auto result =
                sim::simulateQueue(queue, serviceModel(mode, tokens));
            table.row({mode == sim::RetrievalMode::Monolithic
                           ? "monolithic" : "hermes",
                       util::TablePrinter::num(qps, 1),
                       util::TablePrinter::num(
                           result.latency.percentile(50), 2),
                       util::TablePrinter::num(
                           result.latency.percentile(99), 2),
                       util::TablePrinter::num(result.batch_sizes.mean(),
                                               1),
                       util::TablePrinter::num(result.utilization, 2)});
        }
    }
    std::printf("\nThe monolithic deployment saturates (utilization -> 1, "
                "p99 explodes) at a few\nQPS; Hermes serves the same "
                "stream with a bounded tail — the QoS argument for\n"
                "optimizing TTFT itself rather than only steady-state "
                "throughput.\n\n");

    auto caps = parseList(args.get("max-batch"));
    if (!caps.empty()) {
        runLiveSweep(caps, args.getDouble("window-us"),
                     static_cast<std::size_t>(args.getInt("docs")),
                     static_cast<std::size_t>(args.getInt("dim")),
                     static_cast<std::size_t>(args.getInt("nlist")),
                     static_cast<std::size_t>(args.getInt("clients")),
                     static_cast<std::size_t>(args.getInt("queries")));
    }
    if (args.getBool("hedge")) {
        runReplicationSweep(
            static_cast<std::size_t>(args.getInt("docs")),
            static_cast<std::size_t>(args.getInt("dim")),
            static_cast<std::size_t>(args.getInt("nlist")),
            static_cast<std::size_t>(args.getInt("clients")),
            static_cast<std::size_t>(args.getInt("queries")));
    }
    return 0;
}
