/**
 * @file
 * Ablation: quality-of-service under load.
 *
 * The paper argues TTFT variance hurts production QoS (Takeaway 2). This
 * study subjects the baseline and Hermes deployments to the same Poisson
 * query stream and reports tail latency — Hermes' shorter service times
 * keep the queue stable at arrival rates that drown the monolithic
 * baseline.
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"
#include "sim/queue_sim.hpp"

namespace {

using namespace hermes;

/** TTFT-style service time model: encode + retrieve + prefill. */
std::function<double(std::size_t)>
serviceModel(sim::RetrievalMode mode, double tokens)
{
    return [mode, tokens](std::size_t batch) {
        sim::PipelineConfig config;
        config.datastore.tokens = tokens;
        config.batch = std::max<std::size_t>(batch, 1);
        config.retrieval = mode;
        return sim::RagPipelineSim(config).run().ttft;
    };
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Ablation", "Serving QoS: tail TTFT under Poisson load",
        "production systems care about TTFT distribution, not means "
        "(paper Takeaway 2); Hermes' lower retrieval latency keeps p99 "
        "bounded at arrival rates that saturate the monolithic baseline");

    const double tokens = 100e9;

    util::TablePrinter table({14, 14, 12, 12, 12, 12});
    table.header({"deployment", "arrival QPS", "p50 (s)", "p99 (s)",
                  "mean batch", "util"});
    for (double qps : {0.5, 2.0, 8.0}) {
        for (auto mode : {sim::RetrievalMode::Monolithic,
                          sim::RetrievalMode::Hermes}) {
            sim::QueueConfig queue;
            queue.arrival_qps = qps;
            queue.max_batch = 128;
            queue.max_wait = 0.25;
            queue.num_queries = 3000;
            auto result =
                sim::simulateQueue(queue, serviceModel(mode, tokens));
            table.row({mode == sim::RetrievalMode::Monolithic
                           ? "monolithic" : "hermes",
                       util::TablePrinter::num(qps, 1),
                       util::TablePrinter::num(
                           result.latency.percentile(50), 2),
                       util::TablePrinter::num(
                           result.latency.percentile(99), 2),
                       util::TablePrinter::num(result.batch_sizes.mean(),
                                               1),
                       util::TablePrinter::num(result.utilization, 2)});
        }
    }
    std::printf("\nThe monolithic deployment saturates (utilization -> 1, "
                "p99 explodes) at a few\nQPS; Hermes serves the same "
                "stream with a bounded tail — the QoS argument for\n"
                "optimizing TTFT itself rather than only steady-state "
                "throughput.\n\n");
    return 0;
}
