/**
 * @file
 * Fig 19 reproduction: inference latency across (input, output) lengths
 * and the optimal Hermes cluster size that still hides retrieval under
 * inference for each serving scenario.
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 19", "Cluster sizing across inference scenarios",
        "with output fixed at 32 tokens, growing the input from 32 to "
        "2048 tokens lets clusters grow ~34B -> ~114B tokens (fewer "
        "retrieval nodes needed)");

    std::printf("Inference latency per stride window (batch 128, "
                "Gemma2-9B / A6000 Ada):\n");
    util::TablePrinter inference({14, 14, 18});
    inference.header({"input len", "output len", "inference (s)"});
    for (auto [in_len, out_len] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {32, 4}, {256, 32}, {32, 256}, {512, 256}, {2048, 32}}) {
        sim::LlmCostModel llm(sim::LlmModel::Gemma2_9B,
                              sim::GpuModel::A6000Ada);
        double window = llm.prefillLatency(128, in_len) +
                        llm.decodeLatency(128, std::min<std::size_t>(
                                                   out_len, 16));
        inference.row({std::to_string(in_len), std::to_string(out_len),
                       util::TablePrinter::num(window, 3)});
    }

    std::printf("\nOptimal cluster size (tokens) vs batch and input "
                "length (output 32, stride 16):\n");
    util::TablePrinter planner({10, 14, 14, 14});
    planner.header({"batch", "in=32", "in=256", "in=2048"});
    for (std::size_t batch : {8u, 16u, 32u, 64u, 128u, 256u}) {
        std::vector<std::string> row{std::to_string(batch)};
        for (std::size_t in_len : {32u, 256u, 2048u}) {
            sim::PipelineConfig config;
            config.batch = batch;
            config.input_tokens = in_len;
            config.output_tokens = 32;
            double tokens = sim::RagPipelineSim::optimalClusterTokens(
                config);
            row.push_back(bench::tokenLabel(tokens));
        }
        planner.row(row);
    }
    std::printf("\nLonger inputs and bigger batches widen the inference "
                "window, so each cluster\ncan hold more tokens and a "
                "deployment needs fewer nodes — the Fig 19 rule.\n\n");
    return 0;
}
