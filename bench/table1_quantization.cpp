/**
 * @file
 * Table 1 reproduction: recall and vector size across quantization
 * schemes (Flat, SQ8, SQ4, PQ, OPQ).
 *
 * Measured on the synthetic testbed at d=32; the PQ/OPQ sub-quantizer
 * counts are scaled to the same bytes-per-dim ratios as the paper's
 * d=768 configurations (PQ256 -> 1/3 byte per dim, PQ384 -> 1/2), and the
 * projected d=768 code size is printed alongside.
 */

#include "bench_common.hpp"

#include "index/ivf_index.hpp"

namespace {

using namespace hermes;

struct Scheme
{
    const char *codec;     ///< spec at our d=32 testbed scale
    const char *paper;     ///< the paper's d=768 equivalent
    std::size_t paper_bytes;
};

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Table 1", "IVF quantization schemes: recall vs vector size",
        "Flat 0.958/3072B, SQ8 0.942/768B, SQ4 0.748/384B, "
        "PQ256 0.585/256B, OPQ256 0.596/256B, PQ384 0.748/384B, "
        "OPQ384 0.742/384B — SQ8 chosen as the sweet spot");

    auto tb = bench::buildTestbed(20000, 32, 128);

    // d=32 testbed equivalents of the paper's d=768 schemes: keep the
    // bytes-per-dimension ratio (768/3 -> 32/3 is fractional, so PQ uses
    // the nearest divisor: 1/4 and 1/2 byte per dim).
    const std::vector<Scheme> schemes = {
        {"Flat", "Flat", 3072},
        {"SQ8", "SQ8", 768},
        {"SQ4", "SQ4", 384},
        {"PQ8", "PQ256", 256},
        {"OPQ8", "OPQ256", 256},
        {"PQ16", "PQ384", 384},
        {"OPQ16", "OPQ384", 384},
    };

    util::TablePrinter table({10, 10, 12, 14, 16});
    table.header({"scheme", "recall@5", "bytes(d=32)", "bytes(d=768)",
                  "paper recall"});
    const char *paper_recall[] = {"0.958", "0.942", "0.748", "0.585",
                                  "0.596", "0.748", "0.742"};

    for (std::size_t s = 0; s < schemes.size(); ++s) {
        index::IvfConfig config;
        config.nlist = 64;
        config.codec = schemes[s].codec;
        index::IvfIndex ivf(tb.corpus.embeddings.dim(),
                            vecstore::Metric::L2, config);
        ivf.train(tb.corpus.embeddings);
        ivf.addSequential(tb.corpus.embeddings);

        index::SearchParams params;
        params.nprobe = 16;
        auto results = tb.queries.embeddings.rows()
            ? ivf.searchBatch(tb.queries.embeddings, 5, params)
            : std::vector<vecstore::HitList>{};
        double recall = eval::meanRecallAtK(results, tb.truth, 5);

        std::size_t code_bytes =
            quant::makeCodec(schemes[s].codec, 32)->codeSize();
        table.row({schemes[s].paper, util::TablePrinter::num(recall, 3),
                   std::to_string(code_bytes),
                   std::to_string(schemes[s].paper_bytes),
                   paper_recall[s]});
    }
    std::printf("\nConclusion: SQ8 preserves recall within ~2%% of Flat at "
                "4x smaller codes;\nPQ/OPQ shrink further but cost recall "
                "— matching the paper's choice of IVF-SQ8.\n\n");
    return 0;
}
