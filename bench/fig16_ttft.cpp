/**
 * @file
 * Fig 16 reproduction: normalized TTFT at 1B / 10B / 1T tokens for the
 * baseline, Hermes, and Hermes combined with PipeRAG + RAGCache (which
 * cannot improve TTFT further — the point of the figure).
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 16", "Time-to-first-token vs datastore size",
        "Hermes improves TTFT by ~9.1x at 1T tokens; PipeRAG/RAGCache "
        "cannot reduce TTFT because the first retrieval is on the "
        "critical path");

    util::TablePrinter table({10, 14, 12, 14, 14});
    table.header({"tokens", "baseline (s)", "Hermes", "Hermes+P+C",
                  "speedup"});
    for (double tokens : {1e9, 10e9, 1e12}) {
        sim::PipelineConfig base;
        base.datastore.tokens = tokens;
        base.batch = 32;

        sim::PipelineConfig hermes = base;
        hermes.retrieval = sim::RetrievalMode::Hermes;

        sim::PipelineConfig combined = hermes;
        combined.pipelining = true;
        combined.prefix_caching = true;

        double t_base = sim::RagPipelineSim(base).run().ttft;
        double t_hermes = sim::RagPipelineSim(hermes).run().ttft;
        double t_combined = sim::RagPipelineSim(combined).run().ttft;
        table.row({bench::tokenLabel(tokens),
                   util::TablePrinter::num(t_base, 2),
                   util::TablePrinter::num(t_hermes / t_base, 3),
                   util::TablePrinter::num(t_combined / t_base, 3),
                   util::TablePrinter::num(t_base / t_hermes, 2) + "x"});
    }
    std::printf("\nHermes and Hermes+P+C columns coincide: pipelining and "
                "caching rely on prior\nstrides and cannot touch the first "
                "retrieval (paper Takeaway 2).\n\n");
    return 0;
}
