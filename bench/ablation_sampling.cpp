/**
 * @file
 * Ablation: how much routing quality does document sampling buy, and what
 * does it cost? Sweeps the number of documents sampled per cluster
 * (sample_k) and compares against centroid-only routing — the design
 * choice behind Fig 11's "Hermes vs Centroid-Based" gap.
 */

#include "bench_common.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Ablation", "Document sampling depth vs routing quality",
        "the paper samples a single document per cluster (§4.2); this "
        "sweep shows sampling depth beyond 1 buys little, while dropping "
        "to centroid-only routing costs measurable NDCG");

    auto tb = bench::buildTestbed(20000, 32, 128, 10, 3, 32, 4);

    util::TablePrinter table({22, 10, 22});
    table.header({"router", "NDCG@5", "sampling work (vec/q)"});

    core::CentroidRouting centroid(*tb.store, 3);
    table.row({"centroid only",
               util::TablePrinter::num(tb.ndcg(centroid, 5), 3), "0"});

    for (std::size_t sample_k : {1u, 2u, 4u, 8u}) {
        core::HermesConfig config = tb.config;
        config.sample_k = sample_k;
        auto store = core::DistributedStore::build(tb.corpus.embeddings,
                                                   config);
        core::HermesSearch hermes(store);
        // Count sampling work on a probe query.
        auto result = hermes.search(tb.queries.embeddings.row(0), 5);
        std::uint64_t sample_work = 0;
        for (const auto &stats : result.sample_stats)
            sample_work += stats.vectors_scanned;
        table.row({"sampling k=" + std::to_string(sample_k),
                   util::TablePrinter::num(tb.ndcg(hermes, 5), 3),
                   std::to_string(sample_work)});
    }

    std::printf("\nSampling with k=1 already closes most of the gap to "
                "exhaustive routing;\nthe scan cost is set by "
                "sample_nprobe, not k, so deeper sampling is nearly "
                "free\nbut unnecessary — supporting the paper's k=1 "
                "choice.\n\n");
    return 0;
}
