/**
 * @file
 * Fig 11 reproduction (measured): NDCG vs number of clusters searched in
 * depth, for the monolithic index, naive split, centroid-based routing,
 * and Hermes document sampling.
 */

#include "bench_common.hpp"

namespace {

using namespace hermes;

/** Build a store with the requested partitioning scheme. */
core::DistributedStore
buildStore(const workload::Corpus &corpus, core::HermesConfig config,
           cluster::PartitionScheme scheme)
{
    config.partition.scheme = scheme;
    return core::DistributedStore::build(corpus.embeddings, config);
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 11", "Hierarchical search accuracy (measured NDCG)",
        "Hermes reaches iso-accuracy with the monolithic index at ~3 "
        "clusters searched; naive splitting needs ~10; document sampling "
        "beats centroid-only routing throughout");

    auto tb = bench::buildTestbed(20000, 32, 128, 10,
                                  /*clusters_to_search=*/3,
                                  /*deep_nprobe=*/32, /*sample_nprobe=*/4);

    core::MonolithicSearch mono(tb.corpus.embeddings, "SQ8",
                                tb.config.deep_nprobe * 4);
    double mono_ndcg = tb.ndcg(mono, 5);
    std::printf("Monolithic reference NDCG@5: %.3f\n\n", mono_ndcg);

    // A round-robin split store models "Split" (naive equal splitting):
    // topics are spread over every shard, so routing cannot work.
    auto split_store = buildStore(tb.corpus, tb.config,
                                  cluster::PartitionScheme::RoundRobin);

    util::TablePrinter table({10, 12, 14, 12, 14});
    table.header({"clusters", "split", "centroid", "hermes",
                  "vs monolithic"});
    for (std::size_t deep = 1; deep <= 10; ++deep) {
        core::HermesSearch hermes(*tb.store, deep);
        core::CentroidRouting centroid(*tb.store, deep);
        // "Split" searches `deep` shards of the round-robin store chosen
        // by centroid (all shards look alike, so routing is blind).
        core::CentroidRouting split(split_store, deep);

        double h = tb.ndcg(hermes, 5);
        table.row({std::to_string(deep),
                   util::TablePrinter::num(tb.ndcg(split, 5), 3),
                   util::TablePrinter::num(tb.ndcg(centroid, 5), 3),
                   util::TablePrinter::num(h, 3),
                   util::TablePrinter::num(h / mono_ndcg, 3)});
    }
    std::printf("\n'vs monolithic' ~1.0 at 3 clusters searched reproduces "
                "the paper's iso-accuracy point.\n\n");
    return 0;
}
