/**
 * @file
 * Fig 18 reproduction: retrieval throughput and energy per batch as the
 * number of deep-searched clusters grows, using a *measured* cluster
 * access trace from the laptop testbed replayed through the multi-node
 * simulator (the paper's methodology, Fig 15).
 */

#include "bench_common.hpp"

#include "obs/perf.hpp"
#include "sim/node_sim.hpp"

int
main()
{
    using namespace hermes;
    util::setQuiet(true);
    bench::banner(
        "Fig 18", "Throughput & energy vs clusters searched",
        "searching 3 of 10 clusters: 1.81x throughput (290 -> ~525 QPS) "
        "and 1.77x energy savings vs searching all 10");

    auto tb = bench::buildTestbed(20000, 32, 512, 10);

    // Ground the modeled joules against the wall: when this host exposes
    // RAPL, measure the package energy the whole sweep actually burns.
    obs::RaplReader rapl;

    util::TablePrinter table({10, 14, 16, 16});
    table.header({"clusters", "QPS", "J/batch", "vs all-10"});
    double qps_at_3 = 0.0, qps_at_10 = 0.0;
    double energy_at_3 = 0.0, energy_at_10 = 0.0;
    for (std::size_t deep = 1; deep <= 10; ++deep) {
        core::HermesSearch hermes(*tb.store, deep);
        auto trace = hermes.traceBatch(tb.queries.embeddings, 5);

        sim::MultiNodeConfig mn;
        mn.total.tokens = 10e9; // model the paper's 10B-token deployment
        mn.num_clusters = 10;
        mn.batch = 128;
        for (auto size : tb.store->partitioning().sizes())
            mn.cluster_shares.push_back(static_cast<double>(size));
        auto result = sim::MultiNodeSimulator(mn).replayTrace(trace);

        if (deep == 3) {
            qps_at_3 = result.throughput_qps;
            energy_at_3 = result.energy;
        }
        if (deep == 10) {
            qps_at_10 = result.throughput_qps;
            energy_at_10 = result.energy;
        }
        table.row({std::to_string(deep),
                   util::TablePrinter::num(result.throughput_qps, 0),
                   util::TablePrinter::num(result.energy, 0),
                   deep == 10 ? "1.00x" : ""});
    }
    std::printf("\n3 vs 10 clusters: %.2fx throughput, %.2fx energy "
                "savings (paper: 1.81x / 1.77x)\n\n",
                qps_at_3 / qps_at_10, energy_at_10 / energy_at_3);
    if (rapl.available()) {
        auto sample = rapl.sample();
        if (sample.valid && sample.elapsed_seconds > 0.0) {
            std::printf("measured host energy over the sweep: %.1f J "
                        "package, %.1f J dram (%.1f W mean) — the J/batch "
                        "column above is the simulator's 10B-token model, "
                        "not this host\n\n",
                        sample.package_joules, sample.dram_joules,
                        sample.package_joules / sample.elapsed_seconds);
        }
    } else {
        std::printf("(RAPL unavailable on this host: no readable "
                    "/sys/class/powercap domain — energy column is "
                    "model-only)\n\n");
    }
    return 0;
}
