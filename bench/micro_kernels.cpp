/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: distance
 * computation, top-k selection, codec scans, and K-means assignment.
 * These are the per-vector costs the at-scale cost model abstracts into
 * scan_gbps_per_core.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "cluster/kmeans.hpp"
#include "quant/codec.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/simd_dispatch.hpp"
#include "vecstore/topk.hpp"

namespace {

using namespace hermes;

vecstore::Matrix
randomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed)
{
    util::Rng rng(seed);
    vecstore::Matrix m(rows, dim);
    for (std::size_t i = 0; i < rows; ++i) {
        auto row = m.row(i);
        for (std::size_t j = 0; j < dim; ++j)
            row[j] = static_cast<float>(rng.gaussian());
    }
    return m;
}

void
BM_L2Distance(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    auto data = randomMatrix(2, dim, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(vecstore::l2Sq(data.row(0).data(),
                                                data.row(1).data(), dim));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            dim * sizeof(float) * 2);
}
BENCHMARK(BM_L2Distance)->Arg(96)->Arg(768);

void
BM_DotProduct(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    auto data = randomMatrix(2, dim, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(vecstore::dot(data.row(0).data(),
                                               data.row(1).data(), dim));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            dim * sizeof(float) * 2);
}
BENCHMARK(BM_DotProduct)->Arg(96)->Arg(768);

/**
 * Blocked query-vs-rows kernel: one call scores a whole contiguous list.
 * bytes/sec here is what the cost model's scan_gbps_per_core abstracts.
 */
void
BM_L2DistanceBatch(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    auto base = randomMatrix(n, dim, 11);
    auto query = randomMatrix(1, dim, 12);
    std::vector<float> out(n);
    for (auto _ : state) {
        vecstore::l2SqBatch(query.row(0).data(), base.data(), n, dim,
                            out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * dim * sizeof(float));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_L2DistanceBatch)
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});

void
BM_DotProductBatch(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    auto base = randomMatrix(n, dim, 13);
    auto query = randomMatrix(1, dim, 14);
    std::vector<float> out(n);
    for (auto _ : state) {
        vecstore::dotBatch(query.row(0).data(), base.data(), n, dim,
                           out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * dim * sizeof(float));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_DotProductBatch)
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});

void
BM_TopKSelection(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(3);
    std::vector<float> scores(n);
    for (auto &s : scores)
        s = static_cast<float>(rng.uniform());
    for (auto _ : state) {
        vecstore::TopK selector(10);
        for (std::size_t i = 0; i < n; ++i)
            selector.push(static_cast<vecstore::VecId>(i), scores[i]);
        benchmark::DoNotOptimize(selector.take());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_TopKSelection)->Arg(1024)->Arg(65536);

void
BM_CodecScan(benchmark::State &state, const std::string &spec)
{
    const std::size_t dim = 96;
    const std::size_t n = 4096;
    auto data = randomMatrix(n, dim, 4);
    auto codec = quant::makeCodec(spec, dim);
    codec->train(data);

    std::vector<std::uint8_t> codes(n * codec->codeSize());
    for (std::size_t i = 0; i < n; ++i)
        codec->encode(data.row(i), codes.data() + i * codec->codeSize());

    auto query = randomMatrix(1, dim, 5);
    for (auto _ : state) {
        auto computer = codec->distanceComputer(vecstore::Metric::L2,
                                                query.row(0));
        float acc = 0.f;
        for (std::size_t i = 0; i < n; ++i)
            acc += (*computer)(codes.data() + i * codec->codeSize());
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * codec->codeSize());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK_CAPTURE(BM_CodecScan, Flat, "Flat");
BENCHMARK_CAPTURE(BM_CodecScan, SQ8, "SQ8");
BENCHMARK_CAPTURE(BM_CodecScan, SQ4, "SQ4");
BENCHMARK_CAPTURE(BM_CodecScan, PQ16, "PQ16");

/**
 * Batched DistanceComputer::scan() — the IVF inner loop's shape: one
 * virtual call per probed list instead of one per code. Args are
 * {dim, list size}; an infinite threshold requests exact scores so the
 * scalar and SIMD arms do identical work.
 */
void
BM_CodecScanBatch(benchmark::State &state, const std::string &spec)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    // Train on a subset: codebook quality is irrelevant to scan cost and
    // full-list PQ training at d=768 would dominate setup time.
    const std::size_t train_rows = std::min<std::size_t>(n, 4096);
    auto data = randomMatrix(n, dim, 15);
    auto codec = quant::makeCodec(spec, dim);
    {
        vecstore::Matrix train(train_rows, dim);
        for (std::size_t i = 0; i < train_rows; ++i) {
            auto src = data.row(i);
            auto dst = train.row(i);
            std::copy(src.data(), src.data() + dim, dst.data());
        }
        codec->train(train);
    }

    std::vector<std::uint8_t> codes(n * codec->codeSize());
    for (std::size_t i = 0; i < n; ++i)
        codec->encode(data.row(i), codes.data() + i * codec->codeSize());

    auto query = randomMatrix(1, dim, 16);
    auto computer = codec->distanceComputer(vecstore::Metric::L2,
                                            query.row(0));
    std::vector<float> out(n);
    for (auto _ : state) {
        computer->scan(codes.data(), n,
                       std::numeric_limits<float>::max(), out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * codec->codeSize());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK_CAPTURE(BM_CodecScanBatch, Flat, "Flat")
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});
BENCHMARK_CAPTURE(BM_CodecScanBatch, SQ8, "SQ8")
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});
BENCHMARK_CAPTURE(BM_CodecScanBatch, PQ16, "PQ16")
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});

/*
 * Multi-query (list-major) benches. The pair of benchmarks per kernel
 * measures the same work two ways — per-query loop (each query streams
 * the whole corpus again) vs one list-major pass (each row is streamed
 * once per batch) — so items/s (queries x codes per second) is directly
 * comparable. Corpora are sized past the LLC so the per-query loop pays
 * DRAM bandwidth per query, which is exactly the cost the list-major
 * path amortizes. bytes/s reports the memory traffic actually requested
 * by each variant.
 */

void
BM_L2BatchPerQuery(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    const auto q_count = static_cast<std::size_t>(state.range(2));
    auto base = randomMatrix(n, dim, 21);
    auto queries = randomMatrix(q_count, dim, 22);
    std::vector<float> out(n);
    for (auto _ : state) {
        for (std::size_t q = 0; q < q_count; ++q) {
            vecstore::l2SqBatch(queries.row(q).data(), base.data(), n, dim,
                                out.data());
        }
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            q_count * n * dim * sizeof(float));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            q_count * n);
}
BENCHMARK(BM_L2BatchPerQuery)
    ->Args({768, 1024, 4}) // CI smoke shape
    ->Args({768, 32768, 1})->Args({768, 32768, 4})
    ->Args({768, 32768, 16})->Args({768, 32768, 32})
    ->Args({768, 32768, 64});

void
BM_L2BatchListMajor(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    const auto q_count = static_cast<std::size_t>(state.range(2));
    auto base = randomMatrix(n, dim, 21);
    auto queries = randomMatrix(q_count, dim, 22);
    std::vector<float> out(q_count * n);
    std::vector<const float *> query_ptrs(q_count);
    std::vector<float *> out_ptrs(q_count);
    for (std::size_t q = 0; q < q_count; ++q) {
        query_ptrs[q] = queries.row(q).data();
        out_ptrs[q] = out.data() + q * n;
    }
    for (auto _ : state) {
        vecstore::l2SqBatchMulti(query_ptrs.data(), q_count, base.data(),
                                 n, dim, out_ptrs.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * dim * sizeof(float));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            q_count * n);
}
BENCHMARK(BM_L2BatchListMajor)
    ->Args({768, 1024, 4}) // CI smoke shape
    ->Args({768, 32768, 1})->Args({768, 32768, 4})
    ->Args({768, 32768, 16})->Args({768, 32768, 32})
    ->Args({768, 32768, 64});

/**
 * Multi-query codec scans over an IVF-shaped corpus: total_codes codes
 * split into 4096-entry lists. Codes are random bytes (content does not
 * affect scan cost, and it skips minutes of encode at setup). The
 * per-query variant scans every list for one query before moving to the
 * next query — the seed node execution order; the list-major variant
 * calls scanMulti once per list for all queries, with per-query LUTs
 * (PQ) built once per batch.
 */
void
BM_CodecScanPerQuery(benchmark::State &state, const std::string &spec)
{
    const auto total = static_cast<std::size_t>(state.range(0));
    const auto q_count = static_cast<std::size_t>(state.range(1));
    const std::size_t dim = 96;
    const std::size_t list_len = std::min<std::size_t>(total, 4096);
    auto codec = quant::makeCodec(spec, dim);
    codec->train(randomMatrix(4096, dim, 23));

    util::Rng rng(24);
    std::vector<std::uint8_t> codes(total * codec->codeSize());
    for (auto &byte : codes)
        byte = static_cast<std::uint8_t>(rng.uniform() * 256.0);

    auto queries = randomMatrix(q_count, dim, 25);
    std::vector<std::unique_ptr<quant::DistanceComputer>> computers;
    for (std::size_t q = 0; q < q_count; ++q) {
        computers.push_back(
            codec->distanceComputer(vecstore::Metric::L2, queries.row(q)));
    }
    std::vector<float> out(list_len);
    const std::size_t code_size = codec->codeSize();
    for (auto _ : state) {
        for (std::size_t q = 0; q < q_count; ++q) {
            for (std::size_t begin = 0; begin < total; begin += list_len) {
                const std::size_t len =
                    std::min(list_len, total - begin);
                computers[q]->scan(codes.data() + begin * code_size, len,
                                   std::numeric_limits<float>::max(),
                                   out.data());
            }
        }
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            q_count * total * code_size);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            q_count * total);
}
BENCHMARK_CAPTURE(BM_CodecScanPerQuery, SQ8, "SQ8")
    ->Args({8192, 4}) // CI smoke shape
    ->Args({1 << 21, 1})->Args({1 << 21, 4})->Args({1 << 21, 16})
    ->Args({1 << 21, 32})->Args({1 << 21, 64});
BENCHMARK_CAPTURE(BM_CodecScanPerQuery, PQ16, "PQ16")
    ->Args({8192, 4}) // CI smoke shape
    ->Args({1 << 23, 1})->Args({1 << 23, 4})->Args({1 << 23, 16})
    ->Args({1 << 23, 32})->Args({1 << 23, 64});

void
BM_CodecScanListMajor(benchmark::State &state, const std::string &spec)
{
    const auto total = static_cast<std::size_t>(state.range(0));
    const auto q_count = static_cast<std::size_t>(state.range(1));
    const std::size_t dim = 96;
    const std::size_t list_len = std::min<std::size_t>(total, 4096);
    auto codec = quant::makeCodec(spec, dim);
    codec->train(randomMatrix(4096, dim, 23));

    util::Rng rng(24);
    std::vector<std::uint8_t> codes(total * codec->codeSize());
    for (auto &byte : codes)
        byte = static_cast<std::uint8_t>(rng.uniform() * 256.0);

    auto queries = randomMatrix(q_count, dim, 25);
    std::vector<std::unique_ptr<quant::DistanceComputer>> computers;
    std::vector<const quant::DistanceComputer *> peers(q_count);
    for (std::size_t q = 0; q < q_count; ++q) {
        computers.push_back(
            codec->distanceComputer(vecstore::Metric::L2, queries.row(q)));
        peers[q] = computers.back().get();
    }
    std::vector<float> out(q_count * list_len);
    std::vector<float *> out_ptrs(q_count);
    for (std::size_t q = 0; q < q_count; ++q)
        out_ptrs[q] = out.data() + q * list_len;
    std::vector<float> thresholds(q_count,
                                  std::numeric_limits<float>::max());
    const std::size_t code_size = codec->codeSize();
    for (auto _ : state) {
        for (std::size_t begin = 0; begin < total; begin += list_len) {
            const std::size_t len = std::min(list_len, total - begin);
            peers[0]->scanMulti(peers.data(), q_count,
                                codes.data() + begin * code_size, len,
                                thresholds.data(), out_ptrs.data());
        }
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            total * code_size);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            q_count * total);
}
BENCHMARK_CAPTURE(BM_CodecScanListMajor, SQ8, "SQ8")
    ->Args({8192, 4}) // CI smoke shape
    ->Args({1 << 21, 1})->Args({1 << 21, 4})->Args({1 << 21, 16})
    ->Args({1 << 21, 32})->Args({1 << 21, 64});
BENCHMARK_CAPTURE(BM_CodecScanListMajor, PQ16, "PQ16")
    ->Args({8192, 4}) // CI smoke shape
    ->Args({1 << 23, 1})->Args({1 << 23, 4})->Args({1 << 23, 16})
    ->Args({1 << 23, 32})->Args({1 << 23, 64});

void
BM_KMeansAssign(benchmark::State &state)
{
    auto data = randomMatrix(4096, 32, 6);
    auto centroids = randomMatrix(64, 32, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::assignToCentroids(data, centroids));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_KMeansAssign);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Record which dispatch arm ran so JSON captures are self-describing
    // (HERMES_SIMD=scalar forces the fallback arm).
    benchmark::AddCustomContext("hermes_simd",
                                hermes::vecstore::simd::activeIsa());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
