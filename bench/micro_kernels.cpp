/**
 * @file
 * google-benchmark microbenchmarks for the hot kernels: distance
 * computation, top-k selection, codec scans, and K-means assignment.
 * These are the per-vector costs the at-scale cost model abstracts into
 * scan_gbps_per_core.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <limits>

#include "cluster/kmeans.hpp"
#include "quant/codec.hpp"
#include "util/rng.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/simd_dispatch.hpp"
#include "vecstore/topk.hpp"

namespace {

using namespace hermes;

vecstore::Matrix
randomMatrix(std::size_t rows, std::size_t dim, std::uint64_t seed)
{
    util::Rng rng(seed);
    vecstore::Matrix m(rows, dim);
    for (std::size_t i = 0; i < rows; ++i) {
        auto row = m.row(i);
        for (std::size_t j = 0; j < dim; ++j)
            row[j] = static_cast<float>(rng.gaussian());
    }
    return m;
}

void
BM_L2Distance(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    auto data = randomMatrix(2, dim, 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(vecstore::l2Sq(data.row(0).data(),
                                                data.row(1).data(), dim));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            dim * sizeof(float) * 2);
}
BENCHMARK(BM_L2Distance)->Arg(96)->Arg(768);

void
BM_DotProduct(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    auto data = randomMatrix(2, dim, 2);
    for (auto _ : state) {
        benchmark::DoNotOptimize(vecstore::dot(data.row(0).data(),
                                               data.row(1).data(), dim));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            dim * sizeof(float) * 2);
}
BENCHMARK(BM_DotProduct)->Arg(96)->Arg(768);

/**
 * Blocked query-vs-rows kernel: one call scores a whole contiguous list.
 * bytes/sec here is what the cost model's scan_gbps_per_core abstracts.
 */
void
BM_L2DistanceBatch(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    auto base = randomMatrix(n, dim, 11);
    auto query = randomMatrix(1, dim, 12);
    std::vector<float> out(n);
    for (auto _ : state) {
        vecstore::l2SqBatch(query.row(0).data(), base.data(), n, dim,
                            out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * dim * sizeof(float));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_L2DistanceBatch)
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});

void
BM_DotProductBatch(benchmark::State &state)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    auto base = randomMatrix(n, dim, 13);
    auto query = randomMatrix(1, dim, 14);
    std::vector<float> out(n);
    for (auto _ : state) {
        vecstore::dotBatch(query.row(0).data(), base.data(), n, dim,
                           out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * dim * sizeof(float));
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_DotProductBatch)
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});

void
BM_TopKSelection(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    util::Rng rng(3);
    std::vector<float> scores(n);
    for (auto &s : scores)
        s = static_cast<float>(rng.uniform());
    for (auto _ : state) {
        vecstore::TopK selector(10);
        for (std::size_t i = 0; i < n; ++i)
            selector.push(static_cast<vecstore::VecId>(i), scores[i]);
        benchmark::DoNotOptimize(selector.take());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_TopKSelection)->Arg(1024)->Arg(65536);

void
BM_CodecScan(benchmark::State &state, const std::string &spec)
{
    const std::size_t dim = 96;
    const std::size_t n = 4096;
    auto data = randomMatrix(n, dim, 4);
    auto codec = quant::makeCodec(spec, dim);
    codec->train(data);

    std::vector<std::uint8_t> codes(n * codec->codeSize());
    for (std::size_t i = 0; i < n; ++i)
        codec->encode(data.row(i), codes.data() + i * codec->codeSize());

    auto query = randomMatrix(1, dim, 5);
    for (auto _ : state) {
        auto computer = codec->distanceComputer(vecstore::Metric::L2,
                                                query.row(0));
        float acc = 0.f;
        for (std::size_t i = 0; i < n; ++i)
            acc += (*computer)(codes.data() + i * codec->codeSize());
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * codec->codeSize());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK_CAPTURE(BM_CodecScan, Flat, "Flat");
BENCHMARK_CAPTURE(BM_CodecScan, SQ8, "SQ8");
BENCHMARK_CAPTURE(BM_CodecScan, SQ4, "SQ4");
BENCHMARK_CAPTURE(BM_CodecScan, PQ16, "PQ16");

/**
 * Batched DistanceComputer::scan() — the IVF inner loop's shape: one
 * virtual call per probed list instead of one per code. Args are
 * {dim, list size}; an infinite threshold requests exact scores so the
 * scalar and SIMD arms do identical work.
 */
void
BM_CodecScanBatch(benchmark::State &state, const std::string &spec)
{
    const auto dim = static_cast<std::size_t>(state.range(0));
    const auto n = static_cast<std::size_t>(state.range(1));
    // Train on a subset: codebook quality is irrelevant to scan cost and
    // full-list PQ training at d=768 would dominate setup time.
    const std::size_t train_rows = std::min<std::size_t>(n, 4096);
    auto data = randomMatrix(n, dim, 15);
    auto codec = quant::makeCodec(spec, dim);
    {
        vecstore::Matrix train(train_rows, dim);
        for (std::size_t i = 0; i < train_rows; ++i) {
            auto src = data.row(i);
            auto dst = train.row(i);
            std::copy(src.data(), src.data() + dim, dst.data());
        }
        codec->train(train);
    }

    std::vector<std::uint8_t> codes(n * codec->codeSize());
    for (std::size_t i = 0; i < n; ++i)
        codec->encode(data.row(i), codes.data() + i * codec->codeSize());

    auto query = randomMatrix(1, dim, 16);
    auto computer = codec->distanceComputer(vecstore::Metric::L2,
                                            query.row(0));
    std::vector<float> out(n);
    for (auto _ : state) {
        computer->scan(codes.data(), n,
                       std::numeric_limits<float>::max(), out.data());
        benchmark::DoNotOptimize(out.data());
        benchmark::ClobberMemory();
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n * codec->codeSize());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            n);
}
BENCHMARK_CAPTURE(BM_CodecScanBatch, Flat, "Flat")
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});
BENCHMARK_CAPTURE(BM_CodecScanBatch, SQ8, "SQ8")
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});
BENCHMARK_CAPTURE(BM_CodecScanBatch, PQ16, "PQ16")
    ->Args({96, 1024})->Args({96, 32768})
    ->Args({768, 1024})->Args({768, 32768});

void
BM_KMeansAssign(benchmark::State &state)
{
    auto data = randomMatrix(4096, 32, 6);
    auto centroids = randomMatrix(64, 32, 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cluster::assignToCentroids(data, centroids));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            4096);
}
BENCHMARK(BM_KMeansAssign);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    // Record which dispatch arm ran so JSON captures are self-describing
    // (HERMES_SIMD=scalar forces the fallback arm).
    benchmark::AddCustomContext("hermes_simd",
                                hermes::vecstore::simd::activeIsa());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
