/**
 * @file
 * Fig 20 reproduction: Hermes retrieval latency and throughput vs
 * clusters searched across CPU generations (Neoverse-N1 at batch 32 and
 * 128, Xeon Gold 6448Y, Platinum 8380, Silver 4316).
 */

#include "bench_common.hpp"

#include "sim/node_sim.hpp"
#include "sim/pipeline.hpp"

namespace {

using namespace hermes;

void
platformRows(util::TablePrinter &table, const std::string &label,
             sim::CpuModel cpu, std::size_t batch)
{
    for (std::size_t deep : {1u, 3u, 5u, 8u, 10u}) {
        sim::MultiNodeConfig config;
        config.total.tokens = 10e9;
        config.num_clusters = 10;
        config.batch = batch;
        config.cpu = cpu;
        // FAISS splits a query's probed lists across idle cores when a
        // node has fewer queries than cores — visible in Fig 20, where
        // searching fewer clusters per query also means fewer queries
        // per node and therefore faster batches.
        config.intra_query_parallelism = true;
        auto result =
            sim::MultiNodeSimulator(config).simulateUniformBatch(deep);
        table.row({label, std::to_string(batch), std::to_string(deep),
                   util::TablePrinter::num(result.latency, 3),
                   util::TablePrinter::num(result.throughput_qps, 0)});
    }
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 20", "Hermes retrieval across CPU platforms",
        "Platinum 8380 achieves the best latency (0.084-0.13s) and "
        "throughput (249-379 QPS); the ARM Neoverse-N1 has slower cores "
        "but recovers throughput at batch 128 when few clusters are "
        "searched");

    util::TablePrinter table({18, 8, 10, 18, 10});
    table.header({"platform", "batch", "clusters", "time/batch (s)",
                  "QPS"});
    platformRows(table, "Neoverse-N1", sim::CpuModel::NeoverseN1, 32);
    platformRows(table, "Neoverse-N1", sim::CpuModel::NeoverseN1, 128);
    platformRows(table, "Gold 6448Y", sim::CpuModel::XeonGold6448Y, 32);
    platformRows(table, "Platinum 8380", sim::CpuModel::XeonPlatinum8380,
                 32);
    platformRows(table, "Silver 4316", sim::CpuModel::XeonSilver4316, 32);

    sim::LlmCostModel llm(sim::LlmModel::Gemma2_9B,
                          sim::GpuModel::A6000Ada);
    double inference = llm.prefillLatency(32, 512) +
                       llm.decodeLatency(32, 16);
    std::printf("\nGemma2-9B inference window at batch 32: %.3fs — "
                "platforms whose time/batch\nstays below it keep "
                "retrieval fully hidden (the horizontal line in Fig "
                "20).\n\n", inference);
    return 0;
}
