/**
 * @file
 * Shared helpers for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one table or figure from the paper and
 * prints (a) a "# paper:" line quoting what the paper reports and (b) the
 * measured/modeled rows in the same shape, so EXPERIMENTS.md can record
 * paper-vs-reproduction deltas.
 */

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "obs/obs.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "vecstore/simd_dispatch.hpp"
#include "workload/corpus.hpp"

namespace hermes {
namespace bench {

/**
 * Print the bench banner: figure id, title, and the paper's claim.
 *
 * Also arms the exit-time observability dump: bench mains take no argv, so
 * metrics/trace capture is opt-in via HERMES_METRICS_JSON, HERMES_TRACE_OUT
 * and HERMES_TRACE_SAMPLE environment variables.
 */
inline void
banner(const std::string &figure, const std::string &title,
       const std::string &paper_claim)
{
    obs::autoDumpFromEnv();
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), title.c_str());
    std::printf("# paper: %s\n", paper_claim.c_str());
    std::printf("# simd: %s kernels (override with HERMES_SIMD=scalar|avx2)\n",
                vecstore::simd::activeIsa());
    std::printf("==============================================================\n");
}

/** A laptop-scale measured-retrieval testbed shared by accuracy benches. */
struct MeasuredTestbed
{
    workload::Corpus corpus;
    workload::QuerySet queries;
    std::vector<vecstore::HitList> truth;
    core::HermesConfig config;
    std::unique_ptr<core::DistributedStore> store;

    /** Mean NDCG@k of a strategy over the query set. */
    double
    ndcg(const core::SearchStrategy &strategy, std::size_t k) const
    {
        std::vector<vecstore::HitList> results;
        results.reserve(queries.embeddings.rows());
        for (std::size_t q = 0; q < queries.embeddings.rows(); ++q)
            results.push_back(
                strategy.search(queries.embeddings.row(q), k).hits);
        return eval::meanNdcgAtK(results, truth, k);
    }
};

/**
 * Build the standard measured testbed: a topic corpus standing in for the
 * paper's 100M-token Common Crawl subset (DESIGN.md §1), Zipf-popular
 * queries standing in for TriviaQA/NQ, exact ground truth, and a
 * similarity-partitioned distributed store.
 */
inline MeasuredTestbed
buildTestbed(std::size_t num_docs = 20000, std::size_t dim = 32,
             std::size_t num_queries = 128, std::size_t num_clusters = 10,
             std::size_t clusters_to_search = 3, std::size_t deep_nprobe = 32,
             std::size_t sample_nprobe = 4)
{
    MeasuredTestbed tb;
    workload::CorpusConfig cc;
    cc.num_docs = num_docs;
    cc.dim = dim;
    cc.num_topics = 3 * num_clusters;
    cc.topic_zipf = 0.7;
    cc.seed = 1234;
    tb.corpus = workload::generateCorpus(cc);

    workload::QueryConfig qc;
    qc.num_queries = num_queries;
    qc.topic_zipf = 0.9;
    qc.seed = 4321;
    tb.queries = workload::generateQueries(tb.corpus, qc);
    tb.truth = eval::exactGroundTruth(tb.corpus.embeddings,
                                      tb.queries.embeddings, 5,
                                      vecstore::Metric::L2);

    tb.config.num_clusters = num_clusters;
    tb.config.clusters_to_search = clusters_to_search;
    tb.config.sample_nprobe = sample_nprobe;
    tb.config.deep_nprobe = deep_nprobe;
    tb.config.docs_to_retrieve = 5;
    tb.config.partition.seeds_to_try = 4;
    tb.store = std::make_unique<core::DistributedStore>(
        core::DistributedStore::build(tb.corpus.embeddings, tb.config));
    return tb;
}

/** Format tokens as "100M", "10B", "1T". */
inline std::string
tokenLabel(double tokens)
{
    if (tokens >= 1e12)
        return util::TablePrinter::num(tokens / 1e12, 0) + "T";
    if (tokens >= 1e9)
        return util::TablePrinter::num(tokens / 1e9, 0) + "B";
    return util::TablePrinter::num(tokens / 1e6, 0) + "M";
}

} // namespace bench
} // namespace hermes
