/**
 * @file
 * Fig 17 reproduction: Hermes gains across inference model architectures
 * (Phi-1.5, Gemma2-9B, OPT-30B) and GPU platforms (A6000 Ada, L4).
 */

#include "bench_common.hpp"

#include "sim/pipeline.hpp"

namespace {

using namespace hermes;

void
compareRow(util::TablePrinter &table, const std::string &label,
           sim::LlmModel model, sim::GpuModel gpu)
{
    sim::PipelineConfig base;
    base.datastore.tokens = 100e9;
    base.model = model;
    base.gpu = gpu;

    sim::PipelineConfig hermes = base;
    hermes.retrieval = sim::RetrievalMode::Hermes;
    hermes.dvfs = sim::DvfsPolicy::MatchInference;

    sim::PipelineConfig combined = hermes;
    combined.pipelining = true;
    combined.prefix_caching = true;

    auto r_base = sim::RagPipelineSim(base).run();
    auto r_hermes = sim::RagPipelineSim(hermes).run();
    auto r_combined = sim::RagPipelineSim(combined).run();

    std::size_t gpus = sim::LlmCostModel(model, gpu).numGpus();
    table.row({label, std::to_string(gpus),
               util::TablePrinter::num(r_hermes.e2e / r_base.e2e, 3),
               util::TablePrinter::num(r_combined.e2e / r_base.e2e, 3),
               util::TablePrinter::num(r_base.e2e / r_hermes.e2e, 2) + "x",
               util::TablePrinter::num(r_base.totalEnergy() /
                                       r_hermes.totalEnergy(), 2) + "x"});
}

} // namespace

int
main()
{
    util::setQuiet(true);
    bench::banner(
        "Fig 17", "Hermes across model architectures and GPUs",
        "speedups shrink as inference grows: ~9.38x with Phi-1.5 down to "
        "~3.92x with OPT-30B (energy 2.20x -> 1.87x); works on both "
        "A6000 Ada and L4 (L4 energy savings smaller: 2.11x vs 3.84x)");

    std::printf("Model architecture sweep (A6000 Ada, 100B tokens):\n");
    util::TablePrinter models({16, 6, 12, 12, 10, 10});
    models.header({"model", "GPUs", "Hermes", "Hermes+P+C", "speedup",
                   "energy"});
    compareRow(models, "Phi-1.5 (1.3B)", sim::LlmModel::Phi15,
               sim::GpuModel::A6000Ada);
    compareRow(models, "Gemma2 (9B)", sim::LlmModel::Gemma2_9B,
               sim::GpuModel::A6000Ada);
    compareRow(models, "OPT (30B)", sim::LlmModel::Opt30B,
               sim::GpuModel::A6000Ada);

    std::printf("\nHardware platform sweep (Gemma2-9B, 100B tokens):\n");
    util::TablePrinter gpus({16, 6, 12, 12, 10, 10});
    gpus.header({"GPU", "GPUs", "Hermes", "Hermes+P+C", "speedup",
                 "energy"});
    compareRow(gpus, "A6000 Ada", sim::LlmModel::Gemma2_9B,
               sim::GpuModel::A6000Ada);
    compareRow(gpus, "L4", sim::LlmModel::Gemma2_9B, sim::GpuModel::L4);

    std::printf("\nNormalized columns are vs each row's own baseline. "
                "Slower inference (bigger\nmodel / weaker GPU) absorbs "
                "more of the retrieval win, shrinking the speedup —\nthe "
                "paper's Takeaway 3.\n\n");
    return 0;
}
