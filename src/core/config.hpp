/**
 * @file
 * Hermes framework configuration (paper Table 2).
 *
 * | Configuration aspect | Tuning option                     |
 * |----------------------|-----------------------------------|
 * | Latency & accuracy   | Sample search depth (sample_nprobe)|
 * |                      | Deep search depth (deep_nprobe)   |
 * |                      | Clusters to search in depth       |
 * |                      | Documents to retrieve (k)         |
 * | Node scaling         | Number of search indices          |
 * | Memory efficiency    | Size of search indices (codec)    |
 */

#pragma once

#include <cstdint>
#include <string>

#include "cluster/partitioner.hpp"

namespace hermes {
namespace core {

/** Full Hermes deployment configuration. */
struct HermesConfig
{
    /** Number of clustered indices / nodes (paper default: 10). */
    std::size_t num_clusters = 10;

    /**
     * nProbe for the coarse sampling pass over every cluster
     * (paper DSE optimum: 8; Fig 12 left).
     */
    std::size_t sample_nprobe = 8;

    /**
     * nProbe for the in-depth search of the selected clusters
     * (paper DSE optimum: 128; Fig 12 right).
     */
    std::size_t deep_nprobe = 128;

    /** Clusters selected for the in-depth search (paper: 3; Fig 11). */
    std::size_t clusters_to_search = 3;

    /** Documents retrieved per query (paper: 5). */
    std::size_t docs_to_retrieve = 5;

    /** Documents sampled per cluster during the sampling pass (paper: 1). */
    std::size_t sample_k = 1;

    /** Codec for the per-cluster IVF indices (paper: SQ8). */
    std::string codec = "SQ8";

    /**
     * Inverted lists per cluster index; 0 selects sqrt(cluster size),
     * the paper's nlist heuristic.
     */
    std::size_t nlist_per_cluster = 0;

    /**
     * Adaptive cluster pruning (extension; SPANN-style, paper §7): when
     * positive, the deep search visits only the ranked clusters whose
     * sampled best distance is within (1 + adaptive_epsilon) x the best
     * cluster's sampled distance, never more than clusters_to_search.
     * Saves work on easy queries whose relevant documents concentrate in
     * one or two clusters. 0 disables (paper behaviour: always search
     * exactly clusters_to_search).
     */
    double adaptive_epsilon = 0.0;

    /** Partitioning configuration (§4.1). */
    cluster::PartitionConfig partition;

    /** Validate invariants; fatal on nonsense configurations. */
    void validate() const;
};

} // namespace core
} // namespace hermes
