/**
 * @file
 * Final document reranking (paper §5): after retrieval, the nearest chunk
 * of the k retrieved is selected by inner-product distance with the query
 * vector and prepended to the prompt.
 */

#pragma once

#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace core {

/**
 * Rerank @p hits by exact inner product between @p query and the original
 * full-precision embeddings in @p data (hit ids are row indices).
 * Returns a new list, highest inner product first.
 */
vecstore::HitList rerankByInnerProduct(const vecstore::Matrix &data,
                                       vecstore::VecView query,
                                       const vecstore::HitList &hits);

} // namespace core
} // namespace hermes
