#include "core/search_strategy.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace core {

workload::ClusterTrace
SearchStrategy::traceBatch(const vecstore::Matrix &queries, std::size_t k,
                           std::vector<vecstore::HitList> *results) const
{
    workload::ClusterTrace trace;
    trace.num_clusters = numClusters();
    trace.records.reserve(queries.rows());
    if (results)
        results->reserve(queries.rows());

    for (std::size_t q = 0; q < queries.rows(); ++q) {
        auto result = search(queries.row(q), k);
        workload::TraceRecord record;
        record.query = static_cast<std::uint32_t>(q);
        record.clusters = result.deep_clusters;
        trace.records.push_back(std::move(record));
        if (results)
            results->push_back(std::move(result.hits));
    }
    return trace;
}

// ---------------------------------------------------------------------------
// MonolithicSearch
// ---------------------------------------------------------------------------

MonolithicSearch::MonolithicSearch(const vecstore::Matrix &data,
                                   const std::string &codec,
                                   std::size_t nprobe, std::size_t nlist)
    : nprobe_(nprobe)
{
    index::IvfConfig config;
    config.codec = codec;
    config.nlist = nlist ? nlist : index::IvfIndex::suggestedNlist(
        data.rows());
    index_ = std::make_unique<index::IvfIndex>(data.dim(),
                                               vecstore::Metric::L2, config);
    index_->train(data);
    index_->addSequential(data);
}

QueryResult
MonolithicSearch::search(vecstore::VecView query, std::size_t k) const
{
    QueryResult result;
    index::SearchParams params;
    params.nprobe = nprobe_;
    result.deep_stats.resize(1);
    result.hits = index_->search(query, k, params, &result.deep_stats[0]);
    result.deep_clusters = {0};
    result.total = result.deep_stats[0];
    return result;
}

// ---------------------------------------------------------------------------
// NaiveSplitSearch
// ---------------------------------------------------------------------------

NaiveSplitSearch::NaiveSplitSearch(const DistributedStore &store)
    : store_(store)
{
}

QueryResult
NaiveSplitSearch::search(vecstore::VecView query, std::size_t k) const
{
    const auto &config = store_.config();
    QueryResult result;
    const std::size_t n = store_.numClusters();
    result.deep_stats.resize(n);
    result.deep_clusters.reserve(n);

    std::vector<vecstore::HitList> partials;
    partials.reserve(n);
    index::SearchParams params;
    params.nprobe = config.deep_nprobe;
    for (std::size_t c = 0; c < n; ++c) {
        partials.push_back(store_.clusterIndex(c).search(
            query, k, params, &result.deep_stats[c]));
        result.deep_clusters.push_back(static_cast<std::uint32_t>(c));
        result.total.merge(result.deep_stats[c]);
    }
    result.hits = vecstore::mergeHitLists(partials, k);
    return result;
}

// ---------------------------------------------------------------------------
// CentroidRouting
// ---------------------------------------------------------------------------

CentroidRouting::CentroidRouting(const DistributedStore &store,
                                 std::size_t clusters_override)
    : store_(store),
      clusters_to_search_(clusters_override
                              ? clusters_override
                              : store.config().clusters_to_search)
{
    HERMES_ASSERT(clusters_to_search_ <= store_.numClusters(),
                  "clusters_to_search exceeds cluster count");
}

QueryResult
CentroidRouting::search(vecstore::VecView query, std::size_t k) const
{
    const auto &config = store_.config();
    QueryResult result;
    result.deep_stats.resize(store_.numClusters());

    auto ranked = cluster::nearestCentroids(query, store_.centroids(),
                                            clusters_to_search_);
    // Centroid comparisons are counted as sampling-phase work: one
    // distance per cluster.
    result.sample_stats.resize(store_.numClusters());
    for (std::size_t c = 0; c < store_.numClusters(); ++c) {
        result.sample_stats[c].distance_computations = 1;
        result.total.distance_computations += 1;
    }

    std::vector<vecstore::HitList> partials;
    index::SearchParams params;
    params.nprobe = config.deep_nprobe;
    for (auto c : ranked) {
        partials.push_back(store_.clusterIndex(c).search(
            query, k, params, &result.deep_stats[c]));
        result.deep_clusters.push_back(c);
        result.total.merge(result.deep_stats[c]);
    }
    result.hits = vecstore::mergeHitLists(partials, k);
    return result;
}

// ---------------------------------------------------------------------------
// HermesSearch
// ---------------------------------------------------------------------------

HermesSearch::HermesSearch(const DistributedStore &store,
                           std::size_t clusters_override,
                           std::size_t sample_nprobe_override,
                           std::size_t deep_nprobe_override)
    : store_(store),
      clusters_to_search_(clusters_override
                              ? clusters_override
                              : store.config().clusters_to_search),
      sample_nprobe_(sample_nprobe_override
                         ? sample_nprobe_override
                         : store.config().sample_nprobe),
      deep_nprobe_(deep_nprobe_override ? deep_nprobe_override
                                        : store.config().deep_nprobe)
{
    HERMES_ASSERT(clusters_to_search_ <= store_.numClusters(),
                  "clusters_to_search exceeds cluster count");
}

std::vector<std::pair<float, std::uint32_t>>
HermesSearch::rankClustersBySampling(
    vecstore::VecView query,
    std::vector<index::SearchStats> &sample_stats) const
{
    const auto &config = store_.config();
    const std::size_t n = store_.numClusters();
    sample_stats.resize(n);

    // Document sampling (paper §4.2): retrieve sample_k documents from
    // every cluster with a cheap low-nProbe search and score the cluster
    // by its best sampled document. Unlike centroid routing, this probes
    // actual documents, so clusters whose centroid is mediocre but which
    // contain a pocket of highly relevant documents still rank high.
    index::SearchParams params;
    params.nprobe = sample_nprobe_;

    std::vector<std::pair<float, std::uint32_t>> scored;
    scored.reserve(n);
    for (std::size_t c = 0; c < n; ++c) {
        auto hits = store_.clusterIndex(c).search(query, config.sample_k,
                                                  params, &sample_stats[c]);
        float best = hits.empty() ? std::numeric_limits<float>::max()
                                  : hits.front().score;
        scored.emplace_back(best, static_cast<std::uint32_t>(c));
    }
    std::sort(scored.begin(), scored.end());
    return scored;
}

QueryResult
HermesSearch::search(vecstore::VecView query, std::size_t k) const
{
    static obs::Histogram &h_query = obs::Registry::instance().histogram(
        obs::names::kCoreQueryLatencyUs);
    static obs::Histogram &h_sample = obs::Registry::instance().histogram(
        obs::names::kCoreSamplePhaseUs);
    static obs::Histogram &h_deep = obs::Registry::instance().histogram(
        obs::names::kCoreDeepPhaseUs);

    QueryResult result;
    result.deep_stats.resize(store_.numClusters());

    obs::TraceContext trace_context(
        obs::TraceRecorder::instance().sampleQuery());
    obs::ScopedSpan query_span("core.search");
    query_span.arg("k", static_cast<std::uint64_t>(k));
    util::Timer query_timer;
    util::Timer phase_timer;

    // Phase 1: sample + rank.
    std::vector<std::pair<float, std::uint32_t>> ranked;
    {
        obs::ScopedSpan span("core.sample");
        ranked = rankClustersBySampling(query, result.sample_stats);
    }
    for (const auto &stats : result.sample_stats)
        result.total.merge(stats);
    h_sample.observe(phase_timer.elapsedMicros());

    // Phase 2: deep search of the top clusters. With adaptive pruning
    // enabled, clusters far from the best sampled distance are skipped
    // (extension; see HermesConfig::adaptive_epsilon).
    phase_timer.reset();
    index::SearchParams params;
    params.nprobe = deep_nprobe_;
    std::vector<vecstore::HitList> partials;
    std::size_t deep = std::min(clusters_to_search_, ranked.size());
    double epsilon = store_.config().adaptive_epsilon;
    if (epsilon > 0.0 && !ranked.empty()) {
        float bound = adaptivePruneBound(ranked.front().first, epsilon);
        std::size_t keep = 0;
        while (keep < deep && ranked[keep].first <= bound)
            ++keep;
        deep = std::max<std::size_t>(keep, 1);
    }
    {
        obs::ScopedSpan span("core.deep");
        span.arg("clusters", static_cast<std::uint64_t>(deep));
        for (std::size_t i = 0; i < deep; ++i) {
            std::uint32_t c = ranked[i].second;
            partials.push_back(store_.clusterIndex(c).search(
                query, k, params, &result.deep_stats[c]));
            result.deep_clusters.push_back(c);
            result.total.merge(result.deep_stats[c]);
        }
    }
    h_deep.observe(phase_timer.elapsedMicros());

    // Phase 3: rerank merged candidates into the final top-k.
    result.hits = vecstore::mergeHitLists(partials, k);
    h_query.observe(query_timer.elapsedMicros());
    return result;
}

} // namespace core
} // namespace hermes
