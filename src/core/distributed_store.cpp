#include "core/distributed_store.hpp"

#include "util/logging.hpp"
#include "util/threadpool.hpp"

namespace hermes {
namespace core {

void
HermesConfig::validate() const
{
    if (num_clusters == 0)
        HERMES_FATAL("HermesConfig: num_clusters must be >= 1");
    if (clusters_to_search == 0 || clusters_to_search > num_clusters) {
        HERMES_FATAL("HermesConfig: clusters_to_search (",
                     clusters_to_search, ") must be in [1, num_clusters=",
                     num_clusters, "]");
    }
    if (docs_to_retrieve == 0)
        HERMES_FATAL("HermesConfig: docs_to_retrieve must be >= 1");
    if (sample_k == 0)
        HERMES_FATAL("HermesConfig: sample_k must be >= 1");
    if (sample_nprobe == 0 || deep_nprobe == 0)
        HERMES_FATAL("HermesConfig: nProbe values must be >= 1");
}

DistributedStore
DistributedStore::build(const vecstore::Matrix &data,
                        const HermesConfig &config)
{
    config.validate();
    HERMES_ASSERT(data.rows() >= config.num_clusters,
                  "datastore smaller than cluster count");

    DistributedStore store;
    store.config_ = config;
    store.config_.partition.num_partitions = config.num_clusters;

    store.partition_ = cluster::partition(data, store.config_.partition);
    store.centroids_ = store.partition_.centroids;

    // Per-cluster index construction is independent and deterministic
    // (seeded per cluster), so it parallelizes across cores without
    // changing the result.
    store.indices_.resize(config.num_clusters);
    util::ThreadPool pool;
    pool.parallelFor(config.num_clusters, [&](std::size_t c) {
        const auto &members = store.partition_.members[c];
        HERMES_ASSERT(!members.empty(),
                      "similarity partitioning produced empty cluster ", c);

        vecstore::Matrix cluster_data = data.gather(members);
        std::vector<vecstore::VecId> ids;
        ids.reserve(members.size());
        for (std::size_t row : members)
            ids.push_back(static_cast<vecstore::VecId>(row));

        index::IvfConfig ivf;
        ivf.codec = config.codec;
        ivf.nlist = config.nlist_per_cluster
            ? config.nlist_per_cluster
            : index::IvfIndex::suggestedNlist(members.size());
        ivf.nlist = std::min(ivf.nlist, members.size());
        ivf.seed = 0x1d10 + c;

        auto idx = std::make_unique<index::IvfIndex>(
            data.dim(), vecstore::Metric::L2, ivf);
        idx->train(cluster_data);
        idx->add(cluster_data, ids);
        store.indices_[c] = std::move(idx);
    });
    return store;
}

DistributedStore
DistributedStore::assemble(
    const HermesConfig &config,
    std::vector<std::unique_ptr<index::IvfIndex>> indices,
    vecstore::Matrix centroids)
{
    config.validate();
    HERMES_ASSERT(indices.size() == config.num_clusters,
                  "assemble: expected ", config.num_clusters,
                  " indices, got ", indices.size());
    HERMES_ASSERT(centroids.rows() == config.num_clusters,
                  "assemble: centroid count mismatch");
    for (std::size_t c = 0; c < indices.size(); ++c) {
        HERMES_ASSERT(indices[c] != nullptr && indices[c]->isTrained(),
                      "assemble: cluster ", c, " index missing/untrained");
        HERMES_ASSERT(indices[c]->dim() == centroids.dim(),
                      "assemble: cluster ", c, " dim mismatch");
    }

    DistributedStore store;
    store.config_ = config;
    store.centroids_ = std::move(centroids);
    store.indices_ = std::move(indices);
    store.partition_.centroids = store.centroids_;
    store.partition_.members.resize(store.indices_.size());
    std::vector<std::size_t> sizes;
    for (const auto &idx : store.indices_)
        sizes.push_back(idx->size());
    store.partition_.imbalance = cluster::imbalance(sizes);
    return store;
}

const index::IvfIndex &
DistributedStore::clusterIndex(std::size_t c) const
{
    HERMES_ASSERT(c < indices_.size(), "bad cluster index ", c);
    return *indices_[c];
}

std::size_t
DistributedStore::clusterSize(std::size_t c) const
{
    return clusterIndex(c).size();
}

std::size_t
DistributedStore::totalVectors() const
{
    std::size_t total = 0;
    for (const auto &idx : indices_)
        total += idx->size();
    return total;
}

std::size_t
DistributedStore::memoryBytes() const
{
    std::size_t total = centroids_.memoryBytes();
    for (const auto &idx : indices_)
        total += idx->memoryBytes();
    return total;
}

} // namespace core
} // namespace hermes
