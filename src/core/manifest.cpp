#include "core/manifest.hpp"

#include <fstream>
#include <map>

#include "util/logging.hpp"

namespace hermes {
namespace core {

void
Manifest::save(const std::filesystem::path &dir) const
{
    std::ofstream out(dir / "manifest.txt");
    if (!out)
        HERMES_FATAL("cannot write manifest in ", dir.string());
    out << "type=" << type << '\n';
    out << "num_clusters=" << num_clusters << '\n';
    out << "dim=" << dim << '\n';
    out << "codec=" << codec << '\n';
    out << "corpus=" << corpus_file << '\n';
    out << "centroids=" << centroids_file << '\n';
    for (std::size_t c = 0; c < cluster_files.size(); ++c)
        out << "cluster_" << c << '=' << cluster_files[c] << '\n';
}

Manifest
Manifest::load(const std::filesystem::path &dir)
{
    std::ifstream in(dir / "manifest.txt");
    if (!in)
        HERMES_FATAL("no manifest.txt in ", dir.string(),
                     " (run hermes_build_index first)");
    std::map<std::string, std::string> kv;
    std::string line;
    while (std::getline(in, line)) {
        auto eq = line.find('=');
        if (eq == std::string::npos)
            continue;
        kv[line.substr(0, eq)] = line.substr(eq + 1);
    }
    Manifest manifest;
    manifest.type = kv.at("type");
    manifest.num_clusters = std::stoul(kv.at("num_clusters"));
    manifest.dim = std::stoul(kv.at("dim"));
    manifest.codec = kv.at("codec");
    manifest.corpus_file = kv.at("corpus");
    manifest.centroids_file = kv.at("centroids");
    for (std::size_t c = 0; c < manifest.num_clusters; ++c)
        manifest.cluster_files.push_back(
            kv.at("cluster_" + std::to_string(c)));
    return manifest;
}

DistributedStore
loadStore(const std::filesystem::path &dir, const Manifest &manifest,
          HermesConfig config, StoreLoadMode mode)
{
    config.num_clusters = manifest.num_clusters;
    config.codec = manifest.codec;
    std::vector<std::unique_ptr<index::IvfIndex>> indices;
    for (const auto &file : manifest.cluster_files) {
        const std::string path = (dir / file).string();
        indices.push_back(mode == StoreLoadMode::kMapped
                              ? index::IvfIndex::openMapped(path)
                              : index::IvfIndex::load(path));
    }
    auto centroids =
        vecstore::Matrix::load((dir / manifest.centroids_file).string());
    return DistributedStore::assemble(config, std::move(indices),
                                      std::move(centroids));
}

DistributedStore
loadStore(const std::filesystem::path &dir, const Manifest &manifest,
          HermesConfig config)
{
    return loadStore(dir, manifest, std::move(config),
                     StoreLoadMode::kHeap);
}

} // namespace core
} // namespace hermes
