/**
 * @file
 * The distributed datastore: one IVF index per similarity cluster, each
 * deployable on its own node (paper §4.1, Fig 9/10).
 */

#pragma once

#include <memory>
#include <vector>

#include "core/config.hpp"
#include "index/ivf_index.hpp"
#include "vecstore/matrix.hpp"

namespace hermes {
namespace core {

/**
 * A set of per-cluster IVF indices plus the routing metadata (cluster
 * centroids) needed to direct queries.
 *
 * External ids stored in the cluster indices are the row indices of the
 * original datastore matrix, so results from different clusters are
 * directly comparable and rerankable.
 */
class DistributedStore
{
  public:
    /**
     * Partition @p data per @p config and build one IVF index per
     * partition.
     */
    static DistributedStore build(const vecstore::Matrix &data,
                                  const HermesConfig &config);

    /**
     * Assemble a store from pre-built cluster indices (e.g. loaded from
     * disk by the tools/ binaries). The returned store's partitioning()
     * diagnostics carry sizes only — per-row membership lists are not
     * recoverable from serialized indices.
     *
     * @param config    Hermes configuration (num_clusters must match).
     * @param indices   One trained IVF index per cluster.
     * @param centroids Cluster centroids (num_clusters x dim).
     */
    static DistributedStore
    assemble(const HermesConfig &config,
             std::vector<std::unique_ptr<index::IvfIndex>> indices,
             vecstore::Matrix centroids);

    /** Number of cluster indices. */
    std::size_t numClusters() const { return indices_.size(); }

    /** The IVF index of cluster @p c. */
    const index::IvfIndex &clusterIndex(std::size_t c) const;

    /** Vectors stored in cluster @p c. */
    std::size_t clusterSize(std::size_t c) const;

    /** Cluster centroids (num_clusters x dim). */
    const vecstore::Matrix &centroids() const { return centroids_; }

    /** Partitioning diagnostics (imbalance, chosen seed). */
    const cluster::Partitioning &partitioning() const { return partition_; }

    /** Embedding dimensionality. */
    std::size_t dim() const { return centroids_.dim(); }

    /** Total vectors across all clusters. */
    std::size_t totalVectors() const;

    /** Total payload memory across all cluster indices. */
    std::size_t memoryBytes() const;

    /** The configuration this store was built with. */
    const HermesConfig &config() const { return config_; }

  private:
    DistributedStore() = default;

    HermesConfig config_;
    cluster::Partitioning partition_;
    vecstore::Matrix centroids_;
    std::vector<std::unique_ptr<index::IvfIndex>> indices_;
};

} // namespace core
} // namespace hermes
