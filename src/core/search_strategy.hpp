/**
 * @file
 * Retrieval strategies compared throughout the paper (Fig 11):
 *
 *  - MonolithicSearch: one big IVF index over the whole datastore.
 *  - NaiveSplitSearch: distributed shards, every node searched per query.
 *  - CentroidRouting:  distributed shards, route by cluster centroid only.
 *  - HermesSearch:     distributed shards, hierarchical sample-then-deep
 *                      search (the paper's contribution, §4.2).
 */

#pragma once

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/distributed_store.hpp"
#include "index/ann_index.hpp"
#include "workload/trace.hpp"

namespace hermes {
namespace core {

/** Result of one strategy query, including per-node work for the sim. */
struct QueryResult
{
    /** Final top-k hits, best first. */
    vecstore::HitList hits;

    /** Clusters chosen for (or subjected to) deep search, best first. */
    std::vector<std::uint32_t> deep_clusters;

    /** Work done on each cluster node (size = numClusters; zeros where
     *  a node was not touched by the deep phase). */
    std::vector<index::SearchStats> deep_stats;

    /** Work done by the sampling pass, per cluster (empty if none). */
    std::vector<index::SearchStats> sample_stats;

    /** Aggregate work across all phases and nodes. */
    index::SearchStats total;
};

/**
 * Adaptive-pruning score bound: clusters whose sampled best score exceeds
 * this are skipped. The margin is additive on the score scale,
 * best + epsilon * |best|, which is correct for both metrics: L2 scores
 * are non-negative (where it equals the classic best * (1 + epsilon)),
 * while InnerProduct scores are negated dot products and may be negative —
 * there a multiplicative bound would shrink *below* best and prune
 * everything but the top cluster regardless of epsilon.
 */
inline float
adaptivePruneBound(float best, double epsilon)
{
    return best + static_cast<float>(epsilon) * std::fabs(best);
}

/** Abstract retrieval strategy. */
class SearchStrategy
{
  public:
    virtual ~SearchStrategy() = default;

    /** Retrieve the top-k documents for one query. */
    virtual QueryResult search(vecstore::VecView query,
                               std::size_t k) const = 0;

    /** Strategy name for reports. */
    virtual std::string name() const = 0;

    /**
     * Run a query batch and collect the per-query deep-search cluster
     * trace consumed by the multi-node simulator.
     */
    workload::ClusterTrace traceBatch(const vecstore::Matrix &queries,
                                      std::size_t k,
                                      std::vector<vecstore::HitList>
                                          *results = nullptr) const;

    /** Number of cluster nodes this strategy spans (1 for monolithic). */
    virtual std::size_t numClusters() const = 0;
};

/** Single large IVF index over the full datastore. */
class MonolithicSearch : public SearchStrategy
{
  public:
    /**
     * Build the monolithic baseline index.
     * @param data  Full datastore.
     * @param codec Codec spec (paper: SQ8).
     * @param nprobe Search depth (paper: 128).
     * @param nlist  0 = sqrt(N).
     */
    MonolithicSearch(const vecstore::Matrix &data, const std::string &codec,
                     std::size_t nprobe, std::size_t nlist = 0);

    QueryResult search(vecstore::VecView query,
                       std::size_t k) const override;
    std::string name() const override { return "monolithic"; }
    std::size_t numClusters() const override { return 1; }

    const index::IvfIndex &underlyingIndex() const { return *index_; }

  private:
    std::unique_ptr<index::IvfIndex> index_;
    std::size_t nprobe_;
};

/** Searches every cluster of a distributed store and aggregates. */
class NaiveSplitSearch : public SearchStrategy
{
  public:
    explicit NaiveSplitSearch(const DistributedStore &store);

    QueryResult search(vecstore::VecView query,
                       std::size_t k) const override;
    std::string name() const override { return "naive-split"; }
    std::size_t numClusters() const override { return store_.numClusters(); }

  private:
    const DistributedStore &store_;
};

/** Routes to the clusters whose centroids are closest to the query. */
class CentroidRouting : public SearchStrategy
{
  public:
    /**
     * @param store Distributed store to route over.
     * @param clusters_override Deep-search cluster count; 0 uses the
     *        store config's clusters_to_search.
     */
    explicit CentroidRouting(const DistributedStore &store,
                             std::size_t clusters_override = 0);

    QueryResult search(vecstore::VecView query,
                       std::size_t k) const override;
    std::string name() const override { return "centroid"; }
    std::size_t numClusters() const override { return store_.numClusters(); }

  private:
    const DistributedStore &store_;
    std::size_t clusters_to_search_;
};

/**
 * Hermes hierarchical search (paper §4.2, Fig 11 left):
 *  1. sample every cluster with a cheap low-nProbe search (sample_k docs),
 *  2. rank clusters by their best sampled document's distance,
 *  3. deep-search the top clusters_to_search clusters with a high nProbe,
 *  4. merge and rerank into the final top-k.
 */
class HermesSearch : public SearchStrategy
{
  public:
    /**
     * @param store Distributed store to search.
     * @param clusters_override Deep-search cluster count; 0 uses the
     *        store config's clusters_to_search.
     * @param sample_nprobe_override Sampling nProbe; 0 uses the store
     *        config's sample_nprobe.
     * @param deep_nprobe_override Deep-search nProbe; 0 uses the store
     *        config's deep_nprobe.
     */
    explicit HermesSearch(const DistributedStore &store,
                          std::size_t clusters_override = 0,
                          std::size_t sample_nprobe_override = 0,
                          std::size_t deep_nprobe_override = 0);

    QueryResult search(vecstore::VecView query,
                       std::size_t k) const override;
    std::string name() const override { return "hermes"; }
    std::size_t numClusters() const override { return store_.numClusters(); }

    /**
     * Rank all clusters for @p query by document sampling; returns
     * (sampled best distance, cluster id) pairs best-first and
     * accumulates sampling work into @p sample_stats.
     */
    std::vector<std::pair<float, std::uint32_t>>
    rankClustersBySampling(vecstore::VecView query,
                           std::vector<index::SearchStats>
                               &sample_stats) const;

  private:
    const DistributedStore &store_;
    std::size_t clusters_to_search_;
    std::size_t sample_nprobe_;
    std::size_t deep_nprobe_;
};

} // namespace core
} // namespace hermes
