#include "core/rerank.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/simd_dispatch.hpp"

namespace hermes {
namespace core {

vecstore::HitList
rerankByInnerProduct(const vecstore::Matrix &data, vecstore::VecView query,
                     const vecstore::HitList &hits)
{
    vecstore::HitList out;
    out.reserve(hits.size());
    // Hit rows are scattered, so this stays one kernel call per hit —
    // but the dispatch-table load is hoisted out of the loop.
    const auto &kt = vecstore::simd::active();
    for (const auto &hit : hits) {
        HERMES_ASSERT(hit.id >= 0 &&
                      static_cast<std::size_t>(hit.id) < data.rows(),
                      "rerank: hit id ", hit.id, " outside datastore");
        float ip = kt.dot(query.data(),
                          data.row(static_cast<std::size_t>(
                              hit.id)).data(),
                          data.dim());
        out.push_back({hit.id, -ip});
    }
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        if (a.score != b.score)
            return a.score < b.score;
        return a.id < b.id;
    });
    return out;
}

} // namespace core
} // namespace hermes
