/**
 * @file
 * The on-disk deployment manifest tying together the corpus matrix,
 * cluster centroids and the serialized per-cluster indices (artifact
 * appendix A.5 steps 7-12). Built once by hermes_build_index, consumed
 * by the serving and evaluation binaries ("build once, serve many").
 */

#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "core/distributed_store.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace hermes {
namespace core {

/** Deployment manifest: everything needed to reload a built index set. */
struct Manifest
{
    /** "monolithic", "split" (round-robin) or "clustered" (Hermes). */
    std::string type = "clustered";

    /** Number of cluster index files. */
    std::size_t num_clusters = 0;

    /** Embedding dimensionality. */
    std::size_t dim = 0;

    /** Codec spec the indices were built with. */
    std::string codec = "SQ8";

    /** File names, relative to the manifest directory. */
    std::string corpus_file = "corpus.hmat";
    std::string centroids_file = "centroids.hmat";
    std::vector<std::string> cluster_files;

    /** Write to @p dir/manifest.txt. */
    void save(const std::filesystem::path &dir) const;

    /** Load from @p dir/manifest.txt. */
    static Manifest load(const std::filesystem::path &dir);
};

/** How loadStore materializes the per-cluster index files. */
enum class StoreLoadMode
{
    /** Copy each index into heap storage (mutable, page-cache free). */
    kHeap,

    /**
     * Zero-copy mmap each index file (read-only views; millisecond
     * cold starts, memory shared with the page cache).
     */
    kMapped,
};

/**
 * Reload a DistributedStore from a manifest directory.
 *
 * @param mode kMapped opens every cluster index as a zero-copy mmap
 *             view; kHeap copies them into mutable heap storage.
 */
DistributedStore loadStore(const std::filesystem::path &dir,
                           const Manifest &manifest, HermesConfig config,
                           StoreLoadMode mode);

/** Heap-mode overload (historical default). */
DistributedStore loadStore(const std::filesystem::path &dir,
                           const Manifest &manifest, HermesConfig config);

/**
 * Run a loader, converting a typed format rejection into the historical
 * CLI discipline: a clean "truncated/corrupt archive" exit(1) instead of
 * an uncaught throw through std::terminate. For use at binary entry
 * points only — library code wants the FormatError itself.
 */
template <typename Fn>
auto
loadOrFatal(Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const util::FormatError &e) {
        HERMES_FATAL(e.code() == util::FormatErrorCode::Truncated
                         ? "truncated"
                         : "corrupt",
                     " archive: ", e.what());
    }
}

} // namespace core
} // namespace hermes
