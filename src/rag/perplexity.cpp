#include "rag/perplexity.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace hermes {
namespace rag {

namespace {

/** Flat baseline perplexities for non-retrieval models (WikiText-style). */
double
baselinePerplexity(sim::LlmModel model)
{
    switch (model) {
      case sim::LlmModel::Gpt2_762M: return 29.4;
      case sim::LlmModel::Gpt2_1_5B: return 24.3;
      case sim::LlmModel::Phi15:     return 21.0;
      case sim::LlmModel::Gemma2_9B: return 12.5;
      case sim::LlmModel::Opt30B:    return 14.0;
      case sim::LlmModel::BgeLarge:  return 0.0; // encoder: undefined
      case sim::LlmModel::Retro578M: return 31.5; // without retrieval
    }
    HERMES_PANIC("unknown model");
}

} // namespace

double
modelPerplexity(sim::LlmModel model, std::size_t stride_tokens)
{
    HERMES_ASSERT(stride_tokens >= 1, "stride must be >= 1");
    const auto &profile = sim::llmProfile(model);
    if (!profile.retrieval_augmented)
        return baselinePerplexity(model);

    // Retrieval-augmented curve: at stride 4 the 578M model matches the
    // 1.5B dense model (the paper's "half the parameters" observation);
    // quality decays logarithmically as the context goes stale between
    // retrievals, approaching the no-retrieval baseline at huge strides.
    double at_stride4 = 22.0;
    double slope = 2.2; // perplexity per doubling of stride
    double ppl = at_stride4 +
                 slope * std::log2(static_cast<double>(stride_tokens) / 4.0);
    double floor = 20.5;              // best case, stride 1
    double ceiling = baselinePerplexity(model);
    if (ppl < floor)
        ppl = floor;
    if (ppl > ceiling)
        ppl = ceiling;
    return ppl;
}

std::size_t
crossoverStride(sim::LlmModel retrieval_model, sim::LlmModel reference_model)
{
    double target = modelPerplexity(reference_model, 1);
    std::size_t best = 0;
    for (std::size_t stride = 1; stride <= 1024; stride *= 2) {
        if (modelPerplexity(retrieval_model, stride) <= target)
            best = stride;
    }
    return best;
}

} // namespace rag
} // namespace hermes
