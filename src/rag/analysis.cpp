#include "rag/analysis.hpp"

#include <algorithm>
#include <set>

#include "util/logging.hpp"

namespace hermes {
namespace rag {

namespace {

std::set<vecstore::VecId>
retrievedSet(const StrideEvent &event)
{
    std::set<vecstore::VecId> out;
    for (const auto &hit : event.retrieved)
        out.insert(hit.id);
    return out;
}

} // namespace

OverlapStats
strideOverlap(const GenerationResult &result)
{
    OverlapStats stats;
    if (result.strides.size() < 2)
        return stats;

    double jaccard_sum = 0.0;
    double hit_sum = 0.0;
    std::size_t best_repeats = 0;
    for (std::size_t s = 1; s < result.strides.size(); ++s) {
        auto prev = retrievedSet(result.strides[s - 1]);
        auto cur = retrievedSet(result.strides[s]);
        if (cur.empty())
            continue;

        std::size_t shared = 0;
        for (auto id : cur)
            shared += prev.count(id);
        std::size_t unioned = prev.size() + cur.size() - shared;
        jaccard_sum += unioned
            ? static_cast<double>(shared) / static_cast<double>(unioned)
            : 0.0;
        hit_sum += static_cast<double>(shared) /
                   static_cast<double>(cur.size());
        best_repeats += result.strides[s].best_chunk ==
                        result.strides[s - 1].best_chunk;
        ++stats.transitions;
    }
    if (stats.transitions) {
        auto n = static_cast<double>(stats.transitions);
        stats.mean_jaccard = jaccard_sum / n;
        stats.mean_hit_rate = hit_sum / n;
        stats.best_chunk_repeat_rate =
            static_cast<double>(best_repeats) / n;
    }
    return stats;
}

double
routingStability(const GenerationResult &result)
{
    if (result.strides.size() < 2)
        return 1.0;
    std::size_t stable = 0;
    for (std::size_t s = 1; s < result.strides.size(); ++s) {
        auto prev = result.strides[s - 1].deep_clusters;
        auto cur = result.strides[s].deep_clusters;
        std::sort(prev.begin(), prev.end());
        std::sort(cur.begin(), cur.end());
        stable += prev == cur;
    }
    return static_cast<double>(stable) /
           static_cast<double>(result.strides.size() - 1);
}

} // namespace rag
} // namespace hermes
