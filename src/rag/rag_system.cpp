#include "rag/rag_system.hpp"

#include <algorithm>

#include "core/rerank.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hermes {
namespace rag {

RagSystem::RagSystem(const RagSystemConfig &config)
    : config_(config), encoder_(config.embedding_dim),
      reranker_(makeReranker(config.reranker)),
      embeddings_(config.embedding_dim)
{
}

RagSystem::~RagSystem() = default;

void
RagSystem::addDocument(const std::string &text)
{
    if (ready()) {
        HERMES_FATAL("RagSystem: addDocument after finalize is not "
                     "supported (rebuild the system to ingest more data)");
    }
    datastore_.addDocument(text, config_.chunking);
}

void
RagSystem::finalize()
{
    HERMES_ASSERT(!ready(), "finalize called twice");
    if (datastore_.size() < config_.hermes.num_clusters) {
        HERMES_FATAL("RagSystem: ", datastore_.size(),
                     " chunks cannot fill ", config_.hermes.num_clusters,
                     " clusters; ingest more documents or reduce "
                     "num_clusters");
    }

    embeddings_ = encoder_.encodeBatch(datastore_.texts());
    store_ = std::make_unique<core::DistributedStore>(
        core::DistributedStore::build(embeddings_, config_.hermes));
    search_ = std::make_unique<core::HermesSearch>(*store_);

    HERMES_INFORM("RagSystem ready: ", datastore_.size(), " chunks (",
                  datastore_.totalTokens(), " tokens) across ",
                  store_->numClusters(), " clusters; imbalance ",
                  store_->partitioning().imbalance.max_min_ratio);
}

vecstore::HitList
RagSystem::retrieve(const std::string &question, std::size_t k) const
{
    HERMES_ASSERT(ready(), "retrieve before finalize");
    obs::TraceContext trace_context(
        obs::TraceRecorder::instance().sampleQuery());
    obs::ScopedSpan span("rag.retrieve");
    span.arg("k", static_cast<std::uint64_t>(k));
    auto query = encoder_.encode(question);
    auto result = search_->search(
        vecstore::VecView(query.data(), query.size()), k);
    RerankRequest request;
    request.question = question;
    request.query = vecstore::VecView(query.data(), query.size());
    request.candidates = std::move(result.hits);
    return reranker_->rerank(request, embeddings_, datastore_);
}

GenerationResult
RagSystem::generate(const std::string &question,
                    std::optional<GenerationConfig> maybe_config) const
{
    HERMES_ASSERT(ready(), "generate before finalize");
    GenerationConfig gen = maybe_config.value_or(config_.generation);
    HERMES_ASSERT(gen.stride >= 1, "stride must be >= 1");

    std::size_t num_strides =
        std::max<std::size_t>(gen.output_tokens / gen.stride, 1);
    std::size_t k = config_.hermes.docs_to_retrieve;

    static obs::Histogram &h_stride = obs::Registry::instance().histogram(
        obs::names::kRagStrideTotalUs);
    static obs::Histogram &h_retrieval = obs::Registry::instance().histogram(
        obs::names::kRagStrideRetrievalUs);
    static obs::Counter &c_strides =
        obs::Registry::instance().counter(obs::names::kRagStrides);

    obs::TraceContext trace_context(
        obs::TraceRecorder::instance().sampleQuery());
    obs::ScopedSpan generate_span("rag.generate");
    generate_span.arg("strides",
                      static_cast<std::uint64_t>(num_strides));

    GenerationResult result;
    util::Rng rng(gen.seed);

    // The surrogate decoder tracks a "context" of generated words; each
    // stride re-retrieves with question + generated-so-far (retrieval
    // striding, Fig 3) and extends the answer with words drawn from the
    // best chunk.
    std::string context = question;
    std::vector<std::string> output_words;

    for (std::size_t s = 0; s < num_strides; ++s) {
        StrideEvent event;
        event.index = s;

        obs::ScopedSpan stride_span("rag.stride");
        stride_span.arg("index", static_cast<std::uint64_t>(s));
        util::Timer stride_timer;

        util::Timer timer;
        std::vector<float> query;
        {
            obs::ScopedSpan span("rag.encode");
            query = encoder_.encode(context);
        }
        auto search_result = search_->search(
            vecstore::VecView(query.data(), query.size()), k);
        event.retrieval_seconds = timer.elapsedSeconds();
        h_retrieval.observe(event.retrieval_seconds * 1e6);
        event.deep_clusters = search_result.deep_clusters;
        RerankRequest request;
        request.question = context;
        request.query = vecstore::VecView(query.data(), query.size());
        request.candidates = std::move(search_result.hits);
        {
            obs::ScopedSpan span("rag.rerank");
            event.retrieved = reranker_->rerank(request, embeddings_,
                                                datastore_);
        }

        if (!event.retrieved.empty()) {
            event.best_chunk = event.retrieved.front().id;
            const auto &chunk = datastore_.chunk(event.best_chunk);
            auto words = HashingEncoder::tokenize(chunk.text);
            if (!words.empty()) {
                std::size_t start = rng.uniformInt(words.size());
                for (std::size_t t = 0; t < gen.stride; ++t) {
                    const auto &w = words[(start + t) % words.size()];
                    output_words.push_back(w);
                    context += ' ';
                    context += w;
                }
            }
        }

        result.retrieval_wall_seconds += event.retrieval_seconds;
        result.strides.push_back(std::move(event));
        h_stride.observe(stride_timer.elapsedMicros());
        c_strides.add(1);
    }

    for (std::size_t i = 0; i < output_words.size(); ++i) {
        if (i)
            result.output_text += ' ';
        result.output_text += output_words[i];
    }
    return result;
}

const core::DistributedStore &
RagSystem::store() const
{
    HERMES_ASSERT(ready(), "store() before finalize");
    return *store_;
}

const core::SearchStrategy &
RagSystem::searchStrategy() const
{
    HERMES_ASSERT(ready(), "searchStrategy() before finalize");
    return *search_;
}

} // namespace rag
} // namespace hermes
