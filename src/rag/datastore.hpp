/**
 * @file
 * Chunked document datastore (Fig 2/3): maps retrieved vector ids back to
 * the document text chunks that get prepended to the prompt.
 */

#pragma once

#include <string>
#include <vector>

#include "vecstore/types.hpp"

namespace hermes {
namespace rag {

/** One retrievable text chunk. */
struct Chunk
{
    /** Chunk id — equals its embedding's row index / external id. */
    vecstore::VecId id = vecstore::kInvalidId;

    /** Source document index. */
    std::size_t doc = 0;

    /** Chunk text. */
    std::string text;

    /** Token count (whitespace tokens; paper chunks are ~100 tokens). */
    std::size_t tokens = 0;
};

/** Chunking configuration. */
struct ChunkConfig
{
    /** Target tokens per chunk (paper: ~100). */
    std::size_t tokens_per_chunk = 100;

    /** Overlapping tokens between consecutive chunks. */
    std::size_t overlap = 0;
};

/** Append-only chunk store. */
class ChunkDatastore
{
  public:
    /**
     * Split @p text into chunks and append them.
     * @return Ids of the new chunks.
     */
    std::vector<vecstore::VecId> addDocument(const std::string &text,
                                             const ChunkConfig &config = {});

    /** Number of stored chunks. */
    std::size_t size() const { return chunks_.size(); }

    /** Number of source documents added. */
    std::size_t numDocuments() const { return num_docs_; }

    /** Chunk by id (ids are dense, 0-based). */
    const Chunk &chunk(vecstore::VecId id) const;

    /** All chunk texts, id order (for batch encoding). */
    std::vector<std::string> texts() const;

    /** Total tokens across all chunks. */
    std::size_t totalTokens() const { return total_tokens_; }

    /** Approximate memory footprint of the stored text. */
    std::size_t memoryBytes() const;

  private:
    std::vector<Chunk> chunks_;
    std::size_t num_docs_ = 0;
    std::size_t total_tokens_ = 0;
};

} // namespace rag
} // namespace hermes
