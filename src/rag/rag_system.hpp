/**
 * @file
 * Public facade: a complete Hermes-served RAG system (Fig 9).
 *
 * Ties together the chunk datastore, hashing encoder, similarity-
 * partitioned distributed store, hierarchical search, reranking, and a
 * strided generation loop. This is the entry point downstream users adopt;
 * the examples/ directory exercises it end-to-end.
 */

#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/distributed_store.hpp"
#include "core/search_strategy.hpp"
#include "rag/datastore.hpp"
#include "rag/encoder.hpp"
#include "rag/reranker.hpp"

namespace hermes {
namespace rag {

/** Strided-generation parameters. */
struct GenerationConfig
{
    /** Output tokens to generate. */
    std::size_t output_tokens = 64;

    /** Retrieval stride in tokens (paper default: 16). */
    std::size_t stride = 16;

    /** PRNG seed for the toy decoder. */
    std::uint64_t seed = 7;
};

/** One retrieval stride's record. */
struct StrideEvent
{
    /** Stride index (0 = the TTFT retrieval). */
    std::size_t index = 0;

    /** Retrieved chunk ids with scores, best first (after reranking). */
    vecstore::HitList retrieved;

    /** Chunk prepended to the prompt for this stride. */
    vecstore::VecId best_chunk = vecstore::kInvalidId;

    /** Clusters the deep search visited. */
    std::vector<std::uint32_t> deep_clusters;

    /** Wall-clock seconds spent in retrieval for this stride. */
    double retrieval_seconds = 0.0;
};

/** Output of one generation call. */
struct GenerationResult
{
    /** Generated text (toy surrogate decoder — see RagSystem docs). */
    std::string output_text;

    /** Per-stride retrieval records. */
    std::vector<StrideEvent> strides;

    /** Total wall-clock retrieval seconds. */
    double retrieval_wall_seconds = 0.0;
};

/** Top-level system configuration. */
struct RagSystemConfig
{
    /** Embedding dimensionality of the hashing encoder. */
    std::size_t embedding_dim = 96;

    /** Document chunking. */
    ChunkConfig chunking;

    /** Hermes retrieval configuration (Table 2). */
    core::HermesConfig hermes;

    /** Reranker spec: "inner-product" (paper default), "term-overlap",
     *  or "hybrid[:alpha]". */
    std::string reranker = "inner-product";

    /** Generation defaults. */
    GenerationConfig generation;
};

/**
 * A complete RAG serving system.
 *
 * Usage: construct, addDocument() repeatedly, finalize() once, then
 * retrieve()/generate(). The decoder is a deterministic surrogate that
 * extracts answer text from the retrieved chunks — real deployments slot
 * an actual LLM behind the same interface, and the systems analysis runs
 * through sim::RagPipelineSim either way.
 */
class RagSystem
{
  public:
    explicit RagSystem(const RagSystemConfig &config = {});
    ~RagSystem();

    RagSystem(const RagSystem &) = delete;
    RagSystem &operator=(const RagSystem &) = delete;

    /** Ingest one document (must precede finalize()). */
    void addDocument(const std::string &text);

    /**
     * Encode all chunks, choose a balanced partitioning seed, build the
     * per-cluster IVF indices, and arm the hierarchical search.
     */
    void finalize();

    /** True once finalize() has run. */
    bool ready() const { return search_ != nullptr; }

    /** Retrieve the top-k chunks for a question (reranked). */
    vecstore::HitList retrieve(const std::string &question,
                               std::size_t k) const;

    /** Full strided generation (retrieval every config stride tokens). */
    GenerationResult generate(const std::string &question,
                              std::optional<GenerationConfig> config =
                                  std::nullopt) const;

    /** Chunk datastore access (e.g. to print retrieved contexts). */
    const ChunkDatastore &datastore() const { return datastore_; }

    /** Distributed store diagnostics (sizes, imbalance). */
    const core::DistributedStore &store() const;

    /** The active search strategy. */
    const core::SearchStrategy &searchStrategy() const;

    /** Encoder access. */
    const HashingEncoder &encoder() const { return encoder_; }

    /** The configured reranker. */
    const Reranker &reranker() const { return *reranker_; }

  private:
    RagSystemConfig config_;
    HashingEncoder encoder_;
    std::unique_ptr<Reranker> reranker_;
    ChunkDatastore datastore_;
    vecstore::Matrix embeddings_;
    std::unique_ptr<core::DistributedStore> store_;
    std::unique_ptr<core::HermesSearch> search_;
};

} // namespace rag
} // namespace hermes
