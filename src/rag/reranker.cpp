#include "rag/reranker.hpp"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "rag/encoder.hpp"
#include "util/logging.hpp"
#include "vecstore/distance.hpp"

namespace hermes {
namespace rag {

namespace {

/** Sort hits ascending by score, ties by id (deterministic). */
void
sortHits(vecstore::HitList &hits)
{
    std::sort(hits.begin(), hits.end(), [](const auto &a, const auto &b) {
        if (a.score != b.score)
            return a.score < b.score;
        return a.id < b.id;
    });
}

float
exactInnerProduct(vecstore::VecView query, const vecstore::Matrix &embeddings,
                  vecstore::VecId id)
{
    HERMES_ASSERT(id >= 0 &&
                  static_cast<std::size_t>(id) < embeddings.rows(),
                  "rerank: id ", id, " outside datastore");
    return vecstore::dot(query.data(),
                         embeddings.row(static_cast<std::size_t>(id)).data(),
                         embeddings.dim());
}

} // namespace

vecstore::HitList
InnerProductReranker::rerank(const RerankRequest &request,
                             const vecstore::Matrix &embeddings,
                             const ChunkDatastore &) const
{
    vecstore::HitList out;
    out.reserve(request.candidates.size());
    for (const auto &hit : request.candidates) {
        out.push_back({hit.id,
                       -exactInnerProduct(request.query, embeddings,
                                          hit.id)});
    }
    sortHits(out);
    return out;
}

double
TermOverlapReranker::overlapScore(const std::string &question,
                                  const std::string &text)
{
    auto question_terms = HashingEncoder::tokenize(question);
    if (question_terms.empty())
        return 0.0;
    std::unordered_set<std::string> wanted(question_terms.begin(),
                                           question_terms.end());
    std::unordered_set<std::string> found;
    for (const auto &term : HashingEncoder::tokenize(text)) {
        if (wanted.count(term))
            found.insert(term);
    }
    return static_cast<double>(found.size()) /
           static_cast<double>(wanted.size());
}

vecstore::HitList
TermOverlapReranker::rerank(const RerankRequest &request,
                            const vecstore::Matrix &,
                            const ChunkDatastore &datastore) const
{
    vecstore::HitList out;
    out.reserve(request.candidates.size());
    for (const auto &hit : request.candidates) {
        double overlap = overlapScore(request.question,
                                      datastore.chunk(hit.id).text);
        out.push_back({hit.id, static_cast<float>(-overlap)});
    }
    sortHits(out);
    return out;
}

HybridReranker::HybridReranker(double alpha) : alpha_(alpha)
{
    HERMES_ASSERT(alpha_ >= 0.0 && alpha_ <= 1.0,
                  "hybrid alpha must be in [0, 1], got ", alpha_);
}

vecstore::HitList
HybridReranker::rerank(const RerankRequest &request,
                       const vecstore::Matrix &embeddings,
                       const ChunkDatastore &datastore) const
{
    vecstore::HitList out;
    out.reserve(request.candidates.size());
    for (const auto &hit : request.candidates) {
        double dense = exactInnerProduct(request.query, embeddings, hit.id);
        double sparse = TermOverlapReranker::overlapScore(
            request.question, datastore.chunk(hit.id).text);
        double blended = alpha_ * dense + (1.0 - alpha_) * sparse;
        out.push_back({hit.id, static_cast<float>(-blended)});
    }
    sortHits(out);
    return out;
}

std::unique_ptr<Reranker>
makeReranker(const std::string &spec)
{
    if (spec == "inner-product")
        return std::make_unique<InnerProductReranker>();
    if (spec == "term-overlap")
        return std::make_unique<TermOverlapReranker>();
    if (spec == "hybrid")
        return std::make_unique<HybridReranker>();
    if (spec.rfind("hybrid:", 0) == 0) {
        char *end = nullptr;
        double alpha = std::strtod(spec.c_str() + 7, &end);
        if (end == nullptr || *end != '\0') {
            HERMES_FATAL("bad hybrid reranker spec: '", spec, "'");
        }
        return std::make_unique<HybridReranker>(alpha);
    }
    HERMES_FATAL("unknown reranker spec: '", spec,
                 "' (inner-product | term-overlap | hybrid[:alpha])");
}

} // namespace rag
} // namespace hermes
