#include "rag/encoder.hpp"

#include <cctype>

#include "util/logging.hpp"
#include "vecstore/distance.hpp"

namespace hermes {
namespace rag {

namespace {

/** FNV-1a 64-bit hash. */
std::uint64_t
fnv1a(const std::string &s, std::uint64_t seed)
{
    std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

HashingEncoder::HashingEncoder(std::size_t dim, std::uint64_t seed)
    : dim_(dim), seed_(seed)
{
    HERMES_ASSERT(dim_ > 0, "encoder needs dim > 0");
}

std::vector<std::string>
HashingEncoder::tokenize(const std::string &text)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char raw : text) {
        auto c = static_cast<unsigned char>(raw);
        if (std::isalnum(c)) {
            current += static_cast<char>(std::tolower(c));
        } else if (!current.empty()) {
            tokens.push_back(std::move(current));
            current.clear();
        }
    }
    if (!current.empty())
        tokens.push_back(std::move(current));
    return tokens;
}

void
HashingEncoder::addFeature(const std::string &feature, float weight,
                           std::vector<float> &out) const
{
    std::uint64_t h = fnv1a(feature, seed_);
    std::size_t bucket = h % dim_;
    // Second hash bit decides the sign, which keeps the expected inner
    // product of unrelated texts near zero (signed feature hashing).
    float sign = (h >> 63) ? 1.f : -1.f;
    out[bucket] += sign * weight;
}

std::vector<float>
HashingEncoder::encode(const std::string &text) const
{
    std::vector<float> out(dim_, 0.f);
    auto tokens = tokenize(text);
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        addFeature(tokens[i], 1.0f, out);
        if (i + 1 < tokens.size())
            addFeature(tokens[i] + "_" + tokens[i + 1], 0.5f, out);
    }
    vecstore::normalize(out.data(), dim_);
    return out;
}

vecstore::Matrix
HashingEncoder::encodeBatch(const std::vector<std::string> &texts) const
{
    vecstore::Matrix out(dim_);
    out.reserveRows(texts.size());
    for (const auto &text : texts) {
        auto v = encode(text);
        out.append(vecstore::VecView(v.data(), v.size()));
    }
    return out;
}

} // namespace rag
} // namespace hermes
