#include "rag/synth_text.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace hermes {
namespace rag {

namespace {

/** Deterministic pronounceable pseudo-word from indices. */
std::string
makeWord(util::Rng &rng)
{
    static const char consonants[] = "bcdfghklmnprstvz";
    static const char vowels[] = "aeiou";
    std::size_t syllables = 2 + rng.uniformInt(2);
    std::string word;
    for (std::size_t s = 0; s < syllables; ++s) {
        word += consonants[rng.uniformInt(sizeof(consonants) - 1)];
        word += vowels[rng.uniformInt(sizeof(vowels) - 1)];
    }
    return word;
}

} // namespace

std::string
SynthCorpus::questionAbout(std::uint32_t topic, std::uint64_t salt) const
{
    HERMES_ASSERT(topic < topic_words.size(), "bad topic ", topic);
    const auto &vocab = topic_words[topic];
    HERMES_ASSERT(!vocab.empty(), "empty topic vocabulary");
    util::Rng rng(0x9e57 + topic * 131 + salt);
    std::string q = "what is the relation between";
    for (int i = 0; i < 8; ++i) {
        q += ' ';
        q += vocab[rng.uniformInt(vocab.size())];
    }
    return q;
}

SynthCorpus
generateSynthCorpus(const SynthTextConfig &config)
{
    HERMES_ASSERT(config.num_topics > 0, "need at least one topic");
    HERMES_ASSERT(config.topic_vocab > 0, "need a topic vocabulary");

    util::Rng rng(config.seed);
    SynthCorpus corpus;

    // Shared vocabulary (function-word stand-ins).
    std::vector<std::string> shared;
    for (std::size_t i = 0; i < 40; ++i)
        shared.push_back(makeWord(rng));

    corpus.topic_words.resize(config.num_topics);
    for (auto &vocab : corpus.topic_words) {
        vocab.reserve(config.topic_vocab);
        for (std::size_t i = 0; i < config.topic_vocab; ++i)
            vocab.push_back(makeWord(rng));
    }

    corpus.documents.reserve(config.num_docs);
    corpus.topic_of_doc.reserve(config.num_docs);
    for (std::size_t d = 0; d < config.num_docs; ++d) {
        auto topic = static_cast<std::uint32_t>(
            rng.uniformInt(config.num_topics));
        corpus.topic_of_doc.push_back(topic);
        const auto &vocab = corpus.topic_words[topic];

        std::string doc;
        for (std::size_t w = 0; w < config.words_per_doc; ++w) {
            if (w)
                doc += ' ';
            if (rng.uniform() < config.shared_word_prob)
                doc += shared[rng.uniformInt(shared.size())];
            else
                doc += vocab[rng.uniformInt(vocab.size())];
        }
        corpus.documents.push_back(std::move(doc));
    }
    return corpus;
}

} // namespace rag
} // namespace hermes
