/**
 * @file
 * Synthetic topic-coherent text generation.
 *
 * Examples and integration tests need document *text* (not just
 * embeddings) so the full encode→partition→retrieve→generate path runs.
 * Each topic gets its own vocabulary; documents mix mostly their topic's
 * words with a little shared vocabulary, so the hashing encoder maps them
 * into clusterable embeddings — the textual analogue of the
 * workload::CorpusGenerator's Gaussian topic mixture.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hermes {
namespace rag {

/** Synthetic corpus parameters. */
struct SynthTextConfig
{
    /** Number of documents. */
    std::size_t num_docs = 200;

    /** Number of topics. */
    std::size_t num_topics = 8;

    /** Words per document. */
    std::size_t words_per_doc = 120;

    /** Distinct words in each topic's vocabulary. */
    std::size_t topic_vocab = 60;

    /** Probability of drawing from the shared vocabulary instead. */
    double shared_word_prob = 0.15;

    /** PRNG seed. */
    std::uint64_t seed = 2024;
};

/** A generated corpus of topic-tagged documents. */
struct SynthCorpus
{
    /** Document texts. */
    std::vector<std::string> documents;

    /** Topic of each document. */
    std::vector<std::uint32_t> topic_of_doc;

    /** A natural-language-ish question about the given topic. */
    std::string questionAbout(std::uint32_t topic,
                              std::uint64_t salt = 0) const;

    /** Topic vocabularies (for building questions). */
    std::vector<std::vector<std::string>> topic_words;
};

/** Generate a synthetic text corpus. */
SynthCorpus generateSynthCorpus(const SynthTextConfig &config);

} // namespace rag
} // namespace hermes
