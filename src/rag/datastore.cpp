#include "rag/datastore.hpp"

#include <sstream>

#include "util/logging.hpp"

namespace hermes {
namespace rag {

std::vector<vecstore::VecId>
ChunkDatastore::addDocument(const std::string &text,
                            const ChunkConfig &config)
{
    HERMES_ASSERT(config.tokens_per_chunk > 0,
                  "tokens_per_chunk must be positive");
    HERMES_ASSERT(config.overlap < config.tokens_per_chunk,
                  "overlap must be smaller than the chunk size");

    std::vector<std::string> words;
    {
        std::istringstream iss(text);
        std::string word;
        while (iss >> word)
            words.push_back(std::move(word));
    }

    std::vector<vecstore::VecId> new_ids;
    if (words.empty()) {
        ++num_docs_;
        return new_ids;
    }

    std::size_t step = config.tokens_per_chunk - config.overlap;
    for (std::size_t begin = 0; begin < words.size(); begin += step) {
        std::size_t end =
            std::min(begin + config.tokens_per_chunk, words.size());
        std::string chunk_text;
        for (std::size_t i = begin; i < end; ++i) {
            if (i > begin)
                chunk_text += ' ';
            chunk_text += words[i];
        }
        Chunk chunk;
        chunk.id = static_cast<vecstore::VecId>(chunks_.size());
        chunk.doc = num_docs_;
        chunk.tokens = end - begin;
        chunk.text = std::move(chunk_text);
        total_tokens_ += chunk.tokens;
        new_ids.push_back(chunk.id);
        chunks_.push_back(std::move(chunk));
        if (end == words.size())
            break;
    }
    ++num_docs_;
    return new_ids;
}

const Chunk &
ChunkDatastore::chunk(vecstore::VecId id) const
{
    HERMES_ASSERT(id >= 0 && static_cast<std::size_t>(id) < chunks_.size(),
                  "unknown chunk id ", id);
    return chunks_[static_cast<std::size_t>(id)];
}

std::vector<std::string>
ChunkDatastore::texts() const
{
    std::vector<std::string> out;
    out.reserve(chunks_.size());
    for (const auto &chunk : chunks_)
        out.push_back(chunk.text);
    return out;
}

std::size_t
ChunkDatastore::memoryBytes() const
{
    std::size_t bytes = chunks_.size() * sizeof(Chunk);
    for (const auto &chunk : chunks_)
        bytes += chunk.text.capacity();
    return bytes;
}

} // namespace rag
} // namespace hermes
