/**
 * @file
 * Pluggable document rerankers (paper §2.2: retrieved chunks "can be
 * re-ranked for relevance, using either similarity scores or advanced
 * neural methods").
 *
 * Three implementations:
 *  - InnerProductReranker: exact full-precision inner product (the
 *    paper's method, §5) — corrects quantization error in the IVF scores.
 *  - TermOverlapReranker: lexical IDF-free term overlap between the
 *    question and the chunk text (sparse signal, §2.1's rare-term case).
 *  - HybridReranker: convex combination of the two, the "blended"
 *    retrieval the paper cites as related work.
 */

#pragma once

#include <memory>
#include <string>

#include "rag/datastore.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace rag {

/** Context handed to a reranker for one query. */
struct RerankRequest
{
    /** Original question text (may be empty for embedding-only flows). */
    std::string question;

    /** Encoded question. */
    vecstore::VecView query;

    /** Candidate hits from retrieval (ids = chunk/embedding rows). */
    vecstore::HitList candidates;
};

/** Abstract reranker. */
class Reranker
{
  public:
    virtual ~Reranker() = default;

    /**
     * Re-order candidates best-first.
     * @param request    Query context.
     * @param embeddings Full-precision chunk embeddings (row = chunk id).
     * @param datastore  Chunk texts (for lexical rerankers).
     */
    virtual vecstore::HitList
    rerank(const RerankRequest &request,
           const vecstore::Matrix &embeddings,
           const ChunkDatastore &datastore) const = 0;

    /** Reranker name for configuration/reporting. */
    virtual std::string name() const = 0;
};

/** Exact inner-product reranking (the paper's default). */
class InnerProductReranker : public Reranker
{
  public:
    vecstore::HitList rerank(const RerankRequest &request,
                             const vecstore::Matrix &embeddings,
                             const ChunkDatastore &datastore) const override;
    std::string name() const override { return "inner-product"; }
};

/** Lexical term-overlap reranking. */
class TermOverlapReranker : public Reranker
{
  public:
    vecstore::HitList rerank(const RerankRequest &request,
                             const vecstore::Matrix &embeddings,
                             const ChunkDatastore &datastore) const override;
    std::string name() const override { return "term-overlap"; }

    /** Fraction of the question's unique terms present in @p text. */
    static double overlapScore(const std::string &question,
                               const std::string &text);
};

/** alpha x inner-product + (1 - alpha) x term overlap. */
class HybridReranker : public Reranker
{
  public:
    /** @param alpha Dense-score weight in [0, 1]. */
    explicit HybridReranker(double alpha = 0.7);

    vecstore::HitList rerank(const RerankRequest &request,
                             const vecstore::Matrix &embeddings,
                             const ChunkDatastore &datastore) const override;
    std::string name() const override { return "hybrid"; }

  private:
    double alpha_;
};

/** Construct a reranker by name: "inner-product", "term-overlap",
 *  "hybrid" or "hybrid:<alpha>". */
std::unique_ptr<Reranker> makeReranker(const std::string &spec);

} // namespace rag
} // namespace hermes
