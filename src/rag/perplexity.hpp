/**
 * @file
 * Perplexity-vs-stride model (paper Fig 5).
 *
 * The paper cites RETRO and in-context RALM results showing that frequent
 * retrieval lets a model match the perplexity of a ~2x larger
 * non-retrieval model, with quality degrading as the stride grows. These
 * closed-form curves are fitted to that qualitative behaviour (the exact
 * constants come from the published RETRO/RALM trend lines) and are used
 * to reproduce Fig 5 and to reason about stride/quality trade-offs.
 */

#pragma once

#include "sim/hardware.hpp"

namespace hermes {
namespace rag {

/**
 * Modeled validation perplexity of @p model at retrieval stride
 * @p stride_tokens. Non-retrieval models return a stride-independent
 * baseline perplexity.
 */
double modelPerplexity(sim::LlmModel model, std::size_t stride_tokens);

/**
 * Smallest stride at which @p retrieval_model still beats (or ties) the
 * perplexity of @p reference_model; returns 0 if even stride 1 loses.
 */
std::size_t crossoverStride(sim::LlmModel retrieval_model,
                            sim::LlmModel reference_model);

} // namespace rag
} // namespace hermes
