/**
 * @file
 * Diagnostics over generation traces.
 *
 * RAGCache's benefit depends on how much consecutive retrieval strides
 * re-retrieve the same documents (the paper assumes an ideal 100% KV hit
 * rate, §3). strideOverlap() measures the real overlap of a generation so
 * the cache-hit-rate knob of sim::PipelineConfig can be grounded in data.
 */

#pragma once

#include "rag/rag_system.hpp"

namespace hermes {
namespace rag {

/** Document-reuse statistics across a generation's strides. */
struct OverlapStats
{
    /** Mean Jaccard similarity of consecutive strides' retrieved sets. */
    double mean_jaccard = 0.0;

    /**
     * Mean fraction of a stride's documents already retrieved by the
     * previous stride — the best-case KV-cache hit rate.
     */
    double mean_hit_rate = 0.0;

    /** Fraction of strides whose *best* chunk repeated the previous one. */
    double best_chunk_repeat_rate = 0.0;

    /** Stride transitions measured. */
    std::size_t transitions = 0;
};

/** Measure document reuse across the strides of one generation. */
OverlapStats strideOverlap(const GenerationResult &result);

/**
 * Cluster routing stability: fraction of consecutive strides that deep-
 * searched an identical cluster set. High stability means the router can
 * cache node assignments across strides.
 */
double routingStability(const GenerationResult &result);

} // namespace rag
} // namespace hermes
