/**
 * @file
 * Deterministic text encoder standing in for BGE-large (paper §5).
 *
 * Feature-hashes unigrams and bigrams into a dense d-dimensional vector
 * and L2-normalizes, so lexically/topically similar texts land close in
 * embedding space. Deterministic, dependency-free, and fast — the systems
 * experiments only need the encoder's cost and a semantically plausible
 * geometry, both of which this provides.
 */

#pragma once

#include <string>
#include <vector>

#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace rag {

/** Feature-hashing sentence encoder. */
class HashingEncoder
{
  public:
    /**
     * @param dim  Embedding dimensionality.
     * @param seed Hash seed (same seed => identical embeddings).
     */
    explicit HashingEncoder(std::size_t dim, std::uint64_t seed = 0xb9e);

    std::size_t dim() const { return dim_; }

    /** Encode one text into a unit-norm embedding. */
    std::vector<float> encode(const std::string &text) const;

    /** Encode a batch of texts into a matrix. */
    vecstore::Matrix encodeBatch(const std::vector<std::string> &texts) const;

    /** Lowercased whitespace/punctuation tokenization. */
    static std::vector<std::string> tokenize(const std::string &text);

  private:
    /** Accumulate one hashed feature into the output vector. */
    void addFeature(const std::string &feature, float weight,
                    std::vector<float> &out) const;

    std::size_t dim_;
    std::uint64_t seed_;
};

} // namespace rag
} // namespace hermes
