/**
 * @file
 * Bounded-memory streaming builder for v3 index files.
 *
 * IvfIndex::add keeps every encoded vector resident until save(), so
 * building a shard takes O(datastore) RAM. The stream writer takes a
 * trained prototype (centroids + codec — the small, train-once state)
 * and spills each incoming batch to a temp file as compact
 * (list, id, code) records; finish() then scatters the records into
 * their final list-major positions with a bounded set of flush buffers.
 *
 * The output is byte-identical to training the same prototype, add()ing
 * the same rows in the same order, and calling save(): record order in
 * the temp file is arrival order, and the scatter preserves it per
 * list. Peak resident memory is O(prototype + buffer budget + batch),
 * independent of datastore size.
 */

#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "index/ivf_index.hpp"

namespace hermes {
namespace index {

/** Streams vectors into a v3 index file with bounded resident memory. */
class IvfStreamWriter
{
  public:
    struct Options
    {
        /** Scatter-phase flush budget across all list buffers. */
        std::size_t buffer_budget_bytes = std::size_t(64) << 20;

        /** Temp spill file (default: output path + ".spill"). */
        std::string temp_path;
    };

    /**
     * @param prototype Trained index supplying centroids, codec and
     *                  config; its lists are ignored (typically empty).
     * @param path      Output index file.
     * @throws util::FormatError (Io) when the spill file cannot be
     *         created.
     */
    IvfStreamWriter(const IvfIndex &prototype, const std::string &path,
                    Options options);

    /** Default options: 64 MiB scatter budget, spill next to output. */
    IvfStreamWriter(const IvfIndex &prototype, const std::string &path);

    /** Removes the spill file if finish() was never reached. */
    ~IvfStreamWriter();

    IvfStreamWriter(const IvfStreamWriter &) = delete;
    IvfStreamWriter &operator=(const IvfStreamWriter &) = delete;

    /**
     * Assign + encode + spill one batch. Rows land in the output
     * exactly as the same add() call on the prototype would place them.
     * @param pool Optional pool to fan the per-row assign/encode over
     *             (the spill stays sequential, so results are
     *             pool-invariant).
     */
    void add(const vecstore::Matrix &data,
             const std::vector<vecstore::VecId> &ids,
             util::ThreadPool *pool = nullptr);

    /**
     * Scatter the spilled records into the final file, write checksums
     * and header, delete the spill file.
     * @return Total vectors written.
     */
    std::uint64_t finish();

    /** Vectors spilled so far. */
    std::uint64_t pending() const { return ntotal_; }

  private:
    const IvfIndex &prototype_;
    std::string path_;
    Options options_;
    std::FILE *spill_ = nullptr;
    std::string spill_path_;
    std::size_t code_size_ = 0;
    std::uint64_t ntotal_ = 0;
    std::vector<std::uint64_t> counts_;
    bool finished_ = false;
};

} // namespace index
} // namespace hermes
