#include "index/ivf_format.hpp"

#include <cstring>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace hermes {
namespace index {
namespace ivff {

namespace {

using util::FormatError;
using util::FormatErrorCode;

constexpr std::size_t kHeaderCrcOffset = 196;

std::uint64_t
align64(std::uint64_t offset)
{
    return (offset + (kSectionAlign - 1)) & ~std::uint64_t(kSectionAlign - 1);
}

/** Fixed-offset field access over a raw header buffer. */
template <typename T>
T
peek(const std::uint8_t *base, std::size_t offset)
{
    T value;
    std::memcpy(&value, base + offset, sizeof(T));
    return value;
}

template <typename T>
void
poke(std::uint8_t *base, std::size_t offset, T value)
{
    std::memcpy(base + offset, &value, sizeof(T));
}

[[noreturn]] void
reject(FormatErrorCode code, const std::string &path, const std::string &msg)
{
    throw FormatError(code, path + ": " + msg);
}

struct SectionView
{
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
};

/**
 * Validate one section's geometry: element count must be recoverable by
 * division (never reconstructed by multiplication, so a hostile header
 * cannot overflow the check), and the byte range must sit inside the
 * file.
 */
void
checkSectionShape(const SectionView &sec, std::uint64_t expected_count,
                  std::uint64_t elem_bytes, std::uint64_t file_bytes,
                  const char *what, const std::string &path)
{
    if (elem_bytes == 0 || expected_count == 0) {
        if (sec.length != 0)
            reject(FormatErrorCode::Corrupt, path,
                   std::string(what) + " section should be empty");
        return;
    }
    if (sec.length % elem_bytes != 0 ||
        sec.length / elem_bytes != expected_count) {
        reject(FormatErrorCode::Corrupt, path,
               std::string(what) + " section length disagrees with header");
    }
    // offset/length fit checks: pure additions guarded against wrap.
    if (sec.offset < kHeaderBytes || sec.offset % kSectionAlign != 0 ||
        sec.offset > file_bytes || sec.length > file_bytes - sec.offset) {
        reject(FormatErrorCode::Corrupt, path,
               std::string(what) + " section out of bounds");
    }
}

} // namespace

ParsedIndex
parseIndexFile(const util::MmapFile &file, bool verify_checksums)
{
    const std::string &path = file.path();
    const std::uint8_t *base = file.data();
    const std::uint64_t actual_bytes = file.size();

    if (actual_bytes < kHeaderBytes)
        reject(FormatErrorCode::Truncated, path,
               "truncated index file (smaller than header)");
    if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0)
        reject(FormatErrorCode::BadMagic, path,
               "not a v3 index file (bad magic)");
    if (peek<std::uint32_t>(base, 4) != kVersion)
        reject(FormatErrorCode::BadVersion, path,
               "unsupported index format version");
    if (peek<std::uint32_t>(base, 8) != kHeaderBytes)
        reject(FormatErrorCode::Corrupt, path, "unexpected header size");

    // Header CRC first: all later checks may then trust the fields.
    {
        std::uint8_t copy[kHeaderBytes];
        std::memcpy(copy, base, kHeaderBytes);
        poke<std::uint32_t>(copy, kHeaderCrcOffset, 0);
        const std::uint32_t want = peek<std::uint32_t>(base, kHeaderCrcOffset);
        if (util::crc32(copy, kHeaderBytes) != want)
            reject(FormatErrorCode::Checksum, path, "header checksum mismatch");
    }

    ParsedIndex parsed;
    IndexMeta &meta = parsed.meta;
    const std::uint32_t metric_raw = peek<std::uint32_t>(base, 12);
    if (metric_raw > 1)
        reject(FormatErrorCode::Corrupt, path, "unknown metric id");
    meta.metric = metric_raw == 0 ? vecstore::Metric::L2
                                  : vecstore::Metric::InnerProduct;
    meta.dim = peek<std::uint64_t>(base, 16);
    meta.nlist = peek<std::uint64_t>(base, 24);
    meta.ntotal = peek<std::uint64_t>(base, 32);
    meta.code_size = peek<std::uint64_t>(base, 40);
    meta.n_centroids = peek<std::uint64_t>(base, 48);
    const std::uint64_t file_bytes = peek<std::uint64_t>(base, 56);
    const std::uint8_t trained_raw = peek<std::uint8_t>(base, 64);
    const std::uint8_t hnsw_raw = peek<std::uint8_t>(base, 65);

    if (file_bytes > actual_bytes)
        reject(FormatErrorCode::Truncated, path, "truncated index file");
    if (file_bytes < actual_bytes)
        reject(FormatErrorCode::Corrupt, path,
               "trailing bytes past declared file size");
    if (meta.dim == 0 || meta.nlist == 0 || meta.code_size == 0)
        reject(FormatErrorCode::Corrupt, path, "degenerate geometry in header");
    // Sanity caps far above anything real, tight enough that the
    // element-size products below can never wrap std::uint64_t.
    if (meta.dim > (std::uint64_t(1) << 24) ||
        meta.nlist > (std::uint64_t(1) << 32) ||
        meta.code_size > (std::uint64_t(1) << 32) ||
        meta.n_centroids > meta.nlist) {
        reject(FormatErrorCode::Corrupt, path,
               "implausible geometry in header");
    }
    if (trained_raw > 1 || hnsw_raw > 1)
        reject(FormatErrorCode::Corrupt, path, "bad boolean flag in header");
    meta.trained = trained_raw != 0;
    meta.hnsw_coarse = hnsw_raw != 0;
    if (meta.trained && meta.n_centroids != meta.nlist)
        reject(FormatErrorCode::Corrupt, path,
               "trained index must carry exactly nlist centroids");
    if (!meta.trained && (meta.n_centroids != 0 || meta.ntotal != 0))
        reject(FormatErrorCode::Corrupt, path,
               "untrained index cannot carry centroids or vectors");
    for (std::size_t i = 66; i < 72; ++i) {
        if (base[i] != 0)
            reject(FormatErrorCode::Corrupt, path, "nonzero header padding");
    }
    {
        const char *spec = reinterpret_cast<const char *>(base + 72);
        std::size_t len = 0;
        while (len < kCodecSpecBytes && spec[len] != '\0')
            ++len;
        if (len == 0 || len == kCodecSpecBytes)
            reject(FormatErrorCode::Corrupt, path,
                   "codec spec missing or not NUL-terminated");
        // NUL padding after the spec must be clean too.
        for (std::size_t i = len; i < kCodecSpecBytes; ++i) {
            if (spec[i] != '\0')
                reject(FormatErrorCode::Corrupt, path,
                       "nonzero codec-spec padding");
        }
        meta.codec_spec.assign(spec, len);
    }
    for (std::size_t i = kHeaderCrcOffset + 4; i < kHeaderBytes; ++i) {
        if (base[i] != 0)
            reject(FormatErrorCode::Corrupt, path, "nonzero reserved bytes");
    }

    SectionView sections[kNumSections];
    for (std::size_t s = 0; s < kNumSections; ++s) {
        sections[s].offset = peek<std::uint64_t>(base, 96 + s * 16);
        sections[s].length = peek<std::uint64_t>(base, 96 + s * 16 + 8);
        if (sections[s].length == 0 && sections[s].offset != 0)
            reject(FormatErrorCode::Corrupt, path,
                   "empty section with nonzero offset");
    }

    checkSectionShape(sections[kCentroids], meta.n_centroids,
                      meta.dim * sizeof(float), file_bytes, "centroids", path);
    checkSectionShape(sections[kListTable], meta.nlist, sizeof(ListEntry),
                      file_bytes, "list table", path);
    checkSectionShape(sections[kIds], meta.ntotal, sizeof(vecstore::VecId),
                      file_bytes, "ids", path);
    checkSectionShape(sections[kCodes], meta.ntotal, meta.code_size,
                      file_bytes, "codes", path);
    // Codec blob: free-form length, but still bounds-checked.
    if (sections[kCodecParams].length != 0) {
        const SectionView &sec = sections[kCodecParams];
        if (sec.offset < kHeaderBytes || sec.offset % kSectionAlign != 0 ||
            sec.offset > file_bytes || sec.length > file_bytes - sec.offset) {
            reject(FormatErrorCode::Corrupt, path,
                   "codec section out of bounds");
        }
    }

    // Sections must appear in canonical order with zero-filled alignment
    // gaps, and the file must end exactly where the last section does —
    // between the CRCs and these rules, every byte of the file is
    // accounted for and any single-byte change is detectable.
    std::uint64_t cursor = kHeaderBytes;
    for (std::size_t s = 0; s < kNumSections; ++s) {
        if (sections[s].length == 0)
            continue;
        const std::uint64_t aligned = align64(cursor);
        if (sections[s].offset != aligned)
            reject(FormatErrorCode::Corrupt, path,
                   "section out of order or misplaced");
        for (std::uint64_t i = cursor; i < aligned; ++i) {
            if (base[i] != 0)
                reject(FormatErrorCode::Corrupt, path,
                       "nonzero section padding");
        }
        cursor = sections[s].offset + sections[s].length;
    }
    if (cursor != file_bytes)
        reject(FormatErrorCode::Corrupt, path,
               "file size disagrees with section layout");

    if (verify_checksums) {
        for (std::size_t s = 0; s < kNumSections; ++s) {
            const std::uint32_t want =
                peek<std::uint32_t>(base, 176 + s * 4);
            const std::uint32_t got =
                sections[s].length == 0
                    ? 0
                    : util::crc32(base + sections[s].offset,
                                  sections[s].length);
            if (got != want)
                reject(FormatErrorCode::Checksum, path,
                       "section checksum mismatch");
        }
    }

    if (sections[kCentroids].length != 0)
        parsed.centroids =
            reinterpret_cast<const float *>(base + sections[kCentroids].offset);
    parsed.list_table = reinterpret_cast<const ListEntry *>(
        base + sections[kListTable].offset);
    if (sections[kIds].length != 0)
        parsed.ids = reinterpret_cast<const vecstore::VecId *>(
            base + sections[kIds].offset);
    if (sections[kCodes].length != 0)
        parsed.codes = base + sections[kCodes].offset;
    if (sections[kCodecParams].length != 0) {
        parsed.codec_blob = base + sections[kCodecParams].offset;
        parsed.codec_blob_bytes = sections[kCodecParams].length;
    }

    // The list table must tile [0, ntotal) exactly in list order: with
    // that invariant checked once here, every later list access is
    // bounds-safe without per-query checks on the hot path.
    std::uint64_t expect_offset = 0;
    for (std::uint64_t l = 0; l < meta.nlist; ++l) {
        const ListEntry &e = parsed.list_table[l];
        if (e.offset != expect_offset ||
            e.count > meta.ntotal - expect_offset) {
            reject(FormatErrorCode::Corrupt, path,
                   "list table does not tile the vector sections");
        }
        expect_offset += e.count;
    }
    if (expect_offset != meta.ntotal)
        reject(FormatErrorCode::Corrupt, path,
               "list table count disagrees with ntotal");

    return parsed;
}

IndexFileWriter::IndexFileWriter(const std::string &path,
                                 const IndexMeta &meta,
                                 const std::vector<std::uint64_t> &list_counts,
                                 std::uint64_t codec_blob_bytes)
    : path_(path), meta_(meta)
{
    HERMES_ASSERT(list_counts.size() == meta.nlist,
                  "list_counts must cover every inverted list");
    table_.resize(list_counts.size());
    std::uint64_t running = 0;
    for (std::size_t l = 0; l < list_counts.size(); ++l) {
        table_[l].offset = running;
        table_[l].count = list_counts[l];
        running += list_counts[l];
    }
    HERMES_ASSERT(running == meta.ntotal,
                  "list counts must sum to ntotal");

    section_length_[kCentroids] =
        meta.n_centroids * meta.dim * sizeof(float);
    section_length_[kListTable] = meta.nlist * sizeof(ListEntry);
    section_length_[kIds] = meta.ntotal * sizeof(vecstore::VecId);
    section_length_[kCodes] = meta.ntotal * meta.code_size;
    section_length_[kCodecParams] = codec_blob_bytes;

    std::uint64_t cursor = kHeaderBytes;
    for (std::size_t s = 0; s < kNumSections; ++s) {
        if (section_length_[s] == 0) {
            section_offset_[s] = 0;
            continue;
        }
        cursor = align64(cursor);
        section_offset_[s] = cursor;
        cursor += section_length_[s];
    }
    file_bytes_ = cursor;

    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd_ < 0)
        throw FormatError(FormatErrorCode::Io,
                          path + ": cannot create index file");
    // Pre-size the file: alignment gaps come out zero-filled for free,
    // and the layout is committed before any payload lands.
    if (::ftruncate(fd_, static_cast<off_t>(file_bytes_)) != 0) {
        ::close(fd_);
        fd_ = -1;
        throw FormatError(FormatErrorCode::Io,
                          path + ": cannot size index file");
    }
    write(section_offset_[kListTable], table_.data(),
          section_length_[kListTable]);
}

IndexFileWriter::~IndexFileWriter()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::uint64_t
IndexFileWriter::sectionOffset(Section s) const
{
    return section_offset_[s];
}

void
IndexFileWriter::write(std::uint64_t offset, const void *data, std::size_t n)
{
    const std::uint8_t *p = static_cast<const std::uint8_t *>(data);
    while (n > 0) {
        const ssize_t wrote =
            ::pwrite(fd_, p, n, static_cast<off_t>(offset));
        if (wrote <= 0)
            throw FormatError(FormatErrorCode::Io,
                              path_ + ": short write to index file");
        p += wrote;
        offset += static_cast<std::uint64_t>(wrote);
        n -= static_cast<std::size_t>(wrote);
    }
}

void
IndexFileWriter::finish()
{
    HERMES_ASSERT(!finished_, "IndexFileWriter::finish called twice");
    finished_ = true;

    // One sequential read-back pass to CRC the payload. Pages written
    // moments ago are still in cache, so this is memory-speed.
    std::uint32_t crcs[kNumSections] = {};
    std::vector<std::uint8_t> buf(std::size_t(1) << 20);
    for (std::size_t s = 0; s < kNumSections; ++s) {
        std::uint64_t remaining = section_length_[s];
        std::uint64_t offset = section_offset_[s];
        std::uint32_t crc = 0;
        while (remaining > 0) {
            const std::size_t want = static_cast<std::size_t>(
                std::min<std::uint64_t>(remaining, buf.size()));
            const ssize_t got =
                ::pread(fd_, buf.data(), want, static_cast<off_t>(offset));
            if (got <= 0)
                throw FormatError(FormatErrorCode::Io,
                                  path_ + ": cannot read back for checksum");
            crc = util::crc32(buf.data(), static_cast<std::size_t>(got), crc);
            offset += static_cast<std::uint64_t>(got);
            remaining -= static_cast<std::uint64_t>(got);
        }
        crcs[s] = crc;
    }

    std::uint8_t header[kHeaderBytes] = {};
    std::memcpy(header, kMagic, sizeof(kMagic));
    poke<std::uint32_t>(header, 4, kVersion);
    poke<std::uint32_t>(header, 8, static_cast<std::uint32_t>(kHeaderBytes));
    poke<std::uint32_t>(header, 12,
                        meta_.metric == vecstore::Metric::L2 ? 0u : 1u);
    poke<std::uint64_t>(header, 16, meta_.dim);
    poke<std::uint64_t>(header, 24, meta_.nlist);
    poke<std::uint64_t>(header, 32, meta_.ntotal);
    poke<std::uint64_t>(header, 40, meta_.code_size);
    poke<std::uint64_t>(header, 48, meta_.n_centroids);
    poke<std::uint64_t>(header, 56, file_bytes_);
    header[64] = meta_.trained ? 1 : 0;
    header[65] = meta_.hnsw_coarse ? 1 : 0;
    HERMES_ASSERT(!meta_.codec_spec.empty() &&
                      meta_.codec_spec.size() < kCodecSpecBytes,
                  "codec spec must fit the 24-byte header field");
    std::memcpy(header + 72, meta_.codec_spec.data(),
                meta_.codec_spec.size());
    for (std::size_t s = 0; s < kNumSections; ++s) {
        poke<std::uint64_t>(header, 96 + s * 16, section_offset_[s]);
        poke<std::uint64_t>(header, 96 + s * 16 + 8, section_length_[s]);
        poke<std::uint32_t>(header, 176 + s * 4, crcs[s]);
    }
    poke<std::uint32_t>(header, kHeaderCrcOffset, 0);
    poke<std::uint32_t>(header, kHeaderCrcOffset,
                        util::crc32(header, kHeaderBytes));
    write(0, header, kHeaderBytes);

    if (::fsync(fd_) != 0)
        throw FormatError(FormatErrorCode::Io,
                          path_ + ": fsync failed");
    ::close(fd_);
    fd_ = -1;
}

} // namespace ivff
} // namespace index
} // namespace hermes
