/**
 * @file
 * Version 3 on-disk IVF index format: a fixed self-describing header
 * plus flat, 64-byte-aligned sections designed to be searched directly
 * through an mmap with zero copies.
 *
 * Byte-level layout (all integers native little-endian, same-arch
 * contract as the net/ wire format; DESIGN.md §11 has the full table):
 *
 *   offset size  field
 *        0    4  magic "HIV3"
 *        4    4  u32 version = 3
 *        8    4  u32 header_bytes = 256
 *       12    4  u32 metric (0 = L2, 1 = InnerProduct)
 *       16    8  u64 dim
 *       24    8  u64 nlist
 *       32    8  u64 ntotal            (vectors across all lists)
 *       40    8  u64 code_size         (bytes per encoded vector)
 *       48    8  u64 n_centroids       (nlist when trained, else 0)
 *       56    8  u64 file_bytes        (total file size; truncation check)
 *       64    1  u8  trained
 *       65    1  u8  hnsw_coarse
 *       66    6  zero padding
 *       72   24  codec spec, NUL-padded ("SQ8", "PQ16", ...)
 *       96   80  section table: 5 x { u64 offset, u64 length }
 *      176   20  5 x u32 section CRC-32
 *      196    4  u32 header CRC-32 (over the 256-byte header with this
 *                field zeroed — covers the reserved tail too)
 *      200   56  reserved, zero
 *
 * Sections follow the header in fixed order, each starting on a 64-byte
 * boundary with zero-filled alignment gaps (validated on open, so every
 * byte of the file is covered by either a CRC or a must-be-zero rule):
 *
 *   centroids    n_centroids * dim float32, row-major
 *   list_table   nlist * { u64 offset, u64 count } — offsets count
 *                vectors into the ids/codes sections; entries tile
 *                [0, ntotal) in list order, so bounds are total
 *   ids          ntotal * i64 external ids, list-major
 *   codes        ntotal * code_size bytes, list-major
 *   codec        codec parameter blob (util::BinaryWriter stream)
 *
 * An empty section stores offset = 0, length = 0. The file ends exactly
 * where the last non-empty section does.
 *
 * Every validation failure throws util::FormatError (typed, never
 * std::terminate): length checks divide before multiplying so hostile
 * counts cannot overflow, and section CRCs reject single-bit flips.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/mmap_file.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace index {
namespace ivff {

inline constexpr char kMagic[4] = {'H', 'I', 'V', '3'};
inline constexpr std::uint32_t kVersion = 3;
inline constexpr std::size_t kHeaderBytes = 256;
inline constexpr std::size_t kSectionAlign = 64;
inline constexpr std::size_t kCodecSpecBytes = 24;

/** Fixed section order in the file. */
enum Section : std::size_t {
    kCentroids = 0,
    kListTable = 1,
    kIds = 2,
    kCodes = 3,
    kCodecParams = 4,
    kNumSections = 5,
};

/** One inverted list's slice of the ids/codes sections, in vectors. */
struct ListEntry
{
    std::uint64_t offset = 0; ///< first vector index
    std::uint64_t count = 0;  ///< vectors in this list
};
static_assert(sizeof(ListEntry) == 16);
static_assert(sizeof(vecstore::VecId) == 8);

/** Everything the header carries except the section table. */
struct IndexMeta
{
    vecstore::Metric metric = vecstore::Metric::L2;
    std::uint64_t dim = 0;
    std::uint64_t nlist = 0;
    std::uint64_t ntotal = 0;
    std::uint64_t code_size = 0;
    std::uint64_t n_centroids = 0;
    bool trained = false;
    bool hnsw_coarse = false;
    std::string codec_spec;
};

/** Decoded view of a validated index file (pointers into the mapping). */
struct ParsedIndex
{
    IndexMeta meta;

    /** n_centroids * dim floats (nullptr when empty). */
    const float *centroids = nullptr;

    /** nlist entries tiling [0, ntotal). */
    const ListEntry *list_table = nullptr;

    /** ntotal external ids, list-major. */
    const vecstore::VecId *ids = nullptr;

    /** ntotal * code_size code bytes, list-major. */
    const std::uint8_t *codes = nullptr;

    /** Codec parameter blob. */
    const std::uint8_t *codec_blob = nullptr;
    std::size_t codec_blob_bytes = 0;
};

/**
 * Validate @p file as a v3 index and return typed views into it.
 *
 * @param file             An open mapping of the candidate file.
 * @param verify_checksums Also CRC every section (reads the whole file
 *                         once; disable for huge >RAM deployments where
 *                         lazy faulting matters more than eager
 *                         verification — the structural checks still
 *                         run).
 * @throws util::FormatError on any structural or checksum violation.
 */
ParsedIndex parseIndexFile(const util::MmapFile &file,
                           bool verify_checksums = true);

/**
 * Low-level v3 writer shared by IvfIndex::save and the streaming
 * builder: computes the section layout from per-list counts up front,
 * lets callers pwrite section payloads at absolute offsets, then
 * finalizes CRCs + header in one pass.
 */
class IndexFileWriter
{
  public:
    /**
     * Create/truncate @p path and fix the layout.
     * @param meta             Header fields (ntotal must equal the sum
     *                         of @p list_counts).
     * @param list_counts      Vectors per inverted list (size nlist).
     * @param codec_blob_bytes Length of the codec parameter section.
     * @throws util::FormatError (Io) when the file cannot be created.
     */
    IndexFileWriter(const std::string &path, const IndexMeta &meta,
                    const std::vector<std::uint64_t> &list_counts,
                    std::uint64_t codec_blob_bytes);

    /** Closes (without finalizing) if finish() was never called. */
    ~IndexFileWriter();

    IndexFileWriter(const IndexFileWriter &) = delete;
    IndexFileWriter &operator=(const IndexFileWriter &) = delete;

    /** Absolute file offset of @p s (0 when the section is empty). */
    std::uint64_t sectionOffset(Section s) const;

    /** The derived list table (offsets are prefix sums of counts). */
    const std::vector<ListEntry> &table() const { return table_; }

    /** Write @p n bytes at absolute @p offset (pwrite). */
    void write(std::uint64_t offset, const void *data, std::size_t n);

    /**
     * Compute section CRCs (one sequential read-back of the file),
     * write the header, fsync and close.
     */
    void finish();

    /** Total file size the layout commits to. */
    std::uint64_t fileBytes() const { return file_bytes_; }

  private:
    int fd_ = -1;
    std::string path_;
    IndexMeta meta_;
    std::vector<ListEntry> table_;
    std::uint64_t section_offset_[kNumSections] = {};
    std::uint64_t section_length_[kNumSections] = {};
    std::uint64_t file_bytes_ = 0;
    bool finished_ = false;
};

} // namespace ivff
} // namespace index
} // namespace hermes
