#include "index/ann_index.hpp"

#include <cstdlib>

#include "index/flat_index.hpp"
#include "index/hnsw_index.hpp"
#include "index/ivf_index.hpp"
#include "util/logging.hpp"

namespace hermes {
namespace index {

namespace {

std::size_t
parseNumber(const std::string &text, const std::string &spec)
{
    char *end = nullptr;
    long value = std::strtol(text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || value <= 0) {
        HERMES_FATAL("bad number '", text, "' in index spec '", spec, "'");
    }
    return static_cast<std::size_t>(value);
}

} // namespace

std::unique_ptr<AnnIndex>
makeIndex(const std::string &spec, std::size_t dim, vecstore::Metric metric)
{
    if (spec == "Flat")
        return std::make_unique<FlatIndex>(dim, metric);

    if (spec.rfind("HNSW", 0) == 0) {
        HnswConfig config;
        config.m = parseNumber(spec.substr(4), spec);
        return std::make_unique<HnswIndex>(dim, metric, config);
    }

    if (spec.rfind("IVF", 0) == 0) {
        auto comma = spec.find(',');
        IvfConfig config;
        if (comma == std::string::npos) {
            config.nlist = parseNumber(spec.substr(3), spec);
            config.codec = "Flat";
        } else {
            config.nlist = parseNumber(spec.substr(3, comma - 3), spec);
            config.codec = spec.substr(comma + 1);
        }
        return std::make_unique<IvfIndex>(dim, metric, config);
    }

    HERMES_FATAL("unknown index spec: '", spec,
                 "' (expected Flat, IVF<nlist>[,codec] or HNSW<M>)");
}

} // namespace index
} // namespace hermes
