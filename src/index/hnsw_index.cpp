#include "index/hnsw_index.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/logging.hpp"
#include "vecstore/distance.hpp"

namespace hermes {
namespace index {

namespace {

/** splitmix64 step for level assignment. */
std::uint64_t
nextRand(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

HnswIndex::HnswIndex(std::size_t dim, vecstore::Metric metric,
                     const HnswConfig &config)
    : data_(dim), metric_(metric), config_(config), rng_state_(config.seed)
{
    HERMES_ASSERT(dim > 0, "HnswIndex needs dim > 0");
    HERMES_ASSERT(config_.m >= 2, "HNSW needs M >= 2");
}

void
HnswIndex::train(const vecstore::Matrix &)
{
}

int
HnswIndex::randomLevel()
{
    double mult = 1.0 / std::log(static_cast<double>(config_.m));
    double u = static_cast<double>(nextRand(rng_state_) >> 11) * 0x1.0p-53;
    u = std::max(u, 1e-12);
    return static_cast<int>(-std::log(u) * mult);
}

float
HnswIndex::nodeDistance(vecstore::VecView query, std::uint32_t node) const
{
    return vecstore::distance(metric_, query.data(), data_.row(node).data(),
                              data_.dim());
}

std::uint32_t
HnswIndex::greedyDescend(vecstore::VecView query, int from_level,
                         int target_level, SearchStats *stats) const
{
    std::uint32_t current = entry_point_;
    float current_dist = nodeDistance(query, current);
    std::uint64_t evals = 1;
    for (int level = from_level; level > target_level; --level) {
        bool improved = true;
        while (improved) {
            improved = false;
            for (std::uint32_t neighbor : nodes_[current].links[level]) {
                float dd = nodeDistance(query, neighbor);
                ++evals;
                if (dd < current_dist) {
                    current_dist = dd;
                    current = neighbor;
                    improved = true;
                }
            }
        }
    }
    if (stats) {
        stats->distance_computations += evals;
        stats->vectors_scanned += evals;
        stats->bytes_scanned += evals * data_.dim() * sizeof(float);
    }
    return current;
}

std::vector<HnswIndex::Candidate>
HnswIndex::searchLayer(vecstore::VecView query, std::uint32_t entry,
                       std::size_t ef, int layer, SearchStats *stats) const
{
    auto cmp_nearest = [](const Candidate &a, const Candidate &b) {
        return a.dist > b.dist; // min-heap by distance
    };
    auto cmp_furthest = [](const Candidate &a, const Candidate &b) {
        return a.dist < b.dist; // max-heap by distance
    };

    if (visit_stamp_.size() < nodes_.size())
        visit_stamp_.resize(nodes_.size(), 0);
    ++current_stamp_;

    std::priority_queue<Candidate, std::vector<Candidate>,
                        decltype(cmp_nearest)> candidates(cmp_nearest);
    std::priority_queue<Candidate, std::vector<Candidate>,
                        decltype(cmp_furthest)> best(cmp_furthest);

    float entry_dist = nodeDistance(query, entry);
    std::uint64_t evals = 1;
    candidates.push({entry_dist, entry});
    best.push({entry_dist, entry});
    visit_stamp_[entry] = current_stamp_;

    while (!candidates.empty()) {
        Candidate c = candidates.top();
        if (best.size() >= ef && c.dist > best.top().dist)
            break;
        candidates.pop();

        for (std::uint32_t neighbor : nodes_[c.node].links[layer]) {
            if (visit_stamp_[neighbor] == current_stamp_)
                continue;
            visit_stamp_[neighbor] = current_stamp_;
            float dd = nodeDistance(query, neighbor);
            ++evals;
            if (best.size() < ef || dd < best.top().dist) {
                candidates.push({dd, neighbor});
                best.push({dd, neighbor});
                if (best.size() > ef)
                    best.pop();
            }
        }
    }

    if (stats) {
        stats->distance_computations += evals;
        stats->vectors_scanned += evals;
        stats->bytes_scanned += evals * data_.dim() * sizeof(float);
        stats->lists_probed += 1;
    }

    std::vector<Candidate> out;
    out.resize(best.size());
    for (std::size_t i = out.size(); i-- > 0;) {
        out[i] = best.top();
        best.pop();
    }
    return out;
}

std::vector<std::uint32_t>
HnswIndex::selectNeighbors(vecstore::VecView query,
                           const std::vector<Candidate> &candidates,
                           std::size_t m) const
{
    // Heuristic neighbor selection (Malkov Alg. 4): prefer candidates that
    // are closer to the query than to any already-selected neighbor, which
    // keeps the graph navigable instead of forming tight cliques.
    std::vector<std::uint32_t> selected;
    selected.reserve(m);
    for (const auto &c : candidates) {
        if (selected.size() >= m)
            break;
        bool good = true;
        for (std::uint32_t s : selected) {
            float to_selected =
                vecstore::distance(metric_, data_.row(c.node).data(),
                                   data_.row(s).data(), data_.dim());
            if (to_selected < c.dist) {
                good = false;
                break;
            }
        }
        if (good)
            selected.push_back(c.node);
    }
    // Backfill with nearest remaining candidates if the heuristic was too
    // strict to reach m links.
    for (const auto &c : candidates) {
        if (selected.size() >= m)
            break;
        if (std::find(selected.begin(), selected.end(), c.node) ==
            selected.end()) {
            selected.push_back(c.node);
        }
    }
    (void)query;
    return selected;
}

void
HnswIndex::add(const vecstore::Matrix &data,
               const std::vector<vecstore::VecId> &ids)
{
    HERMES_ASSERT(data.rows() == ids.size(), "add: row/id count mismatch");
    HERMES_ASSERT(data.dim() == data_.dim(), "add: dim mismatch");

    for (std::size_t row = 0; row < data.rows(); ++row) {
        auto v = data.row(row);
        std::uint32_t node_idx = static_cast<std::uint32_t>(nodes_.size());
        data_.append(v);

        Node node;
        node.id = ids[row];
        node.level = randomLevel();
        node.links.resize(node.level + 1);
        nodes_.push_back(std::move(node));

        if (node_idx == 0) {
            max_level_ = nodes_[0].level;
            entry_point_ = 0;
            continue;
        }

        int level = nodes_[node_idx].level;
        std::uint32_t entry = entry_point_;
        if (max_level_ > level)
            entry = greedyDescend(v, max_level_, level, nullptr);

        for (int l = std::min(level, max_level_); l >= 0; --l) {
            auto candidates = searchLayer(v, entry, config_.ef_construction,
                                          l, nullptr);
            std::size_t max_links = l == 0 ? config_.m * 2 : config_.m;
            auto neighbors = selectNeighbors(v, candidates, config_.m);
            nodes_[node_idx].links[l] = neighbors;

            for (std::uint32_t neighbor : neighbors) {
                auto &back = nodes_[neighbor].links[l];
                back.push_back(node_idx);
                if (back.size() > max_links) {
                    // Re-prune the overfull neighbor's links.
                    std::vector<Candidate> cands;
                    cands.reserve(back.size());
                    auto nv = data_.row(neighbor);
                    for (std::uint32_t b : back) {
                        cands.push_back(
                            {vecstore::distance(metric_, nv.data(),
                                                data_.row(b).data(),
                                                data_.dim()),
                             b});
                    }
                    std::sort(cands.begin(), cands.end(),
                              [](const Candidate &a, const Candidate &b) {
                                  return a.dist < b.dist;
                              });
                    back = selectNeighbors(nv, cands, max_links);
                }
            }
            if (!candidates.empty())
                entry = candidates.front().node;
        }

        if (level > max_level_) {
            max_level_ = level;
            entry_point_ = node_idx;
        }
    }
}

vecstore::HitList
HnswIndex::search(vecstore::VecView query, std::size_t k,
                  const SearchParams &params, SearchStats *stats) const
{
    HERMES_ASSERT(query.size() == data_.dim(), "search: dim mismatch");
    if (nodes_.empty())
        return {};

    std::uint32_t entry = greedyDescend(query, max_level_, 0, stats);
    std::size_t ef = std::max(params.ef_search, k);
    auto candidates = searchLayer(query, entry, ef, 0, stats);

    vecstore::HitList hits;
    hits.reserve(std::min(k, candidates.size()));
    for (const auto &c : candidates) {
        if (hits.size() >= k)
            break;
        hits.push_back({nodes_[c.node].id, c.dist});
    }
    return hits;
}

std::size_t
HnswIndex::memoryBytes() const
{
    // Full-precision vectors plus bidirectional link storage — the cost
    // that makes HNSW impractical at trillion-token scale (paper §2.1).
    std::size_t bytes = data_.memoryBytes();
    for (const auto &node : nodes_) {
        bytes += sizeof(Node);
        for (const auto &links : node.links)
            bytes += links.size() * sizeof(std::uint32_t) +
                     sizeof(std::vector<std::uint32_t>);
    }
    return bytes;
}

std::string
HnswIndex::name() const
{
    return "HNSW" + std::to_string(config_.m);
}

} // namespace index
} // namespace hermes
