/**
 * @file
 * Hierarchical Navigable Small World graph index (Malkov & Yashunin).
 *
 * Included as the paper's memory-hungry counterpoint to IVF (Fig 4): HNSW
 * delivers ~2.4x better latency/throughput at similar recall, but its
 * bidirectional links and full-precision vectors cost ~2.3x the memory,
 * which rules it out for trillion-token datastores.
 */

#pragma once

#include <vector>

#include "index/ann_index.hpp"

namespace hermes {
namespace index {

/** HNSW construction parameters. */
struct HnswConfig
{
    /** Max out-links per node on upper layers (level 0 allows 2M). */
    std::size_t m = 16;

    /** Beam width during construction. */
    std::size_t ef_construction = 100;

    /** Level-assignment seed. */
    std::uint64_t seed = 99;
};

/** Multi-layer proximity-graph index over raw float32 vectors. */
class HnswIndex : public AnnIndex
{
  public:
    HnswIndex(std::size_t dim, vecstore::Metric metric,
              const HnswConfig &config);

    std::size_t dim() const override { return data_.dim(); }
    std::size_t size() const override { return nodes_.size(); }
    vecstore::Metric metric() const override { return metric_; }
    bool isTrained() const override { return true; }
    void train(const vecstore::Matrix &data) override;
    void add(const vecstore::Matrix &data,
             const std::vector<vecstore::VecId> &ids) override;
    vecstore::HitList search(vecstore::VecView query, std::size_t k,
                             const SearchParams &params = {},
                             SearchStats *stats = nullptr) const override;
    std::size_t memoryBytes() const override;
    std::string name() const override;

    /** Highest occupied layer. */
    int maxLevel() const { return max_level_; }

  private:
    struct Node
    {
        vecstore::VecId id;
        int level;
        /** links[l] = neighbor node indices on layer l (0..level). */
        std::vector<std::vector<std::uint32_t>> links;
    };

    /** Candidate during graph traversal. */
    struct Candidate
    {
        float dist;
        std::uint32_t node;
    };

    float nodeDistance(vecstore::VecView query, std::uint32_t node) const;

    /**
     * Beam search on one layer starting from @p entry.
     * Returns up to @p ef closest candidates, best first.
     */
    std::vector<Candidate> searchLayer(vecstore::VecView query,
                                       std::uint32_t entry, std::size_t ef,
                                       int layer,
                                       SearchStats *stats) const;

    /** Greedy descent to the closest node on layers above @p target. */
    std::uint32_t greedyDescend(vecstore::VecView query, int from_level,
                                int target_level,
                                SearchStats *stats) const;

    /** Pick at most @p m diverse neighbors from candidates (heuristic). */
    std::vector<std::uint32_t>
    selectNeighbors(vecstore::VecView query,
                    const std::vector<Candidate> &candidates,
                    std::size_t m) const;

    int randomLevel();

    vecstore::Matrix data_;
    vecstore::Metric metric_;
    HnswConfig config_;
    std::vector<Node> nodes_;
    int max_level_ = -1;
    std::uint32_t entry_point_ = 0;
    std::uint64_t rng_state_;

    mutable std::vector<std::uint32_t> visit_stamp_;
    mutable std::uint32_t current_stamp_ = 0;
};

} // namespace index
} // namespace hermes
