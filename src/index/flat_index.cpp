#include "index/flat_index.hpp"

#include "util/logging.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace index {

FlatIndex::FlatIndex(std::size_t dim, vecstore::Metric metric)
    : data_(dim), metric_(metric)
{
    HERMES_ASSERT(dim > 0, "FlatIndex needs dim > 0");
}

void
FlatIndex::train(const vecstore::Matrix &)
{
}

void
FlatIndex::add(const vecstore::Matrix &data,
               const std::vector<vecstore::VecId> &ids)
{
    HERMES_ASSERT(data.rows() == ids.size(),
                  "add: row/id count mismatch");
    HERMES_ASSERT(data.dim() == data_.dim(), "add: dim mismatch");
    data_.appendRows(data.data(), data.rows());
    ids_.insert(ids_.end(), ids.begin(), ids.end());
}

vecstore::HitList
FlatIndex::search(vecstore::VecView query, std::size_t k,
                  const SearchParams &, SearchStats *stats) const
{
    HERMES_ASSERT(query.size() == data_.dim(), "search: dim mismatch");
    const std::size_t n = data_.rows();
    vecstore::TopK selector(std::max<std::size_t>(k, 1));
    for (std::size_t i = 0; i < n; ++i) {
        float score = vecstore::distance(metric_, query.data(),
                                         data_.row(i).data(), data_.dim());
        selector.push(ids_[i], score);
    }
    if (stats) {
        stats->vectors_scanned += n;
        stats->distance_computations += n;
        stats->bytes_scanned += n * data_.dim() * sizeof(float);
        stats->lists_probed += 1;
    }
    auto hits = selector.take();
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

std::size_t
FlatIndex::memoryBytes() const
{
    return data_.memoryBytes() + ids_.size() * sizeof(vecstore::VecId);
}

vecstore::VecView
FlatIndex::vectorById(vecstore::VecId id) const
{
    for (std::size_t i = 0; i < ids_.size(); ++i) {
        if (ids_[i] == id)
            return data_.row(i);
    }
    HERMES_PANIC("vectorById: unknown id ", id);
}

} // namespace index
} // namespace hermes
