#include "index/flat_index.hpp"

#include <algorithm>
#include <vector>

#include "util/logging.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace index {

FlatIndex::FlatIndex(std::size_t dim, vecstore::Metric metric)
    : data_(dim), metric_(metric)
{
    HERMES_ASSERT(dim > 0, "FlatIndex needs dim > 0");
}

void
FlatIndex::train(const vecstore::Matrix &)
{
}

void
FlatIndex::add(const vecstore::Matrix &data,
               const std::vector<vecstore::VecId> &ids)
{
    HERMES_ASSERT(data.rows() == ids.size(),
                  "add: row/id count mismatch");
    HERMES_ASSERT(data.dim() == data_.dim(), "add: dim mismatch");
    data_.appendRows(data.data(), data.rows());
    ids_.insert(ids_.end(), ids.begin(), ids.end());
}

vecstore::HitList
FlatIndex::search(vecstore::VecView query, std::size_t k,
                  const SearchParams &, SearchStats *stats) const
{
    HERMES_ASSERT(query.size() == data_.dim(), "search: dim mismatch");
    const std::size_t n = data_.rows();
    const std::size_t d = data_.dim();
    vecstore::TopK selector(std::max<std::size_t>(k, 1));

    // Block-oriented scan: the metric dispatch happens once per block
    // (not per row) and the scores land in a buffer reused across calls.
    constexpr std::size_t kBlockRows = 4096;
    static thread_local std::vector<float> scores;
    if (scores.size() < std::min(n, kBlockRows))
        scores.resize(std::min(n, kBlockRows));
    for (std::size_t base = 0; base < n; base += kBlockRows) {
        const std::size_t len = std::min(kBlockRows, n - base);
        vecstore::distanceBatch(metric_, query.data(),
                                data_.data() + base * d, len, d,
                                scores.data());
        selector.pushBatch(ids_.data() + base, scores.data(), len);
    }
    if (stats) {
        stats->vectors_scanned += n;
        stats->distance_computations += n;
        stats->bytes_scanned += n * data_.dim() * sizeof(float);
        stats->lists_probed += 1;
    }
    auto hits = selector.take();
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

std::size_t
FlatIndex::memoryBytes() const
{
    return data_.memoryBytes() + ids_.size() * sizeof(vecstore::VecId);
}

vecstore::VecView
FlatIndex::vectorById(vecstore::VecId id) const
{
    for (std::size_t i = 0; i < ids_.size(); ++i) {
        if (ids_[i] == id)
            return data_.row(i);
    }
    HERMES_PANIC("vectorById: unknown id ", id);
}

} // namespace index
} // namespace hermes
