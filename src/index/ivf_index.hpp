/**
 * @file
 * Inverted File (IVF) index — the retrieval workhorse of the paper.
 *
 * Training clusters the datastore into nlist cells with K-means; each cell
 * holds the codec-compressed vectors assigned to it. A search probes the
 * nProbe cells whose centroids are nearest to the query and scans only
 * their codes, trading accuracy for latency via nProbe (paper §2.1).
 */

#pragma once

#include <memory>
#include <vector>

#include "index/ann_index.hpp"
#include "index/hnsw_index.hpp"
#include "index/ivf_format.hpp"
#include "quant/codec.hpp"
#include "util/mmap_file.hpp"

namespace hermes {
namespace index {

/** IVF construction parameters. */
struct IvfConfig
{
    /** Number of inverted lists (paper default: sqrt(N)). */
    std::size_t nlist = 64;

    /** Codec spec for stored vectors ("Flat", "SQ8", "SQ4", "PQ<M>"...). */
    std::string codec = "SQ8";

    /** K-means iterations for the coarse quantizer. */
    std::size_t train_iterations = 15;

    /** K-means seed. */
    std::uint64_t seed = 7;

    /** Cap coarse-quantizer training points (0 = all). */
    std::size_t max_training_points = 0;

    /**
     * Route the coarse step through an HNSW graph over the centroids
     * instead of a linear scan — the standard FAISS "IVF_HNSW" recipe
     * for large nlist, where the O(nlist) centroid scan starts to rival
     * the list scans themselves.
     */
    bool hnsw_coarse = false;
};

/** IVF index with pluggable vector codec. */
class IvfIndex : public AnnIndex
{
  public:
    /**
     * @param dim    Embedding dimensionality.
     * @param metric Distance metric.
     * @param config Construction parameters.
     */
    IvfIndex(std::size_t dim, vecstore::Metric metric,
             const IvfConfig &config);

    std::size_t dim() const override { return dim_; }
    std::size_t size() const override { return ntotal_; }
    vecstore::Metric metric() const override { return metric_; }
    bool isTrained() const override { return trained_; }
    void train(const vecstore::Matrix &data) override;
    void add(const vecstore::Matrix &data,
             const std::vector<vecstore::VecId> &ids) override;

    /**
     * add() with the assign+encode phase fanned out over @p pool (the
     * per-row work — nearest-centroid assignment and codec encoding — is
     * embarrassingly parallel; the list append stays sequential). The
     * resulting index is identical to a sequential add().
     */
    void addParallel(const vecstore::Matrix &data,
                     const std::vector<vecstore::VecId> &ids,
                     util::ThreadPool &pool);
    vecstore::HitList search(vecstore::VecView query, std::size_t k,
                             const SearchParams &params = {},
                             SearchStats *stats = nullptr) const override;

    // The 3-arg convenience overloads live in AnnIndex; re-expose them
    // alongside the list-major override below.
    using AnnIndex::searchBatch;

    /**
     * List-major batched search (paper §6 throughput mode): one blocked
     * pass assigns coarse centroids for the whole batch, (query, list)
     * pairs are grouped by list, and each probed list is scanned exactly
     * once for all subscribed queries via the multi-query codec kernels.
     * Hit lists and per-query stats are bit-identical to calling
     * search() per query: coarse scores come from the same reduction
     * orders, per-query prune bounds and probe order are unchanged, and
     * each query's TopK is fed its lists in the same coarse-rank order.
     */
    std::vector<vecstore::HitList>
    searchBatch(const vecstore::Matrix &queries, std::size_t k,
                const SearchParams &params,
                std::vector<SearchStats> *per_query) const override;

    std::size_t memoryBytes() const override;
    std::string name() const override;

    std::size_t nlist() const { return config_.nlist; }

    /** Centroids of the coarse quantizer (nlist x dim). */
    const vecstore::Matrix &centroids() const { return centroids_; }

    /** Entries in inverted list @p list. */
    std::size_t listSize(std::size_t list) const;

    /**
     * Remove vectors by external id (RAG datastores are mutable — stale
     * documents get evicted as the corpus evolves, §1).
     * @return Number of vectors actually removed.
     */
    std::size_t removeIds(const std::vector<vecstore::VecId> &ids);

    /**
     * Persist the full index in the v3 on-disk format (ivf_format.hpp):
     * fixed header + 64-byte-aligned flat sections, checksummed, laid
     * out so openMapped() can search it in place.
     * @throws util::FormatError on IO failure.
     */
    void save(const std::string &path) const;

    /**
     * Load an index previously written by save() into heap-owned lists
     * (the mutable path: the result accepts add/removeIds).
     * @throws util::FormatError on a corrupt, truncated or alien file.
     */
    static std::unique_ptr<IvfIndex> load(const std::string &path);

    /** Options for openMapped(). */
    struct MmapOptions
    {
        /**
         * CRC every section before serving (one sequential pass over
         * the file). Off, only the structural validation runs — the
         * mode for >RAM datastores where eagerly faulting every page
         * defeats the point of mapping.
         */
        bool verify_checksums = true;

        /** madvise(WILLNEED) the mapping up front (warm restarts). */
        bool prefault = false;
    };

    /**
     * Open a saved index as a read-only view over an mmap of the file:
     * inverted-list ids and codes are served straight from the mapped
     * bytes (zero copies — only the small centroid block is
     * materialized, and the HNSW coarse graph rebuilt when configured).
     * Search results are bit-identical to load(); mutation entry points
     * (train/add/removeIds) throw std::logic_error.
     *
     * Cold-start cost is O(validation), not O(data): pages fault in
     * lazily as lists are scanned, and concurrent searchers may share
     * one page cache across processes.
     * @throws util::FormatError on a corrupt, truncated or alien file.
     */
    static std::unique_ptr<IvfIndex> openMapped(const std::string &path,
                                                const MmapOptions &options);

    /** openMapped() with default options (checksums verified). */
    static std::unique_ptr<IvfIndex> openMapped(const std::string &path);

    /** True when this index serves from a mapped file (openMapped). */
    bool isMapped() const { return mapped_ != nullptr; }

    /** Bytes of the backing mapping (0 when not mapped). */
    std::size_t mappedBytes() const;

    /** Memory-resident bytes of the backing mapping (mincore). */
    std::size_t mappedResidentBytes() const;

    /** The vector codec (read-only; used by the streaming builder). */
    const quant::Codec &codec() const { return *codec_; }

    /** Construction parameters. */
    const IvfConfig &config() const { return config_; }

    /**
     * Suggested nlist for a datastore of @p n vectors: the paper uses
     * nlist ~ sqrt(N).
     */
    static std::size_t suggestedNlist(std::size_t n);

  private:
    void addImpl(const vecstore::Matrix &data,
                 const std::vector<vecstore::VecId> &ids,
                 util::ThreadPool *pool);

    struct InvertedList
    {
        std::vector<vecstore::VecId> ids;
        std::vector<std::uint8_t> codes; // ids.size() * codeSize bytes
    };

    /**
     * Borrowed view of one inverted list — points into either the
     * heap-owned lists_ or the mapped file. Every reader goes through
     * this so the scan kernels are storage-agnostic.
     */
    struct ListRef
    {
        const vecstore::VecId *ids;
        const std::uint8_t *codes;
        std::size_t size;
    };
    ListRef listRef(std::size_t list) const;

    /** Mapped-mode state: the mapping plus typed views into it. */
    struct MappedState
    {
        util::MmapFile file;
        const ivff::ListEntry *table;
        const vecstore::VecId *ids;
        const std::uint8_t *codes;
        std::size_t code_size;
    };

    /** Throws std::logic_error when this index is a mapped view. */
    void assertMutable(const char *op) const;

    /** Shared header->index construction for load()/openMapped(). */
    static std::unique_ptr<IvfIndex>
    fromParsed(const ivff::ParsedIndex &parsed, const std::string &path);

    std::size_t dim_;
    vecstore::Metric metric_;
    IvfConfig config_;
    bool trained_ = false;
    std::size_t ntotal_ = 0;
    vecstore::Matrix centroids_;
    std::unique_ptr<quant::Codec> codec_;
    std::unique_ptr<HnswIndex> coarse_graph_; ///< set when hnsw_coarse
    std::vector<InvertedList> lists_;
    std::unique_ptr<MappedState> mapped_; ///< set by openMapped()
};

} // namespace index
} // namespace hermes
