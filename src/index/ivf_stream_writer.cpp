#include "index/ivf_stream_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "cluster/kmeans.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"

namespace hermes {
namespace index {

namespace {

/** Spill record framing: [u32 list][i64 id][code_size bytes]. */
constexpr std::size_t kRecordHeadBytes =
    sizeof(std::uint32_t) + sizeof(vecstore::VecId);

} // namespace

IvfStreamWriter::IvfStreamWriter(const IvfIndex &prototype,
                                 const std::string &path)
    : IvfStreamWriter(prototype, path, Options())
{
}

IvfStreamWriter::IvfStreamWriter(const IvfIndex &prototype,
                                 const std::string &path, Options options)
    : prototype_(prototype), path_(path), options_(std::move(options)),
      code_size_(prototype.codec().codeSize()),
      counts_(prototype.config().nlist, 0)
{
    HERMES_ASSERT(prototype_.isTrained(),
                  "IvfStreamWriter needs a trained prototype");
    HERMES_ASSERT(prototype_.size() == 0,
                  "IvfStreamWriter prototype must have empty lists (its "
                  "vectors would not reach the output)");
    spill_path_ = options_.temp_path.empty() ? path + ".spill"
                                             : options_.temp_path;
    spill_ = std::fopen(spill_path_.c_str(), "wb+");
    if (spill_ == nullptr) {
        throw util::FormatError(util::FormatErrorCode::Io,
                                spill_path_ + ": cannot create spill file");
    }
    // Remove a stale partial output up front so a crash mid-build never
    // leaves yesterday's index masquerading as today's.
    std::remove(path_.c_str());
}

IvfStreamWriter::~IvfStreamWriter()
{
    if (spill_ != nullptr) {
        std::fclose(spill_);
        std::remove(spill_path_.c_str());
    }
}

void
IvfStreamWriter::add(const vecstore::Matrix &data,
                     const std::vector<vecstore::VecId> &ids,
                     util::ThreadPool *pool)
{
    HERMES_ASSERT(!finished_, "IvfStreamWriter::add after finish");
    HERMES_ASSERT(data.rows() == ids.size(),
                  "stream add: row/id count mismatch");
    HERMES_ASSERT(data.dim() == prototype_.dim(),
                  "stream add: dim mismatch");

    const std::size_t n = data.rows();
    const auto &centroids = prototype_.centroids();
    const quant::Codec &codec = prototype_.codec();

    // Same phase split as IvfIndex::addImpl: per-row assign/encode is
    // pool-parallel, the ordered spill stays sequential, so the record
    // stream is identical with or without a pool.
    std::vector<std::uint32_t> assign(n);
    std::vector<std::uint8_t> codes(n * code_size_);
    auto assignAndEncode = [&](std::size_t i) {
        auto v = data.row(i);
        assign[i] = cluster::nearestCentroid(v, centroids);
        codec.encode(v, codes.data() + i * code_size_);
    };
    if (pool != nullptr) {
        pool->parallelFor(n, assignAndEncode);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            assignAndEncode(i);
    }

    std::vector<std::uint8_t> record(kRecordHeadBytes + code_size_);
    for (std::size_t i = 0; i < n; ++i) {
        std::memcpy(record.data(), &assign[i], sizeof(std::uint32_t));
        std::memcpy(record.data() + sizeof(std::uint32_t), &ids[i],
                    sizeof(vecstore::VecId));
        std::memcpy(record.data() + kRecordHeadBytes,
                    codes.data() + i * code_size_, code_size_);
        if (std::fwrite(record.data(), record.size(), 1, spill_) != 1) {
            throw util::FormatError(util::FormatErrorCode::Io,
                                    spill_path_ + ": spill write failed");
        }
        ++counts_[assign[i]];
    }
    ntotal_ += n;
}

std::uint64_t
IvfStreamWriter::finish()
{
    HERMES_ASSERT(!finished_, "IvfStreamWriter::finish called twice");
    finished_ = true;

    std::ostringstream blob_stream;
    {
        util::BinaryWriter bw(blob_stream);
        prototype_.codec().save(bw);
    }
    const std::string blob = blob_stream.str();

    const IvfConfig &config = prototype_.config();
    ivff::IndexMeta meta;
    meta.metric = prototype_.metric();
    meta.dim = prototype_.dim();
    meta.nlist = config.nlist;
    meta.ntotal = ntotal_;
    meta.code_size = code_size_;
    meta.n_centroids = prototype_.centroids().rows();
    meta.trained = true;
    meta.hnsw_coarse = config.hnsw_coarse;
    meta.codec_spec = config.codec;

    ivff::IndexFileWriter w(path_, meta, counts_, blob.size());
    if (meta.n_centroids > 0) {
        w.write(w.sectionOffset(ivff::kCentroids),
                prototype_.centroids().data(),
                meta.n_centroids * meta.dim * sizeof(float));
    }
    if (!blob.empty())
        w.write(w.sectionOffset(ivff::kCodecParams), blob.data(),
                blob.size());

    // Scatter pass: replay the spill in arrival order, buffering per
    // list and flushing whole buffers with positioned writes. Arrival
    // order per list is preserved, so bytes match a save() of the
    // equivalent add()-built index exactly.
    const std::uint64_t ids_base = w.sectionOffset(ivff::kIds);
    const std::uint64_t codes_base = w.sectionOffset(ivff::kCodes);
    const auto &table = w.table();
    const std::size_t nlist = counts_.size();

    struct ListBuffer
    {
        std::vector<vecstore::VecId> ids;
        std::vector<std::uint8_t> codes;
    };
    std::vector<ListBuffer> buffers(nlist);
    std::vector<std::uint64_t> written(nlist, 0);
    std::size_t buffered_bytes = 0;

    auto flushList = [&](std::size_t l) {
        ListBuffer &buf = buffers[l];
        const std::size_t m = buf.ids.size();
        if (m == 0)
            return;
        const std::uint64_t at = table[l].offset + written[l];
        w.write(ids_base + at * sizeof(vecstore::VecId), buf.ids.data(),
                m * sizeof(vecstore::VecId));
        w.write(codes_base + at * code_size_, buf.codes.data(),
                m * code_size_);
        written[l] += m;
        buffered_bytes -= m * (sizeof(vecstore::VecId) + code_size_);
        buf.ids.clear();
        buf.codes.clear();
        buf.ids.shrink_to_fit();
        buf.codes.shrink_to_fit();
    };

    if (std::fflush(spill_) != 0 || std::fseek(spill_, 0, SEEK_SET) != 0) {
        throw util::FormatError(util::FormatErrorCode::Io,
                                spill_path_ + ": cannot rewind spill file");
    }
    const std::size_t stride = kRecordHeadBytes + code_size_;
    // Read whole records in ~1 MiB gulps.
    const std::size_t records_per_chunk =
        std::max<std::size_t>((std::size_t(1) << 20) / stride, 1);
    std::vector<std::uint8_t> chunk(records_per_chunk * stride);
    std::uint64_t remaining = ntotal_;
    while (remaining > 0) {
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(remaining, records_per_chunk));
        if (std::fread(chunk.data(), stride, want, spill_) != want) {
            throw util::FormatError(util::FormatErrorCode::Io,
                                    spill_path_ + ": spill read failed");
        }
        for (std::size_t i = 0; i < want; ++i) {
            const std::uint8_t *rec = chunk.data() + i * stride;
            std::uint32_t list;
            vecstore::VecId id;
            std::memcpy(&list, rec, sizeof(list));
            std::memcpy(&id, rec + sizeof(list), sizeof(id));
            ListBuffer &buf = buffers[list];
            buf.ids.push_back(id);
            buf.codes.insert(buf.codes.end(), rec + kRecordHeadBytes,
                             rec + stride);
            buffered_bytes += sizeof(vecstore::VecId) + code_size_;
        }
        if (buffered_bytes >= options_.buffer_budget_bytes) {
            for (std::size_t l = 0; l < nlist; ++l)
                flushList(l);
        }
        remaining -= want;
    }
    for (std::size_t l = 0; l < nlist; ++l)
        flushList(l);

    w.finish();
    std::fclose(spill_);
    spill_ = nullptr;
    std::remove(spill_path_.c_str());
    return ntotal_;
}

} // namespace index
} // namespace hermes
