#include "index/ann_index.hpp"

#include <exception>

#include "util/logging.hpp"

namespace hermes {
namespace index {

void
AnnIndex::addSequential(const vecstore::Matrix &data)
{
    std::vector<vecstore::VecId> ids(data.rows());
    vecstore::VecId base = static_cast<vecstore::VecId>(size());
    for (std::size_t i = 0; i < ids.size(); ++i)
        ids[i] = base + static_cast<vecstore::VecId>(i);
    add(data, ids);
}

std::vector<vecstore::HitList>
AnnIndex::searchBatch(const vecstore::Matrix &queries, std::size_t k,
                      const SearchParams &params, SearchStats *stats) const
{
    std::vector<SearchStats> per_query;
    auto results =
        searchBatch(queries, k, params, stats ? &per_query : nullptr);
    if (stats) {
        for (const auto &s : per_query)
            stats->merge(s);
    }
    return results;
}

std::vector<vecstore::HitList>
AnnIndex::searchBatch(const vecstore::Matrix &queries, std::size_t k,
                      const SearchParams &params,
                      std::vector<SearchStats> *per_query) const
{
    HERMES_ASSERT(queries.dim() == dim(), "query dim ", queries.dim(),
                  " does not match index dim ", dim());
    std::vector<vecstore::HitList> results(queries.rows());
    if (per_query)
        per_query->assign(queries.rows(), SearchStats{});
    for (std::size_t i = 0; i < queries.rows(); ++i) {
        results[i] = search(queries.row(i), k, params,
                            per_query ? &(*per_query)[i] : nullptr);
    }
    return results;
}

std::vector<vecstore::HitList>
AnnIndex::searchBatchParallel(const vecstore::Matrix &queries, std::size_t k,
                              util::ThreadPool &pool,
                              const SearchParams &params,
                              SearchStats *stats) const
{
    HERMES_ASSERT(queries.dim() == dim(), "query dim ", queries.dim(),
                  " does not match index dim ", dim());
    std::vector<vecstore::HitList> results(queries.rows());
    std::vector<SearchStats> per_query(stats ? queries.rows() : 0);
    // parallelFor rethrows the first per-query exception, but the other
    // queries in the batch may have completed real work by then — merge
    // whatever landed in per_query before propagating, so callers that
    // account scanned bytes/vectors (the serving cost model) don't lose
    // the batch's counters when one query faults.
    std::exception_ptr error;
    try {
        pool.parallelFor(queries.rows(), [&](std::size_t i) {
            results[i] = search(queries.row(i), k, params,
                                stats ? &per_query[i] : nullptr);
        });
    } catch (...) {
        error = std::current_exception();
    }
    if (stats) {
        for (const auto &s : per_query)
            stats->merge(s);
    }
    if (error)
        std::rethrow_exception(error);
    return results;
}

} // namespace index
} // namespace hermes
