/**
 * @file
 * Exact brute-force index — the ground-truth oracle for every accuracy
 * experiment (the paper evaluates NDCG against exhaustive search).
 */

#pragma once

#include "index/ann_index.hpp"

namespace hermes {
namespace index {

/** Brute-force exact index over raw float32. */
class FlatIndex : public AnnIndex
{
  public:
    FlatIndex(std::size_t dim, vecstore::Metric metric);

    std::size_t dim() const override { return data_.dim(); }
    std::size_t size() const override { return data_.rows(); }
    vecstore::Metric metric() const override { return metric_; }
    bool isTrained() const override { return true; }
    void train(const vecstore::Matrix &data) override;
    void add(const vecstore::Matrix &data,
             const std::vector<vecstore::VecId> &ids) override;
    vecstore::HitList search(vecstore::VecView query, std::size_t k,
                             const SearchParams &params = {},
                             SearchStats *stats = nullptr) const override;
    std::size_t memoryBytes() const override;
    std::string name() const override { return "Flat"; }

    /** Stored vector for external id lookup (linear scan of ids). */
    vecstore::VecView vectorById(vecstore::VecId id) const;

  private:
    vecstore::Matrix data_;
    std::vector<vecstore::VecId> ids_;
    vecstore::Metric metric_;
};

} // namespace index
} // namespace hermes
