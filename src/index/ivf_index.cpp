#include "index/ivf_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "cluster/kmeans.hpp"
#include "obs/obs.hpp"
#include "util/logging.hpp"
#include "util/serialize.hpp"
#include "util/timer.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/topk.hpp"

namespace hermes {
namespace index {

namespace {

/** Deterministic reconstruction of the coarse HNSW graph (cheap
 *  relative to its serialized size, so it is never persisted). */
void
rebuildCoarseGraph(std::size_t dim, const vecstore::Matrix &centroids,
                   std::unique_ptr<HnswIndex> &slot)
{
    HnswConfig hc;
    hc.m = 16;
    hc.ef_construction = 80;
    slot = std::make_unique<HnswIndex>(dim, vecstore::Metric::L2, hc);
    slot->addSequential(centroids);
}

} // namespace

IvfIndex::IvfIndex(std::size_t dim, vecstore::Metric metric,
                   const IvfConfig &config)
    : dim_(dim), metric_(metric), config_(config),
      centroids_(dim), codec_(quant::makeCodec(config.codec, dim))
{
    HERMES_ASSERT(dim_ > 0, "IvfIndex needs dim > 0");
    HERMES_ASSERT(config_.nlist > 0, "IvfIndex needs nlist > 0");
    lists_.resize(config_.nlist);
}

std::size_t
IvfIndex::suggestedNlist(std::size_t n)
{
    auto nlist = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(n)));
    return std::max<std::size_t>(nlist, 1);
}

void
IvfIndex::train(const vecstore::Matrix &data)
{
    assertMutable("train");
    HERMES_ASSERT(data.dim() == dim_, "train dim mismatch");
    HERMES_ASSERT(data.rows() >= config_.nlist,
                  "IVF training needs >= nlist points (", config_.nlist,
                  "), got ", data.rows());

    cluster::KMeansConfig km;
    km.k = config_.nlist;
    km.max_iterations = config_.train_iterations;
    km.seed = config_.seed;
    km.max_training_points = config_.max_training_points;
    auto run = cluster::kmeans(data, km);
    centroids_ = std::move(run.centroids);

    if (config_.hnsw_coarse)
        rebuildCoarseGraph(dim_, centroids_, coarse_graph_);

    codec_->train(data);
    trained_ = true;
}

void
IvfIndex::add(const vecstore::Matrix &data,
              const std::vector<vecstore::VecId> &ids)
{
    addImpl(data, ids, nullptr);
}

void
IvfIndex::addParallel(const vecstore::Matrix &data,
                      const std::vector<vecstore::VecId> &ids,
                      util::ThreadPool &pool)
{
    addImpl(data, ids, &pool);
}

void
IvfIndex::addImpl(const vecstore::Matrix &data,
                  const std::vector<vecstore::VecId> &ids,
                  util::ThreadPool *pool)
{
    assertMutable("add");
    HERMES_ASSERT(trained_, "IvfIndex::add before train");
    HERMES_ASSERT(data.rows() == ids.size(), "add: row/id count mismatch");
    HERMES_ASSERT(data.dim() == dim_, "add: dim mismatch");

    const std::size_t n = data.rows();
    const std::size_t code_size = codec_->codeSize();

    // Phase 1: batch-assign and encode every row (independent per row,
    // so it fans out over the pool when one is supplied).
    std::vector<std::uint32_t> assign(n);
    std::vector<std::uint8_t> codes(n * code_size);
    auto assignAndEncode = [&](std::size_t i) {
        auto v = data.row(i);
        assign[i] = cluster::nearestCentroid(v, centroids_);
        codec_->encode(v, codes.data() + i * code_size);
    };
    if (pool != nullptr) {
        pool->parallelFor(n, assignAndEncode);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            assignAndEncode(i);
    }

    // Phase 2: sequential scatter preserves insertion order within each
    // list, so the result is identical to a row-by-row add().
    for (std::size_t i = 0; i < n; ++i) {
        auto &il = lists_[assign[i]];
        il.ids.push_back(ids[i]);
        il.codes.insert(il.codes.end(), codes.begin() + i * code_size,
                        codes.begin() + (i + 1) * code_size);
    }
    ntotal_ += n;
}

vecstore::HitList
IvfIndex::search(vecstore::VecView query, std::size_t k,
                 const SearchParams &params, SearchStats *stats) const
{
    HERMES_ASSERT(trained_, "IvfIndex::search before train");
    HERMES_ASSERT(query.size() == dim_, "search: dim mismatch");

    static obs::Histogram &h_coarse =
        obs::Registry::instance().histogram(obs::names::kIvfCoarseUs);
    static obs::Histogram &h_scan =
        obs::Registry::instance().histogram(obs::names::kIvfScanUs);
    obs::ScopedSpan span("ivf.search");
    util::Timer timer;

    std::size_t nprobe = std::max<std::size_t>(params.nprobe, 1);
    nprobe = std::min(nprobe, config_.nlist);

    // Coarse step: rank centroids by L2 regardless of metric — K-means
    // cells are Voronoi cells under L2 (FAISS does the same for IP via
    // normalized data; we keep L2 cell selection which is exact for the
    // normalized embeddings RAG encoders produce). With hnsw_coarse the
    // linear scan is replaced by a graph walk over the centroids.
    vecstore::HitList probe;
    std::uint64_t coarse_evals = config_.nlist;
    if (coarse_graph_) {
        SearchParams coarse_params;
        coarse_params.ef_search = nprobe + 16;
        SearchStats coarse_stats;
        probe = coarse_graph_->search(query, nprobe, coarse_params,
                                      &coarse_stats);
        coarse_evals = coarse_stats.distance_computations;
    } else {
        vecstore::TopK coarse(nprobe);
        static thread_local std::vector<float> coarse_scores;
        if (coarse_scores.size() < config_.nlist)
            coarse_scores.resize(config_.nlist);
        vecstore::l2SqBatch(query.data(), centroids_.data(), config_.nlist,
                            dim_, coarse_scores.data());
        for (std::size_t c = 0; c < config_.nlist; ++c)
            coarse.push(static_cast<vecstore::VecId>(c), coarse_scores[c]);
        probe = coarse.take();
    }
    h_coarse.observe(timer.elapsedMicros());
    timer.reset();

    auto computer = codec_->distanceComputer(metric_, query);
    const std::size_t code_size = codec_->codeSize();

    vecstore::TopK selector(std::max<std::size_t>(k, 1));
    std::uint64_t scanned = 0;
    std::uint64_t probed = 0;
    // SPANN-style pruning: skip candidate lists whose centroid distance
    // exceeds prune_ratio x the best centroid distance (probe list comes
    // out of the coarse selector best-first, so we can stop early).
    // Invariant: the multiplicative bound is only meaningful for the
    // always non-negative L2 coarse scores produced above (both the
    // linear scan and the coarse HNSW graph rank centroids by L2, even
    // for IP payload metrics). Guard against a negative best score so a
    // future coarse scorer on the IP score scale degrades to "no
    // pruning" instead of silently pruning every list but the first.
    const float prune_bound =
        params.prune_ratio > 0.0 && !probe.empty() &&
                probe.front().score >= 0.0f
            ? static_cast<float>(params.prune_ratio) * probe.front().score
            : std::numeric_limits<float>::max();
    // Block-oriented list scan: one scan() call per probed list (no
    // virtual dispatch per vector) into a buffer reused across lists and
    // queries, then a batched heap offer filtered against the current
    // worst retained score.
    static thread_local std::vector<float> scan_scores;
    for (const auto &candidate : probe) {
        if (candidate.score > prune_bound)
            break;
        const ListRef il = listRef(static_cast<std::size_t>(candidate.id));
        const std::size_t len = il.size;
        if (len > 0) {
            if (scan_scores.size() < len)
                scan_scores.resize(len);
            computer->scan(il.codes, len, selector.worst(),
                           scan_scores.data());
            selector.pushBatch(il.ids, scan_scores.data(), len);
        }
        scanned += len;
        ++probed;
    }

    h_scan.observe(timer.elapsedMicros());
    span.arg("lists_probed", probed);
    span.arg("vectors_scanned", scanned);

    if (stats) {
        stats->lists_probed += probed;
        stats->vectors_scanned += scanned;
        stats->distance_computations += scanned + coarse_evals;
        stats->bytes_scanned += scanned * code_size;
    }

    auto hits = selector.take();
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

std::vector<vecstore::HitList>
IvfIndex::searchBatch(const vecstore::Matrix &queries, std::size_t k,
                      const SearchParams &params,
                      std::vector<SearchStats> *per_query) const
{
    HERMES_ASSERT(trained_, "IvfIndex::searchBatch before train");
    HERMES_ASSERT(queries.dim() == dim_, "searchBatch: dim mismatch");

    const std::size_t num_queries = queries.rows();
    std::vector<vecstore::HitList> results(num_queries);
    if (per_query)
        per_query->assign(num_queries, SearchStats{});
    if (num_queries == 0)
        return results;
    if (num_queries == 1) {
        // No amortization to be had; the per-query path avoids the
        // buffering overhead.
        results[0] = search(queries.row(0), k, params,
                            per_query ? &(*per_query)[0] : nullptr);
        return results;
    }
    if (params.batch_min_scan_floats > 0 && config_.nlist > 0) {
        // Cost cutover (see SearchParams::batch_min_scan_floats): the
        // estimate assumes uniformly filled lists and ignores pruning,
        // which is all it needs — it only has to separate trivial scans
        // (sampled indexes, tiny dims) from ones worth amortizing.
        const std::size_t probe_est =
            std::min(std::max<std::size_t>(params.nprobe, 1),
                     config_.nlist);
        const std::size_t est_floats =
            ntotal_ * probe_est / config_.nlist * dim_;
        if (est_floats < params.batch_min_scan_floats) {
            for (std::size_t qi = 0; qi < num_queries; ++qi) {
                results[qi] =
                    search(queries.row(qi), k, params,
                           per_query ? &(*per_query)[qi] : nullptr);
            }
            return results;
        }
    }

    static obs::Histogram &h_coarse =
        obs::Registry::instance().histogram(obs::names::kIvfCoarseUs);
    static obs::Histogram &h_scan =
        obs::Registry::instance().histogram(obs::names::kIvfScanUs);
    obs::ScopedSpan span("ivf.search_batch");
    span.arg("queries", num_queries);
    util::Timer timer;

    std::size_t nprobe = std::max<std::size_t>(params.nprobe, 1);
    nprobe = std::min(nprobe, config_.nlist);
    const std::size_t code_size = codec_->codeSize();

    // -------------------------------------------------------------------
    // Coarse phase: rank centroids for every query. The linear scan goes
    // through the multi-query kernel in blocks (each centroid row is
    // streamed once per block, not once per query); per query the scores
    // and the ascending push order match search() exactly.
    // -------------------------------------------------------------------
    struct ProbeEntry
    {
        std::uint32_t list;
        std::size_t len;
        std::size_t offset; // into the group score buffer (len > 0 only)
    };
    std::vector<std::vector<ProbeEntry>> probes(num_queries);
    std::vector<std::uint64_t> coarse_evals(num_queries, config_.nlist);
    std::vector<std::size_t> scan_bytes(num_queries, 0);

    vecstore::HitList probe;
    auto buildProbeSequence = [&](std::size_t qi) {
        const float prune_bound =
            params.prune_ratio > 0.0 && !probe.empty() &&
                    probe.front().score >= 0.0f
                ? static_cast<float>(params.prune_ratio) *
                      probe.front().score
                : std::numeric_limits<float>::max();
        auto &seq = probes[qi];
        seq.reserve(probe.size());
        std::size_t bytes = 0;
        for (const auto &candidate : probe) {
            if (candidate.score > prune_bound)
                break;
            const std::size_t list = static_cast<std::size_t>(candidate.id);
            const std::size_t len = listRef(list).size;
            seq.push_back({static_cast<std::uint32_t>(list), len, 0});
            bytes += len * sizeof(float);
        }
        scan_bytes[qi] = bytes;
    };

    if (coarse_graph_) {
        SearchParams coarse_params;
        coarse_params.ef_search = nprobe + 16;
        for (std::size_t qi = 0; qi < num_queries; ++qi) {
            SearchStats coarse_stats;
            probe = coarse_graph_->search(queries.row(qi), nprobe,
                                          coarse_params, &coarse_stats);
            coarse_evals[qi] = coarse_stats.distance_computations;
            buildProbeSequence(qi);
        }
    } else {
        // Block the batch so the Q x nlist score tile stays modest.
        constexpr std::size_t kCoarseBlock = 64;
        std::vector<float> coarse_scores;
        std::vector<const float *> query_ptrs(kCoarseBlock);
        std::vector<float *> score_ptrs(kCoarseBlock);
        for (std::size_t base = 0; base < num_queries;
             base += kCoarseBlock) {
            const std::size_t block =
                std::min(kCoarseBlock, num_queries - base);
            coarse_scores.resize(block * config_.nlist);
            for (std::size_t b = 0; b < block; ++b) {
                query_ptrs[b] = queries.row(base + b).data();
                score_ptrs[b] = coarse_scores.data() + b * config_.nlist;
            }
            vecstore::l2SqBatchMulti(query_ptrs.data(), block,
                                     centroids_.data(), config_.nlist,
                                     dim_, score_ptrs.data());
            for (std::size_t b = 0; b < block; ++b) {
                vecstore::TopK coarse(nprobe);
                const float *scores = score_ptrs[b];
                for (std::size_t c = 0; c < config_.nlist; ++c) {
                    coarse.push(static_cast<vecstore::VecId>(c),
                                scores[c]);
                }
                probe = coarse.take();
                buildProbeSequence(base + b);
            }
        }
    }
    h_coarse.observe(timer.elapsedMicros());
    timer.reset();

    // -------------------------------------------------------------------
    // Scan phase. Queries are partitioned into execution groups whose
    // buffered scores fit kScoreBufferCap; within a group, (query, rank)
    // subscriptions are sorted by list id and each list is scanned once
    // via scanMulti with exact-score thresholds. Each query then replays
    // its pushBatch calls in coarse-rank order, reproducing the
    // per-query TopK feed (and its first-come tie behavior) bit for bit.
    // -------------------------------------------------------------------
    constexpr std::size_t kScoreBufferCap = std::size_t(32) << 20;
    struct Subscription
    {
        std::uint32_t list;
        std::uint32_t query; // batch-relative index
        std::uint32_t rank;  // position in the query's probe sequence
    };
    std::uint64_t total_probed = 0;
    std::uint64_t total_scanned = 0;
    std::vector<float> buffer;
    std::vector<Subscription> subs;
    std::vector<std::unique_ptr<quant::DistanceComputer>> computers;
    std::vector<const quant::DistanceComputer *> peer_ptrs;
    std::vector<float *> out_ptrs;
    std::vector<float> thresholds;

    std::size_t group_begin = 0;
    while (group_begin < num_queries) {
        std::size_t group_end = group_begin;
        std::size_t group_bytes = 0;
        while (group_end < num_queries &&
               (group_end == group_begin ||
                group_bytes + scan_bytes[group_end] <= kScoreBufferCap)) {
            group_bytes += scan_bytes[group_end];
            ++group_end;
        }

        // Assign buffer segments and collect subscriptions.
        subs.clear();
        std::size_t offset = 0;
        for (std::size_t qi = group_begin; qi < group_end; ++qi) {
            auto &seq = probes[qi];
            for (std::size_t r = 0; r < seq.size(); ++r) {
                if (seq[r].len == 0)
                    continue;
                seq[r].offset = offset;
                offset += seq[r].len;
                subs.push_back({seq[r].list,
                                static_cast<std::uint32_t>(qi - group_begin),
                                static_cast<std::uint32_t>(r)});
            }
        }
        buffer.resize(offset);
        std::sort(subs.begin(), subs.end(),
                  [](const Subscription &a, const Subscription &b) {
                      if (a.list != b.list)
                          return a.list < b.list;
                      return a.query < b.query;
                  });

        computers.clear();
        for (std::size_t qi = group_begin; qi < group_end; ++qi) {
            computers.push_back(
                codec_->distanceComputer(metric_, queries.row(qi)));
        }

        // One scanMulti per distinct probed list: the code stream and
        // any shared dequant work are amortized over every subscriber.
        std::size_t s = 0;
        while (s < subs.size()) {
            std::size_t e = s;
            while (e < subs.size() && subs[e].list == subs[s].list)
                ++e;
            const ListRef il = listRef(subs[s].list);
            const std::size_t len = il.size;
            const std::size_t m = e - s;
            peer_ptrs.resize(m);
            out_ptrs.resize(m);
            thresholds.assign(m, std::numeric_limits<float>::max());
            for (std::size_t t = 0; t < m; ++t) {
                const auto &sub = subs[s + t];
                peer_ptrs[t] = computers[sub.query].get();
                out_ptrs[t] =
                    buffer.data() +
                    probes[group_begin + sub.query][sub.rank].offset;
            }
            peer_ptrs[0]->scanMulti(peer_ptrs.data(), m, il.codes, len,
                                    thresholds.data(), out_ptrs.data());
            s = e;
        }

        // Per-query emit: replay the buffered segments in coarse-rank
        // order into a fresh TopK — identical pushes, identical ties.
        for (std::size_t qi = group_begin; qi < group_end; ++qi) {
            vecstore::TopK selector(std::max<std::size_t>(k, 1));
            std::uint64_t scanned = 0;
            const auto &seq = probes[qi];
            for (const auto &entry : seq) {
                if (entry.len > 0) {
                    selector.pushBatch(listRef(entry.list).ids,
                                       buffer.data() + entry.offset,
                                       entry.len);
                }
                scanned += entry.len;
            }
            auto hits = selector.take();
            if (hits.size() > k)
                hits.resize(k);
            results[qi] = std::move(hits);

            total_probed += seq.size();
            total_scanned += scanned;
            if (per_query) {
                auto &st = (*per_query)[qi];
                st.lists_probed += seq.size();
                st.vectors_scanned += scanned;
                st.distance_computations += scanned + coarse_evals[qi];
                st.bytes_scanned += scanned * code_size;
            }
        }
        group_begin = group_end;
    }

    h_scan.observe(timer.elapsedMicros());
    span.arg("lists_probed", total_probed);
    span.arg("vectors_scanned", total_scanned);
    return results;
}

std::size_t
IvfIndex::memoryBytes() const
{
    // Heap footprint only: a mapped index reports just its centroid
    // copy here — the file-backed bytes show up in mappedBytes() /
    // mappedResidentBytes() instead, because the page cache owns them
    // and can drop them under pressure.
    std::size_t bytes = centroids_.memoryBytes();
    for (const auto &il : lists_) {
        bytes += il.ids.size() * sizeof(vecstore::VecId);
        bytes += il.codes.size();
    }
    return bytes;
}

std::size_t
IvfIndex::mappedBytes() const
{
    return mapped_ ? mapped_->file.size() : 0;
}

std::size_t
IvfIndex::mappedResidentBytes() const
{
    return mapped_ ? mapped_->file.residentBytes() : 0;
}

IvfIndex::ListRef
IvfIndex::listRef(std::size_t list) const
{
    if (mapped_) {
        const ivff::ListEntry &e = mapped_->table[list];
        return {mapped_->ids + e.offset,
                mapped_->codes + e.offset * mapped_->code_size,
                static_cast<std::size_t>(e.count)};
    }
    const InvertedList &il = lists_[list];
    return {il.ids.data(), il.codes.data(), il.ids.size()};
}

void
IvfIndex::assertMutable(const char *op) const
{
    if (mapped_) {
        throw std::logic_error(
            std::string("IvfIndex::") + op +
            ": index is a read-only mmap view (reopen with load() to "
            "mutate)");
    }
}

std::string
IvfIndex::name() const
{
    return "IVF" + std::to_string(config_.nlist) + "," + codec_->name();
}

std::size_t
IvfIndex::removeIds(const std::vector<vecstore::VecId> &ids)
{
    assertMutable("removeIds");
    std::unordered_set<vecstore::VecId> doomed(ids.begin(), ids.end());
    const std::size_t code_size = codec_->codeSize();
    std::size_t removed = 0;
    for (auto &il : lists_) {
        std::size_t write = 0;
        for (std::size_t read = 0; read < il.ids.size(); ++read) {
            if (doomed.count(il.ids[read])) {
                ++removed;
                continue;
            }
            if (write != read) {
                il.ids[write] = il.ids[read];
                std::copy(il.codes.begin() +
                              static_cast<std::ptrdiff_t>(read * code_size),
                          il.codes.begin() +
                              static_cast<std::ptrdiff_t>((read + 1) *
                                                          code_size),
                          il.codes.begin() +
                              static_cast<std::ptrdiff_t>(write *
                                                          code_size));
            }
            ++write;
        }
        il.ids.resize(write);
        il.codes.resize(write * code_size);
    }
    ntotal_ -= removed;
    return removed;
}

std::size_t
IvfIndex::listSize(std::size_t list) const
{
    HERMES_ASSERT(list < config_.nlist, "listSize: bad list ", list);
    return listRef(list).size;
}

void
IvfIndex::save(const std::string &path) const
{
    // Codec parameters first: the blob's size is part of the layout.
    std::ostringstream blob_stream;
    {
        util::BinaryWriter bw(blob_stream);
        codec_->save(bw);
    }
    const std::string blob = blob_stream.str();

    ivff::IndexMeta meta;
    meta.metric = metric_;
    meta.dim = dim_;
    meta.nlist = config_.nlist;
    meta.ntotal = ntotal_;
    meta.code_size = codec_->codeSize();
    meta.n_centroids = centroids_.rows();
    meta.trained = trained_;
    meta.hnsw_coarse = config_.hnsw_coarse;
    meta.codec_spec = config_.codec;

    std::vector<std::uint64_t> counts(config_.nlist);
    for (std::size_t l = 0; l < config_.nlist; ++l)
        counts[l] = listRef(l).size;

    ivff::IndexFileWriter w(path, meta, counts, blob.size());
    if (centroids_.rows() > 0) {
        w.write(w.sectionOffset(ivff::kCentroids), centroids_.data(),
                centroids_.rows() * dim_ * sizeof(float));
    }
    const std::uint64_t ids_base = w.sectionOffset(ivff::kIds);
    const std::uint64_t codes_base = w.sectionOffset(ivff::kCodes);
    const std::size_t code_size = codec_->codeSize();
    const auto &table = w.table();
    for (std::size_t l = 0; l < config_.nlist; ++l) {
        const ListRef il = listRef(l);
        if (il.size == 0)
            continue;
        w.write(ids_base + table[l].offset * sizeof(vecstore::VecId),
                il.ids, il.size * sizeof(vecstore::VecId));
        w.write(codes_base + table[l].offset * code_size, il.codes,
                il.size * code_size);
    }
    if (!blob.empty())
        w.write(w.sectionOffset(ivff::kCodecParams), blob.data(),
                blob.size());
    w.finish();
}

std::unique_ptr<IvfIndex>
IvfIndex::fromParsed(const ivff::ParsedIndex &parsed,
                     const std::string &path)
{
    const ivff::IndexMeta &meta = parsed.meta;
    IvfConfig config;
    config.nlist = static_cast<std::size_t>(meta.nlist);
    config.codec = meta.codec_spec;
    config.hnsw_coarse = meta.hnsw_coarse;

    // makeCodec treats a bad spec as fatal; for bytes that came off
    // disk it must be a typed rejection instead (a hostile file can
    // carry any spec with recomputed checksums).
    if (!quant::codecSpecValid(config.codec,
                               static_cast<std::size_t>(meta.dim))) {
        throw util::FormatError(util::FormatErrorCode::Corrupt,
                                path + ": invalid codec spec '" +
                                    config.codec + "'");
    }
    auto idx = std::make_unique<IvfIndex>(
        static_cast<std::size_t>(meta.dim), meta.metric, config);
    idx->trained_ = meta.trained;
    idx->ntotal_ = static_cast<std::size_t>(meta.ntotal);

    idx->centroids_ = vecstore::Matrix(idx->dim_);
    if (meta.n_centroids > 0) {
        // The only copied payload: nlist x dim floats, a rounding error
        // next to the code sections, and centroids() must expose a
        // Matrix anyway.
        idx->centroids_.reserveRows(meta.n_centroids);
        for (std::uint64_t i = 0; i < meta.n_centroids; ++i) {
            idx->centroids_.append(vecstore::VecView(
                parsed.centroids + i * meta.dim,
                static_cast<std::size_t>(meta.dim)));
        }
    }

    if (parsed.codec_blob == nullptr) {
        throw util::FormatError(util::FormatErrorCode::Corrupt,
                                path + ": missing codec parameters");
    }
    {
        util::BinaryReader br(parsed.codec_blob, parsed.codec_blob_bytes,
                              path + " (codec parameters)");
        idx->codec_->load(br);
    }
    if (idx->codec_->codeSize() != meta.code_size) {
        throw util::FormatError(
            util::FormatErrorCode::Corrupt,
            path + ": codec code size disagrees with header");
    }
    return idx;
}

std::unique_ptr<IvfIndex>
IvfIndex::load(const std::string &path)
{
    // One parser for both paths: load() maps the file just long enough
    // to validate and copy it into heap-owned lists.
    util::MmapFile file(path);
    auto parsed = ivff::parseIndexFile(file);
    auto idx = fromParsed(parsed, path);
    const std::size_t code_size = idx->codec_->codeSize();
    for (std::size_t l = 0; l < idx->config_.nlist; ++l) {
        const ivff::ListEntry &e = parsed.list_table[l];
        auto &il = idx->lists_[l];
        il.ids.assign(parsed.ids + e.offset, parsed.ids + e.offset + e.count);
        il.codes.assign(parsed.codes + e.offset * code_size,
                        parsed.codes + (e.offset + e.count) * code_size);
    }
    if (idx->config_.hnsw_coarse && idx->trained_)
        rebuildCoarseGraph(idx->dim_, idx->centroids_, idx->coarse_graph_);
    return idx;
}

std::unique_ptr<IvfIndex>
IvfIndex::openMapped(const std::string &path)
{
    return openMapped(path, MmapOptions());
}

std::unique_ptr<IvfIndex>
IvfIndex::openMapped(const std::string &path, const MmapOptions &options)
{
    util::MmapFile file(path);
    auto parsed = ivff::parseIndexFile(file, options.verify_checksums);
    auto idx = fromParsed(parsed, path);
    // The parsed pointers target the mapping itself; moving the
    // MmapFile moves ownership, not the mapped address, so they stay
    // valid for the life of mapped_.
    idx->mapped_ = std::make_unique<MappedState>(
        MappedState{std::move(file), parsed.list_table, parsed.ids,
                    parsed.codes,
                    static_cast<std::size_t>(parsed.meta.code_size)});
    if (options.prefault)
        idx->mapped_->file.advise(util::MapAdvice::WillNeed);
    if (idx->config_.hnsw_coarse && idx->trained_)
        rebuildCoarseGraph(idx->dim_, idx->centroids_, idx->coarse_graph_);
    return idx;
}

} // namespace index
} // namespace hermes
