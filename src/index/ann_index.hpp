/**
 * @file
 * Abstract approximate-nearest-neighbor index interface.
 *
 * Mirrors the FAISS surface the paper uses: train on a sample, add vectors
 * (with optional external ids), search batches with tunable effort, and
 * report memory so at-scale footprints can be projected.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/threadpool.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/types.hpp"

namespace hermes {
namespace index {

/** Per-search tuning knobs. */
struct SearchParams
{
    /** IVF: number of inverted lists to probe (the paper's nProbe). */
    std::size_t nprobe = 1;

    /** HNSW: search beam width (efSearch). */
    std::size_t ef_search = 64;

    /**
     * IVF: SPANN-style query-time list pruning (paper §7, "IVF
     * Optimizations"). After ranking the nprobe candidate lists by
     * centroid distance, lists whose centroid distance exceeds
     * prune_ratio x (best centroid distance) are skipped. 0 disables
     * pruning. Typical values: 1.5 - 4.0 (L2 metric).
     */
    double prune_ratio = 0.0;

    /**
     * IVF searchBatch: minimum estimated per-query scan volume (scanned
     * rows x dim, i.e. floats touched) for the list-major batched path
     * to engage. List-major execution amortizes each list's streaming
     * across the batch but pays for it in score buffering and multi-
     * query tile bookkeeping, which only wins once each query scans
     * enough data (low-dim or few-row scans such as sampled-index
     * probes run faster through the plain per-query loop). Batches
     * whose estimate (size() * nprobe / nlist * dim) falls below this
     * floor take the per-query path instead; both paths return
     * bit-identical results, so the cutover is a pure cost heuristic.
     * Set to 0 to force list-major execution for any batch (the parity
     * tests do this to pin the batched arm).
     */
    std::size_t batch_min_scan_floats = std::size_t(1) << 18;
};

/**
 * Work counters filled during a search.
 *
 * These are the raw inputs to the multi-node cost model: the simulator
 * converts scanned vectors / bytes into latency and energy per node.
 */
struct SearchStats
{
    /** Inverted lists or graph nodes visited. */
    std::uint64_t lists_probed = 0;

    /** Database vectors whose distance was evaluated. */
    std::uint64_t vectors_scanned = 0;

    /** Full distance computations (incl. coarse quantizer). */
    std::uint64_t distance_computations = 0;

    /** Code bytes touched while scanning. */
    std::uint64_t bytes_scanned = 0;

    /** Accumulate another search's counters. */
    void
    merge(const SearchStats &other)
    {
        lists_probed += other.lists_probed;
        vectors_scanned += other.vectors_scanned;
        distance_computations += other.distance_computations;
        bytes_scanned += other.bytes_scanned;
    }
};

/** Abstract ANN index. */
class AnnIndex
{
  public:
    virtual ~AnnIndex() = default;

    /** Embedding dimensionality. */
    virtual std::size_t dim() const = 0;

    /** Number of stored vectors. */
    virtual std::size_t size() const = 0;

    /** Distance metric. */
    virtual vecstore::Metric metric() const = 0;

    /** True once the index is ready for add(). */
    virtual bool isTrained() const = 0;

    /** Fit index parameters on a representative sample. */
    virtual void train(const vecstore::Matrix &data) = 0;

    /**
     * Add vectors with explicit external ids.
     * @param data n x d matrix.
     * @param ids  n external ids (one per row).
     */
    virtual void add(const vecstore::Matrix &data,
                     const std::vector<vecstore::VecId> &ids) = 0;

    /** Add vectors with sequential ids starting at size(). */
    void addSequential(const vecstore::Matrix &data);

    /**
     * Search for the k nearest neighbors of one query.
     *
     * @param query  d-dim query vector.
     * @param k      Result count.
     * @param params Search effort knobs.
     * @param stats  Optional work-counter sink.
     */
    virtual vecstore::HitList search(vecstore::VecView query, std::size_t k,
                                     const SearchParams &params = {},
                                     SearchStats *stats = nullptr) const = 0;

    /**
     * Search a batch of queries (row-major matrix), returning one hit list
     * per query. Stats accumulate across the batch.
     */
    std::vector<vecstore::HitList>
    searchBatch(const vecstore::Matrix &queries, std::size_t k,
                const SearchParams &params = {},
                SearchStats *stats = nullptr) const;

    /**
     * Batch search with per-query stats. The base implementation loops
     * search(); indexes may override with a fused multi-query execution
     * (IvfIndex's list-major path) but must return hit lists and stats
     * bit-identical to the per-query loop.
     *
     * @param per_query When non-null, resized to queries.rows() with one
     *                  SearchStats per query (overwritten, not merged).
     */
    virtual std::vector<vecstore::HitList>
    searchBatch(const vecstore::Matrix &queries, std::size_t k,
                const SearchParams &params,
                std::vector<SearchStats> *per_query) const;

    /**
     * Batch search over a thread pool: one task per query with greedy
     * work stealing, matching the FAISS scheduling the paper assumes
     * (§6, Takeaway 1). Results and stats are identical to searchBatch.
     */
    std::vector<vecstore::HitList>
    searchBatchParallel(const vecstore::Matrix &queries, std::size_t k,
                        util::ThreadPool &pool,
                        const SearchParams &params = {},
                        SearchStats *stats = nullptr) const;

    /** Payload memory footprint in bytes (codes + graph + centroids). */
    virtual std::size_t memoryBytes() const = 0;

    /** Index spec name, e.g. "IVF1024,SQ8". */
    virtual std::string name() const = 0;
};

/**
 * Construct an index from a spec string:
 *   "Flat"                — exact search
 *   "IVF<nlist>,<codec>"  — e.g. "IVF1024,SQ8"
 *   "HNSW<M>"             — e.g. "HNSW32"
 *
 * @param spec   Index spec.
 * @param dim    Embedding dimensionality.
 * @param metric Distance metric.
 */
std::unique_ptr<AnnIndex> makeIndex(const std::string &spec, std::size_t dim,
                                    vecstore::Metric metric);

} // namespace index
} // namespace hermes
