#include "net/net.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace hermes {
namespace net {

namespace {

/** Cap used to report "infinite" remaining time in milliseconds. */
constexpr double kInfiniteMs = 1e12;

bool
isWouldBlock(int err)
{
    return err == EAGAIN || err == EWOULDBLOCK;
}

bool
isPeerGone(int err)
{
    return err == ECONNRESET || err == EPIPE || err == ENOTCONN;
}

IoStatus
waitFor(int fd, short events, const Deadline &deadline, int slice_ms)
{
    for (;;) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = events;
        int budget = deadline.pollBudgetMs(slice_ms);
        int ready = ::poll(&pfd, 1, budget);
        if (ready > 0) {
            // POLLERR/POLLHUP surface through the subsequent
            // recv/send, which reports the precise errno.
            return IoStatus::Ok;
        }
        if (ready == 0) {
            if (deadline.expired())
                return IoStatus::Timeout;
            if (slice_ms >= 0)
                return IoStatus::Timeout; // slice elapsed; caller re-arms
            continue;
        }
        if (errno == EINTR)
            continue; // a signal is not a timeout; re-arm with what's left
        return IoStatus::Error;
    }
}

} // namespace

const char *
ioStatusName(IoStatus status)
{
    switch (status) {
      case IoStatus::Ok: return "ok";
      case IoStatus::Timeout: return "timeout";
      case IoStatus::Closed: return "closed";
      case IoStatus::Error: return "error";
    }
    return "unknown";
}

Deadline
Deadline::after(double budget_ms)
{
    Deadline d;
    if (budget_ms > 0.0) {
        d.infinite_ = false;
        d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(budget_ms));
    }
    return d;
}

bool
Deadline::expired() const
{
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
}

double
Deadline::remainingMs() const
{
    if (infinite_)
        return kInfiniteMs;
    double left = std::chrono::duration<double, std::milli>(
                      at_ - std::chrono::steady_clock::now())
                      .count();
    return left > 0.0 ? left : 0.0;
}

int
Deadline::pollBudgetMs(int slice_ms) const
{
    if (infinite_)
        return slice_ms;
    double left = remainingMs();
    // Round up so a 0.4 ms remainder still waits rather than spinning.
    int ms = left >= 2147483000.0 ? 2147483000
                                  : static_cast<int>(left) + (left > 0 ? 1 : 0);
    if (slice_ms >= 0 && slice_ms < ms)
        ms = slice_ms;
    return ms;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

int
Socket::release()
{
    int fd = fd_;
    fd_ = -1;
    return fd;
}

bool
setNonBlocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return false;
    return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void
setTcpNoDelay(int fd)
{
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

IoStatus
waitReadable(int fd, const Deadline &deadline, int slice_ms)
{
    return waitFor(fd, POLLIN, deadline, slice_ms);
}

IoStatus
waitWritable(int fd, const Deadline &deadline, int slice_ms)
{
    return waitFor(fd, POLLOUT, deadline, slice_ms);
}

IoResult
writeAll(Socket &socket, const void *data, std::size_t size,
         const Deadline &deadline)
{
    IoResult result;
    const char *bytes = static_cast<const char *>(data);
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::send(socket.fd(), bytes + off, size - off,
                           MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue; // a mid-write signal must not truncate the response
        if (n < 0 && isWouldBlock(errno)) {
            IoStatus wait = waitWritable(socket.fd(), deadline);
            if (wait == IoStatus::Ok)
                continue;
            result.status = wait;
            result.bytes = off;
            return result;
        }
        result.status = (n < 0 && isPeerGone(errno)) ? IoStatus::Closed
                                                     : IoStatus::Error;
        result.error = n < 0 ? errno : 0;
        result.bytes = off;
        return result;
    }
    result.status = IoStatus::Ok;
    result.bytes = off;
    return result;
}

IoResult
readFully(Socket &socket, void *data, std::size_t size,
          const Deadline &deadline)
{
    IoResult result;
    char *bytes = static_cast<char *>(data);
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::recv(socket.fd(), bytes + off, size - off, 0);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0) {
            result.status = IoStatus::Closed;
            result.bytes = off;
            return result;
        }
        if (errno == EINTR)
            continue;
        if (isWouldBlock(errno)) {
            IoStatus wait = waitReadable(socket.fd(), deadline);
            if (wait == IoStatus::Ok)
                continue;
            result.status = wait;
            result.bytes = off;
            return result;
        }
        result.status = isPeerGone(errno) ? IoStatus::Closed
                                          : IoStatus::Error;
        result.error = errno;
        result.bytes = off;
        return result;
    }
    result.status = IoStatus::Ok;
    result.bytes = off;
    return result;
}

IoResult
readSome(Socket &socket, void *data, std::size_t size,
         const Deadline &deadline)
{
    IoResult result;
    for (;;) {
        ssize_t n = ::recv(socket.fd(), data, size, 0);
        if (n > 0) {
            result.status = IoStatus::Ok;
            result.bytes = static_cast<std::size_t>(n);
            return result;
        }
        if (n == 0) {
            result.status = IoStatus::Closed;
            return result;
        }
        if (errno == EINTR)
            continue;
        if (isWouldBlock(errno)) {
            IoStatus wait = waitReadable(socket.fd(), deadline);
            if (wait == IoStatus::Ok)
                continue;
            result.status = wait;
            return result;
        }
        result.status = isPeerGone(errno) ? IoStatus::Closed
                                          : IoStatus::Error;
        result.error = errno;
        return result;
    }
}

Socket
connectTo(const std::string &host, std::uint16_t port, double timeout_ms,
          std::string *error)
{
    if (error)
        error->clear();

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *result = nullptr;
    std::string port_str = std::to_string(port);
    int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result);
    if (rc != 0 || result == nullptr) {
        if (error)
            *error = "resolve " + host + ": " + ::gai_strerror(rc);
        return Socket();
    }

    Socket socket(::socket(result->ai_family, result->ai_socktype,
                           result->ai_protocol));
    bool ok = socket.valid() && setNonBlocking(socket.fd());
    if (ok) {
        Deadline deadline = Deadline::after(timeout_ms);
        int crc;
        do {
            crc = ::connect(socket.fd(), result->ai_addr,
                            result->ai_addrlen);
        } while (crc != 0 && errno == EINTR);
        if (crc != 0 && errno == EINPROGRESS) {
            ok = waitWritable(socket.fd(), deadline) == IoStatus::Ok;
            if (ok) {
                int so_error = 0;
                socklen_t len = sizeof(so_error);
                ::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &so_error,
                             &len);
                ok = so_error == 0;
                if (!ok)
                    errno = so_error;
            }
        } else {
            ok = crc == 0;
        }
    }
    ::freeaddrinfo(result);
    if (!ok) {
        if (error) {
            *error = "connect " + host + ":" + port_str + ": " +
                std::strerror(errno);
        }
        return Socket();
    }
    setTcpNoDelay(socket.fd());
    return socket;
}

bool
Listener::open(const std::string &bind_address, std::uint16_t port,
               int backlog, std::string *error)
{
    if (error)
        error->clear();
    Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
    if (!socket.valid()) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
        if (error)
            *error = "bad bind address " + bind_address;
        return false;
    }
    if (::bind(socket.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(socket.fd(), backlog) != 0) {
        if (error) {
            *error = "listen on " + bind_address + ":" +
                std::to_string(port) + ": " + std::strerror(errno);
        }
        return false;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr *>(&addr),
                      &len) == 0)
        port_ = ntohs(addr.sin_port);
    else
        port_ = port;
    setNonBlocking(socket.fd());
    socket_ = std::move(socket);
    return true;
}

Socket
Listener::acceptFor(double timeout_ms)
{
    if (!socket_.valid())
        return Socket();
    // Deadline::after() reads <= 0 as infinite, which is the opposite
    // of this API's "<= 0 polls without blocking" contract — so model
    // a non-positive timeout as an infinite deadline capped to a
    // zero-ms poll slice (one immediate readiness check, no re-arm).
    const bool poll_only = timeout_ms <= 0.0;
    Deadline deadline =
        poll_only ? Deadline::infinite() : Deadline::after(timeout_ms);
    const int slice_ms = poll_only ? 0 : -1;
    for (;;) {
        if (waitReadable(socket_.fd(), deadline, slice_ms) != IoStatus::Ok)
            return Socket();
        int fd = ::accept(socket_.fd(), nullptr, nullptr);
        if (fd >= 0) {
            setNonBlocking(fd);
            setTcpNoDelay(fd);
            return Socket(fd);
        }
        if (errno == EINTR || errno == ECONNABORTED ||
            isWouldBlock(errno))
            continue; // transient; re-arm with the remaining budget
        return Socket();
    }
}

} // namespace net
} // namespace hermes
