/**
 * @file
 * Length-prefixed binary framing over a net::Socket.
 *
 * Every message on a Hermes RPC connection is one frame:
 *
 * All integer fields are native-endian (see net/wire.hpp: both ends of
 * a fleet must share an architecture; a big-endian peer fails the magic
 * check instead of silently mis-decoding).
 *
 *   offset  size  field
 *   0       4     magic   "HRMF" (u32 0x464d5248 on little-endian hosts)
 *   4       4     type    message type (serve/rpc.hpp enumerates them)
 *   8       8     id      request id, echoed in the response frame
 *   16      8     length  payload bytes that follow
 *   24      len   payload wire-encoded body (net/wire.hpp)
 *
 * recvFrame() validates the magic and caps the advertised length before
 * allocating, so a garbage or hostile peer yields IoStatus::Error, not
 * a multi-GB allocation. A peer that disappears mid-frame yields
 * IoStatus::Closed (a torn frame is never returned as a short Ok).
 */

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/net.hpp"

namespace hermes {
namespace net {

/** Frame magic: "HRMF" read as a u32 on a little-endian host. */
constexpr std::uint32_t kFrameMagic = 0x464d5248u;

/** Serialized frame header size in bytes. */
constexpr std::size_t kFrameHeaderBytes = 24;

/** Default cap on a single frame payload (64 MiB). */
constexpr std::size_t kDefaultMaxFramePayload =
    std::size_t(64) << 20;

/** One decoded frame. */
struct Frame
{
    std::uint32_t type = 0;
    std::uint64_t id = 0;
    std::string payload;
};

/**
 * Send one frame (header + payload in a single buffered write).
 * Returns the write status; Timeout means the peer stopped draining
 * before the deadline, Closed means it went away.
 */
IoStatus sendFrame(Socket &socket, std::uint32_t type, std::uint64_t id,
                   std::string_view payload,
                   const Deadline &deadline = Deadline());

/**
 * Receive one complete frame. @p max_payload bounds the advertised
 * payload length (Error beyond it, as for a bad magic). Closed with a
 * partially-read header/payload means the peer died mid-frame.
 */
IoStatus recvFrame(Socket &socket, Frame &frame,
                   const Deadline &deadline = Deadline(),
                   std::size_t max_payload = kDefaultMaxFramePayload);

} // namespace net
} // namespace hermes
