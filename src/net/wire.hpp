/**
 * @file
 * In-memory binary wire codec for RPC payloads: native-endian,
 * length-prefixed, bounds-checked.
 *
 * This is the buffer-backed sibling of util::BinaryWriter/BinaryReader
 * (which stream files): the writer appends to a std::string that can be
 * framed onto a socket, the reader walks a string_view and throws
 * WireError on any underrun or over-long length prefix instead of
 * trusting the peer. Length prefixes are validated against the bytes
 * actually present BEFORE any allocation is sized from them, so a
 * malicious or torn frame fails loudly at decode, not as a wild
 * allocation or an overflowed bounds check.
 *
 * Endianness: values are memcpy'd in host byte order, so the format is
 * native-endian — broker and shards must share an architecture (all
 * supported fleet targets are little-endian). A big-endian peer would
 * mis-decode despite a matching protocol version; a handshake-level
 * guard, not silent byte-swapping, is the intended extension point if
 * that ever matters.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace hermes {
namespace net {

/** Thrown by WireReader on malformed payloads. */
class WireError : public std::runtime_error
{
  public:
    explicit WireError(const std::string &what)
        : std::runtime_error("wire: " + what)
    {
    }
};

/** Append-only buffer writer (native-endian). */
class WireWriter
{
  public:
    void u8(std::uint8_t v) { raw(&v, sizeof(v)); }
    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void i64(std::int64_t v) { raw(&v, sizeof(v)); }
    void f32(float v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }

    /** Length-prefixed (u32) string. */
    void
    str(std::string_view s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    /** Length-prefixed (u64) float block. */
    void
    floats(const float *data, std::size_t n)
    {
        u64(n);
        raw(data, n * sizeof(float));
    }

    const std::string &buffer() const { return buffer_; }
    std::string take() { return std::move(buffer_); }

  private:
    void
    raw(const void *data, std::size_t n)
    {
        buffer_.append(static_cast<const char *>(data), n);
    }

    std::string buffer_;
};

/** Bounds-checked reader over a received payload. */
class WireReader
{
  public:
    explicit WireReader(std::string_view data) : data_(data) {}

    std::uint8_t u8() { return readPod<std::uint8_t>(); }
    std::uint32_t u32() { return readPod<std::uint32_t>(); }
    std::uint64_t u64() { return readPod<std::uint64_t>(); }
    std::int64_t i64() { return readPod<std::int64_t>(); }
    float f32() { return readPod<float>(); }
    double f64() { return readPod<double>(); }

    /** Length-prefixed (u32) string. */
    std::string
    str()
    {
        std::uint32_t n = u32();
        need(n);
        std::string out(data_.substr(pos_, n));
        pos_ += n;
        return out;
    }

    /** Length-prefixed (u64) float block. */
    std::vector<float>
    floats()
    {
        std::uint64_t n = u64();
        // Divide, never multiply: n is attacker-controlled and
        // n * sizeof(float) wraps mod 2^64 (n = 2^62 + 1 would pass a
        // need(4) check and then attempt a wild allocation).
        needCount(n, sizeof(float));
        std::vector<float> out(static_cast<std::size_t>(n));
        if (n)
            std::memcpy(out.data(), data_.data() + pos_,
                        n * sizeof(float));
        pos_ += static_cast<std::size_t>(n) * sizeof(float);
        return out;
    }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data_.size() - pos_; }

    /**
     * Throws unless @p n elements of @p elem_size bytes each could
     * still be present in the payload. Overflow-safe (division, not
     * multiplication), so call sites may size containers from @p n
     * after it passes.
     */
    void
    needCount(std::uint64_t n, std::size_t elem_size) const
    {
        if (n > remaining() / elem_size)
            throw WireError("element count " + std::to_string(n) +
                            " x " + std::to_string(elem_size) +
                            " bytes exceeds payload: have " +
                            std::to_string(remaining()) + " bytes");
    }

    bool atEnd() const { return pos_ == data_.size(); }

    /** Throws unless the payload was consumed exactly. */
    void
    expectEnd() const
    {
        if (!atEnd())
            throw WireError(std::to_string(remaining()) +
                            " trailing bytes in payload");
    }

  private:
    void
    need(std::uint64_t n) const
    {
        if (n > data_.size() - pos_)
            throw WireError("payload truncated: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
    }

    template <typename T>
    T
    readPod()
    {
        need(sizeof(T));
        T v;
        std::memcpy(&v, data_.data() + pos_, sizeof(T));
        pos_ += sizeof(T);
        return v;
    }

    std::string_view data_;
    std::size_t pos_ = 0;
};

} // namespace net
} // namespace hermes
