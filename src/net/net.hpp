/**
 * @file
 * Dependency-free POSIX socket primitives shared by every networked
 * component (the obs HTTP exporter, the shard RPC server, the broker's
 * remote-node clients).
 *
 * Everything here is written against the failure modes that bit the
 * first-generation exporter code:
 *
 *  - `EINTR` never aborts an I/O loop — a signal landing mid-read (a
 *    profiler, a child reaper, a CI harness) restarts the call with the
 *    remaining deadline.
 *  - `EAGAIN`/`EWOULDBLOCK` means "wait for readiness", not "give up":
 *    sockets are switched to non-blocking mode and every operation
 *    polls with the time left on its deadline, so a send-timeout is
 *    reported as IoStatus::Timeout — distinguishable from a peer reset
 *    (IoStatus::Closed) and a genuine error (IoStatus::Error).
 *  - Short writes are completed; short reads are either completed
 *    (readFully) or reported with an honest byte count (readSome).
 *
 * The layer owns no threads and allocates nothing beyond the caller's
 * buffers; deadline bookkeeping is steady-clock based and immune to
 * wall-clock steps.
 */

#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace hermes {
namespace net {

/** Outcome class of one socket operation. */
enum class IoStatus {
    Ok,      ///< The full requested transfer completed.
    Timeout, ///< The deadline expired first (partial bytes possible).
    Closed,  ///< Orderly peer close / reset (ECONNRESET, EPIPE, EOF).
    Error,   ///< Any other socket error; see IoResult::error.
};

/** Human-readable IoStatus name (for logs and test messages). */
const char *ioStatusName(IoStatus status);

/** Result of one (possibly partial) transfer. */
struct IoResult
{
    IoStatus status = IoStatus::Error;

    /** Bytes actually transferred before the status was reached. */
    std::size_t bytes = 0;

    /** errno captured when status == Error (0 otherwise). */
    int error = 0;

    bool ok() const { return status == IoStatus::Ok; }
};

/**
 * An absolute steady-clock deadline. Constructed from a relative
 * budget in milliseconds; a non-positive budget means "no deadline"
 * (infinite), matching the serving layer's `deadline_ms = 0` contract.
 */
class Deadline
{
  public:
    /** No deadline: remainingMs() is unbounded, expired() never true. */
    Deadline() = default;

    /** Deadline @p budget_ms from now; <= 0 means infinite. */
    static Deadline after(double budget_ms);

    /** Infinite deadline (alias of the default constructor). */
    static Deadline infinite() { return Deadline(); }

    bool isInfinite() const { return infinite_; }

    /** True once the budget is exhausted (never for infinite). */
    bool expired() const;

    /**
     * Milliseconds left, clamped to >= 0. For infinite deadlines
     * returns a large positive value; use pollBudgetMs() to convert to
     * a poll(2) timeout argument.
     */
    double remainingMs() const;

    /**
     * poll(2) timeout for this deadline, additionally capped at
     * @p slice_ms when non-negative (lets callers wake periodically to
     * check a stop flag). Infinite deadline + negative slice => -1.
     */
    int pollBudgetMs(int slice_ms = -1) const;

  private:
    bool infinite_ = true;
    std::chrono::steady_clock::time_point at_{};
};

/**
 * Owning RAII wrapper for a socket fd. Movable, non-copyable; closes
 * on destruction. An invalid socket has fd() < 0.
 */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void close();

    /** shutdown(2) both directions, waking any blocked peer loops. */
    void shutdownBoth();

    /** Release ownership of the fd without closing it. */
    int release();

  private:
    int fd_ = -1;
};

/** Switch @p fd to non-blocking mode. Returns false on fcntl failure. */
bool setNonBlocking(int fd);

/** Disable Nagle for low-latency small RPCs (best-effort). */
void setTcpNoDelay(int fd);

/**
 * Wait until @p fd is readable. EINTR restarts the wait with the
 * remaining budget. Returns Ok (readable), Timeout, or Error.
 */
IoStatus waitReadable(int fd, const Deadline &deadline,
                      int slice_ms = -1);

/** Writable-direction twin of waitReadable(). */
IoStatus waitWritable(int fd, const Deadline &deadline,
                      int slice_ms = -1);

/**
 * Write the whole buffer, tolerating short writes, EINTR, and EAGAIN
 * (polls for writability with the remaining deadline). MSG_NOSIGNAL is
 * applied so a dead peer yields Closed, never SIGPIPE.
 */
IoResult writeAll(Socket &socket, const void *data, std::size_t size,
                  const Deadline &deadline = Deadline());

/**
 * Read exactly @p size bytes. A peer close before @p size bytes is
 * Closed with the partial count in IoResult::bytes (a torn transfer is
 * never silently reported as success).
 */
IoResult readFully(Socket &socket, void *data, std::size_t size,
                   const Deadline &deadline = Deadline());

/**
 * One recv of at most @p size bytes, waiting for readability under the
 * deadline. Ok with bytes > 0 on data; Closed on EOF; Timeout/Error
 * otherwise.
 */
IoResult readSome(Socket &socket, void *data, std::size_t size,
                  const Deadline &deadline = Deadline());

/**
 * Blocking-with-deadline TCP connect to @p host:@p port (IPv4).
 * Returns an invalid Socket on failure; @p error (optional) receives a
 * printable reason. The returned socket is non-blocking with Nagle
 * disabled.
 */
Socket connectTo(const std::string &host, std::uint16_t port,
                 double timeout_ms, std::string *error = nullptr);

/**
 * A listening TCP socket with poll-driven, EINTR-safe accept.
 * open() + acceptFor() replace the hand-rolled socket/bind/listen/poll
 * block the obs exporter used to carry.
 */
class Listener
{
  public:
    Listener() = default;
    ~Listener() = default;

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind @p bind_address:@p port (port 0 = ephemeral, see port())
     * and listen. Returns false with @p error filled on failure.
     */
    bool open(const std::string &bind_address, std::uint16_t port,
              int backlog = 64, std::string *error = nullptr);

    /** Actual bound port (resolves an ephemeral request after open). */
    std::uint16_t port() const { return port_; }

    bool valid() const { return socket_.valid(); }

    /**
     * Accept one connection, waiting at most @p timeout_ms (<= 0 polls
     * without blocking). Returns an invalid Socket on timeout; restarts
     * on EINTR; tolerates transient accept errors (ECONNABORTED). The
     * accepted socket is non-blocking with Nagle disabled.
     */
    Socket acceptFor(double timeout_ms);

    /** Close the listening socket (wakes nothing; callers poll). */
    void close() { socket_.close(); }

  private:
    Socket socket_;
    std::uint16_t port_ = 0;
};

} // namespace net
} // namespace hermes
