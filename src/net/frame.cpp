#include "net/frame.hpp"

#include <cstring>

namespace hermes {
namespace net {

namespace {

void
putU32(char *dst, std::uint32_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

void
putU64(char *dst, std::uint64_t v)
{
    std::memcpy(dst, &v, sizeof(v));
}

std::uint32_t
getU32(const char *src)
{
    std::uint32_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

std::uint64_t
getU64(const char *src)
{
    std::uint64_t v;
    std::memcpy(&v, src, sizeof(v));
    return v;
}

} // namespace

IoStatus
sendFrame(Socket &socket, std::uint32_t type, std::uint64_t id,
          std::string_view payload, const Deadline &deadline)
{
    std::string buffer;
    buffer.resize(kFrameHeaderBytes);
    putU32(buffer.data() + 0, kFrameMagic);
    putU32(buffer.data() + 4, type);
    putU64(buffer.data() + 8, id);
    putU64(buffer.data() + 16, payload.size());
    buffer.append(payload.data(), payload.size());
    return writeAll(socket, buffer.data(), buffer.size(), deadline).status;
}

IoStatus
recvFrame(Socket &socket, Frame &frame, const Deadline &deadline,
          std::size_t max_payload)
{
    char header[kFrameHeaderBytes];
    IoResult got = readFully(socket, header, sizeof(header), deadline);
    if (!got.ok())
        return got.status;
    if (getU32(header + 0) != kFrameMagic)
        return IoStatus::Error; // not our protocol; drop the connection
    frame.type = getU32(header + 4);
    frame.id = getU64(header + 8);
    std::uint64_t length = getU64(header + 16);
    if (length > max_payload)
        return IoStatus::Error;
    frame.payload.resize(static_cast<std::size_t>(length));
    if (length) {
        got = readFully(socket, frame.payload.data(),
                        frame.payload.size(), deadline);
        if (!got.ok())
            return got.status;
    }
    return IoStatus::Ok;
}

} // namespace net
} // namespace hermes
