/**
 * @file
 * Hardware-grounded performance and energy observability: perf_event
 * counter groups with per-phase attribution, and an Intel RAPL energy
 * sampler over the powercap sysfs tree.
 *
 * Two measurement planes, both strictly opt-in (setPerfEnabled) and
 * both degrading gracefully to "unavailable":
 *
 *  - PerfScope opens a per-thread perf_event group (cycles,
 *    instructions, cache-misses, LLC-load-misses, branch-misses plus a
 *    task-clock software counter) and attributes the deltas of a
 *    serving phase — sample / deep / merge on the broker, scan on the
 *    node worker — to per-phase IPC and miss-rate histograms in the
 *    obs::Registry. When perf_event_open is denied
 *    (perf_event_paranoid, seccomp, no PMU) the scope is a no-op and
 *    *no* perf metric is ever created, so an unprivileged run's
 *    registry and serving output are bit-identical to a run without
 *    the feature.
 *
 *  - RaplReader accumulates package + dram joules from
 *    /sys/class/powercap/intel-rapl* energy_uj files,
 *    wraparound-corrected via max_energy_range_uj. The sysfs root is
 *    injectable (constructor argument or HERMES_RAPL_ROOT) so tests
 *    drive it from a synthetic fixture. Readings land beside the
 *    modeled joules in serve::LoadReport and as
 *    energy.*_joules_measured gauges.
 *
 * perfStatusJson() is the /perf endpoint body: availability flags,
 * cumulative energy/watts and the per-phase counter aggregates.
 *
 * Layering: obs sits below util; this header uses only the standard
 * library and Linux syscalls (non-Linux builds compile to the
 * unavailable path).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hermes {
namespace obs {

// --- process-wide switches ------------------------------------------------

/**
 * Master switch for hardware measurement; off by default so default
 * runs carry zero overhead and zero new metrics. Tools expose it as
 * --perf=1; HERMES_PERF=1 in the environment enables it at first use.
 */
void setPerfEnabled(bool enabled);

/** Current master-switch state (env-var applied on first query). */
bool perfEnabled();

/**
 * Force every probe (perf_event_open and RAPL discovery) to report
 * unavailable, as if the kernel had denied access — the CI
 * counters-unavailable leg and tests use this to pin the degraded
 * path on privileged hosts. Honoured both as a call and as
 * HERMES_PERF_FORCE_UNAVAILABLE=1 in the environment.
 */
void setPerfForceUnavailable(bool force);

/** True when counter groups opened successfully on at least one
 *  thread; false when a probe failed or none has run yet. */
bool perfCountersAvailable();

/** True when at least one powercap energy domain is readable. */
bool raplAvailable();

// --- scoped per-phase counter attribution ---------------------------------

/** Serving phases that receive hardware-counter attribution. */
enum class PerfPhase : int {
    Sample = 0, ///< broker sample-probe fan-out + collect
    Deep = 1,   ///< broker deep-search fan-out + collect
    Merge = 2,  ///< broker result merge
    Scan = 3,   ///< node worker batch execution (shard scan)
};

/** Registry/JSON name of a phase ("sample", "deep", "merge", "scan"). */
const char *perfPhaseName(PerfPhase phase);

/**
 * RAII reader: snapshots the calling thread's counter group at
 * construction and attributes the delta to @p phase at destruction
 * (counters perf.<phase>.cycles/instructions/..., histograms
 * perf.<phase>.ipc/cache_mpki/llc_mpki/branch_mpki).
 *
 * Cost when disabled or unavailable: one relaxed atomic load. Cost
 * when armed: two read(2) calls on the group fd. The group is opened
 * lazily once per thread and counts this thread only (no inherit), so
 * concurrent scopes on different threads never share counters; nested
 * scopes on one thread double-attribute the inner window by design
 * (phases in the serving path do not nest).
 */
class PerfScope
{
  public:
    explicit PerfScope(PerfPhase phase);
    ~PerfScope();

    PerfScope(const PerfScope &) = delete;
    PerfScope &operator=(const PerfScope &) = delete;

  private:
    PerfPhase phase_;
    bool active_ = false;
    std::uint64_t start_[8] = {}; ///< scaled counter values at entry
};

// --- RAPL energy sampling -------------------------------------------------

/** One powercap domain the reader tracks. */
struct RaplDomain
{
    std::string path;  ///< sysfs directory of the domain
    std::string label; ///< contents of its `name` file ("package-0", "dram")
    bool is_package = false;
    bool is_dram = false;

    /** Counter range for wraparound correction; 0 when the domain has
     *  no readable max_energy_range_uj (negative deltas are then
     *  dropped instead of corrected). */
    std::uint64_t max_range_uj = 0;

    std::uint64_t last_uj = 0;     ///< raw counter at the previous read
    double accumulated_uj = 0.0;   ///< wraparound-corrected total since ctor
};

/** Point-in-time energy totals since the reader was constructed. */
struct RaplSample
{
    bool valid = false; ///< at least one domain read successfully
    double package_joules = 0.0;
    double dram_joules = 0.0;
    double elapsed_seconds = 0.0; ///< since reader construction
    double package_watts = 0.0;   ///< mean power since the previous sample
};

/**
 * Accumulating reader over a powercap sysfs tree. Discovery happens
 * once at construction: every `<root>/intel-rapl*` directory whose
 * `name` file reads as `package-*` or `dram` and whose `energy_uj`
 * is readable becomes a tracked domain (multi-package topologies sum
 * across sockets). sample() re-reads every domain and folds the
 * wraparound-corrected deltas into the running totals.
 *
 * Not thread-safe; the process-wide instance behind raplSample() is
 * internally serialized.
 */
class RaplReader
{
  public:
    /** @param sysfs_root  powercap root; "" means /sys/class/powercap
     *  (or HERMES_RAPL_ROOT when set). */
    explicit RaplReader(const std::string &sysfs_root = "");

    /** True when at least one domain was discovered and readable. */
    bool available() const { return !domains_.empty(); }

    /** Accumulate since-construction totals (see RaplSample). */
    RaplSample sample();

    /** The discovered domains (test introspection). */
    const std::vector<RaplDomain> &domains() const { return domains_; }

  private:
    std::vector<RaplDomain> domains_;
    std::int64_t start_ns_ = 0;
    std::int64_t last_ns_ = 0;
    double last_package_joules_ = 0.0;
};

/**
 * Sample the process-wide RAPL reader (lazily constructed from
 * HERMES_RAPL_ROOT / the default root on first call, honouring the
 * force-unavailable override). Returns an invalid sample when perf is
 * disabled or no domain is readable. Also refreshes the
 * energy.package_joules_measured / energy.dram_joules_measured gauges
 * when valid.
 */
RaplSample raplSample();

// --- export ---------------------------------------------------------------

/**
 * JSON body of the /perf endpoint: { enabled, unavailable,
 * counters_available, rapl_available, elapsed_seconds, package_joules,
 * dram_joules, package_watts, ipc, cache_miss_pct, phases: {...} }.
 * `unavailable` is true unless at least one measurement plane is
 * delivering data; the phases section lists only phases that have
 * recorded at least one scope.
 */
std::string perfStatusJson();

} // namespace obs
} // namespace hermes
