/**
 * @file
 * Canonical metric-name catalog.
 *
 * Every instrumentation site references these constants instead of
 * spelling the string inline, so the full metric surface is greppable
 * in one place and a typo becomes a compile error instead of a silently
 * forked time series. docs/MONITORING.md documents the semantics of
 * each name.
 *
 * Per-cluster series are parameterized: nodeMetric(c, kNodeEnergyJoules)
 * yields "node.<c>.energy_j". Callers on hot paths must resolve the
 * name once (constructor / first loop iteration) and cache the metric
 * reference — Registry lookups take a lock.
 */

#pragma once

#include <cstddef>
#include <string>

namespace hermes {
namespace obs {
namespace names {

// --- broker (serve/broker.cpp) -------------------------------------------
inline constexpr const char *kBrokerQueries = "broker.queries";
inline constexpr const char *kBrokerDeepRequests = "broker.deep_requests";
inline constexpr const char *kBrokerTimeouts = "broker.timeouts";
inline constexpr const char *kBrokerFailures = "broker.failures";
inline constexpr const char *kBrokerDegradedQueries =
    "broker.degraded_queries";
inline constexpr const char *kBrokerQueryLatencyUs =
    "broker.query_latency_us";
inline constexpr const char *kBrokerSamplePhaseUs = "broker.sample_phase_us";
inline constexpr const char *kBrokerDeepPhaseUs = "broker.deep_phase_us";
inline constexpr const char *kBrokerMergePhaseUs = "broker.merge_phase_us";
/** Per-probe sample-phase completion latency (windowed; feeds the
 *  p95 hedge trigger). */
inline constexpr const char *kBrokerSampleProbeUs =
    "broker.sample_probe_us";
/** Hedged sample probes: duplicates issued past the windowed p95... */
inline constexpr const char *kBrokerHedgesIssued = "broker.hedges_issued";
/** ...won by the duplicate (the hedge paid off)... */
inline constexpr const char *kBrokerHedgesWon = "broker.hedges_won";
/** ...or lost to the primary after all (duplicate work discarded). */
inline constexpr const char *kBrokerHedgesWasted = "broker.hedges_wasted";

/** "broker.route.<cluster>.<slot>" — requests routed to each replica
 *  slot of a cluster by power-of-two-choices (slot 0 = primary). */
inline std::string
routeMetric(std::size_t cluster, std::size_t slot)
{
    return "broker.route." + std::to_string(cluster) + "." +
        std::to_string(slot);
}

// --- node, process-wide (serve/node.cpp) ---------------------------------
inline constexpr const char *kNodeQueueWaitUs = "node.queue_wait_us";
inline constexpr const char *kNodeBatchExecUs = "node.batch_exec_us";

// --- node, per-cluster suffixes (use nodeMetric()) -----------------------
inline constexpr const char *kNodeSampleRequests = "sample_requests";
inline constexpr const char *kNodeDeepRequests = "deep_requests";
inline constexpr const char *kNodeHitsReturned = "hits_returned";
inline constexpr const char *kNodeQueueDepth = "queue_depth";
inline constexpr const char *kNodeBusySeconds = "busy_seconds";
inline constexpr const char *kNodeEnergyJoules = "energy_j";
inline constexpr const char *kNodeBatchOccupancy = "batch_occupancy";

/** "node.<cluster>.<suffix>" — the per-cluster series family. */
inline std::string
nodeMetric(std::size_t cluster, const char *suffix)
{
    return "node." + std::to_string(cluster) + "." + suffix;
}

// --- remote node client (serve/remote_node.cpp) --------------------------
/** Request frames sent (header + payload), both singles and batches. */
inline constexpr const char *kRpcRpcs = "rpc.rpcs";
inline constexpr const char *kRpcRequestBytes = "rpc.request_bytes";
inline constexpr const char *kRpcResponseBytes = "rpc.response_bytes";
/** Wall time of one wire round trip (send -> matched reply). */
inline constexpr const char *kRpcRoundTripUs = "rpc.round_trip_us";
/** Requests coalesced per RPC (1 = uncoalesced single). */
inline constexpr const char *kRpcBatchSize = "rpc.batch_size";
/** Successful (re)dials of a pooled data connection. */
inline constexpr const char *kRpcRedials = "rpc.redials";
inline constexpr const char *kRpcTransportFailures =
    "rpc.transport_failures";
/** Typed ErrorResponse frames received (any code). */
inline constexpr const char *kRpcRemoteErrors = "rpc.remote_errors";
/** Estimated clock offset (us) of shard <c>'s trace epoch relative to
 *  this process's, measured by the Health handshake (use rpcNodeMetric). */
inline constexpr const char *kRpcClockOffsetUs = "clock_offset_us";

/** "rpc.error.<code>" — per-error-code counter family. */
inline std::string
rpcErrorMetric(const char *code)
{
    return std::string("rpc.error.") + code;
}

/** "rpc.node.<cluster>.<suffix>" — per-remote-node series family. */
inline std::string
rpcNodeMetric(std::size_t cluster, const char *suffix)
{
    return "rpc.node." + std::to_string(cluster) + "." + suffix;
}

// --- trace recorder (obs/trace.cpp) --------------------------------------
/** Spans currently buffered in the TraceRecorder. */
inline constexpr const char *kTraceBufferSpans = "trace.buffer_spans";
/** Spans discarded because the buffer cap was hit (truncation alarm). */
inline constexpr const char *kTraceDroppedSpans = "trace.dropped_spans";

// --- index (index/ivf_index.cpp) -----------------------------------------
inline constexpr const char *kIvfCoarseUs = "ivf.coarse_us";
inline constexpr const char *kIvfScanUs = "ivf.scan_us";

// --- thread pool (util/threadpool.cpp) -----------------------------------
inline constexpr const char *kPoolParallelForUs = "pool.parallel_for_us";
inline constexpr const char *kPoolParallelForItems =
    "pool.parallel_for_items";

// --- core strategies (core/search_strategy.cpp) --------------------------
inline constexpr const char *kCoreQueryLatencyUs = "core.query_latency_us";
inline constexpr const char *kCoreSamplePhaseUs = "core.sample_phase_us";
inline constexpr const char *kCoreDeepPhaseUs = "core.deep_phase_us";

// --- RAG pipeline (rag/rag_system.cpp) -----------------------------------
inline constexpr const char *kRagStrideTotalUs = "rag.stride_total_us";
inline constexpr const char *kRagStrideRetrievalUs =
    "rag.stride_retrieval_us";
inline constexpr const char *kRagStrides = "rag.strides";

// --- hardware counters (obs/perf.cpp), per-phase suffixes ----------------
// Families are "perf.<phase>.<suffix>" where <phase> is one of
// sample / deep / merge / scan (obs::perfPhaseName). Created only when
// a measurement actually succeeds — an unavailable run never emits
// them (see obs/perf.hpp).
inline constexpr const char *kPerfCycles = "cycles";
inline constexpr const char *kPerfInstructions = "instructions";
inline constexpr const char *kPerfCacheMisses = "cache_misses";
inline constexpr const char *kPerfLlcLoadMisses = "llc_load_misses";
inline constexpr const char *kPerfBranchMisses = "branch_misses";
inline constexpr const char *kPerfTaskClockUs = "task_clock_us";
inline constexpr const char *kPerfIpc = "ipc";
inline constexpr const char *kPerfCacheMpki = "cache_mpki";
inline constexpr const char *kPerfLlcMpki = "llc_mpki";
inline constexpr const char *kPerfBranchMpki = "branch_mpki";

/** "perf.<phase>.<suffix>" — the per-phase hardware-counter family. */
inline std::string
perfMetric(const char *phase, const char *suffix)
{
    return std::string("perf.") + phase + "." + suffix;
}

// --- measured energy (obs/perf.cpp RAPL, serve/broker.cpp) ---------------
/** Wraparound-corrected package joules since the sampler started. */
inline constexpr const char *kEnergyPackageJoulesMeasured =
    "energy.package_joules_measured";
/** Same, for the dram powercap domains. */
inline constexpr const char *kEnergyDramJoulesMeasured =
    "energy.dram_joules_measured";
/** measured package joules / modeled joules of the same report — the
 *  live falsifiability signal for the Fig 18 energy model. */
inline constexpr const char *kEnergyModelErrorRatio =
    "energy.model_error_ratio";

// --- process self-stats (obs/process_stats.cpp) --------------------------
inline constexpr const char *kProcessRssBytes = "process.rss_bytes";
inline constexpr const char *kProcessVmBytes = "process.vm_bytes";
inline constexpr const char *kProcessCpuUserSeconds =
    "process.cpu_user_seconds";
inline constexpr const char *kProcessCpuSystemSeconds =
    "process.cpu_system_seconds";
inline constexpr const char *kProcessThreads = "process.threads";
inline constexpr const char *kProcessUptimeSeconds =
    "process.uptime_seconds";
/** Cumulative page faults serviced without IO (getrusage ru_minflt). */
inline constexpr const char *kProcessMinorFaults = "process.minor_faults";
/** Cumulative page faults that required IO (getrusage ru_majflt) — the
 *  cost signal of scanning an mmap-backed datastore beyond RAM. */
inline constexpr const char *kProcessMajorFaults = "process.major_faults";

// --- mmap-backed datastore (util/mmap_file.cpp) --------------------------
// Minted lazily on the first successful mapping; a process that never
// maps an index exports neither series.
/** Total bytes of live read-only index mappings. */
inline constexpr const char *kMmapMappedBytes = "mmap.mapped_bytes";
/** Bytes of those mappings currently memory-resident (mincore). */
inline constexpr const char *kMmapResidentBytes = "mmap.resident_bytes";

} // namespace names
} // namespace obs
} // namespace hermes
