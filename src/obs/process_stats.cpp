#include "obs/process_stats.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include <sys/resource.h>
#include <unistd.h>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace hermes {
namespace obs {

namespace {

/** Anchored at load time, NOT first call: a process whose stats are
 *  first scraped minutes in must not report an uptime of zero. */
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

double
timevalSeconds(const timeval &tv)
{
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
}

#ifdef __linux__

/** Fill rss/vm from /proc/self/statm (fields are in pages). */
void
readStatm(ProcessStats &stats)
{
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return;
    long vm_pages = 0;
    long rss_pages = 0;
    if (std::fscanf(f, "%ld %ld", &vm_pages, &rss_pages) == 2) {
        double page = static_cast<double>(sysconf(_SC_PAGESIZE));
        stats.vm_bytes = static_cast<double>(vm_pages) * page;
        stats.rss_bytes = static_cast<double>(rss_pages) * page;
    }
    std::fclose(f);
}

/** Fill the thread count from /proc/self/status. */
void
readThreadCount(ProcessStats &stats)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "Threads:", 8) == 0) {
            stats.threads = std::strtol(line + 8, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
}

#endif // __linux__

/** Scrape hooks: registered once, run on every gauge refresh. */
std::mutex &
hookMutex()
{
    static std::mutex m;
    return m;
}

std::vector<std::function<void()>> &
hookList()
{
    static std::vector<std::function<void()>> hooks;
    return hooks;
}

void
runScrapeHooks()
{
    std::vector<std::function<void()>> hooks;
    {
        std::lock_guard<std::mutex> lock(hookMutex());
        hooks = hookList();
    }
    for (const auto &hook : hooks)
        hook();
}

} // namespace

ProcessStats
readProcessStats()
{
    ProcessStats stats;
    rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
        stats.cpu_user_seconds = timevalSeconds(usage.ru_utime);
        stats.cpu_system_seconds = timevalSeconds(usage.ru_stime);
        stats.minor_faults = static_cast<double>(usage.ru_minflt);
        stats.major_faults = static_cast<double>(usage.ru_majflt);
        stats.valid = true;
    }
#ifdef __linux__
    readStatm(stats);
    readThreadCount(stats);
    if (stats.rss_bytes == 0.0) {
        // /proc unavailable (e.g. tight sandbox): fall back to the
        // getrusage peak-RSS, reported in kilobytes on Linux.
        stats.rss_bytes = static_cast<double>(usage.ru_maxrss) * 1024.0;
    }
#endif
    stats.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      g_process_start)
            .count();
    return stats;
}

void
updateProcessGauges(Registry &registry)
{
    auto stats = readProcessStats();
    if (!stats.valid)
        return;
    registry.gauge(names::kProcessRssBytes).set(stats.rss_bytes);
    registry.gauge(names::kProcessVmBytes).set(stats.vm_bytes);
    registry.gauge(names::kProcessCpuUserSeconds)
        .set(stats.cpu_user_seconds);
    registry.gauge(names::kProcessCpuSystemSeconds)
        .set(stats.cpu_system_seconds);
    registry.gauge(names::kProcessThreads)
        .set(static_cast<double>(stats.threads));
    registry.gauge(names::kProcessUptimeSeconds).set(stats.uptime_seconds);
    registry.gauge(names::kProcessMinorFaults).set(stats.minor_faults);
    registry.gauge(names::kProcessMajorFaults).set(stats.major_faults);
    runScrapeHooks();
}

void
updateProcessGauges()
{
    updateProcessGauges(Registry::instance());
}

void
addScrapeHook(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(hookMutex());
    hookList().push_back(std::move(hook));
}

} // namespace obs
} // namespace hermes
