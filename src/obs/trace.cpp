#include "obs/trace.hpp"

#include <cstdio>

#include <unistd.h>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

namespace hermes {
namespace obs {

namespace {

thread_local TraceContextSnapshot t_context;

std::atomic<std::uint32_t> next_thread_id{1};

/** splitmix64 finalizer: cheap, well-mixed 64-bit ids. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * Per-process id-stream seed: pid + boot-relative clock, mixed. Two
 * shard processes started the same nanosecond still diverge on pid,
 * so merged traces keep span ids distinct without coordination.
 */
std::uint64_t
processSeed()
{
    static const std::uint64_t seed = mix64(
        static_cast<std::uint64_t>(::getpid()) ^
        (static_cast<std::uint64_t>(
             std::chrono::steady_clock::now().time_since_epoch().count())
         << 17));
    return seed;
}

/** 16-hex-digit zero-padded id rendering for JSON args. */
std::string
hexId(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::uint64_t
newTraceId()
{
    static std::atomic<std::uint64_t> counter{1};
    std::uint64_t id = mix64(
        processSeed() + counter.fetch_add(1, std::memory_order_relaxed));
    return id ? id : 1;
}

bool
traceActive()
{
    return t_context.active && TraceRecorder::instance().enabled();
}

TraceContextSnapshot
currentTraceContext()
{
    TraceContextSnapshot out = t_context;
    out.active = out.active && TraceRecorder::instance().enabled();
    return out;
}

TraceContext::TraceContext(bool active) : prev_(t_context)
{
    if (!prev_.active && active)
        t_context = TraceContextSnapshot{true, newTraceId(), 0};
}

TraceContext::TraceContext(const TraceContextSnapshot &snapshot)
    : prev_(t_context)
{
    // Additive like the bool form: a thread already tracing keeps its
    // own identity (nested entry points), otherwise adopt the
    // propagated one — minting a trace id if the producer had none.
    if (!prev_.active && snapshot.active) {
        t_context = snapshot;
        if (t_context.trace_id == 0)
            t_context.trace_id = newTraceId();
    }
}

TraceContext::~TraceContext()
{
    t_context = prev_;
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder()
    : epoch_(Clock::now()),
      buffer_gauge_(&Registry::instance().gauge(names::kTraceBufferSpans)),
      dropped_gauge_(&Registry::instance().gauge(names::kTraceDroppedSpans))
{
}

TraceRecorder &
TraceRecorder::instance()
{
    // Immortal for the same reason as Registry::instance(): the
    // atexit-registered trace dump must outlive ordinary statics.
    static TraceRecorder *recorder = new TraceRecorder();
    return *recorder;
}

void
TraceRecorder::start(std::size_t sample_every)
{
    clear();
    sample_every_.store(sample_every ? sample_every : 1,
                        std::memory_order_relaxed);
    sample_counter_.store(0, std::memory_order_relaxed);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        epoch_ = Clock::now();
    }
    enabled_.store(true, std::memory_order_release);
}

void
TraceRecorder::stop()
{
    enabled_.store(false, std::memory_order_release);
}

bool
TraceRecorder::sampleQuery()
{
    if (!enabled())
        return false;
    if (t_context.active)
        return true;
    std::uint64_t n = sample_counter_.fetch_add(1,
                                                std::memory_order_relaxed);
    return n % sample_every_.load(std::memory_order_relaxed) == 0;
}

std::uint32_t
TraceRecorder::currentThreadId()
{
    thread_local std::uint32_t id =
        next_thread_id.fetch_add(1, std::memory_order_relaxed);
    return id;
}

double
TraceRecorder::toMicros(Clock::time_point tp) const
{
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

void
TraceRecorder::record(TraceSpan span)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (spans_.size() >= kMaxSpans) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        dropped_gauge_->set(
            static_cast<double>(dropped_.load(std::memory_order_relaxed)));
        return;
    }
    spans_.push_back(std::move(span));
    buffer_gauge_->set(static_cast<double>(spans_.size()));
}

void
TraceRecorder::addSpan(std::string name, Clock::time_point start,
                       Clock::time_point end, std::vector<TraceArg> args)
{
    TraceSpan span;
    span.name = std::move(name);
    span.tid = currentThreadId();
    span.ts_us = toMicros(start);
    span.dur_us =
        std::chrono::duration<double, std::micro>(end - start).count();
    if (traceActive()) {
        span.trace_id = t_context.trace_id;
        span.parent_span_id = t_context.parent_span_id;
        span.span_id = newTraceId();
    }
    span.args = std::move(args);
    record(std::move(span));
}

void
TraceRecorder::addSpan(std::string name, Clock::time_point start,
                       Clock::time_point end, std::vector<TraceArg> args,
                       const TraceContextSnapshot &ctx)
{
    if (!ctx.active)
        return;
    TraceSpan span;
    span.name = std::move(name);
    span.tid = currentThreadId();
    span.ts_us = toMicros(start);
    span.dur_us =
        std::chrono::duration<double, std::micro>(end - start).count();
    span.trace_id = ctx.trace_id;
    span.parent_span_id = ctx.parent_span_id;
    span.span_id = newTraceId();
    span.args = std::move(args);
    record(std::move(span));
}

std::vector<TraceSpan>
TraceRecorder::snapshot() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return spans_;
}

std::size_t
TraceRecorder::spanCount() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return spans_.size();
}

void
TraceRecorder::clear()
{
    std::unique_lock<std::mutex> lock(mutex_);
    spans_.clear();
    dropped_.store(0, std::memory_order_relaxed);
    buffer_gauge_->set(0.0);
    dropped_gauge_->set(0.0);
}

std::string
TraceRecorder::toJson(const std::vector<TraceArg> &metadata) const
{
    auto spans = snapshot();
    std::string out = "{\"traceEvents\": [";
    char buf[64];
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const auto &s = spans[i];
        out += i ? ",\n  " : "\n  ";
        out += "{\"name\": \"" + detail::jsonEscape(s.name) +
            "\", \"cat\": \"hermes\", \"ph\": \"";
        out += s.instant ? "i" : "X";
        out += "\", \"pid\": 1, \"tid\": " + std::to_string(s.tid);
        std::snprintf(buf, sizeof(buf), "%.3f", s.ts_us);
        out += std::string(", \"ts\": ") + buf;
        if (s.instant) {
            out += ", \"s\": \"t\"";
        } else {
            std::snprintf(buf, sizeof(buf), "%.3f", s.dur_us);
            out += std::string(", \"dur\": ") + buf;
        }
        bool has_ids = s.trace_id != 0;
        if (!s.args.empty() || has_ids) {
            out += ", \"args\": {";
            bool first = true;
            for (const auto &arg : s.args) {
                if (!first)
                    out += ", ";
                first = false;
                out += "\"" + detail::jsonEscape(arg.key) + "\": ";
                if (arg.numeric)
                    out += arg.value;
                else
                    out += "\"" + detail::jsonEscape(arg.value) + "\"";
            }
            if (has_ids) {
                // Hex strings, not numbers: 64-bit ids do not survive
                // consumers that parse JSON numbers as doubles.
                if (!first)
                    out += ", ";
                out += "\"trace_id\": \"" + hexId(s.trace_id) + "\"";
                if (s.span_id != 0)
                    out += ", \"span_id\": \"" + hexId(s.span_id) + "\"";
                if (s.parent_span_id != 0)
                    out += ", \"parent_span_id\": \"" +
                        hexId(s.parent_span_id) + "\"";
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n]";
    if (!metadata.empty()) {
        out += ", \"metadata\": {";
        for (std::size_t m = 0; m < metadata.size(); ++m) {
            const auto &arg = metadata[m];
            if (m)
                out += ", ";
            out += "\"" + detail::jsonEscape(arg.key) + "\": ";
            if (arg.numeric)
                out += arg.value;
            else
                out += "\"" + detail::jsonEscape(arg.value) + "\"";
        }
        out += "}";
    }
    out += ", \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path,
                                const std::vector<TraceArg> &metadata) const
{
    std::string text = toJson(metadata);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[warn] obs: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        std::fprintf(stderr, "[warn] obs: short write to %s\n", path.c_str());
    return ok;
}

// ---------------------------------------------------------------------------
// ScopedSpan / instantEvent
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char *name)
    : active_(traceActive()), name_(name)
{
    if (active_) {
        start_ = TraceRecorder::Clock::now();
        trace_id_ = t_context.trace_id;
        parent_span_id_ = t_context.parent_span_id;
        span_id_ = newTraceId();
        // This span is the parent of anything opened on this thread
        // until it closes (ScopedSpans nest LIFO by construction).
        t_context.parent_span_id = span_id_;
    }
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    t_context.parent_span_id = parent_span_id_;
    auto &recorder = TraceRecorder::instance();
    TraceSpan span;
    span.name = name_;
    span.tid = TraceRecorder::currentThreadId();
    span.ts_us = recorder.toMicros(start_);
    span.dur_us = std::chrono::duration<double, std::micro>(
                      TraceRecorder::Clock::now() - start_)
                      .count();
    span.trace_id = trace_id_;
    span.span_id = span_id_;
    span.parent_span_id = parent_span_id_;
    span.args = std::move(args_);
    recorder.record(std::move(span));
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (active_)
        args_.push_back({key, value, false});
}

void
ScopedSpan::arg(const char *key, double value)
{
    if (active_)
        args_.push_back({key, detail::jsonNumber(value), true});
}

void
ScopedSpan::arg(const char *key, std::uint64_t value)
{
    if (active_)
        args_.push_back({key, std::to_string(value), true});
}

void
instantEvent(const char *name, std::vector<TraceArg> args)
{
    if (!traceActive())
        return;
    auto &recorder = TraceRecorder::instance();
    TraceSpan span;
    span.name = name;
    span.tid = TraceRecorder::currentThreadId();
    span.ts_us = recorder.toMicros(TraceRecorder::Clock::now());
    span.instant = true;
    span.trace_id = t_context.trace_id;
    span.parent_span_id = t_context.parent_span_id;
    span.args = std::move(args);
    recorder.record(std::move(span));
}

} // namespace obs
} // namespace hermes
