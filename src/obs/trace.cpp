#include "obs/trace.hpp"

#include <cstdio>

#include "obs/metrics.hpp"

namespace hermes {
namespace obs {

namespace {

thread_local bool t_trace_active = false;

std::atomic<std::uint32_t> next_thread_id{1};

} // namespace

bool
traceActive()
{
    return t_trace_active && TraceRecorder::instance().enabled();
}

TraceContext::TraceContext(bool active) : prev_(t_trace_active)
{
    t_trace_active = prev_ || active;
}

TraceContext::~TraceContext()
{
    t_trace_active = prev_;
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder() : epoch_(Clock::now()) {}

TraceRecorder &
TraceRecorder::instance()
{
    // Immortal for the same reason as Registry::instance(): the
    // atexit-registered trace dump must outlive ordinary statics.
    static TraceRecorder *recorder = new TraceRecorder();
    return *recorder;
}

void
TraceRecorder::start(std::size_t sample_every)
{
    clear();
    sample_every_.store(sample_every ? sample_every : 1,
                        std::memory_order_relaxed);
    sample_counter_.store(0, std::memory_order_relaxed);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        epoch_ = Clock::now();
    }
    enabled_.store(true, std::memory_order_release);
}

void
TraceRecorder::stop()
{
    enabled_.store(false, std::memory_order_release);
}

bool
TraceRecorder::sampleQuery()
{
    if (!enabled())
        return false;
    if (t_trace_active)
        return true;
    std::uint64_t n = sample_counter_.fetch_add(1,
                                                std::memory_order_relaxed);
    return n % sample_every_.load(std::memory_order_relaxed) == 0;
}

std::uint32_t
TraceRecorder::currentThreadId()
{
    thread_local std::uint32_t id =
        next_thread_id.fetch_add(1, std::memory_order_relaxed);
    return id;
}

double
TraceRecorder::toMicros(Clock::time_point tp) const
{
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

void
TraceRecorder::record(TraceSpan span)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (spans_.size() >= kMaxSpans) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    spans_.push_back(std::move(span));
}

void
TraceRecorder::addSpan(std::string name, Clock::time_point start,
                       Clock::time_point end, std::vector<TraceArg> args)
{
    TraceSpan span;
    span.name = std::move(name);
    span.tid = currentThreadId();
    span.ts_us = toMicros(start);
    span.dur_us =
        std::chrono::duration<double, std::micro>(end - start).count();
    span.args = std::move(args);
    record(std::move(span));
}

std::vector<TraceSpan>
TraceRecorder::snapshot() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return spans_;
}

std::size_t
TraceRecorder::spanCount() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return spans_.size();
}

void
TraceRecorder::clear()
{
    std::unique_lock<std::mutex> lock(mutex_);
    spans_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

std::string
TraceRecorder::toJson() const
{
    auto spans = snapshot();
    std::string out = "{\"traceEvents\": [";
    char buf[64];
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const auto &s = spans[i];
        out += i ? ",\n  " : "\n  ";
        out += "{\"name\": \"" + detail::jsonEscape(s.name) +
            "\", \"cat\": \"hermes\", \"ph\": \"";
        out += s.instant ? "i" : "X";
        out += "\", \"pid\": 1, \"tid\": " + std::to_string(s.tid);
        std::snprintf(buf, sizeof(buf), "%.3f", s.ts_us);
        out += std::string(", \"ts\": ") + buf;
        if (s.instant) {
            out += ", \"s\": \"t\"";
        } else {
            std::snprintf(buf, sizeof(buf), "%.3f", s.dur_us);
            out += std::string(", \"dur\": ") + buf;
        }
        if (!s.args.empty()) {
            out += ", \"args\": {";
            for (std::size_t a = 0; a < s.args.size(); ++a) {
                const auto &arg = s.args[a];
                if (a)
                    out += ", ";
                out += "\"" + detail::jsonEscape(arg.key) + "\": ";
                if (arg.numeric)
                    out += arg.value;
                else
                    out += "\"" + detail::jsonEscape(arg.value) + "\"";
            }
            out += "}";
        }
        out += "}";
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
TraceRecorder::writeChromeTrace(const std::string &path) const
{
    std::string text = toJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[warn] obs: cannot open %s for writing\n",
                     path.c_str());
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        std::fprintf(stderr, "[warn] obs: short write to %s\n", path.c_str());
    return ok;
}

// ---------------------------------------------------------------------------
// ScopedSpan / instantEvent
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char *name)
    : active_(traceActive()), name_(name)
{
    if (active_)
        start_ = TraceRecorder::Clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (!active_)
        return;
    TraceRecorder::instance().addSpan(
        name_, start_, TraceRecorder::Clock::now(), std::move(args_));
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (active_)
        args_.push_back({key, value, false});
}

void
ScopedSpan::arg(const char *key, double value)
{
    if (active_)
        args_.push_back({key, detail::jsonNumber(value), true});
}

void
ScopedSpan::arg(const char *key, std::uint64_t value)
{
    if (active_)
        args_.push_back({key, std::to_string(value), true});
}

void
instantEvent(const char *name, std::vector<TraceArg> args)
{
    if (!traceActive())
        return;
    auto &recorder = TraceRecorder::instance();
    TraceSpan span;
    span.name = name;
    span.tid = TraceRecorder::currentThreadId();
    span.ts_us = recorder.toMicros(TraceRecorder::Clock::now());
    span.instant = true;
    span.args = std::move(args);
    recorder.record(std::move(span));
}

} // namespace obs
} // namespace hermes
