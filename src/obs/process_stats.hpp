/**
 * @file
 * Process self-statistics for exported snapshots: RSS, user/system CPU
 * seconds, thread count and uptime, read from /proc/self and
 * getrusage(2). The exporter refreshes the process.* gauges on every
 * scrape so each snapshot carries its host context.
 *
 * Non-Linux platforms keep the getrusage-backed fields and report 0 for
 * the /proc-backed ones (valid stays true — partial context beats
 * none).
 */

#pragma once

namespace hermes {
namespace obs {

class Registry;

/** One reading of the process's own resource usage. */
struct ProcessStats
{
    /** Resident set size in bytes (Linux: /proc/self/statm). */
    double rss_bytes = 0.0;

    /** Virtual memory size in bytes (Linux: /proc/self/statm). */
    double vm_bytes = 0.0;

    /** User-mode CPU seconds consumed (getrusage). */
    double cpu_user_seconds = 0.0;

    /** Kernel-mode CPU seconds consumed (getrusage). */
    double cpu_system_seconds = 0.0;

    /** Live threads (Linux: /proc/self/status "Threads:"). */
    long threads = 0;

    /** Seconds since the first process-stats reading. */
    double uptime_seconds = 0.0;

    /** False when even getrusage failed. */
    bool valid = false;
};

/** Take one reading. Cheap (two small /proc reads + one syscall). */
ProcessStats readProcessStats();

/** Refresh the process.* gauges in @p registry from a fresh reading. */
void updateProcessGauges(Registry &registry);

/** Refresh the process.* gauges in the process-wide registry. */
void updateProcessGauges();

} // namespace obs
} // namespace hermes
