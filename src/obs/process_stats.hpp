/**
 * @file
 * Process self-statistics for exported snapshots: RSS, user/system CPU
 * seconds, thread count and uptime, read from /proc/self and
 * getrusage(2). The exporter refreshes the process.* gauges on every
 * scrape so each snapshot carries its host context.
 *
 * Non-Linux platforms keep the getrusage-backed fields and report 0 for
 * the /proc-backed ones (valid stays true — partial context beats
 * none).
 */

#pragma once

#include <functional>

namespace hermes {
namespace obs {

class Registry;

/** One reading of the process's own resource usage. */
struct ProcessStats
{
    /** Resident set size in bytes (Linux: /proc/self/statm). */
    double rss_bytes = 0.0;

    /** Virtual memory size in bytes (Linux: /proc/self/statm). */
    double vm_bytes = 0.0;

    /** User-mode CPU seconds consumed (getrusage). */
    double cpu_user_seconds = 0.0;

    /** Kernel-mode CPU seconds consumed (getrusage). */
    double cpu_system_seconds = 0.0;

    /** Live threads (Linux: /proc/self/status "Threads:"). */
    long threads = 0;

    /** Seconds since the first process-stats reading. */
    double uptime_seconds = 0.0;

    /** Minor page faults — serviced from the page cache (getrusage). */
    double minor_faults = 0.0;

    /** Major page faults — required real IO (getrusage); the signal
     *  that an mmap-scanned datastore has outgrown memory. */
    double major_faults = 0.0;

    /** False when even getrusage failed. */
    bool valid = false;
};

/** Take one reading. Cheap (two small /proc reads + one syscall). */
ProcessStats readProcessStats();

/** Refresh the process.* gauges in @p registry from a fresh reading. */
void updateProcessGauges(Registry &registry);

/** Refresh the process.* gauges in the process-wide registry. */
void updateProcessGauges();

/**
 * Register a callback run by every updateProcessGauges() call (i.e. on
 * every exporter scrape), so lower layers can refresh their own gauges
 * without the obs layer depending on them. util/mmap_file.cpp uses
 * this for the mapping-residency gauges. Hooks must be cheap and
 * thread-safe; they are never unregistered.
 */
void addScrapeHook(std::function<void()> hook);

} // namespace obs
} // namespace hermes
