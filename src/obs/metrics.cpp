#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/window.hpp"

namespace hermes {
namespace obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

double
Histogram::bucketUpperBound(std::size_t i)
{
    if (i >= kNumBounds)
        return std::numeric_limits<double>::infinity();
    double exponent = kMinExponent +
        static_cast<double>(i + 1) / static_cast<double>(kBucketsPerDecade);
    return std::pow(10.0, exponent);
}

std::size_t
Histogram::bucketIndex(double v)
{
    if (!(v > 0.0))
        return 0;
    double pos = (std::log10(v) - kMinExponent) *
        static_cast<double>(kBucketsPerDecade);
    if (pos < 0.0)
        return 0;
    auto idx = static_cast<std::size_t>(pos);
    return std::min(idx, kNumBuckets - 1);
}

void
Histogram::observe(double v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
    // First observation initializes min/max; count_ is bumped last with
    // release so a reader that sees count > 0 also sees a valid min/max.
    if (count_.load(std::memory_order_acquire) == 0) {
        double expected = 0.0;
        min_.compare_exchange_strong(expected, v,
                                     std::memory_order_relaxed);
        expected = 0.0;
        max_.compare_exchange_strong(expected, v,
                                     std::memory_order_relaxed);
    }
    cur = min_.load(std::memory_order_relaxed);
    while (v < cur && !min_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
    count_.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot snap;
    snap.count = count_.load(std::memory_order_acquire);
    snap.sum = sum_.load(std::memory_order_relaxed);
    snap.min = snap.count ? min_.load(std::memory_order_relaxed) : 0.0;
    snap.max = snap.count ? max_.load(std::memory_order_relaxed) : 0.0;
    snap.buckets.resize(kNumBuckets);
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return snap;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(0.0, std::memory_order_relaxed);
    max_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_release);
}

double
HistogramSnapshot::percentile(double p) const
{
    if (count == 0)
        return 0.0;
    if (p <= 0.0)
        return min;
    if (p >= 100.0)
        return max;

    // Sum over the snapshot's own buckets rather than `count`: the two
    // can disagree transiently under concurrent updates.
    std::uint64_t total = 0;
    for (auto b : buckets)
        total += b;
    if (total == 0)
        return min;

    double target = p / 100.0 * static_cast<double>(total);
    if (target < 1.0)
        target = 1.0;

    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        double before = static_cast<double>(cum);
        cum += buckets[i];
        if (static_cast<double>(cum) < target)
            continue;
        double lo = i == 0 ? 0.0 : Histogram::bucketUpperBound(i - 1);
        double hi = Histogram::bucketUpperBound(i);
        if (!std::isfinite(hi))
            hi = max; // overflow bucket: cap at the observed max
        double frac = (target - before) / static_cast<double>(buckets[i]);
        double value = lo + frac * (hi - lo);
        return std::clamp(value, min, max);
    }
    return max;
}

LatencySummary
LatencySummary::from(const HistogramSnapshot &snap)
{
    LatencySummary s;
    s.count = snap.count;
    s.mean_us = snap.mean();
    s.p50_us = snap.percentile(50.0);
    s.p95_us = snap.percentile(95.0);
    s.p99_us = snap.percentile(99.0);
    s.max_us = snap.max;
    return s;
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry &
Registry::instance()
{
    // Intentionally leaked: exit-time dumps (obs::scheduleDump) and
    // metric updates from static destructors must never race the
    // registry's own destruction, so it is immortal.
    static Registry *registry = new Registry();
    return *registry;
}

Registry::~Registry() = default;

Counter &
Registry::counterLocked(const std::string &name)
{
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Histogram &
Registry::histogramLocked(const std::string &name)
{
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

Counter &
Registry::counter(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return counterLocked(name);
}

WindowedCounter &
Registry::windowedCounter(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto &slot = windowed_counters_[name];
    if (!slot)
        slot = std::make_unique<WindowedCounter>(counterLocked(name));
    return *slot;
}

WindowedHistogram &
Registry::windowedHistogram(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto &slot = windowed_histograms_[name];
    if (!slot)
        slot = std::make_unique<WindowedHistogram>(histogramLocked(name));
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::unique_lock<std::mutex> lock(mutex_);
    return histogramLocked(name);
}

bool
Registry::hasHistogram(const std::string &name) const
{
    std::unique_lock<std::mutex> lock(mutex_);
    return histograms_.count(name) != 0;
}

namespace detail {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace detail

std::string
Registry::toJson() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + detail::jsonEscape(name) +
            "\": " + std::to_string(c->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + detail::jsonEscape(name) +
            "\": " + detail::jsonNumber(g->value());
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms_) {
        auto snap = h->snapshot();
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + detail::jsonEscape(name) + "\": {";
        out += "\"count\": " + std::to_string(snap.count);
        out += ", \"sum\": " + detail::jsonNumber(snap.sum);
        out += ", \"mean\": " + detail::jsonNumber(snap.mean());
        out += ", \"min\": " + detail::jsonNumber(snap.min);
        out += ", \"max\": " + detail::jsonNumber(snap.max);
        out += ", \"p50\": " + detail::jsonNumber(snap.percentile(50.0));
        out += ", \"p95\": " + detail::jsonNumber(snap.percentile(95.0));
        out += ", \"p99\": " + detail::jsonNumber(snap.percentile(99.0));
        out += "}";
    }
    out += first ? "},\n" : "\n  },\n";

    // Rolling-window views (obs/window.hpp): deltas/rates over the last
    // kDefaultWindowSeconds, alongside — never instead of — the
    // cumulative series above.
    const std::int64_t now_s = monotonicSeconds();
    const std::size_t w = kDefaultWindowSeconds;
    out += "  \"windows\": {";
    first = true;
    for (const auto &[name, wc] : windowed_counters_) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + detail::jsonEscape(name) + "\": {";
        out += "\"window_s\": " + std::to_string(w);
        out += ", \"delta\": " + std::to_string(wc->deltaInWindow(w, now_s));
        out += ", \"rate_per_s\": " +
            detail::jsonNumber(wc->ratePerSecond(w, now_s));
        out += "}";
    }
    for (const auto &[name, wh] : windowed_histograms_) {
        auto snap = wh->windowSnapshot(w, now_s);
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + detail::jsonEscape(name) + "\": {";
        out += "\"window_s\": " + std::to_string(w);
        out += ", \"count\": " + std::to_string(snap.count);
        out += ", \"mean\": " + detail::jsonNumber(snap.mean());
        out += ", \"p50\": " + detail::jsonNumber(snap.percentile(50.0));
        out += ", \"p95\": " + detail::jsonNumber(snap.percentile(95.0));
        out += ", \"p99\": " + detail::jsonNumber(snap.percentile(99.0));
        out += "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

namespace {

/** hermes_foo_bar from "foo.bar-baz" (Prometheus metric name charset). */
std::string
promName(const std::string &name)
{
    std::string out = "hermes_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

std::string
Registry::toPrometheus() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    std::string out;
    for (const auto &[name, c] : counters_) {
        std::string p = promName(name);
        out += "# TYPE " + p + " counter\n";
        out += p + " " + std::to_string(c->value()) + "\n";
    }
    for (const auto &[name, g] : gauges_) {
        std::string p = promName(name);
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + detail::jsonNumber(g->value()) + "\n";
    }
    for (const auto &[name, h] : histograms_) {
        auto snap = h->snapshot();
        std::string p = promName(name);
        out += "# TYPE " + p + " histogram\n";
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
            cum += snap.buckets[i];
            double bound = Histogram::bucketUpperBound(i);
            std::string le = std::isfinite(bound)
                ? detail::jsonNumber(bound)
                : "+Inf";
            out += p + "_bucket{le=\"" + le + "\"} " +
                std::to_string(cum) + "\n";
        }
        out += p + "_sum " + detail::jsonNumber(snap.sum) + "\n";
        out += p + "_count " + std::to_string(snap.count) + "\n";
    }

    // Windowed views export as gauges: a scraper that wants rates over
    // the cumulative series can still rate() those; these are for
    // humans and dashboards polling /metrics directly.
    const std::int64_t now_s = monotonicSeconds();
    const std::size_t w = kDefaultWindowSeconds;
    const std::string suffix = "_" + std::to_string(w) + "s";
    for (const auto &[name, wc] : windowed_counters_) {
        std::string p = promName(name) + "_rate" + suffix;
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + detail::jsonNumber(wc->ratePerSecond(w, now_s)) +
            "\n";
    }
    for (const auto &[name, wh] : windowed_histograms_) {
        auto snap = wh->windowSnapshot(w, now_s);
        for (double pct : {50.0, 95.0, 99.0}) {
            std::string p = promName(name) + "_p" +
                std::to_string(static_cast<int>(pct)) + suffix;
            out += "# TYPE " + p + " gauge\n";
            out += p + " " + detail::jsonNumber(snap.percentile(pct)) +
                "\n";
        }
        std::string p = promName(name) + "_count" + suffix;
        out += "# TYPE " + p + " gauge\n";
        out += p + " " + std::to_string(snap.count) + "\n";
    }
    return out;
}

namespace {

/**
 * Atomic text-file replacement: write to a sibling temp file, then
 * rename over the destination. A concurrent reader (the CI poller, a
 * node_exporter textfile collector) sees either the old or the new
 * content, never a torn prefix.
 */
bool
writeTextFile(const std::string &path, const std::string &text)
{
    std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "[warn] obs: cannot open %s for writing\n",
                     tmp.c_str());
        return false;
    }
    bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    ok = std::fclose(f) == 0 && ok;
    if (ok)
        ok = std::rename(tmp.c_str(), path.c_str()) == 0;
    if (!ok) {
        std::fprintf(stderr, "[warn] obs: failed writing %s\n",
                     path.c_str());
        std::remove(tmp.c_str());
    }
    return ok;
}

} // namespace

bool
Registry::writeJson(const std::string &path) const
{
    return writeTextFile(path, toJson());
}

bool
Registry::writePrometheus(const std::string &path) const
{
    return writeTextFile(path, toPrometheus());
}

void
Registry::reset()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
    for (auto &[name, wc] : windowed_counters_)
        wc->resetWindow();
    for (auto &[name, wh] : windowed_histograms_)
        wh->resetWindow();
}

} // namespace obs
} // namespace hermes
