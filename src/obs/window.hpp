/**
 * @file
 * Rolling time-window aggregation on top of the cumulative metrics.
 *
 * A windowed metric is a ring of per-second slots layered over a
 * cumulative Counter/Histogram from the registry: every update feeds
 * both, so the cumulative series stays monotone (Prometheus scrapers
 * rely on that) while the ring answers "what happened in the last W
 * seconds" — QPS, error rate, windowed p50/p95/p99 — without ever
 * resetting anything.
 *
 * Concurrency: slot payloads are relaxed atomics like the cumulative
 * metrics; slot *rotation* (re-labelling a ring slot with a new second)
 * takes a per-metric mutex, which is contended at most once per second
 * per slot. A writer stalled across a full ring revolution (64 s) can
 * attribute a sample to the wrong second; windowed values are
 * best-effort observability, not accounting.
 *
 * Time base: seconds since process start on the steady clock
 * (monotonicSeconds()). Every method takes an optional explicit
 * timestamp so tests can drive the clock deterministically.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>

#include "obs/metrics.hpp"

namespace hermes {
namespace obs {

/** Seconds since process start (steady clock, truncated). */
std::int64_t monotonicSeconds();

/** Default look-back horizon for exported windowed values. */
inline constexpr std::size_t kDefaultWindowSeconds = 10;

/**
 * Counter with a rolling per-second ring next to its cumulative total.
 *
 * The wrapped Counter is owned by the Registry (same lifetime and name
 * as a plain counter), so migrating an instrumentation site from
 * Registry::counter(name) to Registry::windowedCounter(name) changes
 * nothing about the cumulative export.
 */
class WindowedCounter
{
  public:
    static constexpr std::size_t kSlots = 64;

    explicit WindowedCounter(Counter &total) : total_(total) {}

    /** Bump the cumulative total and the ring slot for @p now_s. */
    void add(std::uint64_t n = 1, std::int64_t now_s = -1);

    /** Cumulative total (monotone). */
    std::uint64_t value() const { return total_.value(); }

    const Counter &total() const { return total_; }

    /** Events recorded in the last @p window_s seconds (inclusive of
     *  the current partial second). Window is clamped to kSlots - 1. */
    std::uint64_t deltaInWindow(std::size_t window_s,
                                std::int64_t now_s = -1) const;

    /** deltaInWindow / window_s — e.g. QPS over the last 10 s. */
    double ratePerSecond(std::size_t window_s,
                         std::int64_t now_s = -1) const;

    /** Clear the ring (the cumulative total is reset by the registry). */
    void resetWindow();

  private:
    struct Slot
    {
        std::atomic<std::int64_t> epoch{-1};
        std::atomic<std::uint64_t> count{0};
    };

    Slot &rotate(std::int64_t now_s);

    Counter &total_;
    mutable std::mutex rotate_mutex_;
    mutable std::array<Slot, kSlots> slots_;
};

/**
 * Histogram with a rolling per-second ring of bucket deltas next to its
 * cumulative histogram, giving windowed percentiles. The wrapped
 * Histogram is owned by the Registry under the same name.
 */
class WindowedHistogram
{
  public:
    static constexpr std::size_t kSlots = 64;

    explicit WindowedHistogram(Histogram &cumulative)
        : cumulative_(cumulative)
    {
    }

    /** Record into the cumulative histogram and the ring. */
    void observe(double v, std::int64_t now_s = -1);

    Histogram &cumulative() { return cumulative_; }
    const Histogram &cumulative() const { return cumulative_; }

    /**
     * Aggregate the last @p window_s seconds into a HistogramSnapshot
     * (window clamped to kSlots - 1). min/max are approximated from the
     * populated bucket bounds (capped by the cumulative min/max), so
     * percentile() interpolates sensibly.
     */
    HistogramSnapshot windowSnapshot(std::size_t window_s,
                                     std::int64_t now_s = -1) const;

    /** Clear the ring (the cumulative part is reset by the registry). */
    void resetWindow();

  private:
    struct Slot
    {
        std::atomic<std::int64_t> epoch{-1};
        std::atomic<std::uint64_t> count{0};
        std::atomic<double> sum{0.0};
        std::array<std::atomic<std::uint64_t>, Histogram::kNumBuckets>
            buckets{};
    };

    Slot &rotate(std::int64_t now_s);

    Histogram &cumulative_;
    mutable std::mutex rotate_mutex_;
    mutable std::array<Slot, kSlots> slots_;
};

} // namespace obs
} // namespace hermes
