#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>

#include "obs/process_stats.hpp"

namespace hermes {
namespace obs {

namespace {

std::mutex dump_mutex;
std::string dump_metrics_path;
std::string dump_trace_path;
bool dump_registered = false;

void
dumpAtExit()
{
    std::unique_lock<std::mutex> lock(dump_mutex);
    if (!dump_metrics_path.empty())
        Registry::instance().writeJson(dump_metrics_path);
    if (!dump_trace_path.empty())
        TraceRecorder::instance().writeChromeTrace(dump_trace_path);
}

} // namespace

void
scheduleDump(const std::string &metrics_path, const std::string &trace_path,
             std::size_t trace_sample)
{
    if (metrics_path.empty() && trace_path.empty())
        return;
    if (!trace_path.empty() && !TraceRecorder::instance().enabled())
        TraceRecorder::instance().start(trace_sample);
    std::unique_lock<std::mutex> lock(dump_mutex);
    if (!metrics_path.empty())
        dump_metrics_path = metrics_path;
    if (!trace_path.empty())
        dump_trace_path = trace_path;
    if (!dump_registered) {
        std::atexit(dumpAtExit);
        dump_registered = true;
    }
}

void
autoDumpFromEnv()
{
    const char *metrics = std::getenv("HERMES_METRICS_JSON");
    const char *trace = std::getenv("HERMES_TRACE_OUT");
    const char *sample = std::getenv("HERMES_TRACE_SAMPLE");
    std::size_t trace_sample = 1;
    if (sample) {
        long n = std::strtol(sample, nullptr, 10);
        if (n > 0)
            trace_sample = static_cast<std::size_t>(n);
    }
    scheduleDump(metrics ? metrics : "", trace ? trace : "", trace_sample);
}

// ---------------------------------------------------------------------------
// PeriodicFlusher
// ---------------------------------------------------------------------------

PeriodicFlusher::PeriodicFlusher(std::string json_path,
                                 std::string prom_path,
                                 double interval_sec)
    : json_path_(std::move(json_path)), prom_path_(std::move(prom_path)),
      interval_sec_(std::max(interval_sec, 0.1))
{
    if (!json_path_.empty() || !prom_path_.empty())
        thread_ = std::thread([this] { loop(); });
}

PeriodicFlusher::~PeriodicFlusher()
{
    stop();
}

void
PeriodicFlusher::stop()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable())
        thread_.join();
}

void
PeriodicFlusher::flush() const
{
    updateProcessGauges();
    if (!json_path_.empty())
        Registry::instance().writeJson(json_path_);
    if (!prom_path_.empty())
        Registry::instance().writePrometheus(prom_path_);
}

void
PeriodicFlusher::loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        bool stopped = cv_.wait_for(
            lock, std::chrono::duration<double>(interval_sec_),
            [this] { return stopping_; });
        flush();
        if (stopped)
            return;
    }
}

} // namespace obs
} // namespace hermes
