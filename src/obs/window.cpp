#include "obs/window.hpp"

#include <chrono>
#include <cmath>

namespace hermes {
namespace obs {

std::int64_t
monotonicSeconds()
{
    static const auto start = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::seconds>(
               std::chrono::steady_clock::now() - start)
        .count();
}

namespace {

std::int64_t
resolveNow(std::int64_t now_s)
{
    return now_s >= 0 ? now_s : monotonicSeconds();
}

std::size_t
clampWindow(std::size_t window_s, std::size_t slots)
{
    if (window_s == 0)
        window_s = 1;
    return std::min(window_s, slots - 1);
}

/** True when @p epoch falls inside the last @p window_s seconds. */
bool
inWindow(std::int64_t epoch, std::int64_t now_s, std::size_t window_s)
{
    return epoch >= 0 && epoch <= now_s &&
           epoch > now_s - static_cast<std::int64_t>(window_s);
}

} // namespace

// ---------------------------------------------------------------------------
// WindowedCounter
// ---------------------------------------------------------------------------

WindowedCounter::Slot &
WindowedCounter::rotate(std::int64_t now_s)
{
    Slot &slot = slots_[static_cast<std::size_t>(now_s) % kSlots];
    if (slot.epoch.load(std::memory_order_acquire) != now_s) {
        std::unique_lock<std::mutex> lock(rotate_mutex_);
        if (slot.epoch.load(std::memory_order_acquire) != now_s) {
            slot.count.store(0, std::memory_order_relaxed);
            slot.epoch.store(now_s, std::memory_order_release);
        }
    }
    return slot;
}

void
WindowedCounter::add(std::uint64_t n, std::int64_t now_s)
{
    total_.add(n);
    Slot &slot = rotate(resolveNow(now_s));
    slot.count.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
WindowedCounter::deltaInWindow(std::size_t window_s,
                               std::int64_t now_s) const
{
    now_s = resolveNow(now_s);
    window_s = clampWindow(window_s, kSlots);
    std::uint64_t delta = 0;
    for (const Slot &slot : slots_) {
        if (inWindow(slot.epoch.load(std::memory_order_acquire), now_s,
                     window_s))
            delta += slot.count.load(std::memory_order_relaxed);
    }
    return delta;
}

double
WindowedCounter::ratePerSecond(std::size_t window_s,
                               std::int64_t now_s) const
{
    window_s = clampWindow(window_s, kSlots);
    return static_cast<double>(deltaInWindow(window_s, now_s)) /
           static_cast<double>(window_s);
}

void
WindowedCounter::resetWindow()
{
    std::unique_lock<std::mutex> lock(rotate_mutex_);
    for (Slot &slot : slots_) {
        slot.count.store(0, std::memory_order_relaxed);
        slot.epoch.store(-1, std::memory_order_release);
    }
}

// ---------------------------------------------------------------------------
// WindowedHistogram
// ---------------------------------------------------------------------------

WindowedHistogram::Slot &
WindowedHistogram::rotate(std::int64_t now_s)
{
    Slot &slot = slots_[static_cast<std::size_t>(now_s) % kSlots];
    if (slot.epoch.load(std::memory_order_acquire) != now_s) {
        std::unique_lock<std::mutex> lock(rotate_mutex_);
        if (slot.epoch.load(std::memory_order_acquire) != now_s) {
            slot.count.store(0, std::memory_order_relaxed);
            slot.sum.store(0.0, std::memory_order_relaxed);
            for (auto &bucket : slot.buckets)
                bucket.store(0, std::memory_order_relaxed);
            slot.epoch.store(now_s, std::memory_order_release);
        }
    }
    return slot;
}

void
WindowedHistogram::observe(double v, std::int64_t now_s)
{
    cumulative_.observe(v);
    Slot &slot = rotate(resolveNow(now_s));
    slot.buckets[Histogram::bucketIndex(v)].fetch_add(
        1, std::memory_order_relaxed);
    double cur = slot.sum.load(std::memory_order_relaxed);
    while (!slot.sum.compare_exchange_weak(cur, cur + v,
                                           std::memory_order_relaxed)) {
    }
    slot.count.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot
WindowedHistogram::windowSnapshot(std::size_t window_s,
                                  std::int64_t now_s) const
{
    now_s = resolveNow(now_s);
    window_s = clampWindow(window_s, kSlots);

    HistogramSnapshot snap;
    snap.buckets.assign(Histogram::kNumBuckets, 0);
    for (const Slot &slot : slots_) {
        if (!inWindow(slot.epoch.load(std::memory_order_acquire), now_s,
                      window_s))
            continue;
        snap.count += slot.count.load(std::memory_order_relaxed);
        snap.sum += slot.sum.load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i)
            snap.buckets[i] +=
                slot.buckets[i].load(std::memory_order_relaxed);
    }
    if (snap.count == 0)
        return snap;

    // The ring keeps bucket counts only; reconstruct min/max from the
    // populated bucket bounds, capped by the cumulative extremes so the
    // estimates never leave the observed value range.
    auto cum = cumulative_.snapshot();
    std::size_t lo = 0;
    while (lo < snap.buckets.size() && snap.buckets[lo] == 0)
        ++lo;
    std::size_t hi = snap.buckets.size();
    while (hi > 0 && snap.buckets[hi - 1] == 0)
        --hi;
    snap.min = lo == 0 ? cum.min : Histogram::bucketUpperBound(lo - 1);
    double upper = Histogram::bucketUpperBound(hi - 1);
    snap.max = std::isfinite(upper) ? upper : cum.max;
    if (cum.count > 0) {
        snap.min = std::max(snap.min, cum.min);
        snap.max = std::min(std::max(snap.max, snap.min), cum.max);
    }
    return snap;
}

void
WindowedHistogram::resetWindow()
{
    std::unique_lock<std::mutex> lock(rotate_mutex_);
    for (Slot &slot : slots_) {
        slot.count.store(0, std::memory_order_relaxed);
        slot.sum.store(0.0, std::memory_order_relaxed);
        for (auto &bucket : slot.buckets)
            bucket.store(0, std::memory_order_relaxed);
        slot.epoch.store(-1, std::memory_order_release);
    }
}

} // namespace obs
} // namespace hermes
