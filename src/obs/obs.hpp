/**
 * @file
 * Umbrella header for the observability subsystem plus process-level
 * helpers to wire metric/trace dumps into any binary.
 *
 * Two hookup styles:
 *  - autoDumpFromEnv(): honours HERMES_METRICS_JSON, HERMES_TRACE_OUT
 *    and HERMES_TRACE_SAMPLE environment variables and dumps at exit.
 *    bench::banner() calls this, so every bench binary supports
 *    machine-readable breakdowns with zero per-bench code.
 *  - scheduleDump(): explicit paths (tools parse --metrics-json /
 *    --trace-out flags and call this).
 */

#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/window.hpp"

namespace hermes {
namespace obs {

/**
 * Register an at-exit dump of the metrics registry (JSON) and/or the
 * trace recorder (Chrome trace JSON). Empty paths skip that dump.
 * When @p trace_path is non-empty and the recorder is not already
 * enabled, tracing is started with @p trace_sample. Idempotent per
 * path pair; safe to call more than once.
 */
void scheduleDump(const std::string &metrics_path,
                  const std::string &trace_path,
                  std::size_t trace_sample = 1);

/**
 * scheduleDump() driven by HERMES_METRICS_JSON / HERMES_TRACE_OUT /
 * HERMES_TRACE_SAMPLE environment variables. No-op when neither
 * variable is set. Idempotent.
 */
void autoDumpFromEnv();

/**
 * Background thread that re-writes metrics files every N seconds, so
 * long runs are observable from outside without an HTTP round trip
 * (tail the file, or point a node_exporter textfile collector at it).
 * Writes are atomic (temp + rename); process.* gauges are refreshed
 * before each flush. Tools wire this to --metrics-interval.
 */
class PeriodicFlusher
{
  public:
    /**
     * @param json_path     Registry JSON destination ("" = skip).
     * @param prom_path     Prometheus text destination ("" = skip).
     * @param interval_sec  Flush period; clamped to >= 0.1 s.
     */
    PeriodicFlusher(std::string json_path, std::string prom_path,
                    double interval_sec);

    /** Final flush, then stop. */
    ~PeriodicFlusher();

    PeriodicFlusher(const PeriodicFlusher &) = delete;
    PeriodicFlusher &operator=(const PeriodicFlusher &) = delete;

    /** Stop the flusher after one last flush. Idempotent. */
    void stop();

  private:
    void loop();
    void flush() const;

    std::string json_path_;
    std::string prom_path_;
    double interval_sec_;

    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    std::thread thread_;
};

} // namespace obs
} // namespace hermes
