/**
 * @file
 * Umbrella header for the observability subsystem plus process-level
 * helpers to wire metric/trace dumps into any binary.
 *
 * Two hookup styles:
 *  - autoDumpFromEnv(): honours HERMES_METRICS_JSON, HERMES_TRACE_OUT
 *    and HERMES_TRACE_SAMPLE environment variables and dumps at exit.
 *    bench::banner() calls this, so every bench binary supports
 *    machine-readable breakdowns with zero per-bench code.
 *  - scheduleDump(): explicit paths (tools parse --metrics-json /
 *    --trace-out flags and call this).
 */

#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hermes {
namespace obs {

/**
 * Register an at-exit dump of the metrics registry (JSON) and/or the
 * trace recorder (Chrome trace JSON). Empty paths skip that dump.
 * When @p trace_path is non-empty and the recorder is not already
 * enabled, tracing is started with @p trace_sample. Idempotent per
 * path pair; safe to call more than once.
 */
void scheduleDump(const std::string &metrics_path,
                  const std::string &trace_path,
                  std::size_t trace_sample = 1);

/**
 * scheduleDump() driven by HERMES_METRICS_JSON / HERMES_TRACE_OUT /
 * HERMES_TRACE_SAMPLE environment variables. No-op when neither
 * variable is set. Idempotent.
 */
void autoDumpFromEnv();

} // namespace obs
} // namespace hermes
