#include "obs/exporter.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/perf.hpp"
#include "obs/process_stats.hpp"
#include "obs/trace.hpp"

namespace hermes {
namespace obs {

namespace {

/** Receive/send budget for request/response I/O (a scraper, not a DoS). */
constexpr double kSocketTimeoutMs = 2000.0;

/** Accept-poll tick so stop() is observed promptly. */
constexpr double kAcceptTickMs = 200.0;

/** Cap on a request head; beyond this the request is answered 400. */
constexpr std::size_t kMaxHeadBytes = 8192;

/**
 * Find the end of an HTTP head in @p data, accepting both CRLFCRLF and
 * the bare-LF form some minimal clients emit. Returns the offset one
 * past the terminator (= body start), or npos when no terminator is
 * present yet. Head detection and request-line splitting must agree on
 * both forms — the original implementation found "\n\n" heads but then
 * parsed offsets assuming CRLF.
 */
std::size_t
findHeadEnd(const std::string &data)
{
    std::size_t crlf = data.find("\r\n\r\n");
    std::size_t lf = data.find("\n\n");
    if (crlf == std::string::npos && lf == std::string::npos)
        return std::string::npos;
    if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf))
        return crlf + 4;
    return lf + 2;
}

std::string
httpResponse(int code, const std::string &reason,
             const std::string &content_type, const std::string &body)
{
    std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
        "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

enum class HeadStatus {
    Ok,         ///< Complete head in hand.
    TooLarge,   ///< kMaxHeadBytes exceeded without a terminator.
    Incomplete, ///< Peer closed / timed out before the terminator.
};

/**
 * Read until the end of the request head. EINTR and EAGAIN are handled
 * inside net::readSome, so a signal storm during a scrape no longer
 * truncates the request (or the response built from it).
 */
HeadStatus
readRequestHead(net::Socket &socket, std::string &head)
{
    head.clear();
    char buf[1024];
    net::Deadline deadline = net::Deadline::after(kSocketTimeoutMs);
    while (head.size() < kMaxHeadBytes) {
        net::IoResult got = net::readSome(socket, buf, sizeof(buf),
                                          deadline);
        if (!got.ok())
            return HeadStatus::Incomplete;
        head.append(buf, got.bytes);
        if (findHeadEnd(head) != std::string::npos)
            return HeadStatus::Ok;
    }
    return HeadStatus::TooLarge;
}

/** Parse "GET /path?query HTTP/1.x" into method and bare path. */
bool
parseRequestLine(const std::string &head, std::string &method,
                 std::string &path)
{
    // The request line ends at the first CR or LF, whichever comes
    // first — consistent with findHeadEnd accepting bare-LF heads.
    std::size_t eol = head.find_first_of("\r\n");
    std::string line =
        eol == std::string::npos ? head : head.substr(0, eol);
    // A binary or otherwise garbage first line is a 400, not a guess.
    for (unsigned char c : line) {
        if (c < 0x20 || c == 0x7f)
            return false;
    }
    std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos)
        return false;
    std::size_t sp2 = line.find(' ', sp1 + 1);
    method = line.substr(0, sp1);
    path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);
    return !method.empty() && !path.empty() && path.front() == '/';
}

/**
 * Case-insensitive Content-Length lookup in @p head. Returns true and
 * fills @p length when a parseable header is present.
 */
bool
findContentLength(const std::string &head, std::size_t &length)
{
    static const char kName[] = "content-length:";
    constexpr std::size_t kNameLen = sizeof(kName) - 1;
    std::size_t pos = 0;
    while ((pos = head.find('\n', pos)) != std::string::npos) {
        ++pos;
        if (head.size() - pos < kNameLen)
            break;
        bool match = true;
        for (std::size_t i = 0; i < kNameLen; ++i) {
            if (std::tolower(static_cast<unsigned char>(head[pos + i])) !=
                kName[i]) {
                match = false;
                break;
            }
        }
        if (!match)
            continue;
        std::size_t value = pos + kNameLen;
        while (value < head.size() && head[value] == ' ')
            ++value;
        char *end = nullptr;
        unsigned long long parsed =
            std::strtoull(head.c_str() + value, &end, 10);
        if (end == head.c_str() + value)
            return false;
        length = static_cast<std::size_t>(parsed);
        return true;
    }
    return false;
}

} // namespace

Exporter::~Exporter()
{
    stop();
}

bool
Exporter::start()
{
    if (running_.load())
        return true;

    std::string error;
    if (!listener_.open(options_.bind_address, options_.port, 16, &error)) {
        std::fprintf(stderr, "[warn] obs: exporter %s\n", error.c_str());
        return false;
    }
    bound_port_ = listener_.port();
    stopping_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
Exporter::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    if (thread_.joinable())
        thread_.join();
    listener_.close();
}

void
Exporter::setHandler(const std::string &path, Handler handler)
{
    std::unique_lock<std::mutex> lock(handlers_mutex_);
    handlers_[path] = std::move(handler);
}

void
Exporter::serveLoop()
{
    while (!stopping_.load()) {
        net::Socket socket = listener_.acceptFor(kAcceptTickMs);
        if (!socket.valid())
            continue; // tick (checks stopping_) or transient error
        handleConnection(std::move(socket));
    }
}

bool
Exporter::route(const std::string &path, std::string &body,
                std::string &content_type)
{
    // Custom handlers win over the builtins, so a process can replace
    // e.g. /trace.json with a version that attaches its own metadata
    // (hermes_shard tags dumps with its cluster id for the merge tool).
    Handler handler;
    {
        std::unique_lock<std::mutex> lock(handlers_mutex_);
        auto it = handlers_.find(path);
        if (it != handlers_.end())
            handler = it->second;
    }
    if (handler) {
        body = handler();
        content_type = "application/json";
        return true;
    }
    // Every scrape refreshes the process self-stat gauges first, so the
    // snapshot the caller gets carries current host context.
    if (path == "/metrics") {
        updateProcessGauges();
        body = Registry::instance().toPrometheus();
        content_type = "text/plain; version=0.0.4";
        return true;
    }
    if (path == "/metrics.json") {
        updateProcessGauges();
        body = Registry::instance().toJson();
        content_type = "application/json";
        return true;
    }
    if (path == "/trace.json") {
        body = TraceRecorder::instance().toJson();
        content_type = "application/json";
        return true;
    }
    if (path == "/perf") {
        // Hardware-counter / RAPL status; reports unavailable rather
        // than fabricating zeros when the kernel denies access.
        body = perfStatusJson();
        content_type = "application/json";
        return true;
    }
    if (path == "/healthz") {
        body = "ok\n";
        content_type = "text/plain";
        return true;
    }
    return false;
}

void
Exporter::handleConnection(net::Socket socket)
{
    std::string head;
    HeadStatus head_status = readRequestHead(socket, head);
    std::string method;
    std::string path;
    std::string response;
    if (head_status == HeadStatus::Incomplete && head.empty())
        return; // peer connected and went away; nothing to answer
    if (head_status != HeadStatus::Ok ||
        !parseRequestLine(head, method, path)) {
        // Oversized, truncated or garbage heads get an explicit 400
        // instead of a silent close, so a misbehaving scraper sees why.
        response = httpResponse(400, "Bad Request", "text/plain",
                                "bad request\n");
    } else if (method != "GET") {
        response = httpResponse(405, "Method Not Allowed", "text/plain",
                                "only GET is supported\n");
    } else {
        std::string body;
        std::string content_type;
        if (route(path, body, content_type))
            response = httpResponse(200, "OK", content_type, body);
        else
            // A structured body (still text/plain so a terminal curl
            // prints it verbatim) — scripts can parse the path back out
            // instead of scraping a bare status line.
            response = httpResponse(
                404, "Not Found", "text/plain",
                "{\"error\": \"unknown path\", \"path\": \"" +
                    detail::jsonEscape(path) + "\"}\n");
    }
    net::writeAll(socket, response.data(), response.size(),
                  net::Deadline::after(kSocketTimeoutMs));
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, std::string *body,
        std::string *status_line)
{
    if (status_line)
        status_line->clear();
    if (body)
        body->clear();

    net::Socket socket = net::connectTo(host, port, kSocketTimeoutMs);
    if (!socket.valid())
        return false;

    std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
        "\r\nConnection: close\r\n\r\n";
    bool ok = net::writeAll(socket, request.data(), request.size(),
                            net::Deadline::after(kSocketTimeoutMs))
                  .ok();

    // HTTP/1.0 + Connection: close — read to EOF, each read under its
    // own deadline so a wedged server cannot hang the caller.
    std::string response;
    char buf[4096];
    while (ok) {
        net::IoResult got = net::readSome(
            socket, buf, sizeof(buf), net::Deadline::after(kSocketTimeoutMs));
        if (got.status == net::IoStatus::Closed)
            break; // orderly end of response
        if (!got.ok()) {
            ok = false;
            break;
        }
        response.append(buf, got.bytes);
    }
    socket.close();
    if (!ok || response.empty())
        return false;

    std::size_t eol = response.find_first_of("\r\n");
    std::string first =
        eol == std::string::npos ? response : response.substr(0, eol);
    if (status_line)
        *status_line = first;

    std::size_t body_start = findHeadEnd(response);
    if (body_start == std::string::npos)
        return false; // head never terminated: not a scrape we can trust
    std::string head = response.substr(0, body_start);
    std::string payload = response.substr(body_start);

    // Honor Content-Length when the server sent one: a peer close
    // mid-body used to look like a successful (short) scrape; now it
    // fails loudly instead of handing back a truncated payload.
    std::size_t content_length = 0;
    if (findContentLength(head, content_length)) {
        if (payload.size() < content_length)
            return false;
        payload.resize(content_length);
    }
    if (body)
        *body = payload;
    return first.find(" 200 ") != std::string::npos;
}

} // namespace obs
} // namespace hermes
