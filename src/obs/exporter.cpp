#include "obs/exporter.hpp"

#include <cstdio>
#include <cstring>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/process_stats.hpp"

namespace hermes {
namespace obs {

namespace {

/** Receive timeout for request/response reads (a scraper, not a DoS). */
constexpr int kSocketTimeoutMs = 2000;

void
setSocketTimeout(int fd)
{
    timeval tv{};
    tv.tv_sec = kSocketTimeoutMs / 1000;
    tv.tv_usec = (kSocketTimeoutMs % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/** Write the whole buffer, tolerating short writes. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::string
httpResponse(int code, const std::string &reason,
             const std::string &content_type, const std::string &body)
{
    std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
        "\r\n";
    out += "Content-Type: " + content_type + "\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return out;
}

/** Read until the end of the request head (or a small cap). */
std::string
readRequestHead(int fd)
{
    std::string head;
    char buf[1024];
    while (head.size() < 8192) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        head.append(buf, static_cast<std::size_t>(n));
        if (head.find("\r\n\r\n") != std::string::npos ||
            head.find("\n\n") != std::string::npos)
            break;
    }
    return head;
}

/** Parse "GET /path?query HTTP/1.x" into method and bare path. */
bool
parseRequestLine(const std::string &head, std::string &method,
                 std::string &path)
{
    std::size_t eol = head.find_first_of("\r\n");
    std::string line =
        eol == std::string::npos ? head : head.substr(0, eol);
    std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos)
        return false;
    std::size_t sp2 = line.find(' ', sp1 + 1);
    method = line.substr(0, sp1);
    path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t query = path.find('?');
    if (query != std::string::npos)
        path.resize(query);
    return !method.empty() && !path.empty();
}

} // namespace

Exporter::~Exporter()
{
    stop();
}

bool
Exporter::start()
{
    if (running_.load())
        return true;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::fprintf(stderr, "[warn] obs: exporter socket() failed\n");
        return false;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.port);
    if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
        std::fprintf(stderr, "[warn] obs: exporter bad bind address %s\n",
                     options_.bind_address.c_str());
        ::close(fd);
        return false;
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        std::fprintf(stderr,
                     "[warn] obs: exporter cannot listen on %s:%u\n",
                     options_.bind_address.c_str(),
                     static_cast<unsigned>(options_.port));
        ::close(fd);
        return false;
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) == 0)
        bound_port_ = ntohs(addr.sin_port);
    else
        bound_port_ = options_.port;

    listen_fd_ = fd;
    stopping_.store(false);
    running_.store(true);
    thread_ = std::thread([this] { serveLoop(); });
    return true;
}

void
Exporter::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    if (thread_.joinable())
        thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void
Exporter::setHandler(const std::string &path, Handler handler)
{
    std::unique_lock<std::mutex> lock(handlers_mutex_);
    handlers_[path] = std::move(handler);
}

void
Exporter::serveLoop()
{
    while (!stopping_.load()) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0)
            continue; // timeout (checks stopping_) or EINTR
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        setSocketTimeout(fd);
        handleConnection(fd);
        ::close(fd);
    }
}

bool
Exporter::route(const std::string &path, std::string &body,
                std::string &content_type)
{
    // Every scrape refreshes the process self-stat gauges first, so the
    // snapshot the caller gets carries current host context.
    if (path == "/metrics") {
        updateProcessGauges();
        body = Registry::instance().toPrometheus();
        content_type = "text/plain; version=0.0.4";
        return true;
    }
    if (path == "/metrics.json") {
        updateProcessGauges();
        body = Registry::instance().toJson();
        content_type = "application/json";
        return true;
    }
    if (path == "/healthz") {
        body = "ok\n";
        content_type = "text/plain";
        return true;
    }
    Handler handler;
    {
        std::unique_lock<std::mutex> lock(handlers_mutex_);
        auto it = handlers_.find(path);
        if (it != handlers_.end())
            handler = it->second;
    }
    if (handler) {
        body = handler();
        content_type = "application/json";
        return true;
    }
    return false;
}

void
Exporter::handleConnection(int fd)
{
    std::string head = readRequestHead(fd);
    std::string method;
    std::string path;
    std::string response;
    if (!parseRequestLine(head, method, path)) {
        response = httpResponse(400, "Bad Request", "text/plain",
                                "bad request\n");
    } else if (method != "GET") {
        response = httpResponse(405, "Method Not Allowed", "text/plain",
                                "only GET is supported\n");
    } else {
        std::string body;
        std::string content_type;
        if (route(path, body, content_type))
            response = httpResponse(200, "OK", content_type, body);
        else
            response = httpResponse(404, "Not Found", "text/plain",
                                    "unknown path\n");
    }
    writeAll(fd, response.data(), response.size());
}

bool
httpGet(const std::string &host, std::uint16_t port,
        const std::string &path, std::string *body,
        std::string *status_line)
{
    if (status_line)
        status_line->clear();
    if (body)
        body->clear();

    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo *result = nullptr;
    std::string port_str = std::to_string(port);
    if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &result) !=
            0 ||
        result == nullptr)
        return false;

    int fd = ::socket(result->ai_family, result->ai_socktype,
                      result->ai_protocol);
    bool ok = fd >= 0;
    if (ok) {
        setSocketTimeout(fd);
        ok = ::connect(fd, result->ai_addr, result->ai_addrlen) == 0;
    }
    ::freeaddrinfo(result);
    if (!ok) {
        if (fd >= 0)
            ::close(fd);
        return false;
    }

    std::string request = "GET " + path + " HTTP/1.0\r\nHost: " + host +
        "\r\nConnection: close\r\n\r\n";
    ok = writeAll(fd, request.data(), request.size());

    std::string response;
    char buf[4096];
    while (ok) {
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0)
            ok = false;
        if (n <= 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (!ok || response.empty())
        return false;

    std::size_t eol = response.find("\r\n");
    std::string first =
        eol == std::string::npos ? response : response.substr(0, eol);
    if (status_line)
        *status_line = first;

    std::size_t header_end = response.find("\r\n\r\n");
    std::string payload = header_end == std::string::npos
        ? std::string()
        : response.substr(header_end + 4);
    if (body)
        *body = payload;
    return first.find(" 200 ") != std::string::npos;
}

} // namespace obs
} // namespace hermes
