/**
 * @file
 * Embedded metrics endpoint: a minimal blocking-TCP HTTP/1.0 server
 * (no dependencies) that makes a running binary observable:
 *
 *   GET /metrics       Prometheus text exposition of the registry
 *   GET /metrics.json  Registry::toJson()
 *   GET /trace.json    TraceRecorder::toJson() — per-process span dump
 *                      for tools/hermes_trace_merge
 *   GET /load          custom handler (the broker's LoadReport)
 *   GET /perf          hardware counter / RAPL status (obs/perf.hpp);
 *                      reports unavailable when the kernel denies access
 *   GET /healthz       "ok" — liveness probe / readiness poll
 *
 * Custom handlers registered via setHandler() shadow the builtin
 * routes, so a process can serve /trace.json with extra metadata.
 *
 * process.* self-stat gauges are refreshed on every scrape, so each
 * snapshot carries host context (RSS, CPU seconds, thread count).
 *
 * Scope: one accept thread handling one request per connection,
 * loopback-binding by default. This is an operator endpoint for
 * dashboards, `curl` and CI smoke tests — not a general web server;
 * anything beyond GET + a known path gets a 4xx and the socket closed.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "net/net.hpp"

namespace hermes {
namespace obs {

/** Embedded HTTP exporter for the metrics registry. */
class Exporter
{
  public:
    struct Options
    {
        /** Bind address; default loopback only. */
        std::string bind_address = "127.0.0.1";

        /** TCP port; 0 picks an ephemeral port (see port()). */
        std::uint16_t port = 0;
    };

    /** A route handler: returns the response body (JSON). */
    using Handler = std::function<std::string()>;

    Exporter() = default;
    explicit Exporter(Options options) : options_(std::move(options)) {}

    /** Stops the server if still running. */
    ~Exporter();

    Exporter(const Exporter &) = delete;
    Exporter &operator=(const Exporter &) = delete;

    /**
     * Bind, listen and start the accept thread. Returns false (with a
     * warning on stderr) when the socket cannot be bound; the process
     * keeps running unobservable rather than dying.
     */
    bool start();

    /** Stop the accept thread and close the socket. Idempotent. */
    void stop();

    bool running() const { return running_.load(); }

    /** Actual bound port (resolves port 0 after start()). */
    std::uint16_t port() const { return bound_port_; }

    /**
     * Register a dynamic JSON route, e.g. "/load". The handler runs on
     * the server thread on every hit; it must be thread-safe and should
     * be cheap. Registering an existing path replaces the handler.
     */
    void setHandler(const std::string &path, Handler handler);

  private:
    void serveLoop();
    void handleConnection(net::Socket socket);

    /** Dispatch a request to a body + content type; false = 404. */
    bool route(const std::string &path, std::string &body,
               std::string &content_type);

    Options options_;
    net::Listener listener_;
    std::uint16_t bound_port_ = 0;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::thread thread_;

    std::mutex handlers_mutex_;
    std::map<std::string, Handler> handlers_;
};

/**
 * Minimal blocking HTTP GET against @p host:@p port (the client half
 * used by hermes_monitor and the tests). On success fills @p body and
 * returns true; @p status_line (optional) receives the first response
 * line either way. Applies a short socket timeout so a wedged server
 * cannot hang the caller.
 */
bool httpGet(const std::string &host, std::uint16_t port,
             const std::string &path, std::string *body,
             std::string *status_line = nullptr);

} // namespace obs
} // namespace hermes
