/**
 * @file
 * perf_event counter groups, the RAPL powercap sampler and the /perf
 * status document. See perf.hpp for the design contract; the key
 * invariant implemented here is that *no* registry metric is created
 * until a measurement actually succeeds, so unavailable or disabled
 * runs leave the metric surface bit-identical to a build without the
 * feature.
 */

#include "obs/perf.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace hermes {
namespace obs {

namespace {

// --- switches -------------------------------------------------------------

/** -1 = unread (consult the environment once), else 0/1. */
std::atomic<int> g_enabled{-1};
std::atomic<int> g_force_unavailable{-1};

/** 0 = no probe yet, 1 = a thread opened its group, -1 = probe failed. */
std::atomic<int> g_counters_state{0};

bool
envFlag(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && v[0] == '1';
}

int
readSwitch(std::atomic<int> &flag, const char *env_name)
{
    int v = flag.load(std::memory_order_relaxed);
    if (v < 0) {
        v = envFlag(env_name) ? 1 : 0;
        flag.store(v, std::memory_order_relaxed);
    }
    return v;
}

bool
forceUnavailable()
{
    return readSwitch(g_force_unavailable, "HERMES_PERF_FORCE_UNAVAILABLE") ==
        1;
}

// --- per-phase metric cache -----------------------------------------------

/** Registry references for one phase, created on the first successful
 *  scope of that phase (never earlier — see file comment). */
struct PhaseMetrics
{
    Counter &cycles;
    Counter &instructions;
    Counter &cache_misses;
    Counter &llc_load_misses;
    Counter &branch_misses;
    Counter &task_clock_us;
    Histogram &ipc;
    Histogram &cache_mpki;
    Histogram &llc_mpki;
    Histogram &branch_mpki;

    explicit PhaseMetrics(const char *phase)
        : cycles(Registry::instance().counter(
              names::perfMetric(phase, names::kPerfCycles))),
          instructions(Registry::instance().counter(
              names::perfMetric(phase, names::kPerfInstructions))),
          cache_misses(Registry::instance().counter(
              names::perfMetric(phase, names::kPerfCacheMisses))),
          llc_load_misses(Registry::instance().counter(
              names::perfMetric(phase, names::kPerfLlcLoadMisses))),
          branch_misses(Registry::instance().counter(
              names::perfMetric(phase, names::kPerfBranchMisses))),
          task_clock_us(Registry::instance().counter(
              names::perfMetric(phase, names::kPerfTaskClockUs))),
          ipc(Registry::instance().histogram(
              names::perfMetric(phase, names::kPerfIpc))),
          cache_mpki(Registry::instance().histogram(
              names::perfMetric(phase, names::kPerfCacheMpki))),
          llc_mpki(Registry::instance().histogram(
              names::perfMetric(phase, names::kPerfLlcMpki))),
          branch_mpki(Registry::instance().histogram(
              names::perfMetric(phase, names::kPerfBranchMpki)))
    {
    }
};

constexpr int kNumPhases = 4;

std::atomic<PhaseMetrics *> g_phase_metrics[kNumPhases] = {};
std::mutex g_phase_metrics_mutex;

PhaseMetrics &
phaseMetrics(PerfPhase phase)
{
    int idx = static_cast<int>(phase);
    PhaseMetrics *pm = g_phase_metrics[idx].load(std::memory_order_acquire);
    if (pm == nullptr) {
        std::lock_guard<std::mutex> lock(g_phase_metrics_mutex);
        pm = g_phase_metrics[idx].load(std::memory_order_acquire);
        if (pm == nullptr) {
            pm = new PhaseMetrics(perfPhaseName(phase)); // leaked like the
                                                         // registry entries
            g_phase_metrics[idx].store(pm, std::memory_order_release);
        }
    }
    return *pm;
}

// --- per-thread counter groups --------------------------------------------

/** Indices into the reading array handed to PerfScope. */
enum CounterSlot : int {
    kSlotCycles = 0,
    kSlotInstructions = 1,
    kSlotCacheMisses = 2,
    kSlotLlcLoadMisses = 3,
    kSlotBranchMisses = 4,
    kSlotTaskClockNs = 5,
    kNumSlots = 6,
};

struct ThreadPerf
{
    bool tried = false;
    bool ok = false;
    int group_fd = -1;                     ///< leader (cycles)
    int fds[5] = {-1, -1, -1, -1, -1};     ///< slot -> fd (leader at 0)
    int group_pos[5] = {-1, -1, -1, -1, -1}; ///< slot -> index in group read
    int group_members = 0;
    int task_fd = -1;

    ~ThreadPerf()
    {
#if defined(__linux__)
        for (int fd : fds) {
            if (fd >= 0) {
                ::close(fd);
            }
        }
        if (task_fd >= 0) {
            ::close(task_fd);
        }
#endif
    }
};

#if defined(__linux__)

int
perfEventOpen(struct perf_event_attr *attr, int group_fd)
{
    return static_cast<int>(
        ::syscall(SYS_perf_event_open, attr, 0, -1, group_fd, 0));
}

bool
openThreadCounters(ThreadPerf &tp)
{
    if (forceUnavailable()) {
        return false;
    }

    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = PERF_COUNT_HW_CPU_CYCLES;
    attr.disabled = 1; // enabled for the whole group once members exist
    attr.exclude_kernel = 1; // permitted at perf_event_paranoid <= 2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
        PERF_FORMAT_TOTAL_TIME_RUNNING;

    int leader = perfEventOpen(&attr, -1);
    if (leader < 0) {
        return false;
    }
    tp.group_fd = leader;
    tp.fds[kSlotCycles] = leader;
    tp.group_pos[kSlotCycles] = 0;
    tp.group_members = 1;

    struct MemberSpec
    {
        int slot;
        std::uint32_t type;
        std::uint64_t config;
    };
    const MemberSpec members[] = {
        {kSlotInstructions, PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
        {kSlotCacheMisses, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
        {kSlotLlcLoadMisses, PERF_TYPE_HW_CACHE,
         PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
             (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
        {kSlotBranchMisses, PERF_TYPE_HARDWARE,
         PERF_COUNT_HW_BRANCH_MISSES},
    };
    for (const MemberSpec &m : members) {
        struct perf_event_attr mattr;
        std::memset(&mattr, 0, sizeof(mattr));
        mattr.size = sizeof(mattr);
        mattr.type = m.type;
        mattr.config = m.config;
        mattr.exclude_kernel = 1;
        mattr.exclude_hv = 1;
        int fd = perfEventOpen(&mattr, leader);
        if (fd < 0) {
            continue; // optional counter missing on this PMU; keep going
        }
        tp.fds[m.slot] = fd;
        tp.group_pos[m.slot] = tp.group_members++;
    }

    // Instructions are required for IPC; a PMU that cannot even count
    // them is treated as unavailable.
    if (tp.group_pos[kSlotInstructions] < 0) {
        return false;
    }

    struct perf_event_attr tattr;
    std::memset(&tattr, 0, sizeof(tattr));
    tattr.size = sizeof(tattr);
    tattr.type = PERF_TYPE_SOFTWARE;
    tattr.config = PERF_COUNT_SW_TASK_CLOCK;
    tattr.exclude_kernel = 1;
    tattr.exclude_hv = 1;
    tp.task_fd = perfEventOpen(&tattr, -1); // optional; -1 tolerated

    if (::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
        ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
        return false;
    }
    return true;
}

/** One group read, multiplex-scaled; missing counters read as 0. */
bool
readThreadCounters(const ThreadPerf &tp, std::uint64_t out[kNumSlots])
{
    struct
    {
        std::uint64_t nr;
        std::uint64_t time_enabled;
        std::uint64_t time_running;
        std::uint64_t values[8];
    } buf;
    std::memset(&buf, 0, sizeof(buf));

    ssize_t n = ::read(tp.group_fd, &buf, sizeof(buf));
    if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t))) {
        return false;
    }
    double scale = 1.0;
    if (buf.time_running > 0 && buf.time_enabled > buf.time_running) {
        scale = static_cast<double>(buf.time_enabled) /
            static_cast<double>(buf.time_running);
    }
    for (int slot = 0; slot < 5; ++slot) {
        int pos = tp.group_pos[slot];
        std::uint64_t raw =
            (pos >= 0 && static_cast<std::uint64_t>(pos) < buf.nr)
            ? buf.values[pos]
            : 0;
        out[slot] =
            static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
    }
    out[kSlotTaskClockNs] = 0;
    if (tp.task_fd >= 0) {
        std::uint64_t ns = 0;
        if (::read(tp.task_fd, &ns, sizeof(ns)) ==
            static_cast<ssize_t>(sizeof(ns))) {
            out[kSlotTaskClockNs] = ns;
        }
    }
    return true;
}

#else // !__linux__

bool
openThreadCounters(ThreadPerf &)
{
    return false;
}

bool
readThreadCounters(const ThreadPerf &, std::uint64_t[kNumSlots])
{
    return false;
}

#endif

ThreadPerf &
threadPerf()
{
    static thread_local ThreadPerf tp;
    return tp;
}

std::int64_t
steadyNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
readU64File(const std::string &path, std::uint64_t &out)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        return false;
    }
    unsigned long long v = 0;
    in >> v;
    if (in.fail()) {
        return false;
    }
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool
readLineFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in.is_open()) {
        return false;
    }
    std::getline(in, out);
    while (!out.empty() && (out.back() == '\r' || out.back() == '\n' ||
                            out.back() == ' ')) {
        out.pop_back();
    }
    return !out.empty();
}

// --- process-wide RAPL sampler --------------------------------------------

std::mutex g_rapl_mutex;
std::unique_ptr<RaplReader> g_rapl; // under g_rapl_mutex
bool g_rapl_tried = false;          // under g_rapl_mutex

} // namespace

// --- switches (public) ----------------------------------------------------

void
setPerfEnabled(bool enabled)
{
    g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

bool
perfEnabled()
{
    return readSwitch(g_enabled, "HERMES_PERF") == 1;
}

void
setPerfForceUnavailable(bool force)
{
    g_force_unavailable.store(force ? 1 : 0, std::memory_order_relaxed);
}

bool
perfCountersAvailable()
{
    return g_counters_state.load(std::memory_order_relaxed) == 1;
}

bool
raplAvailable()
{
    std::lock_guard<std::mutex> lock(g_rapl_mutex);
    return g_rapl != nullptr && g_rapl->available();
}

// --- PerfScope ------------------------------------------------------------

const char *
perfPhaseName(PerfPhase phase)
{
    switch (phase) {
    case PerfPhase::Sample:
        return "sample";
    case PerfPhase::Deep:
        return "deep";
    case PerfPhase::Merge:
        return "merge";
    case PerfPhase::Scan:
        return "scan";
    }
    return "unknown";
}

PerfScope::PerfScope(PerfPhase phase) : phase_(phase)
{
    if (!perfEnabled()) {
        return;
    }
    ThreadPerf &tp = threadPerf();
    if (!tp.tried) {
        tp.tried = true;
        tp.ok = openThreadCounters(tp);
        if (tp.ok) {
            g_counters_state.store(1, std::memory_order_relaxed);
        } else {
            int expected = 0;
            g_counters_state.compare_exchange_strong(
                expected, -1, std::memory_order_relaxed);
        }
    }
    if (!tp.ok) {
        return;
    }
    if (readThreadCounters(tp, start_)) {
        active_ = true;
    }
}

PerfScope::~PerfScope()
{
    if (!active_) {
        return;
    }
    const ThreadPerf &tp = threadPerf();
    std::uint64_t end[kNumSlots];
    if (!readThreadCounters(tp, end)) {
        return;
    }
    std::uint64_t d[kNumSlots];
    for (int i = 0; i < kNumSlots; ++i) {
        d[i] = end[i] >= start_[i] ? end[i] - start_[i] : 0;
    }

    PhaseMetrics &pm = phaseMetrics(phase_);
    pm.cycles.add(d[kSlotCycles]);
    pm.instructions.add(d[kSlotInstructions]);
    pm.cache_misses.add(d[kSlotCacheMisses]);
    pm.llc_load_misses.add(d[kSlotLlcLoadMisses]);
    pm.branch_misses.add(d[kSlotBranchMisses]);
    pm.task_clock_us.add(d[kSlotTaskClockNs] / 1000);

    double cycles = static_cast<double>(d[kSlotCycles]);
    double instructions = static_cast<double>(d[kSlotInstructions]);
    if (cycles > 0.0 && instructions > 0.0) {
        pm.ipc.observe(instructions / cycles);
    }
    if (instructions > 0.0) {
        if (tp.fds[kSlotCacheMisses] >= 0) {
            pm.cache_mpki.observe(
                1000.0 * static_cast<double>(d[kSlotCacheMisses]) /
                instructions);
        }
        if (tp.fds[kSlotLlcLoadMisses] >= 0) {
            pm.llc_mpki.observe(
                1000.0 * static_cast<double>(d[kSlotLlcLoadMisses]) /
                instructions);
        }
        if (tp.fds[kSlotBranchMisses] >= 0) {
            pm.branch_mpki.observe(
                1000.0 * static_cast<double>(d[kSlotBranchMisses]) /
                instructions);
        }
    }
}

// --- RaplReader -----------------------------------------------------------

RaplReader::RaplReader(const std::string &sysfs_root)
{
    std::string root = sysfs_root;
    if (root.empty()) {
        const char *env = std::getenv("HERMES_RAPL_ROOT");
        root = (env != nullptr && env[0] != '\0') ? env
                                                  : "/sys/class/powercap";
    }

    std::error_code ec;
    std::filesystem::directory_iterator it(root, ec);
    if (ec) {
        return;
    }
    for (const auto &entry : std::filesystem::directory_iterator(root, ec)) {
        const std::string dir_name = entry.path().filename().string();
        // Domains look like intel-rapl:0 / intel-rapl:0:0; the bare
        // intel-rapl control node has no energy counter.
        if (dir_name.rfind("intel-rapl", 0) != 0 ||
            dir_name.find(':') == std::string::npos) {
            continue;
        }
        const std::string dir = entry.path().string();

        RaplDomain dom;
        dom.path = dir;
        if (!readLineFile(dir + "/name", dom.label)) {
            continue;
        }
        dom.is_package = dom.label.rfind("package", 0) == 0;
        dom.is_dram = dom.label == "dram";
        if (!dom.is_package && !dom.is_dram) {
            continue; // core / uncore / psys are out of scope
        }
        if (!readU64File(dir + "/energy_uj", dom.last_uj)) {
            continue; // typically EACCES for non-root readers
        }
        std::uint64_t range = 0;
        if (readU64File(dir + "/max_energy_range_uj", range)) {
            dom.max_range_uj = range;
        }
        domains_.push_back(std::move(dom));
    }
    std::sort(domains_.begin(), domains_.end(),
              [](const RaplDomain &a, const RaplDomain &b) {
                  return a.path < b.path;
              });
    start_ns_ = last_ns_ = steadyNowNs();
}

RaplSample
RaplReader::sample()
{
    RaplSample s;
    if (domains_.empty()) {
        return s;
    }
    bool any_ok = false;
    for (RaplDomain &dom : domains_) {
        std::uint64_t cur = 0;
        if (!readU64File(dom.path + "/energy_uj", cur)) {
            continue; // domain vanished or lost permission mid-run
        }
        double delta_uj = 0.0;
        if (cur >= dom.last_uj) {
            delta_uj = static_cast<double>(cur - dom.last_uj);
        } else if (dom.max_range_uj > 0) {
            // Counter wrapped: remaining headroom + the new value.
            delta_uj =
                static_cast<double>(dom.max_range_uj - dom.last_uj) +
                static_cast<double>(cur);
        }
        // else: wrap with unknown range — drop the delta rather than
        // fabricate energy; the counter re-anchors at `cur`.
        dom.last_uj = cur;
        dom.accumulated_uj += delta_uj;
        any_ok = true;
    }
    if (!any_ok) {
        return s;
    }
    s.valid = true;
    for (const RaplDomain &dom : domains_) {
        if (dom.is_package) {
            s.package_joules += dom.accumulated_uj * 1e-6;
        } else if (dom.is_dram) {
            s.dram_joules += dom.accumulated_uj * 1e-6;
        }
    }
    std::int64_t now_ns = steadyNowNs();
    s.elapsed_seconds = static_cast<double>(now_ns - start_ns_) * 1e-9;
    double dt = static_cast<double>(now_ns - last_ns_) * 1e-9;
    if (dt > 0.0) {
        s.package_watts = (s.package_joules - last_package_joules_) / dt;
    }
    last_ns_ = now_ns;
    last_package_joules_ = s.package_joules;
    return s;
}

RaplSample
raplSample()
{
    if (!perfEnabled() || forceUnavailable()) {
        return RaplSample{};
    }
    std::lock_guard<std::mutex> lock(g_rapl_mutex);
    if (!g_rapl_tried) {
        g_rapl_tried = true;
        g_rapl = std::make_unique<RaplReader>("");
    }
    if (g_rapl == nullptr || !g_rapl->available()) {
        return RaplSample{};
    }
    RaplSample s = g_rapl->sample();
    if (s.valid) {
        Registry &reg = Registry::instance();
        reg.gauge(names::kEnergyPackageJoulesMeasured).set(s.package_joules);
        reg.gauge(names::kEnergyDramJoulesMeasured).set(s.dram_joules);
    }
    return s;
}

// --- /perf status document ------------------------------------------------

std::string
perfStatusJson()
{
    const bool enabled = perfEnabled();
    RaplSample rs = raplSample(); // invalid when disabled / unavailable
    const bool counters = perfCountersAvailable();
    const bool rapl = rs.valid;
    const bool unavailable = !enabled || (!counters && !rapl);

    using detail::jsonNumber;
    std::ostringstream out;
    out << "{\n";
    out << "  \"enabled\": " << (enabled ? "true" : "false") << ",\n";
    out << "  \"unavailable\": " << (unavailable ? "true" : "false")
        << ",\n";
    out << "  \"counters_available\": " << (counters ? "true" : "false")
        << ",\n";
    out << "  \"rapl_available\": " << (rapl ? "true" : "false") << ",\n";
    out << "  \"package_joules\": " << jsonNumber(rs.package_joules)
        << ",\n";
    out << "  \"dram_joules\": " << jsonNumber(rs.dram_joules) << ",\n";
    out << "  \"package_watts\": " << jsonNumber(rs.package_watts) << ",\n";
    out << "  \"elapsed_seconds\": " << jsonNumber(rs.elapsed_seconds)
        << ",\n";

    double total_cycles = 0.0;
    double total_instructions = 0.0;
    double total_cache_misses = 0.0;
    for (int i = 0; i < kNumPhases; ++i) {
        PhaseMetrics *pm = g_phase_metrics[i].load(std::memory_order_acquire);
        if (pm == nullptr) {
            continue;
        }
        total_cycles += static_cast<double>(pm->cycles.value());
        total_instructions +=
            static_cast<double>(pm->instructions.value());
        total_cache_misses +=
            static_cast<double>(pm->cache_misses.value());
    }
    double ipc =
        total_cycles > 0.0 ? total_instructions / total_cycles : 0.0;
    double cache_miss_pct = total_instructions > 0.0
        ? 100.0 * total_cache_misses / total_instructions
        : 0.0;
    out << "  \"ipc\": " << jsonNumber(ipc) << ",\n";
    out << "  \"cache_miss_pct\": " << jsonNumber(cache_miss_pct) << ",\n";

    out << "  \"phases\": {";
    bool first = true;
    for (int i = 0; i < kNumPhases; ++i) {
        PhaseMetrics *pm = g_phase_metrics[i].load(std::memory_order_acquire);
        if (pm == nullptr) {
            continue;
        }
        if (!first) {
            out << ",";
        }
        first = false;
        double cycles = static_cast<double>(pm->cycles.value());
        double instructions = static_cast<double>(pm->instructions.value());
        out << "\n    \"" << perfPhaseName(static_cast<PerfPhase>(i))
            << "\": {";
        out << "\"scopes\": " << pm->ipc.count() << ", ";
        out << "\"cycles\": " << pm->cycles.value() << ", ";
        out << "\"instructions\": " << pm->instructions.value() << ", ";
        out << "\"cache_misses\": " << pm->cache_misses.value() << ", ";
        out << "\"llc_load_misses\": " << pm->llc_load_misses.value()
            << ", ";
        out << "\"branch_misses\": " << pm->branch_misses.value() << ", ";
        out << "\"task_clock_us\": " << pm->task_clock_us.value() << ", ";
        out << "\"ipc\": "
            << jsonNumber(cycles > 0.0 ? instructions / cycles : 0.0)
            << ", ";
        out << "\"cache_mpki\": "
            << jsonNumber(instructions > 0.0
                              ? 1000.0 *
                                  static_cast<double>(
                                      pm->cache_misses.value()) /
                                  instructions
                              : 0.0)
            << "}";
    }
    out << (first ? "}" : "\n  }") << "\n";
    out << "}\n";
    return out.str();
}

} // namespace obs
} // namespace hermes
