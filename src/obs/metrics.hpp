/**
 * @file
 * Process-wide metrics registry: named counters, gauges and log-spaced
 * latency histograms with cheap thread-safe updates.
 *
 * The registry is the always-on half of the observability subsystem
 * (obs/trace.hpp is the opt-in half). Every update is a handful of
 * relaxed atomic operations, so instrumenting a hot path costs tens of
 * nanoseconds; snapshots and exports (JSON / Prometheus text) walk the
 * atomics without stopping writers, so a snapshot taken concurrently
 * with updates is per-field consistent but not a point-in-time cut.
 *
 * Layering: obs sits *below* util in the link order (hermes_util links
 * hermes_obs) so that ThreadPool and friends can be instrumented.
 * Nothing here may include util headers that require linking
 * hermes_util.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hermes {
namespace obs {

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    void add(double delta)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + delta,
                                             std::memory_order_relaxed)) {
        }
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** Point-in-time copy of a Histogram; supports percentile extraction. */
struct HistogramSnapshot
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /** Per-bucket counts; index i covers [bound(i-1), bound(i)), the
     *  last bucket is the overflow. */
    std::vector<std::uint64_t> buckets;

    double mean() const
    {
        return count ? sum / static_cast<double>(count) : 0.0;
    }

    /**
     * Percentile estimate in [min, max]: finds the covering bucket and
     * interpolates linearly inside it, so the error is bounded by the
     * bucket width (~19% at 4 buckets/decade). Exact for p=0 (min),
     * p=100 (max) and single-sample histograms. Returns 0 when empty.
     */
    double percentile(double p) const;
};

/**
 * Fixed-bucket latency histogram, log-spaced at 4 buckets per decade
 * from 0.1 us to 10 s (values outside land in the edge buckets). The
 * unit is microseconds by convention (metric names end in `_us`), but
 * nothing enforces it.
 *
 * observe() touches one bucket counter plus count/sum/min/max — all
 * relaxed atomics, safe from any thread.
 */
class Histogram
{
  public:
    static constexpr std::size_t kBucketsPerDecade = 4;
    static constexpr int kMinExponent = -1; ///< 10^-1 us = 0.1 us
    static constexpr int kMaxExponent = 7;  ///< 10^7 us = 10 s
    static constexpr std::size_t kNumBounds =
        kBucketsPerDecade * (kMaxExponent - kMinExponent);
    static constexpr std::size_t kNumBuckets = kNumBounds + 1; ///< +overflow

    /** Upper bound of bucket @p i (+inf for the overflow bucket). */
    static double bucketUpperBound(std::size_t i);

    /** Bucket index for a value (clamped into [0, kNumBuckets)). */
    static std::size_t bucketIndex(double v);

    /** Record one sample. */
    void observe(double v);

    /** Copy the current state (concurrent-update tolerant). */
    HistogramSnapshot snapshot() const;

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{0.0}; ///< valid only when count_ > 0
    std::atomic<double> max_{0.0}; ///< valid only when count_ > 0
};

/**
 * Compact latency digest derived from a HistogramSnapshot — the shape
 * BrokerStats and the demo/tool dumps report.
 */
struct LatencySummary
{
    std::uint64_t count = 0;
    double mean_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;

    static LatencySummary from(const HistogramSnapshot &snap);
};

class WindowedCounter;
class WindowedHistogram;

/**
 * Process-wide registry of named metrics.
 *
 * Metrics are created on first lookup and never destroyed, so the
 * returned references are stable for the life of the process — cache
 * them (e.g. in a function-local static) on hot paths to skip the
 * name lookup. reset() zeroes values in place without invalidating
 * references (tests rely on this).
 *
 * Naming convention: `<layer>.<operation>[_us]`, e.g.
 * `broker.query_latency_us`, `node.queue_wait_us`, `ivf.scan_us`
 * (obs/metric_names.hpp catalogs the canonical names).
 */
class Registry
{
  public:
    /** The process-wide instance. */
    static Registry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Counter with a rolling per-second window (obs/window.hpp). The
     * cumulative total is the plain counter of the same name, so the
     * counters section of every export is unchanged; exports grow a
     * windowed rate for the name.
     */
    WindowedCounter &windowedCounter(const std::string &name);

    /**
     * Histogram with a rolling per-second window. The cumulative part
     * is the plain histogram of the same name (hasHistogram() sees it);
     * exports grow windowed count/percentiles for the name.
     */
    WindowedHistogram &windowedHistogram(const std::string &name);

    /** True when a histogram of that name has been created. */
    bool hasHistogram(const std::string &name) const;

    /**
     * JSON object with "counters", "gauges" and "histograms" sections;
     * histograms carry count/mean/min/max/p50/p95/p99.
     */
    std::string toJson() const;

    /**
     * Prometheus text exposition: names are prefixed with `hermes_` and
     * dots become underscores; histograms emit cumulative `_bucket`
     * series plus `_sum` and `_count`.
     */
    std::string toPrometheus() const;

    /**
     * Write toJson() to @p path atomically (temp file in the same
     * directory + rename), so an external poller never reads a torn
     * file. Returns false (and warns) on error.
     */
    bool writeJson(const std::string &path) const;

    /** Write toPrometheus() to @p path atomically; false on error. */
    bool writePrometheus(const std::string &path) const;

    /** Zero every metric in place (references stay valid); windowed
     *  rings are cleared too. */
    void reset();

  private:
    Registry() = default;
    ~Registry(); // defined in metrics.cpp where window types are complete

    /** Lookup helpers that assume mutex_ is already held. */
    Counter &counterLocked(const std::string &name);
    Histogram &histogramLocked(const std::string &name);

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::string, std::unique_ptr<WindowedCounter>>
        windowed_counters_;
    std::map<std::string, std::unique_ptr<WindowedHistogram>>
        windowed_histograms_;
};

namespace detail {

/** Escape a string for embedding in a JSON document (no quotes added). */
std::string jsonEscape(const std::string &s);

/** Shortest round-trippable-ish formatting for a JSON number. */
std::string jsonNumber(double v);

} // namespace detail

} // namespace obs
} // namespace hermes
