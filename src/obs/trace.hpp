/**
 * @file
 * Per-query tracing: spans recorded into a process-wide TraceRecorder
 * and exported as Chrome trace-event JSON, loadable in chrome://tracing
 * or https://ui.perfetto.dev.
 *
 * Tracing is opt-in (default off) and sampled: TraceRecorder::start(N)
 * traces one in N queries. A query entry point (broker search, core
 * search, RAG generate) calls sampleQuery() and opens a TraceContext;
 * spans created while the thread's context is active are recorded,
 * everything else is a cheap no-op (one relaxed atomic load + one
 * thread-local read). The traced flag is propagated explicitly across
 * threads (e.g. in a node request) so a query's spans nest across the
 * broker thread and the node workers it fans out to.
 *
 * Span naming follows the metric convention: `<layer>.<operation>`,
 * e.g. `broker.search` > `node.search` > `ivf.search`.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hermes {
namespace obs {

/** One span attribute; numeric values are exported unquoted. */
struct TraceArg
{
    std::string key;
    std::string value;
    bool numeric = false;
};

/** One recorded event (complete span or instant marker). */
struct TraceSpan
{
    std::string name;
    std::uint32_t tid = 0;   ///< small per-thread id (not the OS tid)
    double ts_us = 0.0;      ///< start, microseconds since recorder epoch
    double dur_us = 0.0;     ///< 0 for instants
    bool instant = false;
    std::vector<TraceArg> args;

    double end_us() const { return ts_us + dur_us; }
};

/** Process-wide span sink. All methods are thread-safe. */
class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    static TraceRecorder &instance();

    /**
     * Enable tracing, clearing previously recorded spans.
     * @param sample_every Trace one in this many sampled queries (>= 1).
     */
    void start(std::size_t sample_every = 1);

    /** Disable tracing (recorded spans are kept until the next start). */
    void stop();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Query-entry sampling decision: false when disabled; true when the
     * calling thread is already inside an active TraceContext (nested
     * entry points don't consume the sampling counter); otherwise true
     * for one in sample_every calls.
     */
    bool sampleQuery();

    /** Append a span (regardless of the thread's context). */
    void record(TraceSpan span);

    /** Record a retroactive complete span from explicit timestamps. */
    void addSpan(std::string name, Clock::time_point start,
                 Clock::time_point end, std::vector<TraceArg> args = {});

    /** Microseconds since the recorder epoch (start() resets it). */
    double toMicros(Clock::time_point tp) const;

    /** Small dense id for the calling thread (stable per thread). */
    static std::uint32_t currentThreadId();

    /** Copy of everything recorded so far. */
    std::vector<TraceSpan> snapshot() const;

    std::size_t spanCount() const;

    /** Spans discarded because the buffer cap was hit. */
    std::uint64_t droppedSpans() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    void clear();

    /** Chrome trace-event JSON ({"traceEvents": [...]}). */
    std::string toJson() const;

    /** Write toJson() to @p path; false (and a warning) on error. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    TraceRecorder();

    /** Buffer cap: tracing is for short sessions, not unbounded logs. */
    static constexpr std::size_t kMaxSpans = 1 << 20;

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> sample_every_{1};
    std::atomic<std::uint64_t> sample_counter_{0};
    std::atomic<std::uint64_t> dropped_{0};
    Clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
};

/**
 * True when spans on this thread should be recorded: the recorder is
 * enabled and the thread is inside an active TraceContext.
 */
bool traceActive();

/**
 * RAII marker that the current thread is (or is not) tracing the query
 * in flight. Nesting is additive: a nested TraceContext(false) inside
 * an active one leaves the thread active.
 */
class TraceContext
{
  public:
    explicit TraceContext(bool active);
    ~TraceContext();

    TraceContext(const TraceContext &) = delete;
    TraceContext &operator=(const TraceContext &) = delete;

  private:
    bool prev_;
};

/**
 * RAII complete-span: captures the start time at construction and
 * records [start, destruction) when the thread's trace context was
 * active at construction. Inactive instances cost two branches.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach an attribute (no-op when inactive). */
    void arg(const char *key, const std::string &value);
    void arg(const char *key, double value);
    void arg(const char *key, std::uint64_t value);

    bool active() const { return active_; }

  private:
    bool active_;
    const char *name_;
    TraceRecorder::Clock::time_point start_;
    std::vector<TraceArg> args_;
};

/** Record an instant marker (no-op when the thread is not tracing). */
void instantEvent(const char *name, std::vector<TraceArg> args = {});

} // namespace obs
} // namespace hermes
