/**
 * @file
 * Per-query tracing: spans recorded into a process-wide TraceRecorder
 * and exported as Chrome trace-event JSON, loadable in chrome://tracing
 * or https://ui.perfetto.dev.
 *
 * Tracing is opt-in (default off) and sampled: TraceRecorder::start(N)
 * traces one in N queries. A query entry point (broker search, core
 * search, RAG generate) calls sampleQuery() and opens a TraceContext;
 * spans created while the thread's context is active are recorded,
 * everything else is a cheap no-op (one relaxed atomic load + one
 * thread-local read).
 *
 * Distributed identity: every traced query owns a 64-bit trace_id and
 * every span a span_id/parent_span_id pair, so a query's spans form a
 * tree that survives crossing threads *and processes*. The thread's
 * context (active flag + trace_id + current parent span) is captured
 * as a TraceContextSnapshot, propagated explicitly — into a node
 * request, or over the wire in an RPC (serve/rpc.hpp) — and re-adopted
 * on the far side with TraceContext(snapshot). Ids are drawn from a
 * process-seeded splitmix64 stream, so two processes never hand out
 * colliding span ids in practice and per-process dumps can be merged
 * into one trace (tools/hermes_trace_merge).
 *
 * Span naming follows the metric convention: `<layer>.<operation>`,
 * e.g. `broker.query` > `rpc.search` > `node.search` > `ivf.search`.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace hermes {
namespace obs {

class Gauge;

/** One span attribute; numeric values are exported unquoted. */
struct TraceArg
{
    std::string key;
    std::string value;
    bool numeric = false;
};

/** One recorded event (complete span or instant marker). */
struct TraceSpan
{
    std::string name;
    std::uint32_t tid = 0;   ///< small per-thread id (not the OS tid)
    double ts_us = 0.0;      ///< start, microseconds since recorder epoch
    double dur_us = 0.0;     ///< 0 for instants
    bool instant = false;

    /** Query identity, shared by every span of one traced query
     *  (across threads and processes); 0 = recorded outside a trace
     *  context (legacy addSpan, bare instants). */
    std::uint64_t trace_id = 0;

    /** This span's own id (0 for instants and context-less spans). */
    std::uint64_t span_id = 0;

    /** Enclosing span's id; 0 = root of its process-local subtree. */
    std::uint64_t parent_span_id = 0;

    std::vector<TraceArg> args;

    double end_us() const { return ts_us + dur_us; }
};

/**
 * Copy of a thread's trace context, safe to ship across threads and
 * (field-by-field) across the wire. `parent_span_id` names the span
 * that was open where the snapshot was taken — spans recorded under
 * an adopted snapshot become its children.
 */
struct TraceContextSnapshot
{
    bool active = false;
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span_id = 0;
};

/**
 * The calling thread's current context. `active` is true only when the
 * recorder is enabled AND the thread is inside an active TraceContext
 * (same condition as traceActive()), so a snapshot taken on an
 * untraced path adopts to a no-op.
 */
TraceContextSnapshot currentTraceContext();

/** Fresh process-unique 64-bit id (never 0); used for trace and span
 *  ids, exposed for tests and hand-rolled span assembly. */
std::uint64_t newTraceId();

/** Process-wide span sink. All methods are thread-safe. */
class TraceRecorder
{
  public:
    using Clock = std::chrono::steady_clock;

    static TraceRecorder &instance();

    /**
     * Enable tracing, clearing previously recorded spans.
     * @param sample_every Trace one in this many sampled queries (>= 1).
     */
    void start(std::size_t sample_every = 1);

    /** Disable tracing (recorded spans are kept until the next start). */
    void stop();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Query-entry sampling decision: false when disabled; true when the
     * calling thread is already inside an active TraceContext (nested
     * entry points don't consume the sampling counter); otherwise true
     * for one in sample_every calls.
     */
    bool sampleQuery();

    /** Append a span (regardless of the thread's context). */
    void record(TraceSpan span);

    /**
     * Record a retroactive complete span from explicit timestamps.
     * Inherits the calling thread's trace identity when it is tracing.
     */
    void addSpan(std::string name, Clock::time_point start,
                 Clock::time_point end, std::vector<TraceArg> args = {});

    /**
     * Record a retroactive complete span under an explicit context —
     * for spans whose owning thread is not the recording thread (queue
     * waits, batch back-fill, adopted remote requests). No-op when
     * @p ctx is inactive.
     */
    void addSpan(std::string name, Clock::time_point start,
                 Clock::time_point end, std::vector<TraceArg> args,
                 const TraceContextSnapshot &ctx);

    /** Microseconds since the recorder epoch (start() resets it). */
    double toMicros(Clock::time_point tp) const;

    /** Small dense id for the calling thread (stable per thread). */
    static std::uint32_t currentThreadId();

    /** Copy of everything recorded so far. */
    std::vector<TraceSpan> snapshot() const;

    std::size_t spanCount() const;

    /** Spans discarded because the buffer cap was hit. */
    std::uint64_t droppedSpans() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    void clear();

    /**
     * Chrome trace-event JSON ({"traceEvents": [...]}). Span identity
     * rides in each event's args as zero-padded hex strings
     * ("trace_id"/"span_id"/"parent_span_id"). @p metadata entries, if
     * any, are emitted as a top-level "metadata" object — the merge
     * tool reads process/cluster labels and clock info from there.
     */
    std::string toJson(const std::vector<TraceArg> &metadata = {}) const;

    /** Write toJson() to @p path; false (and a warning) on error. */
    bool writeChromeTrace(const std::string &path,
                          const std::vector<TraceArg> &metadata = {}) const;

  private:
    TraceRecorder();

    /** Buffer cap: tracing is for short sessions, not unbounded logs. */
    static constexpr std::size_t kMaxSpans = 1 << 20;

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> sample_every_{1};
    std::atomic<std::uint64_t> sample_counter_{0};
    std::atomic<std::uint64_t> dropped_{0};
    Clock::time_point epoch_;

    /** Registry gauges mirroring buffer occupancy / drops so trace
     *  truncation is visible on /metrics (never null; the recorder and
     *  the registry are both immortal singletons). */
    Gauge *buffer_gauge_;
    Gauge *dropped_gauge_;

    mutable std::mutex mutex_;
    std::vector<TraceSpan> spans_;
};

/**
 * True when spans on this thread should be recorded: the recorder is
 * enabled and the thread is inside an active TraceContext.
 */
bool traceActive();

/**
 * RAII marker that the current thread is (or is not) tracing the query
 * in flight. Nesting is additive: a nested TraceContext(false) inside
 * an active one leaves the thread active (and keeps its identity).
 *
 * TraceContext(true) at the top level mints a fresh trace_id; adopting
 * a TraceContextSnapshot instead joins an existing trace (possibly one
 * started in another process) with its parent span pre-set.
 */
class TraceContext
{
  public:
    explicit TraceContext(bool active);

    /** Adopt a propagated context (no-op when it is inactive or the
     *  thread is already tracing). */
    explicit TraceContext(const TraceContextSnapshot &snapshot);

    ~TraceContext();

    TraceContext(const TraceContext &) = delete;
    TraceContext &operator=(const TraceContext &) = delete;

  private:
    TraceContextSnapshot prev_;
};

/**
 * RAII complete-span: captures the start time at construction and
 * records [start, destruction) when the thread's trace context was
 * active at construction. Inactive instances cost two branches.
 *
 * An active span becomes the thread's current parent for its lifetime,
 * so spans opened inside it (same thread) chain to it automatically.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach an attribute (no-op when inactive). */
    void arg(const char *key, const std::string &value);
    void arg(const char *key, double value);
    void arg(const char *key, std::uint64_t value);

    bool active() const { return active_; }

    /** This span's id (0 when inactive) — what a propagated context
     *  should carry as parent_span_id for work nested under it. */
    std::uint64_t spanId() const { return span_id_; }

  private:
    bool active_;
    const char *name_;
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    std::uint64_t parent_span_id_ = 0;
    TraceRecorder::Clock::time_point start_;
    std::vector<TraceArg> args_;
};

/** Record an instant marker (no-op when the thread is not tracing). */
void instantEvent(const char *name, std::vector<TraceArg> args = {});

} // namespace obs
} // namespace hermes
