/**
 * @file
 * Umbrella header for the Hermes library.
 *
 * Pulls in the full public API:
 *  - vector substrate:   vecstore, quant, cluster, index
 *  - workload synthesis: workload, eval
 *  - the Hermes engine:  core (distributed store + search strategies)
 *  - systems analysis:   sim (cost models, multi-node tool, pipeline sim)
 *  - RAG serving:        rag (encoder, datastore, RagSystem facade)
 *  - observability:      obs (metrics registry, per-query tracing)
 */

#pragma once

#include "cluster/imbalance.hpp"
#include "cluster/kmeans.hpp"
#include "cluster/partitioner.hpp"
#include "core/config.hpp"
#include "core/distributed_store.hpp"
#include "core/manifest.hpp"
#include "core/rerank.hpp"
#include "core/search_strategy.hpp"
#include "eval/ground_truth.hpp"
#include "eval/metrics.hpp"
#include "index/ann_index.hpp"
#include "obs/exporter.hpp"
#include "obs/obs.hpp"
#include "obs/perf.hpp"
#include "index/flat_index.hpp"
#include "index/hnsw_index.hpp"
#include "index/ivf_index.hpp"
#include "quant/codec.hpp"
#include "rag/analysis.hpp"
#include "rag/datastore.hpp"
#include "rag/encoder.hpp"
#include "rag/perplexity.hpp"
#include "rag/rag_system.hpp"
#include "rag/reranker.hpp"
#include "rag/synth_text.hpp"
#include "net/frame.hpp"
#include "net/net.hpp"
#include "net/wire.hpp"
#include "serve/broker.hpp"
#include "serve/node.hpp"
#include "serve/node_client.hpp"
#include "serve/remote_node.hpp"
#include "serve/rpc.hpp"
#include "serve/shard_server.hpp"
#include "sim/cost_model.hpp"
#include "sim/hardware.hpp"
#include "sim/node_sim.hpp"
#include "sim/pipeline.hpp"
#include "sim/queue_sim.hpp"
#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "vecstore/distance.hpp"
#include "vecstore/matrix.hpp"
#include "vecstore/topk.hpp"
#include "workload/corpus.hpp"
#include "workload/trace.hpp"
