/**
 * @file
 * Read-only memory-mapped file with process-wide accounting.
 *
 * The v3 index format is opened through this wrapper: the searcher's
 * inverted lists become offset+length views into the mapping, so scan
 * kernels stream codes straight off the page cache with zero copies and
 * a shard cold start is one open+mmap instead of minutes of re-training.
 *
 * Every live mapping is registered in a process-wide table so the
 * observability layer can export how much of the datastore is actually
 * memory-resident (mincore) next to the page-fault counters — the
 * signals that make the >RAM serving regime visible.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hermes {
namespace util {

/** Access-pattern hints forwarded to madvise(2). */
enum class MapAdvice {
    Normal,
    Sequential, ///< prefetch aggressively, drop behind
    Random,     ///< disable readahead
    WillNeed,   ///< asynchronously page the whole mapping in
    DontNeed,   ///< drop resident pages (cold-start benchmarking)
};

/**
 * Move-only RAII mapping of a whole file, opened read-only + MAP_SHARED
 * so mapped bytes are backed by the page cache, never private copies.
 */
class MmapFile
{
  public:
    /** Empty (invalid) mapping. */
    MmapFile() = default;

    /**
     * Map @p path read-only.
     * @throws FormatError (code Io) when open/stat/mmap fails.
     * A zero-length file maps successfully with size() == 0.
     */
    explicit MmapFile(const std::string &path);

    ~MmapFile();

    MmapFile(MmapFile &&other) noexcept;
    MmapFile &operator=(MmapFile &&other) noexcept;
    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** True when a file is mapped. */
    bool valid() const { return data_ != nullptr; }

    /** First mapped byte (nullptr when invalid or empty). */
    const std::uint8_t *data() const { return data_; }

    /** Mapped length in bytes. */
    std::size_t size() const { return size_; }

    /** Path the mapping was opened from. */
    const std::string &path() const { return path_; }

    /** Forward an access-pattern hint to the kernel (best effort). */
    void advise(MapAdvice advice) const;

    /**
     * Bytes of this mapping currently resident in memory, via
     * mincore(2) in bounded chunks. Returns size() when the kernel
     * cannot answer (best effort, never fails).
     */
    std::size_t residentBytes() const;

    /** Unmap now (idempotent; the destructor calls it). */
    void reset();

    /** Sum of size() over every live MmapFile in the process. */
    static std::uint64_t totalMappedBytes();

    /** Sum of residentBytes() over every live MmapFile. */
    static std::uint64_t totalResidentBytes();

  private:
    void registerSelf();
    void unregisterSelf();

    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::string path_;
};

} // namespace util
} // namespace hermes
