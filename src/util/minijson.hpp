/**
 * @file
 * Tiny recursive-descent JSON reader for the repo's own outputs.
 *
 * The observability endpoints (/metrics.json, /load) and the metrics
 * files are produced by this codebase, so the consumer side —
 * hermes_monitor's dashboard, tests asserting on exported payloads —
 * only needs a small, dependency-free parser, not a general JSON
 * library. Full JSON syntax is accepted (objects, arrays, strings with
 * escapes, numbers, booleans, null); numbers are held as double, which
 * is exact for the counters this repo emits well past 2^50.
 *
 * Not a validator of interchange data from untrusted peers: nesting
 * depth is bounded (kMaxDepth) and \u escapes outside the BMP are
 * passed through unpaired, which is fine for ASCII metric names.
 */

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace hermes {
namespace util {
namespace json {

/** One parsed JSON value (a tree; children owned by value). */
class Value
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Value() = default;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed reads with fallback — the ergonomic accessors. */
    double numberOr(double fallback) const
    {
        return isNumber() ? number_ : fallback;
    }
    bool boolOr(bool fallback) const { return isBool() ? bool_ : fallback; }
    const std::string &stringOr(const std::string &fallback) const
    {
        return isString() ? string_ : fallback;
    }

    /** Array elements / object members (empty for other types). */
    const std::vector<Value> &items() const { return items_; }

    /** Object keys, parallel to items() (empty for non-objects). */
    const std::vector<std::string> &keys() const { return keys_; }

    std::size_t size() const { return items_.size(); }

    /** Object member by key; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /**
     * Path lookup through nested objects, e.g.
     * `root.at({"counters", "broker.queries"})`. nullptr on any miss.
     */
    const Value *at(const std::vector<std::string> &path) const;

    /** Array element by index; nullptr out of range. */
    const Value *index(std::size_t i) const;

  private:
    friend class Parser;

    Type type_ = Type::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<std::string> keys_;  ///< object member names, in order
    std::vector<Value> items_;       ///< array elements / member values
};

/** Result of a parse: value plus error diagnostics. */
struct ParseResult
{
    bool ok = false;
    Value value;
    std::string error;       ///< human-readable message when !ok
    std::size_t position = 0; ///< byte offset of the error
};

/**
 * Parse @p text as one JSON document (trailing whitespace allowed,
 * trailing garbage is an error). Never throws.
 */
ParseResult parse(const std::string &text);

} // namespace json
} // namespace util
} // namespace hermes
