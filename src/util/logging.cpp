#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

namespace hermes {
namespace util {

namespace {

std::atomic<bool> quiet_flag{false};

/** Serializes whole-line writes so concurrent threads never interleave
 *  partial lines. */
std::mutex &
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("HERMES_LOG_LEVEL");
    if (!env)
        return LogLevel::Inform;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0 || std::strcmp(env, "inform") == 0)
        return LogLevel::Inform;
    if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "warning") == 0)
        return LogLevel::Warn;
    std::fprintf(stderr,
                 "[warn] unknown HERMES_LOG_LEVEL '%s' "
                 "(want debug|info|warn); using info\n", env);
    return LogLevel::Inform;
}

std::atomic<LogLevel> &
levelFlag()
{
    static std::atomic<LogLevel> level{levelFromEnv()};
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:  return "debug";
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

bool
quietMode()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelFlag().load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    levelFlag().store(level, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (level < LogLevel::Fatal && level < logLevel())
        return;
    if (quietMode() && (level == LogLevel::Debug ||
                        level == LogLevel::Inform ||
                        level == LogLevel::Warn)) {
        return;
    }

    // Compose the full line first, then emit it with a single buffered
    // write under the mutex: concurrent node workers never interleave
    // fragments of two messages.
    std::string text;
    text.reserve(msg.size() + 64);
    text += '[';
    text += levelName(level);
    text += "] ";
    text += msg;
    bool to_stdout =
        level == LogLevel::Inform || level == LogLevel::Debug;
    if (!to_stdout) {
        text += " (";
        text += file;
        text += ':';
        text += std::to_string(line);
        text += ')';
    }
    text += '\n';

    std::FILE *stream = to_stdout ? stdout : stderr;
    {
        std::unique_lock<std::mutex> lock(logMutex());
        std::fwrite(text.data(), 1, text.size(), stream);
        std::fflush(stream);
    }
}

} // namespace util
} // namespace hermes
