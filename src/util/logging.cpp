#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

namespace hermes {
namespace util {

namespace {

std::atomic<bool> quiet_flag{false};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

} // namespace

bool
quietMode()
{
    return quiet_flag.load(std::memory_order_relaxed);
}

void
setQuiet(bool quiet)
{
    quiet_flag.store(quiet, std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const char *file, int line, const std::string &msg)
{
    if (quietMode() &&
        (level == LogLevel::Inform || level == LogLevel::Warn)) {
        return;
    }

    if (level == LogLevel::Inform) {
        std::fprintf(stdout, "[%s] %s\n", levelName(level), msg.c_str());
        std::fflush(stdout);
    } else {
        std::fprintf(stderr, "[%s] %s (%s:%d)\n", levelName(level),
                     msg.c_str(), file, line);
        std::fflush(stderr);
    }
}

} // namespace util
} // namespace hermes
