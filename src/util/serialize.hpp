/**
 * @file
 * Binary serialization for index save/load.
 *
 * Format: little-endian, length-prefixed, with a per-archive magic + version
 * header so stale files fail loudly instead of deserializing garbage.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/logging.hpp"

namespace hermes {
namespace util {

/** Streaming binary writer. */
class BinaryWriter
{
  public:
    /**
     * Open @p path and emit the archive header.
     * @param magic   Four-character archive tag (e.g. "HIVF").
     * @param version Format version number.
     */
    BinaryWriter(const std::string &path, const std::string &magic,
                 std::uint32_t version);

    /** Write one trivially-copyable value. */
    template <typename T>
    void
    write(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        out_.write(reinterpret_cast<const char *>(&value), sizeof(T));
    }

    /** Write a length-prefixed vector of trivially-copyable elements. */
    template <typename T>
    void
    writeVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write<std::uint64_t>(v.size());
        if (!v.empty()) {
            out_.write(reinterpret_cast<const char *>(v.data()),
                       static_cast<std::streamsize>(v.size() * sizeof(T)));
        }
    }

    /** Write a length-prefixed string. */
    void writeString(const std::string &s);

    /** True if all writes so far succeeded. */
    bool good() const { return out_.good(); }

  private:
    std::ofstream out_;
};

/** Streaming binary reader that validates the archive header. */
class BinaryReader
{
  public:
    /**
     * Open @p path and validate magic/version; fatal on mismatch.
     */
    BinaryReader(const std::string &path, const std::string &magic,
                 std::uint32_t expected_version);

    /** Read one trivially-copyable value. */
    template <typename T>
    T
    read()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        in_.read(reinterpret_cast<char *>(&value), sizeof(T));
        HERMES_ASSERT(in_.good(), "truncated archive");
        return value;
    }

    /**
     * Read a length-prefixed vector. The length prefix is validated
     * against the bytes actually left in the file before allocating, so
     * a truncated or corrupt archive fails with a clean error naming the
     * path instead of a multi-GB allocation or bad_alloc.
     */
    template <typename T>
    std::vector<T>
    readVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        auto n = read<std::uint64_t>();
        // Divide rather than multiply so a hostile prefix cannot
        // overflow the byte count.
        if (n > remainingBytes() / sizeof(T)) {
            HERMES_FATAL("corrupt archive ", path_, ": vector length ", n,
                         " (", sizeof(T), "-byte elements) exceeds the ",
                         remainingBytes(), " bytes left in the file");
        }
        std::vector<T> v(n);
        if (n) {
            in_.read(reinterpret_cast<char *>(v.data()),
                     static_cast<std::streamsize>(n * sizeof(T)));
            HERMES_ASSERT(in_.good(), "truncated archive vector in ",
                          path_);
        }
        return v;
    }

    /** Read a length-prefixed string (length validated like readVector). */
    std::string readString();

    /** Bytes between the current read position and end of file. */
    std::uint64_t remainingBytes();

  private:
    std::ifstream in_;
    std::string path_;
    std::uint64_t file_size_ = 0;
};

} // namespace util
} // namespace hermes
