/**
 * @file
 * Binary serialization for index save/load.
 *
 * Format: little-endian, length-prefixed, with a per-archive magic + version
 * header so stale files fail loudly instead of deserializing garbage.
 *
 * Two failure disciplines coexist:
 *  - File-backed readers opened with the (path, magic, version) ctor keep
 *    the historical fatal-on-corruption behavior (a CLI tool pointed at a
 *    bad file should exit with a clean message).
 *  - Memory-backed readers (used to parse untrusted sections of the v3
 *    mmap index format) throw a typed FormatError instead, so a serving
 *    process can reject a corrupt file and keep running.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "util/logging.hpp"

namespace hermes {
namespace util {

/** What exactly a reader rejected about a malformed artifact. */
enum class FormatErrorCode {
    Io,        ///< open / stat / map failed
    BadMagic,  ///< wrong magic tag
    BadVersion,///< unsupported format version
    Truncated, ///< file ends before the structure it promises
    Corrupt,   ///< internal inconsistency (bounds, counts, padding)
    Checksum,  ///< stored checksum does not match the bytes
};

/** Human-readable name of a FormatErrorCode. */
const char *formatErrorCodeName(FormatErrorCode code);

/**
 * Typed rejection of a malformed on-disk artifact. Thrown (never fatal)
 * by the memory-backed reader and the v3 index parser, so callers can
 * refuse one bad file without taking the process down.
 */
class FormatError : public std::runtime_error
{
  public:
    FormatError(FormatErrorCode code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {
    }

    FormatErrorCode code() const { return code_; }

  private:
    FormatErrorCode code_;
};

/**
 * CRC-32 (IEEE 802.3 polynomial, the zlib crc32) of @p n bytes.
 * Feed the previous return value as @p seed to checksum in chunks.
 */
std::uint32_t crc32(const void *data, std::size_t n,
                    std::uint32_t seed = 0);

/** Streaming binary writer. */
class BinaryWriter
{
  public:
    /**
     * Open @p path and emit the archive header.
     * @param magic   Four-character archive tag (e.g. "HIVF").
     * @param version Format version number.
     */
    BinaryWriter(const std::string &path, const std::string &magic,
                 std::uint32_t version);

    /**
     * Write to an externally-owned stream with no archive header —
     * used to serialize sub-structures (codec parameter blobs) into a
     * section of a containing format. @p out must outlive the writer.
     */
    explicit BinaryWriter(std::ostream &out);

    /** Write one trivially-copyable value. */
    template <typename T>
    void
    write(const T &value)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        out_->write(reinterpret_cast<const char *>(&value), sizeof(T));
    }

    /** Write a length-prefixed vector of trivially-copyable elements. */
    template <typename T>
    void
    writeVector(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>);
        write<std::uint64_t>(v.size());
        if (!v.empty()) {
            out_->write(reinterpret_cast<const char *>(v.data()),
                        static_cast<std::streamsize>(v.size() * sizeof(T)));
        }
    }

    /** Write a length-prefixed string. */
    void writeString(const std::string &s);

    /** True if all writes so far succeeded. */
    bool good() const { return out_->good(); }

  private:
    std::ofstream file_;
    std::ostream *out_;
};

/** Streaming binary reader that validates the archive header. */
class BinaryReader
{
  public:
    /**
     * Open @p path and validate magic/version; fatal on mismatch.
     */
    BinaryReader(const std::string &path, const std::string &magic,
                 std::uint32_t expected_version);

    /**
     * Read from an in-memory buffer with no archive header (the
     * counterpart of BinaryWriter(std::ostream&)). Corruption throws
     * FormatError instead of terminating. @p name labels errors.
     */
    BinaryReader(const void *data, std::size_t size, std::string name);

    /** Read one trivially-copyable value. */
    template <typename T>
    T
    read()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        T value{};
        in_->read(reinterpret_cast<char *>(&value), sizeof(T));
        if (!in_->good())
            fail(FormatErrorCode::Truncated, "truncated archive");
        return value;
    }

    /**
     * Read a length-prefixed vector. The length prefix is validated
     * against the bytes actually left in the file before allocating, so
     * a truncated or corrupt archive fails with a clean error naming the
     * path instead of a multi-GB allocation or bad_alloc.
     */
    template <typename T>
    std::vector<T>
    readVector()
    {
        static_assert(std::is_trivially_copyable_v<T>);
        auto n = read<std::uint64_t>();
        // Divide rather than multiply so a hostile prefix cannot
        // overflow the byte count.
        if (n > remainingBytes() / sizeof(T)) {
            fail(FormatErrorCode::Corrupt,
                 detail::concat("vector length ", n, " (", sizeof(T),
                                "-byte elements) exceeds the ",
                                remainingBytes(),
                                " bytes left in the file"));
        }
        std::vector<T> v(n);
        if (n) {
            in_->read(reinterpret_cast<char *>(v.data()),
                      static_cast<std::streamsize>(n * sizeof(T)));
            if (!in_->good())
                fail(FormatErrorCode::Truncated,
                     "truncated archive vector");
        }
        return v;
    }

    /** Read a length-prefixed string (length validated like readVector). */
    std::string readString();

    /** Bytes between the current read position and end of file. */
    std::uint64_t remainingBytes();

    /**
     * Reject the archive: throws FormatError in memory mode, fatals
     * with the historical message in file mode. [[noreturn]].
     */
    [[noreturn]] void fail(FormatErrorCode code, const std::string &msg);

  private:
    std::ifstream file_;
    std::istringstream mem_;
    std::istream *in_;
    std::string path_;
    std::uint64_t file_size_ = 0;
    bool throw_on_error_ = false;
};

} // namespace util
} // namespace hermes
