/**
 * @file
 * Fixed-size worker pool with a parallel-for helper.
 *
 * FAISS-style batch query processing schedules one task per query and lets
 * workers steal greedily from a shared counter; parallelFor() mirrors that
 * behaviour (Section 6, Takeaway 1 of the paper).
 *
 * Fault model: a task that throws never calls std::terminate. Exceptions
 * are captured into the task's TaskGroup and rethrown (first one wins)
 * from the matching wait(). Each parallelFor() call owns a private group,
 * so concurrent callers never wait on each other's tasks, and a
 * parallelFor() issued from inside a pool task runs inline instead of
 * deadlocking on its own worker.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hermes {
namespace util {

/** Simple fixed-size thread pool. */
class ThreadPool
{
  private:
    /** Completion/error state shared by the tasks of one group. */
    struct GroupState
    {
        std::mutex mutex;
        std::condition_variable cv_done;
        std::size_t pending = 0;
        std::exception_ptr error; ///< first exception thrown by a task
    };

  public:
    /**
     * A set of tasks whose completion (and failure) is tracked together.
     * wait() blocks only on this group's tasks and rethrows the first
     * exception any of them raised.
     */
    class TaskGroup
    {
      public:
        explicit TaskGroup(ThreadPool &pool)
            : pool_(pool), state_(std::make_shared<GroupState>())
        {
        }

        TaskGroup(const TaskGroup &) = delete;
        TaskGroup &operator=(const TaskGroup &) = delete;

        /** Blocks until done; a pending exception is dropped, so call
         *  wait() explicitly if you care about task failures. */
        ~TaskGroup() { waitNoThrow(); }

        /** Enqueue a task belonging to this group. */
        void run(std::function<void()> task)
        {
            pool_.enqueue(state_, std::move(task));
        }

        /**
         * Block until every task of this group has completed; rethrows
         * the first exception captured from a task (clearing it).
         */
        void wait() { ThreadPool::waitGroup(*state_); }

        /** wait() that swallows a captured exception (for destructors). */
        void waitNoThrow();

      private:
        ThreadPool &pool_;
        std::shared_ptr<GroupState> state_;
    };

    /**
     * @param num_threads Worker count; 0 selects hardware_concurrency().
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    /**
     * Enqueue a task in the pool-wide default group. An exception thrown
     * by the task is captured and rethrown from the next wait().
     */
    void submit(std::function<void()> task);

    /**
     * Block until every default-group task has completed; rethrows the
     * first exception captured from one of them. Tasks submitted through
     * explicit TaskGroups are not waited on here.
     */
    void wait();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run fn(i) for i in [0, n) across the pool, work-stealing from a
     * shared atomic counter, and block until done. The calling thread
     * participates in the loop, so progress is guaranteed even when all
     * workers are busy with other groups. Runs inline when the pool has
     * a single worker or when called from inside one of this pool's own
     * tasks (nested parallelFor). If any iteration throws, remaining
     * indices are abandoned and the first exception is rethrown here.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

    /** True when the calling thread is one of this pool's workers. */
    bool insideWorker() const;

  private:
    friend class TaskGroup;

    void workerLoop();

    /** Enqueue @p task so that completion/errors land in @p group. */
    void enqueue(const std::shared_ptr<GroupState> &group,
                 std::function<void()> task);

    /** Block on @p group; rethrow (and clear) its first captured error. */
    static void waitGroup(GroupState &group);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::shared_ptr<GroupState> default_group_;
    bool stopping_ = false;
};

} // namespace util
} // namespace hermes
