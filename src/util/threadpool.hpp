/**
 * @file
 * Fixed-size worker pool with a parallel-for helper.
 *
 * FAISS-style batch query processing schedules one task per query and lets
 * workers steal greedily from a shared counter; parallelFor() mirrors that
 * behaviour (Section 6, Takeaway 1 of the paper).
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hermes {
namespace util {

/** Simple fixed-size thread pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 selects hardware_concurrency().
     */
    explicit ThreadPool(std::size_t num_threads = 0);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    /** Enqueue a task for asynchronous execution. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has completed. */
    void wait();

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /**
     * Run fn(i) for i in [0, n) across the pool, work-stealing from a
     * shared atomic counter, and block until done. Runs inline when the
     * pool has a single worker (cheap on 1-core hosts).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_task_;
    std::condition_variable cv_done_;
    std::size_t in_flight_ = 0;
    bool stopping_ = false;
};

} // namespace util
} // namespace hermes
