/**
 * @file
 * Minimal command-line flag parser for the tools/ binaries.
 *
 * Supports --name value and --name=value forms, typed accessors with
 * defaults, and an auto-generated --help. Unknown flags are fatal —
 * catching typos beats silently ignoring them.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

namespace hermes {
namespace util {

/** Declarative flag parser. */
class ArgParser
{
  public:
    /**
     * @param program     argv[0]-style program name for help output.
     * @param description One-line tool description.
     */
    ArgParser(std::string program, std::string description);

    /**
     * Declare a flag.
     * @param name          Flag name without leading dashes.
     * @param default_value Default (also shown in --help).
     * @param help          Help text.
     */
    void addFlag(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Parse argv. Exits with usage on --help or unknown/malformed flags.
     */
    void parse(int argc, char **argv);

    /** String value of @p name (declared default if not given). */
    const std::string &get(const std::string &name) const;

    /** Typed accessors (fatal on conversion failure). */
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;
    bool getBool(const std::string &name) const;

    /** True if the user explicitly supplied the flag. */
    bool given(const std::string &name) const;

    /** Print usage to stdout. */
    void printHelp() const;

  private:
    struct Flag
    {
        std::string default_value;
        std::string help;
        std::string value;
        bool given = false;
    };

    const Flag &find(const std::string &name) const;

    std::string program_;
    std::string description_;
    std::map<std::string, Flag> flags_;
    std::vector<std::string> order_;
};

} // namespace util
} // namespace hermes
