/**
 * @file
 * Lightweight wall-clock timing utilities.
 */

#pragma once

#include <chrono>

namespace hermes {
namespace util {

/** Monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds since construction or last reset(). */
    double
    elapsedSeconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    /** Milliseconds since construction or last reset(). */
    double elapsedMillis() const { return elapsedSeconds() * 1e3; }

    /** Microseconds since construction or last reset(). */
    double elapsedMicros() const { return elapsedSeconds() * 1e6; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulates elapsed time into a double on scope exit. */
class ScopedTimer
{
  public:
    /** @param sink Accumulator (seconds) updated at destruction. */
    explicit ScopedTimer(double &sink) : sink_(sink) {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { sink_ += timer_.elapsedSeconds(); }

  private:
    double &sink_;
    Timer timer_;
};

} // namespace util
} // namespace hermes
