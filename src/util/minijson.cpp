#include "util/minijson.hpp"

#include <cmath>
#include <cstdlib>

namespace hermes {
namespace util {
namespace json {

namespace {

/** Deep-enough bound for this repo's documents; rejects stack abuse. */
constexpr std::size_t kMaxDepth = 64;

} // namespace

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    for (std::size_t i = 0; i < keys_.size(); ++i) {
        if (keys_[i] == key)
            return &items_[i];
    }
    return nullptr;
}

const Value *
Value::at(const std::vector<std::string> &path) const
{
    const Value *v = this;
    for (const auto &key : path) {
        v = v->find(key);
        if (!v)
            return nullptr;
    }
    return v;
}

const Value *
Value::index(std::size_t i) const
{
    if (type_ != Type::Array || i >= items_.size())
        return nullptr;
    return &items_[i];
}

/** Single-pass recursive-descent parser over the input buffer. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    ParseResult run()
    {
        ParseResult result;
        skipWhitespace();
        if (!parseValue(result.value, 0)) {
            result.error = error_;
            result.position = pos_;
            return result;
        }
        skipWhitespace();
        if (pos_ != text_.size()) {
            result.error = "trailing characters after document";
            result.position = pos_;
            return result;
        }
        result.ok = true;
        return result;
    }

  private:
    bool fail(const char *message)
    {
        if (error_.empty())
            error_ = message;
        return false;
    }

    void skipWhitespace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        return true;
    }

    bool parseValue(Value &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out.type_ = Value::Type::String;
            return parseString(out.string_);
          case 't':
            out.type_ = Value::Type::Bool;
            out.bool_ = true;
            return literal("true", 4);
          case 'f':
            out.type_ = Value::Type::Bool;
            out.bool_ = false;
            return literal("false", 5);
          case 'n':
            out.type_ = Value::Type::Null;
            return literal("null", 4);
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(Value &out, std::size_t depth)
    {
        out.type_ = Value::Type::Object;
        ++pos_; // '{'
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWhitespace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipWhitespace();
            Value member;
            if (!parseValue(member, depth + 1))
                return false;
            out.keys_.push_back(std::move(key));
            out.items_.push_back(std::move(member));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(Value &out, std::size_t depth)
    {
        out.type_ = Value::Type::Array;
        ++pos_; // '['
        skipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWhitespace();
            Value element;
            if (!parseValue(element, depth + 1))
                return false;
            out.items_.push_back(std::move(element));
            skipWhitespace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // '"'
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // emitted as two 3-byte sequences — fine for our ASCII
                // payloads, lossy for astral-plane text).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Value &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return fail("invalid value");
        if (!std::isfinite(v))
            return fail("number out of range");
        pos_ += static_cast<std::size_t>(end - start);
        out.type_ = Value::Type::Number;
        out.number_ = v;
        return true;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

ParseResult
parse(const std::string &text)
{
    return Parser(text).run();
}

} // namespace json
} // namespace util
} // namespace hermes
