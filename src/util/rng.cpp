#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.hpp"

namespace hermes {
namespace util {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    HERMES_ASSERT(bound > 0, "uniformInt bound must be positive");
    // Lemire-style rejection via threshold on the low 64 bits.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::gaussian()
{
    if (has_cached_gaussian_) {
        has_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

std::size_t
Rng::zipf(std::size_t n, double s)
{
    ZipfSampler sampler(n, s);
    return sampler(*this);
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    HERMES_ASSERT(k <= n, "cannot sample ", k, " of ", n);
    if (k * 3 >= n) {
        // Dense case: shuffle a full index vector and truncate.
        std::vector<std::size_t> idx(n);
        for (std::size_t i = 0; i < n; ++i)
            idx[i] = i;
        shuffle(idx);
        idx.resize(k);
        return idx;
    }
    // Sparse case: rejection into a hash set.
    std::unordered_set<std::size_t> seen;
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
        std::size_t v = uniformInt(n);
        if (seen.insert(v).second)
            out.push_back(v);
    }
    return out;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefull);
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    HERMES_ASSERT(n > 0, "Zipf support must be non-empty");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
ZipfSampler::operator()(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t i) const
{
    HERMES_ASSERT(i < cdf_.size(), "Zipf pmf index out of range");
    if (i == 0)
        return cdf_[0];
    return cdf_[i] - cdf_[i - 1];
}

} // namespace util
} // namespace hermes
