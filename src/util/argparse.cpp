#include "util/argparse.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/logging.hpp"

namespace hermes {
namespace util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description))
{
}

void
ArgParser::addFlag(const std::string &name, const std::string &default_value,
                   const std::string &help)
{
    HERMES_ASSERT(!flags_.count(name), "duplicate flag --", name);
    flags_[name] = Flag{default_value, help, default_value, false};
    order_.push_back(name);
}

void
ArgParser::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            printHelp();
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            HERMES_FATAL("unexpected positional argument '", arg,
                         "' (see --help)");
        }
        std::string name = arg.substr(2);
        std::string value;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
        } else {
            if (i + 1 >= argc) {
                HERMES_FATAL("flag --", name, " is missing a value");
            }
            value = argv[++i];
        }
        auto it = flags_.find(name);
        if (it == flags_.end()) {
            HERMES_FATAL("unknown flag --", name, " (see --help)");
        }
        it->second.value = value;
        it->second.given = true;
    }
}

const ArgParser::Flag &
ArgParser::find(const std::string &name) const
{
    auto it = flags_.find(name);
    HERMES_ASSERT(it != flags_.end(), "undeclared flag --", name);
    return it->second;
}

const std::string &
ArgParser::get(const std::string &name) const
{
    return find(name).value;
}

long
ArgParser::getInt(const std::string &name) const
{
    const auto &value = get(name);
    char *end = nullptr;
    long parsed = std::strtol(value.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
        HERMES_FATAL("flag --", name, " expects an integer, got '", value,
                     "'");
    }
    return parsed;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const auto &value = get(name);
    char *end = nullptr;
    double parsed = std::strtod(value.c_str(), &end);
    if (end == nullptr || *end != '\0') {
        HERMES_FATAL("flag --", name, " expects a number, got '", value,
                     "'");
    }
    return parsed;
}

bool
ArgParser::getBool(const std::string &name) const
{
    const auto &value = get(name);
    if (value == "true" || value == "1" || value == "yes")
        return true;
    if (value == "false" || value == "0" || value == "no")
        return false;
    HERMES_FATAL("flag --", name, " expects true/false, got '", value, "'");
}

bool
ArgParser::given(const std::string &name) const
{
    return find(name).given;
}

void
ArgParser::printHelp() const
{
    std::printf("%s — %s\n\nflags:\n", program_.c_str(),
                description_.c_str());
    for (const auto &name : order_) {
        const auto &flag = flags_.at(name);
        std::printf("  --%-20s %s (default: %s)\n", name.c_str(),
                    flag.help.c_str(),
                    flag.default_value.empty() ? "\"\""
                                               : flag.default_value.c_str());
    }
}

} // namespace util
} // namespace hermes
