#include "util/threadpool.hpp"

#include <atomic>

namespace hermes {
namespace util {

ThreadPool::ThreadPool(std::size_t num_threads)
{
    if (num_threads == 0) {
        num_threads = std::max<std::size_t>(1,
            std::thread::hardware_concurrency());
    }
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
        ++in_flight_;
    }
    cv_task_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_task_.wait(lock,
                [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_)
                    return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0)
                cv_done_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (size() == 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    auto counter = std::make_shared<std::atomic<std::size_t>>(0);
    std::size_t workers = std::min(size(), n);
    for (std::size_t w = 0; w < workers; ++w) {
        submit([counter, n, &fn] {
            for (;;) {
                std::size_t i = counter->fetch_add(1);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    wait();
}

} // namespace util
} // namespace hermes
